//! Property suite for the histogram layout and the snapshot merge —
//! the two facts fleet-wide aggregation rests on:
//!
//! * bucket assignment is **monotone** (order-preserving in the value)
//!   and **total-preserving** (every recorded value lands in exactly
//!   one bucket, so bucket totals always equal the count), and
//! * snapshot merge is **bit-exactly associative** (and commutative),
//!   because it is built from wrapping adds and max — so a router can
//!   fold per-shard snapshots in whatever order shards answer.

use pdb_obs::snapshot::{trim_buckets, MetricsSnapshot, SampleKind, SeriesSample};
use pdb_obs::{bucket_index, bucket_upper_bound, Histogram, HISTOGRAM_BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

/// Build a histogram sample from raw bucket counts + count/sum scalars
/// (unnormalized on purpose: merge must be exact on *any* inputs, not
/// just internally consistent ones).
fn sample(name: &str, count: u64, sum: u64, buckets: &[u64]) -> SeriesSample {
    SeriesSample::histogram(name, count, sum, buckets)
}

/// One pseudo-random snapshot: a histogram family cell, a bare
/// histogram, a counter, and a gauge — every merge rule in one value.
fn snapshot_strategy() -> impl Strategy<Value = MetricsSnapshot> {
    (
        vec(any::<u64>(), 0..HISTOGRAM_BUCKETS),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(buckets, count, sum, counter, gauge)| MetricsSnapshot {
            series: vec![
                sample("h", count, sum, &buckets),
                sample("hv", count ^ sum, sum.rotate_left(13), &buckets)
                    .labeled("verb", "evaluate"),
                SeriesSample::scalar("c", SampleKind::Counter, counter),
                SeriesSample::scalar("g", SampleKind::Gauge, gauge),
            ],
        })
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Monotone: a larger value never lands in a smaller bucket, and
    /// every bucket index stays in range.
    #[test]
    fn bucket_assignment_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi),
            "bucket({lo}) = {} > bucket({hi}) = {}", bucket_index(lo), bucket_index(hi));
        prop_assert!(bucket_index(hi) < HISTOGRAM_BUCKETS);
    }

    /// Every value is covered by its bucket's bounds: above the previous
    /// bucket's upper bound, at or below its own.
    #[test]
    fn bucket_bounds_bracket_every_value(v in any::<u64>()) {
        let index = bucket_index(v);
        prop_assert!(v <= bucket_upper_bound(index));
        if index > 0 {
            prop_assert!(v > bucket_upper_bound(index - 1),
                "{v} should be above bucket {}'s bound {}", index - 1, bucket_upper_bound(index - 1));
        }
    }

    /// Total-preserving: recording N values leaves count == N and the
    /// bucket totals == N — no value is dropped or double-counted.
    #[test]
    fn recording_preserves_totals(values in vec(any::<u64>(), 0..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), values.len() as u64);
        let expected_sum = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(h.sum(), expected_sum);
    }

    /// The fleet invariant, bit-exact: `merge(a, merge(b, c)) ==
    /// merge(merge(a, b), c)` on full snapshots (histograms, labeled
    /// families, counters, gauges).
    #[test]
    fn merge_is_associative_bit_exactly(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
        c in snapshot_strategy(),
    ) {
        let left = merged(&a, &merged(&b, &c));
        let right = merged(&merged(&a, &b), &c);
        prop_assert_eq!(left, right);
    }

    /// Merge is also commutative — shard answer order cannot matter.
    #[test]
    fn merge_is_commutative_bit_exactly(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
    ) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// Merging preserves histogram totals: the merged bucket sum equals
    /// the wrapping sum of the inputs' bucket sums.
    #[test]
    fn merge_preserves_bucket_totals(
        xs in vec(any::<u64>(), 0..HISTOGRAM_BUCKETS),
        ys in vec(any::<u64>(), 0..HISTOGRAM_BUCKETS),
    ) {
        let mut a = MetricsSnapshot { series: vec![sample("h", 0, 0, &xs)] };
        let b = MetricsSnapshot { series: vec![sample("h", 0, 0, &ys)] };
        a.merge(&b);
        let total = |v: &[u64]| v.iter().fold(0u64, |acc, &x| acc.wrapping_add(x));
        let got = a.find("h").map(|s| total(&s.buckets));
        prop_assert_eq!(got, Some(total(&xs).wrapping_add(total(&ys))));
    }

    /// Trimming never changes what a bucket array means: merging a
    /// trimmed array gives the same result as merging the original.
    #[test]
    fn trimming_is_merge_transparent(xs in vec(any::<u64>(), 0..HISTOGRAM_BUCKETS)) {
        let trimmed = trim_buckets(&xs);
        let base = MetricsSnapshot { series: vec![sample("h", 1, 1, &[1, 2, 3])] };
        let via_raw = merged(&base, &MetricsSnapshot { series: vec![sample("h", 0, 0, &xs)] });
        let via_trim = merged(&base, &MetricsSnapshot { series: vec![sample("h", 0, 0, &trimmed)] });
        prop_assert_eq!(via_raw, via_trim);
    }
}
