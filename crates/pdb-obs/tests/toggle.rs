//! The global enable switch, tested in its own binary: flipping the
//! process-wide flag would race the recording assertions in the unit
//! suite if it ran in the same process, so this file holds everything
//! that toggles it.

use pdb_obs::{set_enabled, Counter, Histogram};

#[test]
fn disabling_stops_recording_without_poisoning_reads() {
    let c = Counter::new();
    let h = Histogram::new();
    set_enabled(false);
    c.inc();
    c.add(10);
    h.record(123);
    let span = h.span();
    assert_eq!(span.finish(), 0, "a disabled span measures nothing");
    set_enabled(true);
    assert_eq!(c.get(), 0, "disabled increments must not land");
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    c.inc();
    h.record(123);
    assert_eq!(c.get(), 1, "re-enabling restores recording");
    assert_eq!(h.count(), 1);
}
