//! Canonical metric names — the single place a series name may be
//! spelled as a string literal.
//!
//! Every name registered in [`crate::metrics::registry`] comes from a
//! constant in this file, and the `metric-drift` lint in `pdb-analyze`
//! cross-checks **every string literal in this file** against the
//! metric reference table in the README (both directions).  Adding a
//! metric therefore means: add the constant here, add the registry
//! entry, and document it in the README table — the lint fails the
//! build if any of the three drifts.
//!
//! Naming follows the Prometheus conventions the text exposition
//! targets: `<layer>_<what>[_<unit>]`, `_total` for counters,
//! `_ns` for nanosecond histograms.

/// Requests dispatched, by verb (counter family).
pub const SERVER_REQUESTS_TOTAL: &str = "server_requests_total";
/// Request handling latency, by verb (nanosecond histogram family).
pub const SERVER_REQUEST_LATENCY_NS: &str = "server_request_latency_ns";
/// Failed requests, by error class (counter family).
pub const SERVER_ERRORS_TOTAL: &str = "server_errors_total";

/// Time one WAL append spends framing + waiting for durability.
pub const WAL_APPEND_LATENCY_NS: &str = "wal_append_latency_ns";
/// Time one group-commit fsync takes.
pub const WAL_FSYNC_LATENCY_NS: &str = "wal_fsync_latency_ns";
/// Records each completed group-commit flush window covered.
pub const WAL_FSYNC_BATCH_RECORDS: &str = "wal_fsync_batch_records";
/// 1 while the group-commit flusher is fail-stopped on a sticky fsync
/// error, 0 otherwise (gauge; fleet merge takes the max).
pub const WAL_DEGRADED: &str = "wal_degraded";

/// Full PSR dynamic-programming runs (counter).
pub const ENGINE_PSR_RUNS_TOTAL: &str = "engine_psr_runs_total";
/// Mutations folded in via the incremental delta kernel (counter).
pub const ENGINE_DELTA_PATCHES_TOTAL: &str = "engine_delta_patches_total";
/// Mutations that took the full PSR + TP rebuild path (counter).
pub const ENGINE_FULL_REBUILDS_TOTAL: &str = "engine_full_rebuilds_total";
/// Ill-conditioned rows the delta kernel rebuilt exactly (counter).
pub const ENGINE_REBUILT_ROWS_TOTAL: &str = "engine_rebuilt_rows_total";

/// Router-side latency of one forwarded request, by shard (histogram
/// family).
pub const FLEET_FORWARD_LATENCY_NS: &str = "fleet_forward_latency_ns";
/// Forward attempts that failed and were retried on a fresh connection
/// (counter).
pub const FLEET_RETRIES_TOTAL: &str = "fleet_retries_total";
/// Dead shard processes the router asked the supervisor to respawn
/// (counter).
pub const FLEET_RESPAWNS_TOTAL: &str = "fleet_respawns_total";
/// Shard address changes the router observed — each one remaps a ring
/// slot to a new process (counter).
pub const FLEET_RING_REMAPS_TOTAL: &str = "fleet_ring_remaps_total";

/// Every canonical name, in registry order.
pub const ALL: &[&str] = &[
    SERVER_REQUESTS_TOTAL,
    SERVER_REQUEST_LATENCY_NS,
    SERVER_ERRORS_TOTAL,
    WAL_APPEND_LATENCY_NS,
    WAL_FSYNC_LATENCY_NS,
    WAL_FSYNC_BATCH_RECORDS,
    WAL_DEGRADED,
    ENGINE_PSR_RUNS_TOTAL,
    ENGINE_DELTA_PATCHES_TOTAL,
    ENGINE_FULL_REBUILDS_TOTAL,
    ENGINE_REBUILT_ROWS_TOTAL,
    FLEET_FORWARD_LATENCY_NS,
    FLEET_RETRIES_TOTAL,
    FLEET_RESPAWNS_TOTAL,
    FLEET_RING_REMAPS_TOTAL,
];
