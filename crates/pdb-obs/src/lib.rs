//! The observability core: metric primitives every runtime layer shares.
//!
//! Everything here is built for the hot path of a server that is also
//! doing real work:
//!
//! * **No dependencies.**  Like the rest of the workspace this crate is
//!   std-only; nothing here allocates per event.
//! * **Relaxed atomics, no locks.**  An increment is one
//!   `fetch_add(Relaxed)`; a histogram record is three.  Metrics are
//!   monotone counters — cross-metric ordering carries no meaning, so
//!   relaxed ordering is exactly right.
//! * **Static registration.**  Every metric is a `static` declared in
//!   [`metrics`], named in [`names`]; there is no runtime registry to
//!   lock or grow.  The `metrics` wire verb and the text exposition walk
//!   the same fixed catalog.
//! * **Associative histogram merge.**  Histograms use a fixed 64-bucket
//!   log2 layout ([`bucket_index`]) so that merging two snapshots is an
//!   element-wise wrapping add — bit-exactly associative and
//!   commutative, which is what lets a fleet router fold per-shard
//!   histograms into one distribution in any order.
//! * **Runtime kill switch.**  [`set_enabled`]`(false)` turns every
//!   record path into a single relaxed load + branch, so instrumentation
//!   overhead can be *measured* (the `obs_overhead` bench) instead of
//!   assumed.
//!
//! [`snapshot::MetricsSnapshot`] is the plain-data view: what the
//! `metrics` verb serializes, what the router merges across shards, and
//! what [`text::render`] formats for Prometheus-style scrapes.

#![forbid(unsafe_code)]

pub mod metrics;
pub mod names;
pub mod snapshot;
pub mod text;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Number of histogram buckets.  Bucket `0` holds exactly the value `0`;
/// bucket `i` (for `1 <= i < 63`) holds `[2^(i-1), 2^i)`; bucket `63`
/// holds everything from `2^62` up.  The layout is fixed so that two
/// histograms recorded by different processes merge element-wise.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Global instrumentation switch, on by default.  Checked with one
/// relaxed load on every record path; flipping it off makes every
/// counter increment and span timer a near-no-op, which is how the
/// `obs_overhead` bench isolates the cost of instrumentation itself.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn instrumentation on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The bucket a value lands in: `0` for `0`, otherwise the position of
/// the highest set bit plus one, clamped to the last bucket.  Monotone
/// in `value`, total (every `u64` has a bucket), and stable across
/// processes — the merge invariant depends on all three.
pub fn bucket_index(value: u64) -> usize {
    let bits = (u64::BITS - value.leading_zeros()) as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// The largest value bucket `index` can hold (`u64::MAX` for the last,
/// open-ended bucket).  Used as the `le` bound in text exposition and as
/// the value reported by [`snapshot::quantile`].
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter, usable in `static` position.
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    /// Count one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events at once (wrapping, like the merge).
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins level (merged across shards by `max`, so a single
/// degraded shard keeps a fleet-level boolean gauge raised).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge, usable in `static` position.
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    /// Set the level.
    pub fn set(&self, value: u64) {
        if enabled() {
            self.value.store(value, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-layout log2 histogram: 64 buckets, a total count, and a
/// wrapping sum.  Recording is three relaxed `fetch_add`s; there is no
/// lock and no allocation.  The per-field relaxed atomics mean a
/// concurrent snapshot can observe a record "in flight" (count without
/// sum, or vice versa) — fine for monitoring, which is the contract.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A zeroed histogram, usable in `static` position.
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Wrapping sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copy the bucket array out (relaxed, per-bucket).
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Time a span into this histogram (nanoseconds).
    pub fn span(&self) -> SpanTimer<'_> {
        SpanTimer::start(self)
    }
}

/// A family of counters keyed by a small, fixed label set.  Lookup is a
/// linear scan over `&'static str`s — the sets here have at most ~16
/// entries, where a scan beats any hash — and an unknown label falls
/// back to the **last** cell, so every family's label list ends in a
/// catch-all (`"other"`).
#[derive(Debug)]
pub struct CounterVec {
    label_key: &'static str,
    labels: &'static [&'static str],
    cells: &'static [Counter],
}

impl CounterVec {
    /// Bind a label list to its cell array.  Lengths are checked at
    /// compile time (these are built in `static` position).
    pub const fn new(
        label_key: &'static str,
        labels: &'static [&'static str],
        cells: &'static [Counter],
    ) -> Self {
        assert!(labels.len() == cells.len(), "one cell per label");
        assert!(!labels.is_empty(), "a label family needs at least a catch-all");
        Self { label_key, labels, cells }
    }

    /// The label dimension's name (e.g. `"verb"`).
    pub fn label_key(&self) -> &'static str {
        self.label_key
    }

    /// The counter for `label`, or the catch-all cell for a label that
    /// is not in the family.
    pub fn with(&self, label: &str) -> &Counter {
        &self.cells[self.position(label)]
    }

    /// Iterate `(label, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Counter)> {
        self.labels.iter().copied().zip(self.cells.iter())
    }

    fn position(&self, label: &str) -> usize {
        self.labels.iter().position(|l| *l == label).unwrap_or(self.labels.len() - 1)
    }
}

/// A family of histograms keyed by a small, fixed label set; same
/// lookup and catch-all contract as [`CounterVec`].
#[derive(Debug)]
pub struct HistogramVec {
    label_key: &'static str,
    labels: &'static [&'static str],
    cells: &'static [Histogram],
}

impl HistogramVec {
    /// Bind a label list to its cell array (compile-time checked).
    pub const fn new(
        label_key: &'static str,
        labels: &'static [&'static str],
        cells: &'static [Histogram],
    ) -> Self {
        assert!(labels.len() == cells.len(), "one cell per label");
        assert!(!labels.is_empty(), "a label family needs at least a catch-all");
        Self { label_key, labels, cells }
    }

    /// The label dimension's name (e.g. `"verb"`).
    pub fn label_key(&self) -> &'static str {
        self.label_key
    }

    /// The histogram for `label`, or the catch-all cell.
    pub fn with(&self, label: &str) -> &Histogram {
        &self.cells[self.position(label)]
    }

    /// Iterate `(label, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.labels.iter().copied().zip(self.cells.iter())
    }

    fn position(&self, label: &str) -> usize {
        self.labels.iter().position(|l| *l == label).unwrap_or(self.labels.len() - 1)
    }
}

/// Times one span into a histogram, in nanoseconds.  Dropping the timer
/// records the elapsed time; [`finish`](Self::finish) does the same but
/// hands the measurement back.  When instrumentation is disabled the
/// timer never reads the clock — the construction cost is one relaxed
/// load.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl<'a> SpanTimer<'a> {
    /// Start timing into `hist`.
    pub fn start(hist: &'a Histogram) -> Self {
        Self { hist, start: enabled().then(Instant::now) }
    }

    /// Stop, record, and return the elapsed nanoseconds (0 when
    /// instrumentation was disabled at start).
    pub fn finish(mut self) -> u64 {
        self.observe()
    }

    fn observe(&mut self) -> u64 {
        match self.start.take() {
            Some(started) => {
                let ns = saturating_ns(started.elapsed());
                self.hist.record(ns);
                ns
            }
            None => 0,
        }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.observe();
    }
}

/// A `Duration` as nanoseconds, clamped to `u64::MAX` (584 years).
fn saturating_ns(elapsed: std::time::Duration) -> u64 {
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_nest() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            assert!(bucket_index(bucket_upper_bound(i)) == i, "bound of bucket {i} stays inside");
        }
    }

    #[test]
    fn counters_and_gauges_count() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_records_count_sum_and_buckets() {
        let h = Histogram::new();
        for v in [0, 1, 1, 1000, 70_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 71_002);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 2);
        assert_eq!(buckets[10], 1);
        assert_eq!(buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn vec_families_fall_back_to_the_catch_all() {
        static CELLS: [Counter; 3] = [const { Counter::new() }; 3];
        static VEC: CounterVec = CounterVec::new("verb", &["a", "b", "other"], &CELLS);
        VEC.with("a").inc();
        VEC.with("nonsense").inc();
        VEC.with("more nonsense").inc();
        assert_eq!(VEC.with("a").get(), 1);
        assert_eq!(VEC.with("b").get(), 0);
        assert_eq!(VEC.with("other").get(), 2);
        assert_eq!(VEC.iter().count(), 3);
        assert_eq!(VEC.label_key(), "verb");
    }

    #[test]
    fn span_timer_records_once_on_drop_or_finish() {
        let h = Histogram::new();
        {
            let _span = h.span();
        }
        assert_eq!(h.count(), 1);
        let ns = h.span().finish();
        assert_eq!(h.count(), 2);
        assert!(ns < 1_000_000_000, "a no-op span should not take a second");
    }
}
