//! Plain-data metric snapshots: what the `metrics` wire verb carries,
//! what a fleet router merges across shards, and what the text
//! exposition renders.
//!
//! The merge is the load-bearing part.  Each shard process samples its
//! own static registry; the router folds the per-shard snapshots into
//! one fleet-level view.  For that fold to be order-independent the
//! per-series combine must be associative and commutative **bit
//! exactly** — so counters and histogram buckets combine by
//! `wrapping_add` (no saturation, no floats) and gauges by `max`.  The
//! proptest suite in `tests/histogram_props.rs` pins this down.

use crate::{bucket_upper_bound, HISTOGRAM_BUCKETS};

/// What kind of series a sample came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SampleKind {
    /// Monotone event count; merges by wrapping sum.
    Counter,
    /// Last-written level; merges by max.
    Gauge,
    /// Log2-bucketed distribution; merges element-wise.
    Histogram,
}

impl SampleKind {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SampleKind::Counter => "counter",
            SampleKind::Gauge => "gauge",
            SampleKind::Histogram => "histogram",
        }
    }

    /// Parse the wire spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "counter" => Some(SampleKind::Counter),
            "gauge" => Some(SampleKind::Gauge),
            "histogram" => Some(SampleKind::Histogram),
            _ => None,
        }
    }
}

/// One sampled series (one scalar, or one histogram, for one label of a
/// family).  Unlabeled series carry empty `label_key`/`label_value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSample {
    /// Canonical metric name.
    pub name: String,
    /// Series kind (decides the merge rule).
    pub kind: SampleKind,
    /// Label dimension (e.g. `"verb"`), empty when unlabeled.
    pub label_key: String,
    /// Label value (e.g. `"evaluate"`), empty when unlabeled.
    pub label_value: String,
    /// Counter/gauge value; for histograms, the observation count.
    pub value: u64,
    /// Histogram observation sum (wrapping); 0 for scalars.
    pub sum: u64,
    /// Histogram buckets, trimmed to the last non-zero entry (empty
    /// for scalars and never-recorded histograms).
    pub buckets: Vec<u64>,
}

impl SeriesSample {
    /// An unlabeled counter or gauge sample.
    pub fn scalar(name: &str, kind: SampleKind, value: u64) -> Self {
        Self {
            name: name.to_string(),
            kind,
            label_key: String::new(),
            label_value: String::new(),
            value,
            sum: 0,
            buckets: Vec::new(),
        }
    }

    /// An unlabeled histogram sample; `buckets` is trimmed here.
    pub fn histogram(name: &str, count: u64, sum: u64, buckets: &[u64]) -> Self {
        Self {
            name: name.to_string(),
            kind: SampleKind::Histogram,
            label_key: String::new(),
            label_value: String::new(),
            value: count,
            sum,
            buckets: trim_buckets(buckets),
        }
    }

    /// Attach a family label.
    pub fn labeled(mut self, key: &str, value: &str) -> Self {
        self.label_key = key.to_string();
        self.label_value = value.to_string();
        self
    }

    /// The identity two samples must share to be merged.
    fn merge_key(&self) -> (&str, &str, &str) {
        (&self.name, &self.label_key, &self.label_value)
    }

    /// Fold `other` into `self` (same merge key assumed): wrapping sum
    /// for counters and histograms, max for gauges.
    fn combine(&mut self, other: &SeriesSample) {
        match self.kind {
            SampleKind::Counter => self.value = self.value.wrapping_add(other.value),
            SampleKind::Gauge => self.value = self.value.max(other.value),
            SampleKind::Histogram => {
                self.value = self.value.wrapping_add(other.value);
                self.sum = self.sum.wrapping_add(other.sum);
                merge_buckets(&mut self.buckets, &other.buckets);
            }
        }
    }

    /// Approximate quantile of a histogram sample: the upper bound of
    /// the bucket where the cumulative count crosses `q * count`.
    /// Returns 0 for empty histograms and scalars.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile(self.value, &self.buckets, q)
    }
}

/// A full registry sample from one process (or a merged fleet view).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Every sampled series, sorted by `(name, label_key, label_value)`
    /// after a merge; in registry order when freshly sampled.
    pub series: Vec<SeriesSample>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self` and canonicalize the order.  Matching
    /// series combine per their kind; series only one side has are
    /// kept as-is.  Because every per-series combine is associative and
    /// commutative and the result order is canonical, the whole-merge
    /// is too — fleets can fold shard snapshots in any order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for sample in &other.series {
            match self.series.iter_mut().find(|s| s.merge_key() == sample.merge_key()) {
                Some(existing) => existing.combine(sample),
                None => self.series.push(sample.clone()),
            }
        }
        for sample in &mut self.series {
            let trimmed = trim_buckets(&sample.buckets);
            sample.buckets = trimmed;
        }
        self.series.sort_by(|a, b| a.merge_key().cmp(&b.merge_key()));
    }

    /// The sample for `name` (first label when the name is a family).
    pub fn find(&self, name: &str) -> Option<&SeriesSample> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The sample for `name` with `label_value`.
    pub fn find_labeled(&self, name: &str, label_value: &str) -> Option<&SeriesSample> {
        self.series.iter().find(|s| s.name == name && s.label_value == label_value)
    }
}

/// Drop trailing zero buckets (the canonical trimmed form; an all-zero
/// array becomes empty).
pub fn trim_buckets(buckets: &[u64]) -> Vec<u64> {
    let len = buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
    buckets[..len.min(HISTOGRAM_BUCKETS)].to_vec()
}

/// Element-wise wrapping add of `other` into `acc`, padding `acc` to
/// `other`'s length first.
fn merge_buckets(acc: &mut Vec<u64>, other: &[u64]) {
    if acc.len() < other.len() {
        acc.resize(other.len(), 0);
    }
    for (slot, &b) in acc.iter_mut().zip(other.iter()) {
        *slot = slot.wrapping_add(b);
    }
}

/// Approximate quantile over a (possibly trimmed) bucket array: the
/// upper bound of the bucket where the cumulative count reaches
/// `ceil(q * count)`.  An upper bound, never an interpolation — honest
/// about the log2 resolution.
pub fn quantile(count: u64, buckets: &[u64], q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let clamped = q.clamp(0.0, 1.0);
    // count is a histogram population; f64 round-off above 2^53 events
    // only blurs which bucket edge is reported, never panics.
    let rank = ((clamped * count as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (index, &bucket) in buckets.iter().enumerate() {
        seen = seen.saturating_add(bucket);
        if seen >= rank {
            return bucket_upper_bound(index);
        }
    }
    bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket_index;

    fn hist(name: &str, values: &[u64]) -> SeriesSample {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut sum = 0u64;
        for &v in values {
            buckets[bucket_index(v)] += 1;
            sum = sum.wrapping_add(v);
        }
        SeriesSample::histogram(name, values.len() as u64, sum, &buckets)
    }

    #[test]
    fn trimming_is_idempotent_and_drops_only_trailing_zeros() {
        assert_eq!(trim_buckets(&[0, 0, 0]), Vec::<u64>::new());
        assert_eq!(trim_buckets(&[1, 0, 2, 0, 0]), vec![1, 0, 2]);
        assert_eq!(trim_buckets(&trim_buckets(&[1, 0, 2, 0, 0])), vec![1, 0, 2]);
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut a = MetricsSnapshot {
            series: vec![
                SeriesSample::scalar("c", SampleKind::Counter, 2),
                SeriesSample::scalar("g", SampleKind::Gauge, 1),
            ],
        };
        let b = MetricsSnapshot {
            series: vec![
                SeriesSample::scalar("c", SampleKind::Counter, 3),
                SeriesSample::scalar("g", SampleKind::Gauge, 0),
                SeriesSample::scalar("only_b", SampleKind::Counter, 9),
            ],
        };
        a.merge(&b);
        assert_eq!(a.find("c").map(|s| s.value), Some(5));
        assert_eq!(a.find("g").map(|s| s.value), Some(1), "gauge merge takes the max");
        assert_eq!(a.find("only_b").map(|s| s.value), Some(9), "one-sided series survive");
    }

    #[test]
    fn merge_adds_histograms_element_wise() {
        let mut a = MetricsSnapshot { series: vec![hist("h", &[1, 1000])] };
        let b = MetricsSnapshot { series: vec![hist("h", &[1, 2, u64::MAX])] };
        a.merge(&b);
        let merged = a.find("h").unwrap();
        assert_eq!(merged.value, 5);
        assert_eq!(merged.buckets.iter().sum::<u64>(), 5, "merge preserves totals");
        assert_eq!(merged.buckets[bucket_index(1)], 2);
        assert_eq!(merged.buckets[bucket_index(u64::MAX)], 1);
    }

    #[test]
    fn labeled_series_merge_per_label() {
        let mut a = MetricsSnapshot {
            series: vec![SeriesSample::scalar("c", SampleKind::Counter, 1).labeled("verb", "x")],
        };
        let b = MetricsSnapshot {
            series: vec![
                SeriesSample::scalar("c", SampleKind::Counter, 1).labeled("verb", "x"),
                SeriesSample::scalar("c", SampleKind::Counter, 7).labeled("verb", "y"),
            ],
        };
        a.merge(&b);
        assert_eq!(a.find_labeled("c", "x").map(|s| s.value), Some(2));
        assert_eq!(a.find_labeled("c", "y").map(|s| s.value), Some(7));
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = hist("h", &[1, 1, 1, 1000]);
        assert_eq!(h.quantile(0.5), 1, "p50 of {{1,1,1,1000}} sits in the 1-bucket");
        assert_eq!(h.quantile(1.0), 1023, "p100 reports the top bucket's bound");
        assert_eq!(hist("e", &[]).quantile(0.5), 0, "empty histogram quantile is 0");
    }

    #[test]
    fn sample_kinds_round_trip_their_wire_spelling() {
        for kind in [SampleKind::Counter, SampleKind::Gauge, SampleKind::Histogram] {
            assert_eq!(SampleKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SampleKind::parse("nonsense"), None);
    }
}
