//! The static metric catalog: every series the workspace records, as
//! const-constructed statics, plus the fixed [`registry`] that the
//! `metrics` wire verb, the text exposition, and the fleet merge all
//! walk.
//!
//! Consumers increment through these statics directly
//! (`pdb_obs::metrics::ENGINE_PSR_RUNS_TOTAL.inc()`); nothing is
//! registered at runtime, so there is no lock between a recording
//! thread and a scrape.

use crate::snapshot::{MetricsSnapshot, SampleKind, SeriesSample};
use crate::{names, Counter, CounterVec, Gauge, Histogram, HistogramVec};

/// Every protocol verb plus the `"other"` catch-all, the label set of
/// the per-verb server families.  `pdb-server` asserts this list covers
/// `Request::verb()` exactly, so an unlisted verb can only ever be a
/// new one that test catches.
pub const VERB_LABELS: &[&str] = &[
    "create_session",
    "register_query",
    "evaluate",
    "quality",
    "recommend_probe",
    "apply_mutation",
    "apply_probe",
    "drop_session",
    "persist",
    "restore",
    "fetch_chunk",
    "stats",
    "metrics",
    "shutdown",
    "other",
];

/// Where a failed request died: `decode` (the line never parsed),
/// `handler` (dispatch returned an error reply), `io` (writing the
/// reply back failed), plus the structural catch-all.
pub const ERROR_CLASS_LABELS: &[&str] = &["decode", "handler", "io", "other"];

/// Ring slots the per-shard forward-latency family distinguishes;
/// fleets larger than 16 shards fold the tail into `"other"`.
pub const SHARD_LABELS: &[&str] = &[
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "other",
];

static SERVER_REQUESTS_CELLS: [Counter; VERB_LABELS.len()] =
    [const { Counter::new() }; VERB_LABELS.len()];
/// Requests dispatched, by verb.
pub static SERVER_REQUESTS_TOTAL: CounterVec =
    CounterVec::new("verb", VERB_LABELS, &SERVER_REQUESTS_CELLS);

static SERVER_LATENCY_CELLS: [Histogram; VERB_LABELS.len()] =
    [const { Histogram::new() }; VERB_LABELS.len()];
/// Request handling latency (decode to reply body), by verb.
pub static SERVER_REQUEST_LATENCY_NS: HistogramVec =
    HistogramVec::new("verb", VERB_LABELS, &SERVER_LATENCY_CELLS);

static SERVER_ERRORS_CELLS: [Counter; ERROR_CLASS_LABELS.len()] =
    [const { Counter::new() }; ERROR_CLASS_LABELS.len()];
/// Failed requests, by error class.
pub static SERVER_ERRORS_TOTAL: CounterVec =
    CounterVec::new("class", ERROR_CLASS_LABELS, &SERVER_ERRORS_CELLS);

/// One WAL append, framing through durability acknowledgment.
pub static WAL_APPEND_LATENCY_NS: Histogram = Histogram::new();
/// One group-commit fsync.
pub static WAL_FSYNC_LATENCY_NS: Histogram = Histogram::new();
/// Records covered per completed group-commit flush window.
pub static WAL_FSYNC_BATCH_RECORDS: Histogram = Histogram::new();
/// 1 while the flusher is fail-stopped on a sticky fsync error.
pub static WAL_DEGRADED: Gauge = Gauge::new();

/// Full PSR dynamic-programming runs.
pub static ENGINE_PSR_RUNS_TOTAL: Counter = Counter::new();
/// Mutations folded in incrementally by the delta kernel.
pub static ENGINE_DELTA_PATCHES_TOTAL: Counter = Counter::new();
/// Mutations that took the full rebuild path instead.
pub static ENGINE_FULL_REBUILDS_TOTAL: Counter = Counter::new();
/// Ill-conditioned rows rebuilt exactly inside delta patches.
pub static ENGINE_REBUILT_ROWS_TOTAL: Counter = Counter::new();

static FLEET_FORWARD_CELLS: [Histogram; SHARD_LABELS.len()] =
    [const { Histogram::new() }; SHARD_LABELS.len()];
/// Router-side latency of one forwarded request, by shard.
pub static FLEET_FORWARD_LATENCY_NS: HistogramVec =
    HistogramVec::new("shard", SHARD_LABELS, &FLEET_FORWARD_CELLS);

/// Forward attempts retried on a fresh connection.
pub static FLEET_RETRIES_TOTAL: Counter = Counter::new();
/// Dead shards the router had respawned.
pub static FLEET_RESPAWNS_TOTAL: Counter = Counter::new();
/// Observed shard address changes (ring slot remapped to a new
/// process).
pub static FLEET_RING_REMAPS_TOTAL: Counter = Counter::new();

/// One registered metric: a canonical name bound to its series.
#[derive(Debug)]
pub struct MetricDef {
    /// Canonical name (a constant from [`names`]).
    pub name: &'static str,
    /// One-line meaning, surfaced by the text exposition as `# HELP`.
    pub help: &'static str,
    /// The live series behind the name.
    pub series: SeriesRef,
}

/// A reference into the static catalog.
#[derive(Debug)]
pub enum SeriesRef {
    /// A single counter.
    Counter(&'static Counter),
    /// A single gauge.
    Gauge(&'static Gauge),
    /// A single histogram.
    Histogram(&'static Histogram),
    /// A counter family.
    CounterVec(&'static CounterVec),
    /// A histogram family.
    HistogramVec(&'static HistogramVec),
}

static REGISTRY: [MetricDef; 15] = [
    MetricDef {
        name: names::SERVER_REQUESTS_TOTAL,
        help: "requests dispatched, by verb",
        series: SeriesRef::CounterVec(&SERVER_REQUESTS_TOTAL),
    },
    MetricDef {
        name: names::SERVER_REQUEST_LATENCY_NS,
        help: "request handling latency, by verb",
        series: SeriesRef::HistogramVec(&SERVER_REQUEST_LATENCY_NS),
    },
    MetricDef {
        name: names::SERVER_ERRORS_TOTAL,
        help: "failed requests, by error class",
        series: SeriesRef::CounterVec(&SERVER_ERRORS_TOTAL),
    },
    MetricDef {
        name: names::WAL_APPEND_LATENCY_NS,
        help: "WAL append latency, framing through durability",
        series: SeriesRef::Histogram(&WAL_APPEND_LATENCY_NS),
    },
    MetricDef {
        name: names::WAL_FSYNC_LATENCY_NS,
        help: "group-commit fsync latency",
        series: SeriesRef::Histogram(&WAL_FSYNC_LATENCY_NS),
    },
    MetricDef {
        name: names::WAL_FSYNC_BATCH_RECORDS,
        help: "records covered per group-commit flush",
        series: SeriesRef::Histogram(&WAL_FSYNC_BATCH_RECORDS),
    },
    MetricDef {
        name: names::WAL_DEGRADED,
        help: "1 while the WAL flusher is fail-stopped on a sticky fsync error",
        series: SeriesRef::Gauge(&WAL_DEGRADED),
    },
    MetricDef {
        name: names::ENGINE_PSR_RUNS_TOTAL,
        help: "full PSR dynamic-programming runs",
        series: SeriesRef::Counter(&ENGINE_PSR_RUNS_TOTAL),
    },
    MetricDef {
        name: names::ENGINE_DELTA_PATCHES_TOTAL,
        help: "mutations folded in by the incremental delta kernel",
        series: SeriesRef::Counter(&ENGINE_DELTA_PATCHES_TOTAL),
    },
    MetricDef {
        name: names::ENGINE_FULL_REBUILDS_TOTAL,
        help: "mutations evaluated via full rebuild",
        series: SeriesRef::Counter(&ENGINE_FULL_REBUILDS_TOTAL),
    },
    MetricDef {
        name: names::ENGINE_REBUILT_ROWS_TOTAL,
        help: "ill-conditioned rows rebuilt exactly inside delta patches",
        series: SeriesRef::Counter(&ENGINE_REBUILT_ROWS_TOTAL),
    },
    MetricDef {
        name: names::FLEET_FORWARD_LATENCY_NS,
        help: "router-side forwarded-request latency, by shard",
        series: SeriesRef::HistogramVec(&FLEET_FORWARD_LATENCY_NS),
    },
    MetricDef {
        name: names::FLEET_RETRIES_TOTAL,
        help: "forward attempts retried on a fresh connection",
        series: SeriesRef::Counter(&FLEET_RETRIES_TOTAL),
    },
    MetricDef {
        name: names::FLEET_RESPAWNS_TOTAL,
        help: "dead shard processes respawned",
        series: SeriesRef::Counter(&FLEET_RESPAWNS_TOTAL),
    },
    MetricDef {
        name: names::FLEET_RING_REMAPS_TOTAL,
        help: "shard address changes observed by the router",
        series: SeriesRef::Counter(&FLEET_RING_REMAPS_TOTAL),
    },
];

/// The fixed catalog, in [`names::ALL`] order.
pub fn registry() -> &'static [MetricDef] {
    &REGISTRY
}

/// Sample every registered series into a plain-data snapshot.
///
/// Family cells are sampled per label; histogram bucket arrays are
/// trimmed to their last non-zero bucket (an empty array means "never
/// recorded"), which keeps wire replies proportional to what actually
/// happened instead of `64 × series`.
pub fn snapshot() -> MetricsSnapshot {
    let mut series = Vec::new();
    for def in registry() {
        match &def.series {
            SeriesRef::Counter(c) => {
                series.push(SeriesSample::scalar(def.name, SampleKind::Counter, c.get()))
            }
            SeriesRef::Gauge(g) => {
                series.push(SeriesSample::scalar(def.name, SampleKind::Gauge, g.get()))
            }
            SeriesRef::Histogram(h) => {
                series.push(SeriesSample::histogram(def.name, h.count(), h.sum(), &h.buckets()))
            }
            SeriesRef::CounterVec(v) => {
                for (label, cell) in v.iter() {
                    series.push(
                        SeriesSample::scalar(def.name, SampleKind::Counter, cell.get())
                            .labeled(v.label_key(), label),
                    );
                }
            }
            SeriesRef::HistogramVec(v) => {
                for (label, cell) in v.iter() {
                    series.push(
                        SeriesSample::histogram(
                            def.name,
                            cell.count(),
                            cell.sum(),
                            &cell.buckets(),
                        )
                        .labeled(v.label_key(), label),
                    );
                }
            }
        }
    }
    MetricsSnapshot { series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_the_canonical_name_list_in_order() {
        let registered: Vec<&str> = registry().iter().map(|d| d.name).collect();
        assert_eq!(registered, names::ALL, "registry and names::ALL must list the same metrics");
    }

    #[test]
    fn snapshot_covers_every_registered_name() {
        let snap = snapshot();
        for name in names::ALL {
            assert!(
                snap.series.iter().any(|s| s.name == *name),
                "snapshot is missing registered metric {name}"
            );
        }
    }

    #[test]
    fn family_snapshots_sample_every_label() {
        let snap = snapshot();
        let verbs: Vec<&str> = snap
            .series
            .iter()
            .filter(|s| s.name == names::SERVER_REQUESTS_TOTAL)
            .map(|s| s.label_value.as_str())
            .collect();
        assert_eq!(verbs, VERB_LABELS);
    }

    #[test]
    fn every_help_line_is_nonempty() {
        for def in registry() {
            assert!(!def.help.is_empty(), "{} has no help text", def.name);
        }
    }
}
