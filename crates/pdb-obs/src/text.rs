//! Prometheus-style text exposition of a [`MetricsSnapshot`].
//!
//! The format follows the exposition conventions close enough for a
//! scraper or a human: one `# HELP`/`# TYPE` pair per metric, labeled
//! samples as `name{key="value"} n`, histograms as cumulative
//! `_bucket{le="..."}` samples (the `le` bounds are the log2 bucket
//! upper bounds) plus `_sum` and `_count`.  Bucket runs are trimmed the
//! same way the snapshot is: emission stops after the last non-zero
//! bucket, then `+Inf` closes the series.

use crate::bucket_upper_bound;
use crate::metrics::registry;
use crate::snapshot::{MetricsSnapshot, SampleKind, SeriesSample};
use std::fmt::Write as _;

/// Render a snapshot in Prometheus-style text format.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for sample in &snapshot.series {
        if last_name != Some(sample.name.as_str()) {
            render_header(&mut out, sample);
            last_name = Some(sample.name.as_str());
        }
        match sample.kind {
            SampleKind::Counter | SampleKind::Gauge => {
                let _ = writeln!(out, "{}{} {}", sample.name, label_suffix(sample), sample.value);
            }
            SampleKind::Histogram => render_histogram(&mut out, sample),
        }
    }
    out
}

/// `# HELP` (when the registry knows the name) and `# TYPE` lines.
fn render_header(out: &mut String, sample: &SeriesSample) {
    if let Some(def) = registry().iter().find(|d| d.name == sample.name) {
        let _ = writeln!(out, "# HELP {} {}", sample.name, def.help);
    }
    let _ = writeln!(out, "# TYPE {} {}", sample.name, sample.kind.as_str());
}

/// Cumulative `_bucket` samples, then `_sum` and `_count`.
fn render_histogram(out: &mut String, sample: &SeriesSample) {
    let mut cumulative = 0u64;
    for (index, &bucket) in sample.buckets.iter().enumerate() {
        cumulative = cumulative.saturating_add(bucket);
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            sample.name,
            bucket_label(sample, &bucket_upper_bound(index).to_string()),
            cumulative,
        );
    }
    let _ =
        writeln!(out, "{}_bucket{} {}", sample.name, bucket_label(sample, "+Inf"), sample.value);
    let _ = writeln!(out, "{}_sum{} {}", sample.name, label_suffix(sample), sample.sum);
    let _ = writeln!(out, "{}_count{} {}", sample.name, label_suffix(sample), sample.value);
}

/// `{key="value"}` for labeled samples, empty otherwise.
fn label_suffix(sample: &SeriesSample) -> String {
    if sample.label_key.is_empty() {
        String::new()
    } else {
        format!("{{{}=\"{}\"}}", sample.label_key, sample.label_value)
    }
}

/// The bucket label set: the family label (if any) plus `le`.
fn bucket_label(sample: &SeriesSample, le: &str) -> String {
    if sample.label_key.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{{{}=\"{}\",le=\"{le}\"}}", sample.label_key, sample.label_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn scalars_render_one_line_per_sample() {
        let snap = MetricsSnapshot {
            series: vec![
                SeriesSample::scalar(names::ENGINE_PSR_RUNS_TOTAL, SampleKind::Counter, 3),
                SeriesSample::scalar(names::WAL_DEGRADED, SampleKind::Gauge, 1),
            ],
        };
        let text = render(&snap);
        assert!(text.contains("# TYPE engine_psr_runs_total counter"), "{text}");
        assert!(text.contains("# HELP engine_psr_runs_total "), "{text}");
        assert!(text.contains("\nengine_psr_runs_total 3\n"), "{text}");
        assert!(text.contains("# TYPE wal_degraded gauge"), "{text}");
        assert!(text.contains("\nwal_degraded 1\n"), "{text}");
    }

    #[test]
    fn histograms_render_cumulative_buckets_sum_and_count() {
        let snap = MetricsSnapshot {
            series: vec![SeriesSample::histogram(
                names::WAL_FSYNC_LATENCY_NS,
                3,
                1 + 1 + 1000,
                &[0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 1],
            )],
        };
        let text = render(&snap);
        assert!(text.contains("wal_fsync_latency_ns_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("wal_fsync_latency_ns_bucket{le=\"1023\"} 3\n"), "{text}");
        assert!(text.contains("wal_fsync_latency_ns_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("wal_fsync_latency_ns_sum 1002\n"), "{text}");
        assert!(text.contains("wal_fsync_latency_ns_count 3\n"), "{text}");
    }

    #[test]
    fn labeled_histograms_carry_both_labels_on_buckets() {
        let snap = MetricsSnapshot {
            series: vec![SeriesSample::histogram(names::SERVER_REQUEST_LATENCY_NS, 1, 1, &[0, 1])
                .labeled("verb", "evaluate")],
        };
        let text = render(&snap);
        assert!(
            text.contains("server_request_latency_ns_bucket{verb=\"evaluate\",le=\"1\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("server_request_latency_ns_count{verb=\"evaluate\"} 1\n"), "{text}");
    }

    #[test]
    fn type_headers_are_emitted_once_per_name() {
        let snap = crate::metrics::snapshot();
        let text = render(&snap);
        let headers = text.matches("# TYPE server_requests_total ").count();
        assert_eq!(headers, 1, "one TYPE line for the whole verb family");
    }
}
