//! The PSR rank-probability algorithm.
//!
//! PSR (Bernecker et al., *Scalable probabilistic similarity ranking in
//! uncertain databases*, TKDE 2010 — reference \[15\] of the paper) computes,
//! for every tuple `tᵢ` of a rank-sorted x-tuple database, the **rank-h
//! probabilities** ρᵢ(h) = Pr[tᵢ appears at rank `h` of a possible world's
//! top-k answer] for h = 1..k, and the **top-k probability**
//! pᵢ = Σ_h ρᵢ(h).  These are exactly the quantities the three query
//! semantics (U-kRanks, PT-k, Global-topk) and the TP quality algorithm
//! consume, which is what enables the computation sharing of Section IV-C.
//!
//! ## How it works
//!
//! Scan tuples in descending rank order.  For the tuple at position `i`
//! belonging to x-tuple `l`, the number of *higher-ranked* tuples that exist
//! in a random possible world is a Poisson-binomial variable: every other
//! x-tuple `j ≠ l` independently contributes a higher-ranked tuple with
//! probability `q_j` = (mass of τ_j's alternatives ranked above position
//! `i`).  Then
//!
//! ```text
//! ρᵢ(h) = eᵢ · Pr[exactly h − 1 of the other x-tuples contribute]
//! ```
//!
//! The Poisson-binomial distribution is the coefficient vector of
//! `Π_j ((1 − q_j) + q_j z)`, truncated to degree k − 1.  Moving from one
//! tuple to the next changes a single factor (the previous tuple's x-tuple
//! gains its mass), so the product is maintained incrementally with one
//! divide + one multiply per step — O(k) each — giving O(nk) overall.
//!
//! Two refinements keep the incremental version numerically safe:
//!
//! * x-tuples whose higher-ranked mass has (essentially) reached 1 are
//!   **saturated**: they contribute a deterministic `+1` to the count and
//!   are tracked by a counter instead of a `(≈0) + (≈1)z` factor that would
//!   make the later division explode.  Once `k` x-tuples are saturated, no
//!   later tuple can enter a top-k answer (Lemma 2 of the paper) and the
//!   scan stops early.
//! * a factor is only divided out of the product when its `q` is at most
//!   `MAX_DIVISOR_Q` (the well-conditioned regime); otherwise the product
//!   is rebuilt from the small list of currently active factors.
//!
//! [`rank_probabilities_exact`] is a slower O(n·m·k) reference
//! implementation that rebuilds the product for every tuple; it exists as a
//! correctness oracle for tests and to quantify the incremental version's
//! numerical error.

use crate::poly::TruncatedPoly;
use pdb_core::{DbError, RankedDatabase, Result};
use serde::{Deserialize, Serialize};

/// Higher-ranked mass at or above this value is treated as certain
/// (saturated); the corresponding tuple probabilities are at most
/// `1 − SATURATION_THRESHOLD` and are rounded to zero.
const SATURATION_THRESHOLD: f64 = 1.0 - 1e-12;

/// A binomial factor `(1 − q) + q·z` may only be divided out of the running
/// product when `q` is at most this value.  The back-substitution used by
/// polynomial division amplifies existing floating-point error by
/// `(q / (1 − q))^j` at degree `j`, so divisions are restricted to the
/// well-conditioned regime `q ≤ 0.5` (amplification ≤ 1); factors with
/// larger `q` are removed by rebuilding the product from the active factor
/// list instead.  The incremental re-evaluation engine ([`crate::delta`])
/// applies the same gate before dividing a mutated x-tuple's factor out of
/// a stored ρ row.
pub const MAX_DIVISOR_Q: f64 = 0.5;

/// Read access to rank-probability information for a fixed `k`.
///
/// The query semantics ([`crate::queries`]) and the TP quality algorithm
/// consume rank probabilities through this trait, so they serve equally
/// from an owned [`RankProbabilities`] matrix and from a zero-copy view
/// into a larger shared matrix ([`crate::batch::QueryRanks`], the prefix
/// views of the batched evaluation engine).
pub trait RankAccess {
    /// The `k` the probabilities describe.
    fn k(&self) -> usize;

    /// Number of tuples covered.
    fn num_tuples(&self) -> usize;

    /// ρᵢ(h): probability that the tuple at rank position `pos` occupies
    /// rank `h` (1-based, `1 ≤ h ≤ k`) of a possible world's top-k answer.
    fn rank_prob(&self, pos: usize, h: usize) -> f64;

    /// pᵢ: probability that the tuple at rank position `pos` appears in
    /// the top-k answer of a possible world.
    fn top_k_prob(&self, pos: usize) -> f64;

    /// All top-k probabilities, indexed by rank position.
    fn top_k_probs(&self) -> &[f64];
}

/// Rank-h and top-k probabilities of every tuple of a database, for a fixed
/// `k`.
///
/// Produced by [`rank_probabilities`] (the PSR algorithm) or by the oracles
/// in [`crate::oracle`]; consumed by the query semantics in
/// [`crate::queries`] and by the TP quality algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankProbabilities {
    k: usize,
    /// Row-major `n × k` matrix: `rho[i * k + (h-1)]` = ρᵢ(h).
    rho: Vec<f64>,
    /// Per-tuple top-k probability pᵢ = Σ_h ρᵢ(h).
    top_k: Vec<f64>,
}

impl RankProbabilities {
    /// Build from a dense ρ matrix (row-major, `n × k`).
    pub(crate) fn from_rho(k: usize, rho: Vec<f64>) -> Self {
        assert!(k > 0 && rho.len().is_multiple_of(k));
        let top_k = rho.chunks_exact(k).map(|row| row.iter().sum()).collect();
        Self { k, rho, top_k }
    }

    /// The `k` this structure was computed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of tuples covered.
    pub fn num_tuples(&self) -> usize {
        self.top_k.len()
    }

    /// ρᵢ(h): probability that the tuple at rank position `pos` occupies
    /// rank `h` (1-based, `1 ≤ h ≤ k`) in a possible world's top-k answer.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range or `h` is not in `1..=k`.
    pub fn rank_prob(&self, pos: usize, h: usize) -> f64 {
        assert!(h >= 1 && h <= self.k, "rank h = {h} out of 1..={}", self.k);
        self.rho[pos * self.k + (h - 1)]
    }

    /// The full ρ row of one tuple (index 0 = rank 1).
    pub fn rank_probs(&self, pos: usize) -> &[f64] {
        &self.rho[pos * self.k..(pos + 1) * self.k]
    }

    /// pᵢ: probability that the tuple at rank position `pos` appears in the
    /// top-k answer of a possible world.
    pub fn top_k_prob(&self, pos: usize) -> f64 {
        self.top_k[pos]
    }

    /// All top-k probabilities, indexed by rank position.
    pub fn top_k_probs(&self) -> &[f64] {
        &self.top_k
    }

    /// Sum of all top-k probabilities.  Equals the expected size of a
    /// possible world's top-k answer: exactly `k` when every possible world
    /// holds at least `k` non-null tuples, smaller otherwise.
    pub fn expected_answer_size(&self) -> f64 {
        self.top_k.iter().sum()
    }

    /// Positions of tuples with a non-zero top-k probability (in rank
    /// order).  The paper calls the count of these `|Z|` in the cleaning
    /// section.
    pub fn nonzero_positions(&self) -> Vec<usize> {
        self.top_k.iter().enumerate().filter(|(_, &p)| p > 0.0).map(|(i, _)| i).collect()
    }

    /// Mutable access to the backing storage for the in-place delta engine
    /// ([`crate::delta`]).  Callers must keep the invariant
    /// `rho.len() == top_k.len() * k` and `top_k[i] == Σ_h rho[i*k + h]`.
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<f64>, &mut Vec<f64>) {
        (&mut self.rho, &mut self.top_k)
    }

    /// The rank probabilities for a *smaller* `k`, extracted from this
    /// matrix without re-running PSR.
    ///
    /// This is the prefix property the batched evaluation engine
    /// ([`crate::batch`]) builds on: ρᵢ(h) is the degree-(h−1) coefficient
    /// of a generating-function product, and every [`TruncatedPoly`]
    /// operation (multiply, divide, rebuild) computes coefficient `j` from
    /// coefficients `≤ j` only, while the saturation and division gates
    /// depend on factor masses, never on `k`.  A PSR run at `k_max`
    /// therefore contains the run at every `k ≤ k_max` bit for bit: its
    /// first `k` columns *are* that run's ρ matrix (positions past a
    /// smaller `k`'s Lemma-2 early stop carry ≥ `k` saturated x-tuples, so
    /// their first `k` entries are identically zero), and the prefix
    /// top-k probability is the same left-to-right partial sum the smaller
    /// run would form.  `prefix_equivalence` in the tests and the
    /// `batch_equivalence` suite pin this against independent runs.
    ///
    /// Returns an error when `k` is zero or exceeds the `k` this matrix
    /// was computed for.
    pub fn prefix(&self, k: usize) -> Result<RankProbabilities> {
        if k == 0 || k > self.k {
            return Err(DbError::invalid_parameter(format!(
                "prefix k = {k} must lie in 1..={}",
                self.k
            )));
        }
        if k == self.k {
            return Ok(self.clone());
        }
        let mut rho = Vec::with_capacity(self.top_k.len() * k);
        for row in self.rho.chunks_exact(self.k) {
            rho.extend_from_slice(&row[..k]);
        }
        Ok(RankProbabilities::from_rho(k, rho))
    }
}

impl RankAccess for RankProbabilities {
    fn k(&self) -> usize {
        RankProbabilities::k(self)
    }

    fn num_tuples(&self) -> usize {
        RankProbabilities::num_tuples(self)
    }

    fn rank_prob(&self, pos: usize, h: usize) -> f64 {
        RankProbabilities::rank_prob(self, pos, h)
    }

    fn top_k_prob(&self, pos: usize) -> f64 {
        RankProbabilities::top_k_prob(self, pos)
    }

    fn top_k_probs(&self) -> &[f64] {
        RankProbabilities::top_k_probs(self)
    }
}

/// Validate a top-k parameter against a database.
fn validate_k(db: &RankedDatabase, k: usize) -> Result<()> {
    if k == 0 {
        return Err(DbError::invalid_parameter("k must be at least 1"));
    }
    if db.is_empty() {
        return Err(DbError::EmptyDatabase);
    }
    Ok(())
}

/// Minimum number of pending ρ-row coefficients (`rows × k`) before the
/// parallel path spreads incremental-PSR row finalization across threads.
/// Each row costs only O(k), so the volume must comfortably amortize the
/// per-call thread spawn/join overhead of the (pool-less) rayon stand-in.
#[cfg(feature = "parallel")]
const PARALLEL_ROW_THRESHOLD: usize = 1 << 16;

/// Threading gate for the exact reference: each of its rows costs O(m·k),
/// so far fewer coefficients are needed before threads pay off.
#[cfg(feature = "parallel")]
const PARALLEL_EXACT_THRESHOLD: usize = 4096;

/// How one pending row obtains its "other x-tuples" polynomial.
#[derive(Clone)]
enum RowOthers {
    /// Snapshot of the running product; divide out the tuple's own factor
    /// (`divide_q > 0`) or use it as-is (`divide_q == 0`).
    Snapshot { poly: TruncatedPoly, divide_q: f64 },
    /// Polynomial already rebuilt from the active-factor list during the
    /// planning scan (the rare ill-conditioned `q > MAX_DIVISOR_Q` case).
    Ready(TruncatedPoly),
}

/// One tuple's pending ρ-row computation, produced by [`scan_rows`].
///
/// Finalizing a task ([`compute_row_into`]) is a pure function of the task, so
/// tasks can be finalized sequentially or in parallel with bit-for-bit
/// identical results.
#[derive(Clone)]
pub(crate) struct RowTask {
    /// Rank position of the tuple (row index into ρ).
    pub(crate) pos: usize,
    /// The tuple's existential probability eᵢ.
    prob: f64,
    /// Number of saturated x-tuples above this position (deterministic
    /// contribution to the higher-ranked count).
    saturated: usize,
    others: RowOthers,
}

/// Sequential scan of the incremental PSR algorithm.
///
/// Maintains the running generating-function product (advance = one
/// divide + one multiply per tuple, with saturation tracking and rare
/// rebuilds) and hands each tuple's pending ρ row to `sink` as a
/// [`RowTask`]. A streaming sink that finalizes each task immediately
/// (the sequential path) keeps the one-pass O(k) working state — each
/// snapshot is transient, exactly like the per-row clone of the one-pass
/// formulation; a collecting sink (the parallel path) trades O(rows·k)
/// snapshot memory for threadable row finalization.
fn scan_rows(db: &RankedDatabase, k: usize, sink: impl FnMut(RowTask)) -> Result<()> {
    scan_rows_filtered(db, k, db.len().saturating_sub(1), |_| true, sink)
}

/// [`scan_rows`] restricted to a window: the scan stops after planning
/// position `stop_after`, and a row snapshot (an O(k) polynomial clone) is
/// only taken for positions accepted by `want`.  The running product is
/// still advanced through every position, so accepted rows are planned with
/// exactly the state the unrestricted scan would use — results are
/// bit-for-bit identical to the corresponding rows of
/// [`rank_probabilities_sequential`].
///
/// The incremental re-evaluation engine ([`crate::delta`]) uses this to
/// rebuild only the (typically few) rows whose mutated factor is too
/// ill-conditioned to divide out of the stored ρ row.
pub(crate) fn scan_rows_filtered(
    db: &RankedDatabase,
    k: usize,
    stop_after: usize,
    mut want: impl FnMut(usize) -> bool,
    mut sink: impl FnMut(RowTask),
) -> Result<()> {
    validate_k(db, k)?;
    let n = db.len();
    let m = db.num_x_tuples();

    // q[l]: existential mass of x-tuple l's alternatives ranked strictly
    // higher than the tuple currently being processed.
    let mut q = vec![0.0; m];
    let mut is_saturated = vec![false; m];
    let mut saturated_count = 0usize;
    // x-tuples whose factor is currently part of `poly` (0 < q < saturated);
    // kept as a compact list so rebuilds cost O(|active|·k) instead of
    // O(m·k).  Saturated entries are pruned lazily at the next rebuild.
    let mut active: Vec<usize> = Vec::new();
    // Product of ((1 − q_l) + q_l z) over unsaturated x-tuples with q_l > 0.
    let mut poly = TruncatedPoly::one(k);

    fn rebuild(
        k: usize,
        q: &[f64],
        is_saturated: &[bool],
        active: &mut Vec<usize>,
        skip: Option<usize>,
    ) -> TruncatedPoly {
        active.retain(|&l| !is_saturated[l] && q[l] > 0.0);
        let mut p = TruncatedPoly::one(k);
        for &l in active.iter() {
            if Some(l) != skip {
                p.multiply_binomial(q[l]);
            }
        }
        p
    }

    for i in 0..n {
        if i > stop_after {
            break;
        }
        if i > 0 {
            // Advance: the previous tuple is now "higher-ranked"; its
            // x-tuple's factor gains the previous tuple's mass.
            let prev = db.tuple(i - 1);
            let pl = prev.x_index;
            let old_q = q[pl];
            let new_q = (old_q + prev.prob).min(1.0);
            q[pl] = new_q;
            if !is_saturated[pl] {
                let becomes_saturated = new_q >= SATURATION_THRESHOLD;
                // pdb-analyze: allow(float-eq): q starts at exactly 0.0 and only this pass writes it, so the first-activation test is exact by construction
                if old_q == 0.0 && new_q > 0.0 && !becomes_saturated {
                    active.push(pl);
                }
                let safe_divide = old_q <= MAX_DIVISOR_Q;
                if safe_divide {
                    if old_q > 0.0 {
                        poly.divide_binomial(old_q);
                        poly.clamp_non_negative();
                    }
                    if becomes_saturated {
                        is_saturated[pl] = true;
                        saturated_count += 1;
                    } else if new_q > 0.0 {
                        poly.multiply_binomial(new_q);
                    }
                } else {
                    if becomes_saturated {
                        is_saturated[pl] = true;
                        saturated_count += 1;
                    }
                    poly = rebuild(k, &q, &is_saturated, &mut active, None);
                }
            }
        }

        // Lemma 2: once k x-tuples certainly place a tuple above position i,
        // no tuple from position i onwards can reach the top-k.
        if saturated_count >= k {
            break;
        }

        if !want(i) {
            continue;
        }
        let t = db.tuple(i);
        let l = t.x_index;
        if is_saturated[l] {
            // The tuple's own siblings already occupy ~all of the x-tuple's
            // mass above it, so eᵢ ≤ 1 − SATURATION_THRESHOLD ≈ 0.
            continue;
        }
        let ql = q[l];
        let others = if ql <= MAX_DIVISOR_Q {
            RowOthers::Snapshot { poly: poly.clone(), divide_q: ql }
        } else {
            RowOthers::Ready(rebuild(k, &q, &is_saturated, &mut active, Some(l)))
        };
        sink(RowTask { pos: i, prob: t.prob, saturated: saturated_count, others });
    }

    Ok(())
}

/// Finalize one row: ρᵢ(h) = eᵢ · Pr[exactly h−1 higher-ranked tuples
/// exist], where the saturated x-tuples contribute a deterministic
/// `task.saturated`. Pure per task.
pub(crate) fn compute_row_into(task: RowTask, k: usize, row: &mut [f64]) {
    let others = match task.others {
        RowOthers::Ready(poly) => poly,
        RowOthers::Snapshot { mut poly, divide_q } => {
            if divide_q > 0.0 {
                poly.divide_binomial(divide_q);
                poly.clamp_non_negative();
            }
            poly
        }
    };
    for h in 1..=k {
        let needed = h - 1;
        if needed >= task.saturated {
            row[h - 1] = task.prob * others.coeff(needed - task.saturated);
        }
    }
}

/// Compute rank-h and top-k probabilities with the incremental PSR
/// algorithm in O(n·k) time (plus rare polynomial rebuilds).
///
/// With the `parallel` feature (on by default) row finalization is spread
/// across threads ([`rank_probabilities_parallel`]); the result is
/// bit-for-bit identical to [`rank_probabilities_sequential`] because each
/// row is a pure function of its planning-scan snapshot.
pub fn rank_probabilities(db: &RankedDatabase, k: usize) -> Result<RankProbabilities> {
    pdb_obs::metrics::ENGINE_PSR_RUNS_TOTAL.inc();
    #[cfg(feature = "parallel")]
    {
        rank_probabilities_parallel(db, k)
    }
    #[cfg(not(feature = "parallel"))]
    {
        rank_probabilities_sequential(db, k)
    }
}

/// The strictly sequential PSR path (always available; the `parallel`
/// feature's reference for equivalence testing).
///
/// Streams each row out of the scan as soon as it is planned, so the
/// working state beyond the ρ matrix itself stays O(k): one transient
/// snapshot per row, exactly like the one-pass formulation.
pub fn rank_probabilities_sequential(db: &RankedDatabase, k: usize) -> Result<RankProbabilities> {
    let mut rho = vec![0.0; db.len() * k];
    scan_rows(db, k, |task| {
        let pos = task.pos;
        compute_row_into(task, k, &mut rho[pos * k..(pos + 1) * k]);
    })?;
    Ok(RankProbabilities::from_rho(k, rho))
}

/// PSR with data-parallel row finalization.
///
/// The scan stays sequential (the generating-function product is a
/// running state), but each pending row is then finalized independently.
/// Below `PARALLEL_ROW_THRESHOLD` pending coefficients this defers to
/// the streaming sequential path (same O(k) working state, no thread
/// overhead); above it, the scan collects its row tasks — O(rows·k)
/// snapshot memory — and finalizes them across threads. Either way the
/// arithmetic per row is identical, so results match the sequential path
/// bit for bit.
#[cfg(feature = "parallel")]
pub fn rank_probabilities_parallel(db: &RankedDatabase, k: usize) -> Result<RankProbabilities> {
    use rayon::prelude::*;

    // Collecting row tasks only pays off when threads exist to finalize
    // them; on a single-core host the streaming path is strictly better
    // (same arithmetic, no snapshot buffer).
    let single_core = std::thread::available_parallelism().map(|c| c.get() <= 1).unwrap_or(false);
    if single_core || db.len() * k < PARALLEL_ROW_THRESHOLD {
        return rank_probabilities_sequential(db, k);
    }
    let mut tasks = Vec::with_capacity(db.len());
    scan_rows(db, k, |task| tasks.push(task))?;
    let mut rho = vec![0.0; db.len() * k];
    let rows: Vec<(usize, Vec<f64>)> = tasks
        .par_iter()
        .map(|t| {
            let mut row = vec![0.0; k];
            compute_row_into(t.clone(), k, &mut row);
            (t.pos, row)
        })
        .collect();
    for (pos, row) in rows {
        rho[pos * k..(pos + 1) * k].copy_from_slice(&row);
    }
    Ok(RankProbabilities::from_rho(k, rho))
}

/// One tuple's ρ row for the exact reference algorithm: rebuild the
/// generating-function product from scratch using only the mass ranked
/// strictly above `pos`. Pure per tuple, so rows can be computed in any
/// order or in parallel.
pub(crate) fn exact_row(db: &RankedDatabase, k: usize, pos: usize) -> Vec<f64> {
    let t = db.tuple(pos);
    let mut poly = TruncatedPoly::one(k);
    for (j, info) in db.x_tuples().enumerate() {
        if j == t.x_index {
            continue;
        }
        // Accumulate the x-tuple's mass above `pos` with the same
        // (q + e).min(1.0) fold the incremental scan applies, so the two
        // algorithms see identical factor values.
        let mut qj = 0.0;
        for &member in &info.members {
            if member >= pos {
                break;
            }
            qj = (qj + db.tuple(member).prob).min(1.0);
        }
        if qj > 0.0 {
            poly.multiply_binomial(qj);
        }
    }
    (1..=k).map(|h| t.prob * poly.coeff(h - 1)).collect()
}

/// Reference implementation of PSR that rebuilds the generating-function
/// product for every tuple: O(n·m·k) time, no divisions, no saturation
/// approximation.  Used as a numerical oracle in tests and available to
/// callers who prefer robustness over speed on small inputs.  Rows are
/// independent, so the `parallel` feature computes them across threads
/// (bit-for-bit identical to the sequential order).
pub fn rank_probabilities_exact(db: &RankedDatabase, k: usize) -> Result<RankProbabilities> {
    validate_k(db, k)?;
    let n = db.len();
    let positions: Vec<usize> = (0..n).collect();

    #[cfg(feature = "parallel")]
    let rows: Vec<Vec<f64>> = if n * k >= PARALLEL_EXACT_THRESHOLD {
        use rayon::prelude::*;
        positions.par_iter().map(|&i| exact_row(db, k, i)).collect()
    } else {
        positions.iter().map(|&i| exact_row(db, k, i)).collect()
    };
    #[cfg(not(feature = "parallel"))]
    let rows: Vec<Vec<f64>> = positions.iter().map(|&i| exact_row(db, k, i)).collect();

    let mut rho = Vec::with_capacity(n * k);
    for row in rows {
        rho.extend_from_slice(&row);
    }
    Ok(RankProbabilities::from_rho(k, rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    /// Brute-force ρ via possible-world enumeration.
    fn rho_by_enumeration(db: &RankedDatabase, k: usize) -> Vec<f64> {
        let mut rho = vec![0.0; db.len() * k];
        for w in pdb_core::world::worlds(db).unwrap() {
            for (rank0, &pos) in w.top_k(k).iter().enumerate() {
                rho[pos * k + rank0] += w.prob;
            }
        }
        rho
    }

    fn assert_matrix_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "entry {i}: {x} vs {y}");
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        let db = udb1();
        assert!(rank_probabilities(&db, 0).is_err());
        assert!(rank_probabilities_exact(&db, 0).is_err());
    }

    #[test]
    fn matches_enumeration_on_udb1() {
        let db = udb1();
        for k in 1..=5 {
            let expected = rho_by_enumeration(&db, k);
            let psr = rank_probabilities(&db, k).unwrap();
            let exact = rank_probabilities_exact(&db, k).unwrap();
            assert_matrix_close(&psr.rho, &expected, 1e-10);
            assert_matrix_close(&exact.rho, &expected, 1e-10);
        }
    }

    #[test]
    fn top_two_probabilities_match_paper_answer() {
        // The paper: for k = 2 and threshold 0.4, the PT-2 answer on udb1 is
        // {t1 (32°), t2 (30°), t5 (27°)}.
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        let pos_of = |score: f64| db.tuples().position(|t| t.score == score).unwrap();
        assert!(rp.top_k_prob(pos_of(32.0)) >= 0.4);
        assert!(rp.top_k_prob(pos_of(30.0)) >= 0.4);
        assert!(rp.top_k_prob(pos_of(27.0)) >= 0.4);
        assert!(rp.top_k_prob(pos_of(26.0)) < 0.4);
        assert!(rp.top_k_prob(pos_of(21.0)) < 0.4);
    }

    #[test]
    fn handles_null_mass() {
        // x-tuples with mass < 1 (implicit null alternative).
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)],
            vec![(9.0, 0.4), (8.0, 0.2)],
            vec![(7.0, 1.0)],
        ])
        .unwrap();
        for k in 1..=3 {
            let expected = rho_by_enumeration(&db, k);
            let rp = rank_probabilities(&db, k).unwrap();
            assert_matrix_close(&rp.rho, &expected, 1e-10);
        }
    }

    #[test]
    fn certain_chain_saturates_and_terminates_early() {
        // Ten certain tuples followed by an uncertain one: with k = 3 the
        // uncertain tuple (and the tail of the certain chain) must have
        // probability zero.
        let mut x = vec![vec![(100.0, 1.0)]];
        for i in 1..10 {
            x.push(vec![(100.0 - i as f64, 1.0)]);
        }
        x.push(vec![(1.0, 0.7)]);
        let db = RankedDatabase::from_scored_x_tuples(&x).unwrap();
        let rp = rank_probabilities(&db, 3).unwrap();
        let expected = rho_by_enumeration(&db, 3);
        assert_matrix_close(&rp.rho, &expected, 1e-10);
        assert_eq!(rp.top_k_prob(db.len() - 1), 0.0);
        assert_eq!(rp.nonzero_positions(), vec![0, 1, 2]);
    }

    #[test]
    fn expected_answer_size_equals_k_with_full_mass() {
        let db = udb1();
        for k in 1..=4 {
            let rp = rank_probabilities(&db, k).unwrap();
            assert!((rp.expected_answer_size() - k as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn expected_answer_size_below_k_with_null_mass() {
        let db =
            RankedDatabase::from_scored_x_tuples(&[vec![(10.0, 0.5)], vec![(9.0, 0.5)]]).unwrap();
        let rp = rank_probabilities(&db, 2).unwrap();
        assert!(rp.expected_answer_size() < 2.0);
        // Expected size = E[#existing] = 0.5 + 0.5 = 1.0.
        assert!((rp.expected_answer_size() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_probability_rows_are_distributions() {
        let db = udb1();
        let rp = rank_probabilities(&db, 3).unwrap();
        for pos in 0..db.len() {
            let row_sum: f64 = rp.rank_probs(pos).iter().sum();
            assert!((row_sum - rp.top_k_prob(pos)).abs() < 1e-12);
            assert!(rp.rank_probs(pos).iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
        assert_eq!(rp.k(), 3);
        assert_eq!(rp.num_tuples(), 7);
        assert!((rp.rank_prob(0, 1) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn prefix_equivalence_matches_independent_runs() {
        let db = udb1();
        let master = rank_probabilities(&db, 5).unwrap();
        for k in 1..=5 {
            let independent = rank_probabilities(&db, k).unwrap();
            let prefix = master.prefix(k).unwrap();
            // Bit-for-bit: every poly op computes coefficient j from
            // coefficients ≤ j only (see `prefix`'s docs).
            assert_eq!(prefix, independent, "k = {k}");
        }
        assert!(master.prefix(0).is_err());
        assert!(master.prefix(6).is_err());
    }

    #[test]
    fn prefix_equivalence_across_early_termination() {
        // Ten certain tuples followed by an uncertain one: small-k runs
        // stop early (Lemma 2) while the k_max run scans further; the
        // prefix must still agree because post-stop rows are zero in the
        // first k columns.
        let mut x = vec![vec![(100.0, 1.0)]];
        for i in 1..10 {
            x.push(vec![(100.0 - i as f64, 1.0)]);
        }
        x.push(vec![(1.0, 0.7)]);
        let db = RankedDatabase::from_scored_x_tuples(&x).unwrap();
        let master = rank_probabilities(&db, 11).unwrap();
        for k in [1, 2, 3, 5, 10] {
            let independent = rank_probabilities(&db, k).unwrap();
            assert_eq!(master.prefix(k).unwrap(), independent, "k = {k}");
        }
    }

    #[test]
    fn incremental_matches_exact_on_adversarial_probabilities() {
        // Many near-certain tuples force the saturation / rebuild paths.
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(100.0, 0.999_999_9)],
            vec![(99.0, 0.999_999)],
            vec![(98.0, 1.0)],
            vec![(97.0, 0.5), (96.0, 0.499_999_9)],
            vec![(95.0, 0.3), (94.0, 0.7)],
            vec![(93.0, 0.001)],
            vec![(92.0, 0.000_001)],
            vec![(91.0, 0.9), (90.0, 0.1)],
        ])
        .unwrap();
        for k in 1..=6 {
            let fast = rank_probabilities(&db, k).unwrap();
            let exact = rank_probabilities_exact(&db, k).unwrap();
            assert_matrix_close(&fast.rho, &exact.rho, 1e-8);
        }
    }

    #[test]
    fn large_random_database_matches_exact() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut x_tuples = Vec::new();
        for _ in 0..200 {
            let alts = rng.gen_range(1..=4);
            let mut remaining = 1.0_f64;
            let mut v = Vec::new();
            for a in 0..alts {
                let p = if a == alts - 1 {
                    remaining * rng.gen_range(0.5..1.0)
                } else {
                    remaining * rng.gen_range(0.1..0.7)
                };
                remaining -= p;
                v.push((rng.gen_range(0.0..10_000.0), p));
            }
            x_tuples.push(v);
        }
        let db = RankedDatabase::from_scored_x_tuples(&x_tuples).unwrap();
        for &k in &[1, 5, 20] {
            let fast = rank_probabilities(&db, k).unwrap();
            let exact = rank_probabilities_exact(&db, k).unwrap();
            assert_matrix_close(&fast.rho, &exact.rho, 1e-9);
        }
    }
}
