//! Batched multi-query shared evaluation.
//!
//! A serving-scale deployment answers many registered top-k queries —
//! different `k`, different semantics, different thresholds — over the
//! *same* ranked database.  Evaluating each query independently costs one
//! full PSR run per query, O(Σᵢ n·kᵢ) in total.  But the rank-probability
//! matrix has a **prefix structure** (see
//! [`RankProbabilities::prefix`]): a single PSR run at
//! `k_max = maxᵢ kᵢ` contains the run at every smaller `k` bit for bit,
//! so one O(n·k_max) scan serves the whole batch:
//!
//! ```text
//! independent:  Σᵢ n·kᵢ   polynomial steps  (Q full PSR runs)
//! batched:      n·k_max   polynomial steps  + one O(n·k_max) prefix-sum pass
//! ```
//!
//! The per-query *snapshots* are deliberately cheap: a query at `kᵢ`
//! needs its tuples' rank-h probabilities (columns `1..=kᵢ` of the master
//! matrix, read in place — no copy) and its top-kᵢ probability vector
//! (the running prefix sum of each master row, cut at `kᵢ`).  One pass
//! over the master emits every registered query's top-k vector at once,
//! so the batch's total extra work is a single scan of the matrix it
//! already computed — materializing per-query ρ copies would cost more
//! than the shared PSR run itself.  [`QueryRanks`] is that zero-copy
//! view; the query semantics and the TP quality algorithm accept it
//! through the [`RankAccess`] trait.
//!
//! [`BatchPlan`] performs the planning step (deduplicate the `kᵢ`, pick
//! `k_max`, map each query to its snapshot); [`BatchEvaluation`] executes
//! it.  Single-x-tuple mutations (probe outcomes) are carried through the
//! incremental delta engine **once**, on the master matrix, and every
//! per-query snapshot is re-derived from the patched master — one delta
//! pass instead of one per registered query
//! ([`BatchEvaluation::apply_collapse_in_place`]).
//!
//! The quality layer on top (per-query PWS-quality, aggregate-improvement
//! cleaning) lives in `pdb-quality`'s `batch` module, which wraps this
//! type.

use crate::delta::{apply_mutation_in_place, DeltaStats, XTupleMutation};
use crate::psr::{rank_probabilities, RankAccess, RankProbabilities};
use crate::queries::{QueryAnswer, TopKQuery};
use pdb_core::{DbError, RankedDatabase, Result};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Minimum `rows × queries` volume before [`BatchEvaluation::answers`]
/// evaluates the registered queries across threads (the pool-less rayon
/// stand-in pays a thread spawn/join per call, so small batches run
/// inline).
#[cfg(feature = "parallel")]
const PARALLEL_ANSWER_THRESHOLD: usize = 1 << 16;

/// How a set of registered queries maps onto one shared PSR run: the
/// planning step of the batch engine.
///
/// The plan is a pure function of the query list (not of any database):
/// it picks `k_max`, deduplicates the smaller `kᵢ` into the snapshot list,
/// and records which snapshot serves each query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPlan {
    k_max: usize,
    /// Distinct `kᵢ < k_max` needing a prefix snapshot, ascending.
    snapshot_ks: Vec<usize>,
    /// Per query: index into `snapshot_ks`, or `None` for queries served
    /// directly from the master (`kᵢ = k_max`) matrix.
    snapshot_of: Vec<Option<usize>>,
}

impl BatchPlan {
    /// Plan a query set.  Fails on an empty set or a query with `k = 0`.
    pub fn plan(queries: &[TopKQuery]) -> Result<Self> {
        if queries.is_empty() {
            return Err(DbError::invalid_parameter("a batch needs at least one registered query"));
        }
        for (i, q) in queries.iter().enumerate() {
            if q.k() == 0 {
                return Err(DbError::invalid_parameter(format!(
                    "registered query {i} has k = 0; k must be at least 1"
                )));
            }
        }
        // Emptiness already errored above, so the fold's 0 identity is
        // never the final answer; it just keeps this expression total.
        let k_max = queries.iter().map(|q| q.k()).fold(0, usize::max);
        let mut snapshot_ks: Vec<usize> =
            queries.iter().map(|q| q.k()).filter(|&k| k < k_max).collect();
        snapshot_ks.sort_unstable();
        snapshot_ks.dedup();
        let snapshot_of = queries
            .iter()
            .map(|q| {
                if q.k() == k_max {
                    None
                } else {
                    // pdb-analyze: allow(panic-path): snapshot_ks was built from these exact k values two lines up
                    Some(snapshot_ks.binary_search(&q.k()).expect("k was collected above"))
                }
            })
            .collect();
        Ok(Self { k_max, snapshot_ks, snapshot_of })
    }

    /// The `k` the one shared PSR run uses.
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// Number of registered queries covered by the plan.
    pub fn num_queries(&self) -> usize {
        self.snapshot_of.len()
    }

    /// The distinct `kᵢ < k_max` that get a prefix snapshot (ascending).
    pub fn snapshot_ks(&self) -> &[usize] {
        &self.snapshot_ks
    }

    /// Per-tuple polynomial steps of one shared run (`k_max`) vs `Q`
    /// independent runs (`Σᵢ kᵢ`): the amortization factor the batch
    /// engine approaches, ignoring the (much cheaper) prefix-sum pass.
    pub fn amortization(&self, queries: &[TopKQuery]) -> f64 {
        let independent: usize = queries.iter().map(|q| q.k()).sum();
        independent as f64 / self.k_max as f64
    }
}

/// Zero-copy view of one registered query's rank probabilities inside the
/// shared master matrix.
///
/// Rank-h probabilities are read from the master's rows in place (columns
/// `1..=k` are exactly the smaller run's matrix — the prefix property);
/// only the per-tuple top-k vector is materialized, once per distinct `k`,
/// by the batch's single prefix-sum pass.  Implements [`RankAccess`], so
/// the query semantics and quality algorithms consume it exactly like an
/// owned matrix.
#[derive(Debug, Clone, Copy)]
pub struct QueryRanks<'m> {
    master: &'m RankProbabilities,
    k: usize,
    top_k: &'m [f64],
}

impl RankAccess for QueryRanks<'_> {
    fn k(&self) -> usize {
        self.k
    }

    fn num_tuples(&self) -> usize {
        self.top_k.len()
    }

    fn rank_prob(&self, pos: usize, h: usize) -> f64 {
        assert!(h >= 1 && h <= self.k, "rank h = {h} out of 1..={}", self.k);
        self.master.rank_prob(pos, h)
    }

    fn top_k_prob(&self, pos: usize) -> f64 {
        self.top_k[pos]
    }

    fn top_k_probs(&self) -> &[f64] {
        self.top_k
    }
}

/// One PSR run at `k_max` serving a whole set of registered queries.
///
/// See the [module docs](self) for the amortization model.  The evaluation
/// owns (or borrows) the database;
/// [`apply_collapse_in_place`](BatchEvaluation::apply_collapse_in_place)
/// advances it across probe outcomes with a single delta pass shared by
/// every query.
#[derive(Debug, Clone)]
pub struct BatchEvaluation<'a> {
    db: Cow<'a, RankedDatabase>,
    queries: Vec<TopKQuery>,
    plan: BatchPlan,
    /// The shared matrix, computed at `plan.k_max()`.
    master: RankProbabilities,
    /// Per-snapshot top-k probability vectors, parallel to
    /// `plan.snapshot_ks()`; each is the prefix sum of the master's rows
    /// cut at that snapshot's `k`.
    snapshot_top_k: Vec<Vec<f64>>,
}

impl<'a> BatchEvaluation<'a> {
    /// Plan `queries` and run PSR once at `k_max`, borrowing the database.
    pub fn new(db: &'a RankedDatabase, queries: Vec<TopKQuery>) -> Result<Self> {
        let plan = BatchPlan::plan(&queries)?;
        let master = rank_probabilities(db, plan.k_max())?;
        let snapshot_top_k = snapshot_top_ks(&master, plan.snapshot_ks());
        Ok(Self { db: Cow::Borrowed(db), queries, plan, master, snapshot_top_k })
    }

    /// [`new`](Self::new) taking ownership of the database — the form
    /// long-lived serving sessions use, since the evaluation then borrows
    /// nothing.
    pub fn from_owned(
        db: RankedDatabase,
        queries: Vec<TopKQuery>,
    ) -> Result<BatchEvaluation<'static>> {
        let plan = BatchPlan::plan(&queries)?;
        let master = rank_probabilities(&db, plan.k_max())?;
        let snapshot_top_k = snapshot_top_ks(&master, plan.snapshot_ks());
        Ok(BatchEvaluation { db: Cow::Owned(db), queries, plan, master, snapshot_top_k })
    }

    /// The database under evaluation.
    pub fn database(&self) -> &RankedDatabase {
        &self.db
    }

    /// The registered queries, in registration order.
    pub fn queries(&self) -> &[TopKQuery] {
        &self.queries
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// The plan mapping queries onto the shared run.
    pub fn plan(&self) -> &BatchPlan {
        &self.plan
    }

    /// The `k` of the one shared PSR run.
    pub fn k_max(&self) -> usize {
        self.plan.k_max()
    }

    /// The shared `k_max` rank-probability matrix.
    pub fn master(&self) -> &RankProbabilities {
        &self.master
    }

    /// The zero-copy rank-probability view serving registered query `q` —
    /// the master matrix itself for `k_q = k_max`, the shared prefix
    /// snapshot otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a registered query index.
    pub fn ranks(&self, q: usize) -> QueryRanks<'_> {
        assert!(q < self.queries.len(), "query {q} of {}", self.queries.len());
        match self.plan.snapshot_of[q] {
            Some(s) => QueryRanks {
                master: &self.master,
                k: self.plan.snapshot_ks[s],
                top_k: &self.snapshot_top_k[s],
            },
            None => QueryRanks {
                master: &self.master,
                k: self.plan.k_max,
                top_k: self.master.top_k_probs(),
            },
        }
    }

    /// Answer registered query `q` from the shared matrix.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a registered query index (parameter errors,
    /// e.g. an invalid PT-k threshold, are returned as `Err`).
    pub fn answer(&self, q: usize) -> Result<QueryAnswer> {
        self.queries[q].evaluate_with(self.database(), &self.ranks(q))
    }

    /// Answer every registered query, in registration order.  With the
    /// `parallel` feature the per-query selections fan out across threads
    /// once the batch is large enough; answers are identical to the
    /// sequential order either way (each is a pure function of the shared
    /// matrix).
    pub fn answers(&self) -> Result<Vec<QueryAnswer>> {
        #[cfg(feature = "parallel")]
        {
            use rayon::prelude::*;
            if self.master.num_tuples() * self.queries.len() >= PARALLEL_ANSWER_THRESHOLD {
                let ids: Vec<usize> = (0..self.queries.len()).collect();
                return ids.par_iter().map(|&q| self.answer(q)).collect();
            }
        }
        (0..self.queries.len()).map(|q| self.answer(q)).collect()
    }

    /// Apply a single-x-tuple mutation (one observed probe outcome) to the
    /// database and to **every** registered query's rank probabilities.
    ///
    /// The delta engine patches the master matrix once — O(k_max) per
    /// affected row, exactly as for a single query — and the per-query
    /// snapshots are re-derived from the patched master by the one
    /// prefix-sum pass, so the whole batch is updated in one delta pass
    /// instead of one per query.  On `Err` nothing is modified.
    pub fn apply_collapse_in_place(
        &mut self,
        l: usize,
        mutation: &XTupleMutation,
    ) -> Result<DeltaStats> {
        // Rows ranked above the mutated x-tuple's first alternative are
        // untouched by the delta pass *and* keep their positions, so their
        // snapshot entries stay valid; only the suffix is recomputed.
        let untouched = if l < self.db.num_x_tuples() { self.db.x_tuple(l).members[0] } else { 0 };
        let stats = apply_mutation_in_place(self.db.to_mut(), &mut self.master, l, mutation)?;
        refresh_snapshot_top_ks(
            &self.master,
            self.plan.snapshot_ks(),
            untouched,
            &mut self.snapshot_top_k,
        );
        Ok(stats)
    }

    /// Replay a journalled sequence of probe outcomes in order, one delta
    /// pass each, and return the accumulated statistics.
    ///
    /// This is the crash-recovery hook of `pdb-store`: a write-ahead log
    /// replays as O(probes) delta passes on the shared master matrix —
    /// never a PSR rerun per probe.  On `Err` the already-applied prefix
    /// of the sequence remains in place (the evaluation matches the state
    /// just before the failing mutation), so a caller recovering from a
    /// log should discard the evaluation on error.
    pub fn replay_in_place(
        &mut self,
        probes: impl IntoIterator<Item = (usize, XTupleMutation)>,
    ) -> Result<DeltaStats> {
        let mut total = DeltaStats::default();
        for (l, mutation) in probes {
            total.accumulate(&self.apply_collapse_in_place(l, &mutation)?);
        }
        Ok(total)
    }

    /// [`apply_collapse_in_place`](Self::apply_collapse_in_place) on a
    /// copy: the pre-mutation evaluation is untouched (and remains usable
    /// as an oracle); the returned evaluation owns its database.
    pub fn apply_collapse(
        &self,
        l: usize,
        mutation: &XTupleMutation,
    ) -> Result<(BatchEvaluation<'static>, DeltaStats)> {
        let mut next = BatchEvaluation {
            db: Cow::Owned(self.database().clone()),
            queries: self.queries.clone(),
            plan: self.plan.clone(),
            master: self.master.clone(),
            // The untouched-prefix entries are reused by the incremental
            // snapshot refresh, so the clone is live data, not waste.
            snapshot_top_k: self.snapshot_top_k.clone(),
        };
        let stats = next.apply_collapse_in_place(l, mutation)?;
        Ok((next, stats))
    }
}

/// One pass over the master matrix emitting every snapshot's top-k vector:
/// the prefix sum of each row, cut at each distinct snapshot `k`.  Summing
/// left to right reproduces the smaller run's own top-k sum bit for bit
/// (it adds the identical values in the identical order).
fn snapshot_top_ks(master: &RankProbabilities, ks: &[usize]) -> Vec<Vec<f64>> {
    let mut out: Vec<Vec<f64>> = ks.iter().map(|_| Vec::new()).collect();
    refresh_snapshot_top_ks(master, ks, 0, &mut out);
    out
}

/// Recompute the snapshot vectors for positions `start..` only (rows above
/// `start` are known untouched — the delta engine's untouched-prefix
/// guarantee) and resize them to the master's current tuple count.
fn refresh_snapshot_top_ks(
    master: &RankProbabilities,
    ks: &[usize],
    start: usize,
    out: &mut [Vec<f64>],
) {
    let n = master.num_tuples();
    let start = start.min(n);
    for v in out.iter_mut() {
        v.resize(n, 0.0);
    }
    let Some(&k_last) = ks.last() else {
        return;
    };
    // `pos` indexes into every snapshot's output vector at once, so a
    // plain indexed loop is clearer than zipping `ks.len()` iterators.
    #[allow(clippy::needless_range_loop)]
    for pos in start..n {
        let row = &master.rank_probs(pos)[..k_last];
        let mut sum = 0.0;
        let mut s = 0;
        for (h0, &v) in row.iter().enumerate() {
            sum += v;
            while s < ks.len() && ks[s] == h0 + 1 {
                out[s][pos] = sum;
                s += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psr::rank_probabilities_exact;

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    fn mixed_queries() -> Vec<TopKQuery> {
        vec![
            TopKQuery::PTk { k: 2, threshold: 0.4 },
            TopKQuery::UKRanks { k: 1 },
            TopKQuery::GlobalTopk { k: 4 },
            TopKQuery::PTk { k: 4, threshold: 0.1 },
            TopKQuery::UKRanks { k: 3 },
        ]
    }

    fn assert_view_matches(view: &QueryRanks<'_>, rp: &RankProbabilities, tol: f64, what: &str) {
        assert_eq!(view.k(), rp.k(), "{what}");
        assert_eq!(view.num_tuples(), rp.num_tuples(), "{what}");
        for pos in 0..rp.num_tuples() {
            let got = view.top_k_prob(pos);
            let want = rp.top_k_prob(pos);
            assert!((got - want).abs() <= tol, "{what} pos {pos}: top-k {got} vs {want}");
            for h in 1..=rp.k() {
                let got = view.rank_prob(pos, h);
                let want = rp.rank_prob(pos, h);
                assert!((got - want).abs() <= tol, "{what} pos {pos} h {h}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn plan_deduplicates_and_maps_queries() {
        let queries = mixed_queries();
        let plan = BatchPlan::plan(&queries).unwrap();
        assert_eq!(plan.k_max(), 4);
        assert_eq!(plan.num_queries(), 5);
        assert_eq!(plan.snapshot_ks(), &[1, 2, 3]);
        assert!((plan.amortization(&queries) - 14.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = BatchPlan::plan(&mixed_queries()).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: BatchPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan, "via {json}");
    }

    #[test]
    fn plan_rejects_degenerate_inputs() {
        assert!(BatchPlan::plan(&[]).is_err());
        assert!(BatchPlan::plan(&[TopKQuery::UKRanks { k: 0 }]).is_err());
    }

    #[test]
    fn every_query_is_served_from_an_independent_runs_matrix() {
        let db = udb1();
        let queries = mixed_queries();
        let batch = BatchEvaluation::new(&db, queries.clone()).unwrap();
        assert_eq!(batch.num_queries(), 5);
        assert_eq!(batch.k_max(), 4);
        for (q, query) in queries.iter().enumerate() {
            let independent = rank_probabilities(&db, query.k()).unwrap();
            // Bit-for-bit: prefix columns and prefix sums reproduce the
            // independent run exactly.
            assert_view_matches(&batch.ranks(q), &independent, 0.0, &format!("query {q}"));
            let from_batch = batch.answer(q).unwrap();
            let from_scratch = query.evaluate(&db).unwrap();
            assert_eq!(from_batch, from_scratch, "query {q}");
        }
        let answers = batch.answers().unwrap();
        assert_eq!(answers.len(), 5);
        for (q, a) in answers.iter().enumerate() {
            assert_eq!(a, &batch.answer(q).unwrap());
        }
    }

    #[test]
    fn single_query_batch_degenerates_to_one_run() {
        let db = udb1();
        let batch =
            BatchEvaluation::new(&db, vec![TopKQuery::PTk { k: 2, threshold: 0.4 }]).unwrap();
        assert_eq!(batch.plan().snapshot_ks(), &[] as &[usize]);
        assert_eq!(batch.ranks(0).top_k_probs(), batch.master().top_k_probs());
        assert_eq!(batch.answer(0).unwrap().len(), 3); // {t1, t2, t5}
    }

    #[test]
    fn collapse_patches_every_registered_query() {
        let db = udb1();
        let queries = mixed_queries();
        let batch = BatchEvaluation::from_owned(db, queries.clone()).unwrap();
        // Collapse S3 to its 27° reading: the paper's udb1 → udb2 step.
        let (next, stats) = batch
            .apply_collapse(2, &XTupleMutation::CollapseToAlternative { keep_pos: 2 })
            .unwrap();
        assert_eq!(stats.rows_dropped, 1);
        assert_eq!(next.database().len(), 6);
        for (q, query) in queries.iter().enumerate() {
            let oracle = rank_probabilities_exact(next.database(), query.k()).unwrap();
            assert_view_matches(&next.ranks(q), &oracle, 1e-9, &format!("query {q}"));
        }
        // The pre-mutation batch is untouched.
        assert_eq!(batch.database().len(), 7);
    }

    #[test]
    fn in_place_collapse_chains_across_mutations() {
        let db = udb1();
        let mut batch = BatchEvaluation::from_owned(db, mixed_queries()).unwrap();
        batch
            .apply_collapse_in_place(2, &XTupleMutation::CollapseToAlternative { keep_pos: 2 })
            .unwrap();
        batch
            .apply_collapse_in_place(1, &XTupleMutation::Reweight { probs: vec![0.9, 0.1] })
            .unwrap();
        let keep = batch.database().x_tuple(0).members[0];
        batch
            .apply_collapse_in_place(0, &XTupleMutation::CollapseToAlternative { keep_pos: keep })
            .unwrap();
        assert_eq!(batch.database().num_x_tuples(), 4);
        for q in 0..batch.num_queries() {
            let independent = rank_probabilities(batch.database(), batch.queries()[q].k()).unwrap();
            assert_view_matches(&batch.ranks(q), &independent, 1e-8, &format!("query {q}"));
        }
    }

    #[test]
    fn streaming_insert_and_remove_patch_every_registered_query() {
        let db = udb1();
        let mut batch = BatchEvaluation::from_owned(db, mixed_queries()).unwrap();
        // A new sensor arrives (append-only target index = current count),
        // then an old full-mass one departs.
        let arrival = XTupleMutation::Insert {
            key: "S5".into(),
            alternatives: vec![(28.0, 0.5), (23.0, 0.3)],
        };
        batch.apply_collapse_in_place(4, &arrival).unwrap();
        assert_eq!(batch.database().num_x_tuples(), 5);
        assert_eq!(batch.database().len(), 9);
        batch.apply_collapse_in_place(1, &XTupleMutation::Remove).unwrap();
        assert_eq!(batch.database().num_x_tuples(), 4);
        assert_eq!(batch.database().len(), 7);
        for q in 0..batch.num_queries() {
            let independent = rank_probabilities(batch.database(), batch.queries()[q].k()).unwrap();
            assert_view_matches(&batch.ranks(q), &independent, 1e-8, &format!("query {q}"));
        }
    }

    #[test]
    fn failed_collapse_leaves_the_batch_unchanged() {
        let db = udb1();
        let mut batch = BatchEvaluation::new(&db, mixed_queries()).unwrap();
        let before = batch.master().clone();
        // keep_pos 1 is not an alternative of x-tuple 0.
        assert!(batch
            .apply_collapse_in_place(0, &XTupleMutation::CollapseToAlternative { keep_pos: 1 })
            .is_err());
        assert_eq!(batch.master(), &before);
        assert_eq!(batch.database().len(), 7);
    }
}
