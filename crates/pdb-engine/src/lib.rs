//! # pdb-engine — PSR and probabilistic top-k query semantics
//!
//! This crate implements the query-processing substrate of the ICDE 2013
//! paper *"Cleaning Uncertain Data for Top-k Queries"*:
//!
//! * [`psr`] — the PSR rank-probability algorithm (reference \[15\] of the
//!   paper): for every tuple, the probability ρᵢ(h) of occupying rank `h`
//!   and the top-k probability pᵢ, in O(n·k) time.
//! * [`queries`] — the three probabilistic top-k query semantics the paper
//!   studies (U-kRanks, PT-k and Global-topk), all answered from the PSR
//!   output so the same computation can be shared with quality evaluation.
//! * [`delta`] — incremental re-evaluation: carry a completed PSR result
//!   across single-x-tuple mutations (probe outcomes) with one divide + one
//!   multiply per affected row instead of a full O(n·k) rerun.
//! * [`batch`] — batched multi-query shared evaluation: one PSR run at
//!   `k_max` serves a whole set of registered queries through prefix
//!   snapshots, and one delta pass re-patches them all.
//! * [`poly`] — the truncated generating-function polynomials PSR maintains.
//! * [`oracle`] — brute-force possible-world oracles used to validate the
//!   efficient algorithms on small databases.
//!
//! ```
//! use pdb_core::prelude::*;
//! use pdb_engine::prelude::*;
//!
//! let db = pdb_core::examples::udb1().rank_by(&ScoreRanking);
//! let rp = rank_probabilities(&db, 2).unwrap();
//! let answer = pt_k(&db, &rp, 0.4).unwrap();
//! assert_eq!(answer.len(), 3); // {t1, t2, t5} in the paper
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod delta;
pub mod oracle;
pub mod poly;
pub mod psr;
pub mod queries;

pub use batch::{BatchEvaluation, BatchPlan, QueryRanks};
pub use delta::{
    apply_mutation, apply_mutation_in_place, DeltaEvaluation, DeltaStats, XTupleMutation,
};
#[cfg(feature = "parallel")]
pub use psr::rank_probabilities_parallel;
pub use psr::{
    rank_probabilities, rank_probabilities_exact, rank_probabilities_sequential, RankAccess,
    RankProbabilities,
};
pub use queries::{
    global_topk, pt_k, u_k_ranks, AnswerTuple, QueryAnswer, TopKQuery, TupleSetAnswer,
    UKRanksAnswer,
};

/// Convenience prelude bringing the most frequently used items into scope.
pub mod prelude {
    pub use crate::batch::{BatchEvaluation, BatchPlan, QueryRanks};
    pub use crate::delta::{DeltaEvaluation, DeltaStats, XTupleMutation};
    pub use crate::psr::{
        rank_probabilities, rank_probabilities_exact, RankAccess, RankProbabilities,
    };
    pub use crate::queries::{
        global_topk, pt_k, u_k_ranks, AnswerTuple, QueryAnswer, TopKQuery, TupleSetAnswer,
        UKRanksAnswer,
    };
}
