//! Truncated generating-function polynomials.
//!
//! The PSR algorithm represents the distribution of "how many higher-ranked
//! tuples exist" as a product of per-x-tuple generating functions
//! `(1 − q) + q·z` (each x-tuple contributes at most one higher-ranked
//! tuple).  Because a top-k query never needs more than the first `k`
//! coefficients, all polynomials here are truncated to a fixed degree.
//!
//! [`TruncatedPoly`] supports the three operations PSR needs:
//!
//! * multiply by a binomial factor `(1 − q) + q·z` — *adding* an x-tuple;
//! * divide by such a factor — *removing* an x-tuple (the inverse of the
//!   multiplication, exact over the truncated coefficients);
//! * read coefficients.
//!
//! Division is numerically delicate when `1 − q` is tiny; callers are
//! expected to keep near-saturated factors (q ≈ 1) out of the polynomial
//! (see `psr::SaturationTracker`) and to rebuild from scratch when a divisor
//! falls below [`DIVISION_REBUILD_THRESHOLD`].

/// Divisors whose constant term `1 − q` falls below this threshold should
/// not be divided out; the caller rebuilds the polynomial instead.  The
/// back-substitution used by [`TruncatedPoly::divide_binomial`] loses
/// roughly `q / (1 − q)` digits per coefficient, so keeping the divisor's
/// constant term above 1% bounds the amplification at ~100× machine
/// epsilon.
pub const DIVISION_REBUILD_THRESHOLD: f64 = 1e-2;

/// A polynomial truncated to a fixed number of coefficients (degree
/// `len − 1`), with non-negative coefficients representing probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedPoly {
    coeffs: Vec<f64>,
}

impl TruncatedPoly {
    /// The constant polynomial `1`, truncated to `len` coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn one(len: usize) -> Self {
        assert!(len > 0, "a truncated polynomial needs at least one coefficient");
        let mut coeffs = vec![0.0; len];
        coeffs[0] = 1.0;
        Self { coeffs }
    }

    /// Construct from raw coefficients.
    pub fn from_coeffs(coeffs: Vec<f64>) -> Self {
        assert!(!coeffs.is_empty(), "a truncated polynomial needs at least one coefficient");
        Self { coeffs }
    }

    /// Number of stored coefficients (`degree + 1`).
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the polynomial stores no coefficients (never true).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient of `z^j`, or 0 beyond the truncation degree.
    pub fn coeff(&self, j: usize) -> f64 {
        self.coeffs.get(j).copied().unwrap_or(0.0)
    }

    /// All stored coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Multiply in place by the binomial `(1 − q) + q·z`, truncating to the
    /// stored degree.
    pub fn multiply_binomial(&mut self, q: f64) {
        multiply_binomial_in(&mut self.coeffs, q);
    }

    /// Divide in place by the binomial `(1 − q) + q·z`.
    ///
    /// This is the exact inverse of [`multiply_binomial`](Self::multiply_binomial)
    /// over the truncated coefficients: if `B = A * ((1−q) + q·z)` truncated,
    /// then dividing `B` recovers `A` truncated.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `1 − q` is below
    /// [`DIVISION_REBUILD_THRESHOLD`]; callers must handle near-saturated
    /// factors separately.
    pub fn divide_binomial(&mut self, q: f64) {
        divide_binomial_in(&mut self.coeffs, q);
    }

    /// Sum of the first `upto` coefficients (`upto` clamped to the stored
    /// length).  With a probability-generating function this is
    /// `Pr[count < upto]`.
    pub fn prefix_sum(&self, upto: usize) -> f64 {
        self.coeffs.iter().take(upto).sum()
    }

    /// Clamp tiny negative coefficients (floating-point residue from
    /// repeated divide/multiply cycles) back to zero.
    pub fn clamp_non_negative(&mut self) {
        clamp_non_negative_in(&mut self.coeffs);
    }
}

/// [`TruncatedPoly::multiply_binomial`] on a raw coefficient slice, for
/// callers (the incremental delta engine) that patch rows of a larger
/// matrix without wrapping each one in a polynomial.
pub fn multiply_binomial_in(coeffs: &mut [f64], q: f64) {
    debug_assert!((0.0..=1.0 + 1e-9).contains(&q), "q = {q} out of range");
    let a = 1.0 - q;
    for j in (0..coeffs.len()).rev() {
        let from_lower = if j > 0 { coeffs[j - 1] * q } else { 0.0 };
        coeffs[j] = coeffs[j] * a + from_lower;
    }
}

/// [`TruncatedPoly::divide_binomial`] on a raw coefficient slice.
pub fn divide_binomial_in(coeffs: &mut [f64], q: f64) {
    let a = 1.0 - q;
    debug_assert!(
        a >= DIVISION_REBUILD_THRESHOLD,
        "dividing by a near-saturated factor (q = {q}) is numerically unsafe"
    );
    let mut prev = 0.0;
    for c in coeffs.iter_mut() {
        let b = (*c - prev * q) / a;
        *c = b;
        prev = b;
    }
}

/// [`TruncatedPoly::clamp_non_negative`] on a raw coefficient slice.
pub fn clamp_non_negative_in(coeffs: &mut [f64]) {
    for c in coeffs.iter_mut() {
        if *c < 0.0 {
            debug_assert!(*c > -1e-5, "large negative coefficient {c}: numerical blow-up");
            *c = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn one_is_the_multiplicative_identity() {
        let p = TruncatedPoly::one(4);
        assert_eq!(p.coeffs(), &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.coeff(0), 1.0);
        assert_eq!(p.coeff(99), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn zero_length_is_rejected() {
        let _ = TruncatedPoly::one(0);
    }

    #[test]
    fn multiplying_binomials_builds_poisson_binomial() {
        // Two independent events with probabilities 0.3 and 0.5:
        // P[0] = 0.35, P[1] = 0.5, P[2] = 0.15.
        let mut p = TruncatedPoly::one(3);
        p.multiply_binomial(0.3);
        p.multiply_binomial(0.5);
        assert_close(p.coeffs(), &[0.35, 0.5, 0.15]);
    }

    #[test]
    fn truncation_drops_high_coefficients() {
        let mut p = TruncatedPoly::one(2);
        p.multiply_binomial(0.3);
        p.multiply_binomial(0.5);
        // Degree-2 coefficient is discarded.
        assert_close(p.coeffs(), &[0.35, 0.5]);
    }

    #[test]
    fn division_inverts_multiplication() {
        let mut p = TruncatedPoly::one(5);
        for &q in &[0.2, 0.7, 0.01, 0.5] {
            p.multiply_binomial(q);
        }
        let before = p.clone();
        p.multiply_binomial(0.33);
        p.divide_binomial(0.33);
        assert_close(p.coeffs(), before.coeffs());
    }

    #[test]
    fn division_is_exact_even_after_truncation() {
        // Multiply five factors into a degree-2 truncation, then remove one;
        // the result must equal the product of the remaining four.
        let factors = [0.1, 0.4, 0.6, 0.9, 0.25];
        let mut all = TruncatedPoly::one(3);
        for &q in &factors {
            all.multiply_binomial(q);
        }
        all.divide_binomial(0.6);

        let mut expected = TruncatedPoly::one(3);
        for &q in &[0.1, 0.4, 0.9, 0.25] {
            expected.multiply_binomial(q);
        }
        assert_close(all.coeffs(), expected.coeffs());
    }

    #[test]
    fn multiply_by_zero_probability_is_identity() {
        let mut p = TruncatedPoly::from_coeffs(vec![0.2, 0.3, 0.5]);
        let before = p.clone();
        p.multiply_binomial(0.0);
        assert_close(p.coeffs(), before.coeffs());
    }

    #[test]
    fn multiply_by_one_shifts_coefficients() {
        let mut p = TruncatedPoly::from_coeffs(vec![0.2, 0.3, 0.5]);
        p.multiply_binomial(1.0);
        assert_close(p.coeffs(), &[0.0, 0.2, 0.3]);
    }

    #[test]
    fn prefix_sum_counts_low_order_mass() {
        let p = TruncatedPoly::from_coeffs(vec![0.2, 0.3, 0.5]);
        assert!((p.prefix_sum(0) - 0.0).abs() < 1e-12);
        assert!((p.prefix_sum(2) - 0.5).abs() < 1e-12);
        assert!((p.prefix_sum(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_removes_tiny_negative_residue() {
        let mut p = TruncatedPoly::from_coeffs(vec![-1e-15, 0.5]);
        p.clamp_non_negative();
        assert_eq!(p.coeff(0), 0.0);
        assert_eq!(p.coeff(1), 0.5);
    }

    #[test]
    fn coefficients_remain_a_distribution_under_random_ops() {
        // Multiply a batch of factors; coefficients of the untruncated
        // polynomial must sum to 1. Use a truncation long enough to hold all.
        let qs = [0.13, 0.5, 0.77, 0.02, 0.9, 0.33];
        let mut p = TruncatedPoly::one(qs.len() + 1);
        for &q in &qs {
            p.multiply_binomial(q);
        }
        let total: f64 = p.coeffs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(p.coeffs().iter().all(|&c| c >= 0.0));
    }
}
