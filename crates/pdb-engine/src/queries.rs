//! Probabilistic top-k query semantics.
//!
//! The paper (Section III-B) studies the three query semantics that (a)
//! conceptually evaluate a deterministic top-k query in every possible
//! world and (b) can answer from rank-probability information alone:
//!
//! * **U-kRanks** — for every rank h ∈ 1..k, return the tuple most likely to
//!   occupy exactly rank h.
//! * **PT-k** — return every tuple whose top-k probability is at least a
//!   user threshold `T`.
//! * **Global-topk** — return the `k` tuples with the highest top-k
//!   probabilities (ties broken by rank).
//!
//! All three are answered here from rank-probability information (any
//! [`RankAccess`] implementor — an owned
//! [`RankProbabilities`](crate::psr::RankProbabilities) matrix or a
//! zero-copy batch view), which is what allows the query evaluation to
//! share its PSR run with quality computation (Section IV-C) and with
//! other registered queries ([`crate::batch`]).

use crate::psr::{rank_probabilities, RankAccess};
use pdb_core::{DbError, RankedDatabase, Result, TupleId};
use serde::{Deserialize, Serialize};

/// One tuple of a query answer, identified by its rank position in the
/// sorted database, together with the probability that earned it the spot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnswerTuple {
    /// Rank position in the [`RankedDatabase`] (0 = highest-ranked tuple).
    pub position: usize,
    /// Original tuple identifier.
    pub id: TupleId,
    /// The probability that qualified the tuple: a rank-h probability for
    /// U-kRanks, the top-k probability for PT-k and Global-topk.
    pub prob: f64,
}

/// Answer of a U-kRanks query: one winner per rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UKRanksAnswer {
    /// `winners[h-1]` is the tuple whose probability of occupying rank `h`
    /// is highest, or `None` if no tuple can occupy rank `h` in any world
    /// (possible when the database has fewer than `h` tuples with non-null
    /// mass).
    pub winners: Vec<Option<AnswerTuple>>,
}

impl UKRanksAnswer {
    /// The `k` the query was asked with.
    pub fn k(&self) -> usize {
        self.winners.len()
    }

    /// Distinct tuples appearing as winners (a tuple may win several ranks).
    pub fn distinct_winners(&self) -> Vec<AnswerTuple> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for w in self.winners.iter().flatten() {
            if seen.insert(w.position) {
                out.push(*w);
            }
        }
        out
    }
}

/// Answer of a PT-k or Global-topk query: a set of tuples listed in
/// descending rank order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TupleSetAnswer {
    /// Qualifying tuples in descending rank order.
    pub tuples: Vec<AnswerTuple>,
}

impl TupleSetAnswer {
    /// Number of tuples in the answer.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Whether a rank position is part of the answer.
    pub fn contains_position(&self, pos: usize) -> bool {
        self.tuples.iter().any(|t| t.position == pos)
    }

    /// Positions of the answer tuples.
    pub fn positions(&self) -> Vec<usize> {
        self.tuples.iter().map(|t| t.position).collect()
    }
}

/// Evaluate a **U-kRanks** query from precomputed rank probabilities.
///
/// Ties (two tuples equally likely to occupy rank h) are broken in favour of
/// the higher-ranked tuple, keeping the answer deterministic.
pub fn u_k_ranks<R: RankAccess + ?Sized>(db: &RankedDatabase, rp: &R) -> UKRanksAnswer {
    let k = rp.k();
    let mut winners = Vec::with_capacity(k);
    for h in 1..=k {
        let mut best: Option<AnswerTuple> = None;
        for pos in 0..rp.num_tuples() {
            let p = rp.rank_prob(pos, h);
            if p <= 0.0 {
                continue;
            }
            let better = match &best {
                None => true,
                Some(b) => p > b.prob,
            };
            if better {
                best = Some(AnswerTuple { position: pos, id: db.tuple(pos).id, prob: p });
            }
        }
        winners.push(best);
    }
    UKRanksAnswer { winners }
}

/// Evaluate a **PT-k** query: tuples whose top-k probability is at least
/// `threshold`.
///
/// Returns an error if the threshold lies outside `(0, 1]`.
pub fn pt_k<R: RankAccess + ?Sized>(
    db: &RankedDatabase,
    rp: &R,
    threshold: f64,
) -> Result<TupleSetAnswer> {
    if !(threshold > 0.0 && threshold <= 1.0) {
        return Err(DbError::invalid_parameter(format!(
            "PT-k threshold must lie in (0, 1], got {threshold}"
        )));
    }
    let tuples = (0..rp.num_tuples())
        .filter(|&pos| rp.top_k_prob(pos) >= threshold)
        .map(|pos| AnswerTuple { position: pos, id: db.tuple(pos).id, prob: rp.top_k_prob(pos) })
        .collect();
    Ok(TupleSetAnswer { tuples })
}

/// Evaluate a **Global-topk** query: the `k` tuples with the highest top-k
/// probabilities, ties broken in favour of the higher-ranked tuple.
pub fn global_topk<R: RankAccess + ?Sized>(db: &RankedDatabase, rp: &R) -> TupleSetAnswer {
    let k = rp.k();
    let mut order: Vec<usize> = (0..rp.num_tuples()).filter(|&p| rp.top_k_prob(p) > 0.0).collect();
    // Sort by descending top-k probability; ties by ascending position
    // (higher rank first). The sort is stable but the explicit tiebreak makes
    // the intent explicit.
    // total_cmp rather than partial_cmp: probabilities are finite and
    // non-negative here, so the orders agree — but total_cmp cannot panic
    // if a NaN ever slips through, it just sorts it deterministically.
    order.sort_by(|&a, &b| rp.top_k_prob(b).total_cmp(&rp.top_k_prob(a)).then(a.cmp(&b)));
    order.truncate(k);
    order.sort_unstable();
    let tuples = order
        .into_iter()
        .map(|pos| AnswerTuple { position: pos, id: db.tuple(pos).id, prob: rp.top_k_prob(pos) })
        .collect();
    TupleSetAnswer { tuples }
}

/// A probabilistic top-k query under one of the paper's three semantics.
///
/// This enum is the convenience entry point used by the experiment harness:
/// it bundles the semantics with their parameters and evaluates through a
/// single PSR run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopKQuery {
    /// U-kRanks with the given `k`.
    UKRanks {
        /// Number of ranks to report.
        k: usize,
    },
    /// PT-k with the given `k` and probability threshold.
    PTk {
        /// Number of top ranks considered.
        k: usize,
        /// Minimum top-k probability for a tuple to qualify.
        threshold: f64,
    },
    /// Global-topk with the given `k`.
    GlobalTopk {
        /// Number of tuples to return.
        k: usize,
    },
}

impl TopKQuery {
    /// The `k` parameter of the query.
    pub fn k(&self) -> usize {
        match *self {
            TopKQuery::UKRanks { k } | TopKQuery::PTk { k, .. } | TopKQuery::GlobalTopk { k } => k,
        }
    }

    /// Evaluate the query on a database, running PSR internally.
    pub fn evaluate(&self, db: &RankedDatabase) -> Result<QueryAnswer> {
        let rp = rank_probabilities(db, self.k())?;
        self.evaluate_with(db, &rp)
    }

    /// Evaluate the query from precomputed rank probabilities (computation
    /// sharing with quality evaluation, Section IV-C of the paper).
    pub fn evaluate_with<R: RankAccess + ?Sized>(
        &self,
        db: &RankedDatabase,
        rp: &R,
    ) -> Result<QueryAnswer> {
        if rp.k() != self.k() {
            return Err(DbError::invalid_parameter(format!(
                "rank probabilities were computed for k = {} but the query has k = {}",
                rp.k(),
                self.k()
            )));
        }
        Ok(match *self {
            TopKQuery::UKRanks { .. } => QueryAnswer::UKRanks(u_k_ranks(db, rp)),
            TopKQuery::PTk { threshold, .. } => QueryAnswer::TupleSet(pt_k(db, rp, threshold)?),
            TopKQuery::GlobalTopk { .. } => QueryAnswer::TupleSet(global_topk(db, rp)),
        })
    }
}

/// Result of evaluating a [`TopKQuery`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryAnswer {
    /// Per-rank winners (U-kRanks).
    UKRanks(UKRanksAnswer),
    /// A set of qualifying tuples (PT-k, Global-topk).
    TupleSet(TupleSetAnswer),
}

impl QueryAnswer {
    /// Number of distinct tuples in the answer.
    pub fn len(&self) -> usize {
        match self {
            QueryAnswer::UKRanks(a) => a.distinct_winners().len(),
            QueryAnswer::TupleSet(a) => a.len(),
        }
    }

    /// Whether the answer contains no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psr::rank_probabilities;

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    fn pos_of(db: &RankedDatabase, score: f64) -> usize {
        db.tuples().position(|t| t.score == score).unwrap()
    }

    #[test]
    fn pt2_matches_the_paper() {
        // "If k = 2 and T = 0.4, then the answer of the PT-k query is
        // {t1, t2, t5}".
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        let ans = pt_k(&db, &rp, 0.4).unwrap();
        let expected: Vec<usize> = vec![pos_of(&db, 32.0), pos_of(&db, 30.0), pos_of(&db, 27.0)];
        assert_eq!(ans.positions(), expected);
        assert!(ans.contains_position(pos_of(&db, 30.0)));
        assert!(!ans.contains_position(pos_of(&db, 26.0)));
        assert!(!ans.is_empty());
    }

    #[test]
    fn pt_k_threshold_is_validated() {
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        assert!(pt_k(&db, &rp, 0.0).is_err());
        assert!(pt_k(&db, &rp, 1.5).is_err());
        assert!(pt_k(&db, &rp, -0.1).is_err());
        assert!(pt_k(&db, &rp, 1.0).is_ok());
    }

    #[test]
    fn pt_k_with_tiny_threshold_returns_all_nonzero_tuples() {
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        let ans = pt_k(&db, &rp, 1e-12).unwrap();
        assert_eq!(ans.len(), rp.nonzero_positions().len());
    }

    #[test]
    fn u_k_ranks_picks_the_most_likely_tuple_per_rank() {
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        let ans = u_k_ranks(&db, &rp);
        assert_eq!(ans.k(), 2);
        // Rank 1: t2 (30°C) has probability 0.7 * 0.6 = 0.42 of being the
        // top tuple, higher than t1's 0.4.
        let rank1 = ans.winners[0].unwrap();
        assert_eq!(rank1.position, pos_of(&db, 30.0));
        assert!((rank1.prob - 0.42).abs() < 1e-9);
        // Every winner's probability is the maximum over tuples for that rank.
        for (h0, w) in ans.winners.iter().enumerate() {
            let max =
                (0..db.len()).map(|p| rp.rank_prob(p, h0 + 1)).fold(f64::NEG_INFINITY, f64::max);
            assert!((w.unwrap().prob - max).abs() < 1e-12);
        }
    }

    #[test]
    fn u_k_ranks_reports_unreachable_ranks_as_none() {
        // A single uncertain tuple: rank 2 can never be occupied.
        let db = RankedDatabase::from_scored_x_tuples(&[vec![(1.0, 0.5)]]).unwrap();
        let rp = rank_probabilities(&db, 2).unwrap();
        let ans = u_k_ranks(&db, &rp);
        assert!(ans.winners[0].is_some());
        assert!(ans.winners[1].is_none());
        assert_eq!(ans.distinct_winners().len(), 1);
    }

    #[test]
    fn distinct_winners_deduplicates() {
        // One near-certain high tuple can win several ranks... construct a
        // case where the same tuple wins rank 1 and rank 2 is unreachable.
        let db = RankedDatabase::from_scored_x_tuples(&[vec![(5.0, 0.9)]]).unwrap();
        let rp = rank_probabilities(&db, 2).unwrap();
        let ans = u_k_ranks(&db, &rp);
        assert_eq!(ans.distinct_winners().len(), 1);
    }

    #[test]
    fn global_topk_returns_k_highest_probabilities() {
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        let ans = global_topk(&db, &rp);
        assert_eq!(ans.len(), 2);
        // t2 (0.7) and t5 (0.432) have the two highest top-2 probabilities.
        assert_eq!(ans.positions(), vec![pos_of(&db, 30.0), pos_of(&db, 27.0)]);
    }

    #[test]
    fn global_topk_is_limited_by_available_tuples() {
        let db = RankedDatabase::from_scored_x_tuples(&[vec![(1.0, 0.5)]]).unwrap();
        let rp = rank_probabilities(&db, 3).unwrap();
        let ans = global_topk(&db, &rp);
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn query_answers_round_trip_through_json() {
        let db = udb1();
        for query in [
            TopKQuery::PTk { k: 2, threshold: 0.4 },
            TopKQuery::UKRanks { k: 2 },
            TopKQuery::GlobalTopk { k: 2 },
        ] {
            let query_json = serde_json::to_string(&query).unwrap();
            let query_back: TopKQuery = serde_json::from_str(&query_json).unwrap();
            assert_eq!(query_back, query, "via {query_json}");

            let answer = query.evaluate(&db).unwrap();
            let json = serde_json::to_string(&answer).unwrap();
            let back: QueryAnswer = serde_json::from_str(&json).unwrap();
            // Float fields survive bit-for-bit (shortest-round-trip
            // printing), so full equality holds.
            assert_eq!(back, answer, "via {json}");
        }
    }

    #[test]
    fn query_enum_dispatches_and_validates() {
        let db = udb1();
        let q = TopKQuery::PTk { k: 2, threshold: 0.4 };
        assert_eq!(q.k(), 2);
        let ans = q.evaluate(&db).unwrap();
        assert_eq!(ans.len(), 3);
        assert!(!ans.is_empty());

        let q = TopKQuery::UKRanks { k: 2 };
        assert!(matches!(q.evaluate(&db).unwrap(), QueryAnswer::UKRanks(_)));

        let q = TopKQuery::GlobalTopk { k: 2 };
        assert_eq!(q.evaluate(&db).unwrap().len(), 2);

        // Mismatched k between precomputed probabilities and query.
        let rp = rank_probabilities(&db, 3).unwrap();
        assert!(TopKQuery::GlobalTopk { k: 2 }.evaluate_with(&db, &rp).is_err());
    }
}
