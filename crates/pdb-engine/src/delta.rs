//! Incremental re-evaluation of rank probabilities under single-x-tuple
//! mutations.
//!
//! An adaptive cleaning session observes one probe outcome at a time; each
//! outcome changes exactly one x-tuple (it collapses to a revealed
//! alternative, collapses to its implicit null alternative, or has its
//! probabilities reweighted).  Re-running the full PSR + TP pipeline after
//! every probe costs O(n·k) *per probe*, which makes a session of `C`
//! probes O(C·n·k).  This module exploits the same algebraic structure PSR
//! already uses *within* one scan — the Poisson-binomial product changes by
//! a single binomial factor — to carry a completed [`RankProbabilities`]
//! *across* database versions instead.
//!
//! ## How it works
//!
//! The stored ρ row of the tuple at position `i` is
//!
//! ```text
//! ρᵢ = eᵢ · coeffs( Π_{j ≠ lᵢ} ((1 − q_j) + q_j·z) )   (truncated to k)
//! ```
//!
//! where `q_j` is x-tuple `j`'s existential mass ranked strictly above
//! position `i`.  A mutation of x-tuple `L` changes only `q_L`, and both
//! [`TruncatedPoly`](crate::poly::TruncatedPoly) operations are linear in
//! the coefficients, so the new
//! row is obtained **without knowing eᵢ** by one divide + one multiply on
//! the stored row itself:
//!
//! ```text
//! ρᵢ′ = ρᵢ ÷ ((1 − q_L) + q_L·z) × ((1 − q_L′) + q_L′·z)
//! ```
//!
//! Per row that is O(k) — and most rows are cheaper still:
//!
//! * rows ranked above `L`'s first alternative (and rows where the old and
//!   new clamped masses coincide, e.g. everything below a full-mass
//!   x-tuple's last alternative) have `q_L = q_L′` and are **copied**;
//! * the mutated x-tuple's own rows never contained `L`'s factor, so they
//!   are **rescaled** by `eᵢ′ / eᵢ`;
//! * zero-probability rows stay identically zero.
//!
//! The same identity covers **streaming membership**
//! ([`XTupleMutation::Insert`] / [`XTupleMutation::Remove`]): removing an
//! x-tuple is the `q_L′ = 0` case (divide only, every alternative
//! dropped), and inserting one is the `q_L = 0` case — the stored rows
//! never contained the arriving factor, so each affected row takes one
//! *multiply* (always well-conditioned; no divide can go ill) while the
//! matrix grows by the new row-group, whose own rows are rebuilt exactly
//! from the post-insert database.
//!
//! ## When the oracle rebuild kicks in
//!
//! Dividing out a factor is only well-conditioned while
//! `q_L ≤ [`MAX_DIVISOR_Q`]` (the same gate the PSR scan applies).  Rows
//! whose divided factor is heavier than that — e.g. rows that were shadowed
//! by a near-saturated x-tuple which the mutation now removes — are rebuilt
//! from the mutated database instead of patched:
//!
//! * when the ill-conditioned rows are few, each is recomputed exactly
//!   (`psr::exact_row`, O(m·k) per row);
//! * when they are many, one **windowed scan** re-runs the incremental PSR
//!   planning pass up to the last ill-conditioned position and finalizes
//!   only those rows (O(w·k) for a window of length `w`) — never more
//!   expensive than the full rebuild it replaces.
//!
//! The cheaper of the two is chosen per mutation; [`DeltaStats`] reports
//! which rows took which path.  [`rank_probabilities`] /
//! [`rank_probabilities_exact`](crate::psr::rank_probabilities_exact) on
//! the mutated database remain the correctness oracles; the
//! `delta_equivalence` test suite pins the delta path against them across
//! randomized mutation sequences.

use crate::poly;
use crate::psr::{self, rank_probabilities, RankProbabilities, MAX_DIVISOR_Q};
use pdb_core::{DbError, RankedDatabase, Result};
use serde::{Deserialize, Serialize};

/// Existential probabilities below this value make the "rescale the stored
/// row by `eᵢ′ / eᵢ`" shortcut ill-conditioned (the division amplifies the
/// row's absolute floating-point residue by `1 / eᵢ`); such rows are
/// rebuilt from the mutated database instead.
const MIN_SCALE_PROB: f64 = 1e-3;

/// Old and new factor masses closer than this are treated as equal and the
/// row is copied.  Copying instead of swapping a factor whose mass moved by
/// `δ` changes each coefficient by at most `2·δ` (the error is linear in
/// `δ` and independent of the factor's conditioning), so the tolerance
/// directly bounds the introduced error.  Without it, a collapsed
/// full-mass x-tuple whose member probabilities sum to 1 ± a few ulps
/// would push every row below its last alternative (`q_old ≈ 1` vs
/// `q_new = 1`) into the expensive rebuild path for no accuracy gain.
const Q_EQUAL_EPSILON: f64 = 1e-12;

/// A mutation of a single x-tuple — the unified mutation surface shared by
/// the engine, the `apply_mutation`/`apply_probe` wire verbs, the WAL and
/// the CLI.
///
/// The first three variants are probe outcomes (they mutate an *existing*
/// x-tuple); [`Insert`](XTupleMutation::Insert) and
/// [`Remove`](XTupleMutation::Remove) are the streaming-membership
/// mutations that let a long-lived session's database grow and shrink
/// under arriving and departing entities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum XTupleMutation {
    /// A successful probe revealed the alternative at rank position
    /// `keep_pos` (which must belong to the mutated x-tuple): every other
    /// alternative is removed and the kept one becomes certain.
    CollapseToAlternative {
        /// Rank position (in the *pre-mutation* database) of the revealed
        /// alternative.
        keep_pos: usize,
    },
    /// A successful probe revealed the implicit null alternative: the
    /// entity has no reading and drops out of the database.
    CollapseToNull,
    /// The x-tuple's alternatives keep their positions but carry new
    /// existential probabilities (a partial observation that sharpens the
    /// distribution without collapsing it).
    Reweight {
        /// New probabilities, in the x-tuple's rank (member) order.
        probs: Vec<f64>,
    },
    /// A brand-new x-tuple arrives (e.g. a sensor comes online).  Inserts
    /// are append-only: the target x-index must equal the current x-tuple
    /// count, so existing x-indices stay stable.
    Insert {
        /// Human-readable key of the new entity.
        key: String,
        /// `(score, prob)` alternatives of the new x-tuple.
        alternatives: Vec<(f64, f64)>,
    },
    /// An existing x-tuple departs entirely (e.g. a sensor is
    /// decommissioned).  Unlike
    /// [`CollapseToNull`](XTupleMutation::CollapseToNull) this is not an
    /// observation — it needs no null mass; all alternatives are dropped
    /// unconditionally and later x-tuples are re-indexed densely.
    Remove,
}

/// How the rows of one (or several accumulated) incremental updates were
/// produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaStats {
    /// Rows whose mutated factor was unchanged (`q_L = q_L′`) or whose
    /// existential probability is zero: copied verbatim.
    pub rows_copied: usize,
    /// Rows updated by the O(k) divide + multiply factor swap (for an
    /// insert, the always-well-conditioned multiply-only half of it).
    pub rows_swapped: usize,
    /// Rows of the mutated x-tuple itself, rescaled by `eᵢ′ / eᵢ`.
    pub rows_rescaled: usize,
    /// Rows rebuilt from the mutated database (exact per-row rebuild or
    /// windowed scan): ill-conditioned divides, plus an inserted
    /// x-tuple's own brand-new rows.
    pub rows_rebuilt: usize,
    /// Rows removed together with the mutated x-tuple's dropped
    /// alternatives.
    pub rows_dropped: usize,
    /// Number of mutations that fell back to a windowed planning scan for
    /// their rebuilt rows (as opposed to per-row exact rebuilds).
    pub windowed_scans: usize,
}

impl DeltaStats {
    /// Fold another update's statistics into this accumulator.
    pub fn accumulate(&mut self, other: &DeltaStats) {
        self.rows_copied += other.rows_copied;
        self.rows_swapped += other.rows_swapped;
        self.rows_rescaled += other.rows_rescaled;
        self.rows_rebuilt += other.rows_rebuilt;
        self.rows_dropped += other.rows_dropped;
        self.windowed_scans += other.windowed_scans;
    }

    /// Total number of rows of the mutated database that were produced.
    pub fn rows_total(&self) -> usize {
        self.rows_copied + self.rows_swapped + self.rows_rescaled + self.rows_rebuilt
    }
}

/// Apply a single-x-tuple mutation to a database **and** its completed
/// rank-probability matrix, producing the mutated database, the updated
/// matrix and the per-row update statistics.
///
/// This is the pure form of [`apply_mutation_in_place`] (one clone of the
/// inputs); use the in-place form — or [`DeltaEvaluation`], which wraps it
/// — when the pre-mutation state is no longer needed, since the clone of
/// the ρ matrix costs more than the patch itself.
pub fn apply_mutation(
    db: &RankedDatabase,
    rp: &RankProbabilities,
    l: usize,
    mutation: &XTupleMutation,
) -> Result<(RankedDatabase, RankProbabilities, DeltaStats)> {
    let mut db = db.clone();
    let mut rp = rp.clone();
    let stats = apply_mutation_in_place(&mut db, &mut rp, l, mutation)?;
    Ok((db, rp, stats))
}

/// [`apply_mutation`] without reallocating: the database is mutated in
/// place (no re-sort — every mutation preserves the rank order of the
/// surviving tuples) and the ρ matrix is patched row by row.
///
/// Rows ranked above the mutated x-tuple's first alternative are not
/// touched at all; surviving rows below it are compacted forward (a
/// `memmove` when alternatives were dropped), factor-swapped, rescaled or
/// rebuilt as the module docs describe.  All validation happens before
/// anything is mutated, so on `Err` both inputs are unchanged.
pub fn apply_mutation_in_place(
    db: &mut RankedDatabase,
    rp: &mut RankProbabilities,
    l: usize,
    mutation: &XTupleMutation,
) -> Result<DeltaStats> {
    pdb_obs::metrics::ENGINE_DELTA_PATCHES_TOTAL.inc();
    if rp.num_tuples() != db.len() {
        return Err(DbError::invalid_parameter(format!(
            "rank probabilities cover {} tuples but the database has {}",
            rp.num_tuples(),
            db.len()
        )));
    }
    // An insert grows the matrix instead of patching surviving rows, and
    // targets the *appended* x-index, so it takes its own path before the
    // existing-x-tuple bounds check.
    if let XTupleMutation::Insert { key, alternatives } = mutation {
        return insert_in_place(db, rp, l, key, alternatives);
    }
    if l >= db.num_x_tuples() {
        return Err(DbError::index_out_of_range(format!("x-tuple {l} of {}", db.num_x_tuples())));
    }
    let k = rp.k();
    let old_n = db.len();
    // Snapshots of the mutated x-tuple (its pre-mutation probabilities are
    // needed while patching rows after the database has been updated).
    let members = db.x_tuple(l).members.clone();
    let old_probs: Vec<f64> = members.iter().map(|&p| db.tuple(p).prob).collect();

    // Per-member probability and survival after the mutation, computed
    // (and validated) before the matching in-place database mutator runs;
    // each mutator itself validates before touching anything, so on `Err`
    // both inputs are unchanged.
    let (new_probs, kept): (Vec<f64>, Vec<bool>) = match mutation {
        XTupleMutation::Insert { key, alternatives } => {
            return insert_in_place(db, rp, l, key, alternatives)
        }
        XTupleMutation::CollapseToAlternative { keep_pos } => {
            if *keep_pos >= db.len() || db.tuple(*keep_pos).x_index != l {
                return Err(DbError::index_out_of_range(format!(
                    "tuple position {keep_pos} is not an alternative of x-tuple {l}"
                )));
            }
            let keep = members.iter().map(|&p| p == *keep_pos);
            let outcome =
                (keep.clone().map(|k| if k { 1.0 } else { 0.0 }).collect(), keep.collect());
            db.collapse_x_tuple_in_place(l, *keep_pos)?;
            outcome
        }
        XTupleMutation::CollapseToNull => {
            db.collapse_x_tuple_to_null_in_place(l)?;
            (vec![0.0; members.len()], vec![false; members.len()])
        }
        XTupleMutation::Remove => {
            db.remove_x_tuple_in_place(l)?;
            (vec![0.0; members.len()], vec![false; members.len()])
        }
        XTupleMutation::Reweight { probs } => {
            if probs.len() != members.len() {
                return Err(DbError::invalid_parameter(format!(
                    "x-tuple {l} has {} alternatives but {} probabilities were supplied",
                    members.len(),
                    probs.len()
                )));
            }
            db.reweight_x_tuple_in_place(l, probs)?;
            (probs.clone(), vec![true; members.len()])
        }
    };

    let mut stats = DeltaStats::default();
    // New positions whose update is ill-conditioned; ascending by
    // construction.
    let mut ill: Vec<usize> = Vec::new();
    {
        let (rho, top_k) = rp.parts_mut();
        // Running clamped folds of x-tuple l's higher-ranked mass — the
        // exact quantity the PSR scan maintains, before and after the
        // mutation — plus the forward-compaction shift from dropped rows.
        let mut member_idx = 0usize;
        let mut q_old = 0.0f64;
        let mut q_new = 0.0f64;
        let mut shift = 0usize;
        for pos in 0..old_n {
            while member_idx < members.len() && members[member_idx] < pos {
                q_old = (q_old + old_probs[member_idx]).min(1.0);
                q_new = (q_new + new_probs[member_idx]).min(1.0);
                member_idx += 1;
            }
            let is_own = member_idx < members.len() && members[member_idx] == pos;
            if is_own && !kept[member_idx] {
                shift += 1;
                stats.rows_dropped += 1;
                continue;
            }
            let new_pos = pos - shift;
            let (src, dst) = (pos * k, new_pos * k);
            if is_own {
                // The x-tuple's own rows never contained its own factor:
                // only the leading eᵢ changes.
                let e_old = old_probs[member_idx];
                let e_new = new_probs[member_idx];
                if e_new <= 0.0 {
                    // ρ = eᵢ′ · (…) is identically zero.
                    rho[dst..dst + k].fill(0.0);
                    top_k[new_pos] = 0.0;
                    stats.rows_rescaled += 1;
                } else if e_old >= MIN_SCALE_PROB {
                    let scale = e_new / e_old;
                    for j in 0..k {
                        rho[dst + j] = rho[src + j] * scale;
                    }
                    top_k[new_pos] = top_k[pos] * scale;
                    stats.rows_rescaled += 1;
                } else {
                    rho[dst..dst + k].fill(0.0);
                    top_k[new_pos] = 0.0;
                    ill.push(new_pos);
                }
            } else if (q_old - q_new).abs() <= Q_EQUAL_EPSILON || db.tuple(new_pos).prob <= 0.0 {
                // Unchanged value (a zero-probability row is identically
                // zero both before and after); move it only if rows above
                // were dropped.
                if shift > 0 {
                    rho.copy_within(src..src + k, dst);
                    top_k[new_pos] = top_k[pos];
                }
                stats.rows_copied += 1;
            } else if q_old <= MAX_DIVISOR_Q {
                if shift > 0 {
                    rho.copy_within(src..src + k, dst);
                }
                let row = &mut rho[dst..dst + k];
                if q_old > 0.0 {
                    poly::divide_binomial_in(row, q_old);
                    poly::clamp_non_negative_in(row);
                }
                if q_new > 0.0 {
                    poly::multiply_binomial_in(row, q_new);
                }
                top_k[new_pos] = row.iter().sum();
                stats.rows_swapped += 1;
            } else {
                rho[dst..dst + k].fill(0.0);
                top_k[new_pos] = 0.0;
                ill.push(new_pos);
            }
        }
        rho.truncate((old_n - shift) * k);
        top_k.truncate(old_n - shift);
    }
    debug_assert_eq!(rp.num_tuples(), db.len());

    rebuild_ill_rows(db, rp, &mut stats, &ill)?;
    Ok(stats)
}

/// Rebuild the rows at the given (post-mutation, ascending) positions from
/// the mutated database: per-row exact rebuilds cost O(m·k) each, one
/// windowed planning scan costs O(last·k) — pick the cheaper total.
fn rebuild_ill_rows(
    db: &RankedDatabase,
    rp: &mut RankProbabilities,
    stats: &mut DeltaStats,
    ill: &[usize],
) -> Result<()> {
    let Some(&last) = ill.last() else { return Ok(()) };
    let k = rp.k();
    stats.rows_rebuilt += ill.len();
    pdb_obs::metrics::ENGINE_REBUILT_ROWS_TOTAL.add(ill.len() as u64);
    let windowed = ill.len() * db.num_x_tuples() > last + 1;
    let (rho, top_k) = rp.parts_mut();
    if windowed {
        stats.windowed_scans += 1;
        let mut want = vec![false; last + 1];
        for &p in ill {
            want[p] = true;
        }
        psr::scan_rows_filtered(
            db,
            k,
            last,
            |pos| want[pos],
            |task| {
                let pos = task.pos;
                psr::compute_row_into(task, k, &mut rho[pos * k..(pos + 1) * k]);
            },
        )?;
    } else {
        for &p in ill {
            let row = psr::exact_row(db, k, p);
            rho[p * k..(p + 1) * k].copy_from_slice(&row);
        }
    }
    for &p in ill {
        top_k[p] = rho[p * k..(p + 1) * k].iter().sum();
    }
    Ok(())
}

/// The [`XTupleMutation::Insert`] patch: append a brand-new x-tuple and
/// grow the ρ matrix by its row-group.
///
/// The arriving factor was never part of any stored row, so every
/// surviving row below the new x-tuple's first alternative takes a single
/// binomial *multiply* — the always-well-conditioned half of the factor
/// swap; no divide can go ill here.  The backward pass shifts existing
/// rows to their post-insert positions (back to front, so the move is
/// alias-free), the forward pass multiplies the arriving factor in, and
/// the new x-tuple's own rows — the only ones whose eᵢ-weighted product
/// the matrix never contained — are rebuilt exactly from the post-insert
/// database via the shared ill-row machinery.
fn insert_in_place(
    db: &mut RankedDatabase,
    rp: &mut RankProbabilities,
    l: usize,
    key: &str,
    alternatives: &[(f64, f64)],
) -> Result<DeltaStats> {
    if l != db.num_x_tuples() {
        return Err(DbError::invalid_parameter(format!(
            "inserts are append-only: target x-index {l} must equal the x-tuple count {}",
            db.num_x_tuples()
        )));
    }
    let k = rp.k();
    // Validates everything (and allocates fresh ids) before mutating, so
    // on `Err` both inputs are unchanged.
    db.insert_x_tuple_in_place(key.to_string(), alternatives)?;
    let new_n = db.len();
    // Positions of the new alternatives in the *post-insert* database,
    // ascending.
    let members = db.x_tuple(l).members.clone();

    let mut stats = DeltaStats::default();
    {
        let (rho, top_k) = rp.parts_mut();
        rho.resize(new_n * k, 0.0);
        top_k.resize(new_n, 0.0);
        // Backward pass: move each surviving row from its pre-insert
        // position `pos - pending` to `pos`, zero-filling the slots where
        // the new alternatives land.
        let mut pending = members.len();
        for pos in (0..new_n).rev() {
            if pending == 0 {
                // Rows above the first new alternative keep their
                // positions.
                break;
            }
            if members[pending - 1] == pos {
                pending -= 1;
                rho[pos * k..(pos + 1) * k].fill(0.0);
                top_k[pos] = 0.0;
            } else {
                let src = (pos - pending) * k;
                rho.copy_within(src..src + k, pos * k);
                top_k[pos] = top_k[pos - pending];
            }
        }
        // Forward pass: multiply the arriving factor (the new x-tuple's
        // clamped higher-ranked mass) into every surviving row below it.
        let mut member_idx = 0usize;
        let mut q_new = 0.0f64;
        for pos in 0..new_n {
            while member_idx < members.len() && members[member_idx] < pos {
                q_new = (q_new + db.tuple(members[member_idx]).prob).min(1.0);
                member_idx += 1;
            }
            if member_idx < members.len() && members[member_idx] == pos {
                // The new x-tuple's own row: rebuilt exactly below.
                continue;
            }
            if q_new <= 0.0 || db.tuple(pos).prob <= 0.0 {
                // Above the first alternative (or a mass-less one), or an
                // identically-zero row: nothing to multiply.
                stats.rows_copied += 1;
            } else {
                let row = &mut rho[pos * k..(pos + 1) * k];
                poly::multiply_binomial_in(row, q_new);
                top_k[pos] = row.iter().sum();
                stats.rows_swapped += 1;
            }
        }
    }
    debug_assert_eq!(rp.num_tuples(), db.len());

    rebuild_ill_rows(db, rp, &mut stats, &members)?;
    Ok(stats)
}

/// A database together with rank probabilities that are kept current under
/// single-x-tuple mutations.
///
/// Run the full PSR pipeline once ([`DeltaEvaluation::new`]), then
/// [`apply`](DeltaEvaluation::apply) each observed mutation in O(k) per
/// affected row.  The full-rebuild entry points remain available as the
/// correctness oracle: at any point, [`rank_probabilities`] on
/// [`database`](DeltaEvaluation::database) must agree with
/// [`rank_probabilities`](DeltaEvaluation::rank_probabilities) within the
/// documented tolerance.
#[derive(Debug, Clone)]
pub struct DeltaEvaluation {
    db: RankedDatabase,
    rp: RankProbabilities,
    last: DeltaStats,
    total: DeltaStats,
    mutations: u64,
}

impl DeltaEvaluation {
    /// Run PSR once for the given `k` and take ownership of the database.
    pub fn new(db: RankedDatabase, k: usize) -> Result<Self> {
        let rp = rank_probabilities(&db, k)?;
        Ok(Self::assemble(db, rp))
    }

    /// Wrap a database and rank probabilities computed elsewhere.
    pub fn from_parts(db: RankedDatabase, rp: RankProbabilities) -> Result<Self> {
        if rp.num_tuples() != db.len() {
            return Err(DbError::invalid_parameter(format!(
                "rank probabilities cover {} tuples but the database has {}",
                rp.num_tuples(),
                db.len()
            )));
        }
        Ok(Self::assemble(db, rp))
    }

    fn assemble(db: RankedDatabase, rp: RankProbabilities) -> Self {
        Self { db, rp, last: DeltaStats::default(), total: DeltaStats::default(), mutations: 0 }
    }

    /// The `k` the evaluation is maintained for.
    pub fn k(&self) -> usize {
        self.rp.k()
    }

    /// The current (post-mutation) database.
    pub fn database(&self) -> &RankedDatabase {
        &self.db
    }

    /// The current rank probabilities.
    pub fn rank_probabilities(&self) -> &RankProbabilities {
        &self.rp
    }

    /// Statistics of the most recent [`apply`](DeltaEvaluation::apply).
    pub fn last_stats(&self) -> DeltaStats {
        self.last
    }

    /// Statistics accumulated over every mutation applied so far.
    pub fn total_stats(&self) -> DeltaStats {
        self.total
    }

    /// Number of mutations applied so far.
    pub fn mutations(&self) -> u64 {
        self.mutations
    }

    /// Apply one mutation incrementally, patching the held database and
    /// probabilities in place.  On error the evaluation is left unchanged
    /// (all validation happens before anything is mutated).
    pub fn apply(&mut self, l: usize, mutation: &XTupleMutation) -> Result<DeltaStats> {
        let stats = apply_mutation_in_place(&mut self.db, &mut self.rp, l, mutation)?;
        self.last = stats;
        self.total.accumulate(&stats);
        self.mutations += 1;
        Ok(stats)
    }

    /// Dissolve into the current database and rank probabilities.
    pub fn into_parts(self) -> (RankedDatabase, RankProbabilities) {
        (self.db, self.rp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psr::rank_probabilities_exact;

    #[test]
    fn mutations_and_delta_stats_round_trip_through_json() {
        for mutation in [
            XTupleMutation::CollapseToAlternative { keep_pos: 3 },
            XTupleMutation::CollapseToNull,
            XTupleMutation::Reweight { probs: vec![0.25, 0.5] },
            XTupleMutation::Insert {
                key: "s9".into(),
                alternatives: vec![(4.0, 0.5), (3.0, 0.25)],
            },
            XTupleMutation::Remove,
        ] {
            let json = serde_json::to_string(&mutation).unwrap();
            let back: XTupleMutation = serde_json::from_str(&json).unwrap();
            assert_eq!(back, mutation, "via {json}");
        }
        let stats = DeltaStats {
            rows_copied: 1,
            rows_swapped: 2,
            rows_rescaled: 3,
            rows_rebuilt: 4,
            rows_dropped: 5,
            windowed_scans: 6,
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: DeltaStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats, "via {json}");
    }

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    fn assert_matches_oracle(db: &RankedDatabase, rp: &RankProbabilities, tol: f64) {
        let oracle = rank_probabilities_exact(db, rp.k()).unwrap();
        for pos in 0..db.len() {
            for h in 1..=rp.k() {
                let got = rp.rank_prob(pos, h);
                let want = oracle.rank_prob(pos, h);
                assert!((got - want).abs() < tol, "pos {pos} h {h}: delta {got} vs oracle {want}");
            }
        }
    }

    #[test]
    fn collapse_to_alternative_matches_full_rebuild() {
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        // Collapse S3 to its 27° reading (position 2): the udb1 → udb2
        // transition of the paper.
        let (db2, rp2, stats) =
            apply_mutation(&db, &rp, 2, &XTupleMutation::CollapseToAlternative { keep_pos: 2 })
                .unwrap();
        assert_eq!(db2.len(), 6);
        assert_eq!(stats.rows_dropped, 1);
        assert_eq!(stats.rows_total(), 6);
        assert_matches_oracle(&db2, &rp2, 1e-9);
    }

    #[test]
    fn collapse_to_null_matches_full_rebuild() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)],
            vec![(9.0, 0.4), (8.0, 0.2)],
            vec![(7.0, 1.0)],
        ])
        .unwrap();
        let rp = rank_probabilities(&db, 2).unwrap();
        let (db2, rp2, stats) =
            apply_mutation(&db, &rp, 0, &XTupleMutation::CollapseToNull).unwrap();
        assert_eq!(db2.num_x_tuples(), 2);
        assert_eq!(stats.rows_dropped, 1);
        assert_matches_oracle(&db2, &rp2, 1e-9);
    }

    #[test]
    fn reweight_matches_full_rebuild() {
        let db = udb1();
        let rp = rank_probabilities(&db, 3).unwrap();
        let (db2, rp2, _) =
            apply_mutation(&db, &rp, 0, &XTupleMutation::Reweight { probs: vec![0.1, 0.8] })
                .unwrap();
        assert_matches_oracle(&db2, &rp2, 1e-9);
    }

    #[test]
    fn insert_matches_full_rebuild() {
        let db = udb1();
        let rp = rank_probabilities(&db, 3).unwrap();
        // A new sensor arrives mid-ranking: one alternative lands above
        // existing tuples, one below, and mass is withheld (null prob).
        let mutation = XTupleMutation::Insert {
            key: "S5".into(),
            alternatives: vec![(28.0, 0.5), (23.0, 0.3)],
        };
        let (db2, rp2, stats) = apply_mutation(&db, &rp, db.num_x_tuples(), &mutation).unwrap();
        assert_eq!(db2.num_x_tuples(), 5);
        assert_eq!(db2.len(), 9);
        assert_eq!(stats.rows_rebuilt, 2, "the new x-tuple's own rows: {stats:?}");
        assert_eq!(stats.rows_dropped, 0);
        assert_eq!(stats.rows_total(), 9);
        assert_matches_oracle(&db2, &rp2, 1e-9);
    }

    #[test]
    fn insert_below_everything_copies_all_rows() {
        // An arrival ranked below the whole database affects no stored
        // row: only its own row is built.
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        let mutation = XTupleMutation::Insert { key: "low".into(), alternatives: vec![(1.0, 0.4)] };
        let (db2, rp2, stats) = apply_mutation(&db, &rp, 4, &mutation).unwrap();
        assert_eq!(stats.rows_copied, 7, "{stats:?}");
        assert_eq!(stats.rows_swapped, 0);
        assert_matches_oracle(&db2, &rp2, 1e-9);
    }

    #[test]
    fn remove_matches_full_rebuild() {
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        // Remove S2 (x-index 1), a full-mass x-tuple — collapse-to-null
        // would reject it, removal must not.
        let (db2, rp2, stats) = apply_mutation(&db, &rp, 1, &XTupleMutation::Remove).unwrap();
        assert_eq!(db2.num_x_tuples(), 3);
        assert_eq!(db2.len(), 5);
        assert_eq!(stats.rows_dropped, 2);
        assert_matches_oracle(&db2, &rp2, 1e-9);
    }

    #[test]
    fn insert_rejects_non_appended_target_index() {
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        let mutation = XTupleMutation::Insert { key: "S5".into(), alternatives: vec![(28.0, 0.5)] };
        // Anything other than the current x-tuple count is rejected, and
        // invalid alternatives leave both inputs unchanged.
        assert!(apply_mutation(&db, &rp, 0, &mutation).is_err());
        assert!(apply_mutation(&db, &rp, 99, &mutation).is_err());
        let bad = XTupleMutation::Insert { key: "S5".into(), alternatives: vec![(28.0, 1.5)] };
        let mut db2 = db.clone();
        let mut rp2 = rp.clone();
        assert!(apply_mutation_in_place(&mut db2, &mut rp2, 4, &bad).is_err());
        assert_eq!(db2, db);
    }

    #[test]
    fn delta_evaluation_tracks_a_mutation_sequence() {
        let db = udb1();
        let mut eval = DeltaEvaluation::new(db, 2).unwrap();
        assert_eq!(eval.k(), 2);
        eval.apply(2, &XTupleMutation::CollapseToAlternative { keep_pos: 2 }).unwrap();
        eval.apply(1, &XTupleMutation::Reweight { probs: vec![0.2, 0.1] }).unwrap();
        eval.apply(1, &XTupleMutation::CollapseToNull).unwrap();
        assert_eq!(eval.mutations(), 3);
        assert_eq!(eval.database().num_x_tuples(), 3);
        assert_eq!(eval.total_stats().rows_dropped, 3);
        assert_matches_oracle(eval.database(), eval.rank_probabilities(), 1e-8);
        let (db, rp) = eval.into_parts();
        assert_eq!(db.len(), rp.num_tuples());
    }

    #[test]
    fn shadowed_rows_are_rebuilt_when_a_certain_blocker_drops_out() {
        // One near-certain x-tuple with null mass shadows everything below
        // it at k = 1; collapsing it to null must resurrect those rows,
        // which requires dividing out a factor with q > MAX_DIVISOR_Q —
        // i.e. the rebuild path.
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(100.0, 0.99)],
            vec![(50.0, 0.6), (40.0, 0.4)],
            vec![(30.0, 1.0)],
        ])
        .unwrap();
        let rp = rank_probabilities(&db, 1).unwrap();
        let (db2, rp2, stats) =
            apply_mutation(&db, &rp, 0, &XTupleMutation::CollapseToNull).unwrap();
        assert!(stats.rows_rebuilt > 0, "expected the ill-conditioned rebuild path: {stats:?}");
        assert_matches_oracle(&db2, &rp2, 1e-9);
        // The 50-score tuple now leads the ranking outright.
        assert!((rp2.top_k_prob(0) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn rejects_inconsistent_inputs() {
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        // Foreign keep position.
        assert!(apply_mutation(
            &db,
            &rp,
            0,
            &XTupleMutation::CollapseToAlternative { keep_pos: 1 }
        )
        .is_err());
        // Out-of-range x-tuple.
        assert!(apply_mutation(&db, &rp, 9, &XTupleMutation::CollapseToNull).is_err());
        // Reweight arity mismatch.
        assert!(
            apply_mutation(&db, &rp, 0, &XTupleMutation::Reweight { probs: vec![0.5] }).is_err()
        );
        // Probabilities computed for a different database.
        let other = RankedDatabase::from_scored_x_tuples(&[vec![(1.0, 1.0)]]).unwrap();
        let rp_other = rank_probabilities(&other, 2).unwrap();
        assert!(apply_mutation(&db, &rp_other, 0, &XTupleMutation::CollapseToNull).is_err());
        assert!(DeltaEvaluation::from_parts(db, rp_other).is_err());
    }
}
