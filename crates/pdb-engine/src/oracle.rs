//! Brute-force oracles based on possible-world enumeration.
//!
//! These functions implement the *conceptual* query process of Figure 1(a)
//! of the paper literally: expand the database into possible worlds, run a
//! deterministic top-k query in each, and aggregate.  They are exponential
//! in the number of x-tuples and exist purely as correctness oracles for
//! the efficient algorithms (PSR, the query semantics, and the quality
//! algorithms); they refuse to run on databases above the enumeration
//! limit.

use crate::psr::RankProbabilities;
use pdb_core::world::{worlds_with_limit, DEFAULT_WORLD_LIMIT};
use pdb_core::{RankedDatabase, Result};

/// Compute exact rank-h probabilities (h = 1..k) by enumerating every
/// possible world.
pub fn rank_probabilities_by_enumeration(
    db: &RankedDatabase,
    k: usize,
) -> Result<RankProbabilities> {
    rank_probabilities_by_enumeration_with_limit(db, k, DEFAULT_WORLD_LIMIT)
}

/// Same as [`rank_probabilities_by_enumeration`] with an explicit world
/// limit.
pub fn rank_probabilities_by_enumeration_with_limit(
    db: &RankedDatabase,
    k: usize,
    limit: u128,
) -> Result<RankProbabilities> {
    if k == 0 {
        return Err(pdb_core::DbError::invalid_parameter("k must be at least 1"));
    }
    let n = db.len();
    let mut rho = vec![0.0; n * k];
    for w in worlds_with_limit(db, limit)? {
        for (rank0, &pos) in w.top_k(k).iter().enumerate() {
            rho[pos * k + rank0] += w.prob;
        }
    }
    Ok(RankProbabilities::from_rho(k, rho))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psr::rank_probabilities;

    #[test]
    fn oracle_agrees_with_psr_on_udb1() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap();
        for k in 1..=4 {
            let oracle = rank_probabilities_by_enumeration(&db, k).unwrap();
            let fast = rank_probabilities(&db, k).unwrap();
            for pos in 0..db.len() {
                for h in 1..=k {
                    assert!((oracle.rank_prob(pos, h) - fast.rank_prob(pos, h)).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn oracle_validates_parameters_and_size() {
        let db =
            RankedDatabase::from_scored_x_tuples(&[vec![(1.0, 0.5)], vec![(2.0, 0.5)]]).unwrap();
        assert!(rank_probabilities_by_enumeration(&db, 0).is_err());
        assert!(rank_probabilities_by_enumeration_with_limit(&db, 1, 2).is_err());
    }
}
