//! Equivalence of the parallel and sequential PSR paths.
//!
//! The `parallel` feature must be a pure execution-strategy switch: the
//! numbers it produces have to match the sequential path **bit for bit**
//! (stronger than the 1e-12 tolerance the workspace requires), on small
//! databases (where the parallel path runs inline) and on databases large
//! enough to cross the threading threshold.

#![cfg(feature = "parallel")]

use pdb_core::RankedDatabase;
use pdb_engine::psr::{
    rank_probabilities, rank_probabilities_exact, rank_probabilities_parallel,
    rank_probabilities_sequential, RankProbabilities,
};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn x_tuple() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((0.0f64..100.0, 0.05f64..1.0), 1..5), 0.1f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        alts.into_iter().map(|(s, w)| (s, w / total * mass)).collect()
    })
}

fn db() -> impl Strategy<Value = RankedDatabase> {
    vec(x_tuple(), 1..9).prop_map(|x| RankedDatabase::from_scored_x_tuples(&x).unwrap())
}

/// A reproducible database big enough that `rows × k` crosses the
/// parallel threshold and the row work actually lands on the thread pool.
fn large_db(seed: u64, m: usize) -> RankedDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x_tuples = Vec::new();
    for _ in 0..m {
        let alts = rng.gen_range(1..=3);
        let mut remaining = 1.0_f64;
        let mut v = Vec::new();
        for a in 0..alts {
            let p = if a == alts - 1 {
                remaining * rng.gen_range(0.3..1.0)
            } else {
                remaining * rng.gen_range(0.1..0.6)
            };
            remaining -= p;
            v.push((rng.gen_range(0.0..1_000_000.0), p));
        }
        x_tuples.push(v);
    }
    RankedDatabase::from_scored_x_tuples(&x_tuples).unwrap()
}

fn assert_bitwise_equal(a: &RankProbabilities, b: &RankProbabilities) {
    assert_eq!(a.k(), b.k());
    assert_eq!(a.num_tuples(), b.num_tuples());
    for pos in 0..a.num_tuples() {
        for (h, (x, y)) in a.rank_probs(pos).iter().zip(b.rank_probs(pos)).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "rho[{pos}][{h}] differs: {x} (parallel) vs {y} (sequential)"
            );
        }
        assert_eq!(a.top_k_prob(pos).to_bits(), b.top_k_prob(pos).to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On arbitrary small databases the two paths agree bit for bit (and
    /// the default entry point matches both).
    #[test]
    fn parallel_psr_is_bitwise_equal_to_sequential(db in db(), k in 1usize..6) {
        let par = rank_probabilities_parallel(&db, k).unwrap();
        let seq = rank_probabilities_sequential(&db, k).unwrap();
        assert_bitwise_equal(&par, &seq);
        let default = rank_probabilities(&db, k).unwrap();
        assert_bitwise_equal(&default, &seq);
    }
}

#[test]
fn parallel_psr_is_bitwise_equal_on_large_databases() {
    // ~5000 tuples at k = 20 is beyond the incremental threading
    // threshold (2^16 pending coefficients); smaller k values cover the
    // streaming fallback inside the parallel entry point.
    for seed in [7, 42] {
        let db = large_db(seed, 2500);
        for k in [1, 5, 20] {
            let par = rank_probabilities_parallel(&db, k).unwrap();
            let seq = rank_probabilities_sequential(&db, k).unwrap();
            assert_bitwise_equal(&par, &seq);
        }
    }
}

#[test]
fn exact_reference_is_deterministic_across_thresholds() {
    // The exact algorithm threads per-tuple once n·k crosses the
    // threshold; its output must stay identical to the small-input
    // (inline) code path's arithmetic. Verify via a database evaluated at
    // a k below and above the threshold boundary.
    let db = large_db(11, 600);
    let below = rank_probabilities_exact(&db, 2).unwrap(); // n·k < threshold ⇒ inline
    let above = rank_probabilities_exact(&db, 8).unwrap(); // n·k ≥ threshold ⇒ threaded

    // Rank-h probabilities for h ≤ 2 must agree between the two runs
    // (exact rows do not depend on k beyond truncation).
    for pos in 0..db.len() {
        for h in 1..=2 {
            let x = below.rank_prob(pos, h);
            let y = above.rank_prob(pos, h);
            assert_eq!(x.to_bits(), y.to_bits(), "rho[{pos}][{h}]: {x} vs {y}");
        }
    }
}
