//! Property-based tests of PSR and the query semantics.

use pdb_core::RankedDatabase;
use pdb_engine::oracle::rank_probabilities_by_enumeration;
use pdb_engine::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

fn x_tuple() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((0.0f64..100.0, 0.05f64..1.0), 1..5), 0.1f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        alts.into_iter().map(|(s, w)| (s, w / total * mass)).collect()
    })
}

fn db() -> impl Strategy<Value = RankedDatabase> {
    vec(x_tuple(), 1..7).prop_map(|x| RankedDatabase::from_scored_x_tuples(&x).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The incremental PSR agrees with the exact reference and with the
    /// possible-world oracle.
    #[test]
    fn psr_agrees_with_reference_and_oracle(db in db(), k in 1usize..6) {
        let fast = rank_probabilities(&db, k).unwrap();
        let exact = rank_probabilities_exact(&db, k).unwrap();
        let oracle = rank_probabilities_by_enumeration(&db, k).unwrap();
        for pos in 0..db.len() {
            for h in 1..=k {
                prop_assert!((fast.rank_prob(pos, h) - exact.rank_prob(pos, h)).abs() < 1e-9);
                prop_assert!((fast.rank_prob(pos, h) - oracle.rank_prob(pos, h)).abs() < 1e-9);
            }
        }
    }

    /// A tuple's top-k probability never exceeds its existential
    /// probability, and a certain tuple ranked first is always in the
    /// answer.
    #[test]
    fn top_k_probability_is_dominated_by_existence(db in db(), k in 1usize..6) {
        let rp = rank_probabilities(&db, k).unwrap();
        for pos in 0..db.len() {
            prop_assert!(rp.top_k_prob(pos) <= db.tuple(pos).prob + 1e-9);
        }
        // The highest-ranked tuple is in the top-k whenever it exists.
        prop_assert!((rp.top_k_prob(0) - db.tuple(0).prob).abs() < 1e-9);
    }

    /// The expected answer size equals the expected number of existing
    /// tuples truncated at k (computed from the world oracle), and the
    /// nonzero-probability positions form a prefix-closed set under rank
    /// domination within each x-tuple... at minimum they are consistent
    /// with the reported probabilities.
    #[test]
    fn expected_answer_size_is_consistent(db in db(), k in 1usize..5) {
        let rp = rank_probabilities(&db, k).unwrap();
        let by_enum = rank_probabilities_by_enumeration(&db, k).unwrap();
        prop_assert!((rp.expected_answer_size() - by_enum.expected_answer_size()).abs() < 1e-9);
        for pos in rp.nonzero_positions() {
            prop_assert!(rp.top_k_prob(pos) > 0.0);
        }
    }

    /// PT-k answers grow as the threshold shrinks and are consistent with
    /// Global-topk: the Global-topk answer contains the k highest top-k
    /// probabilities, so any PT-k answer with a threshold above the k-th
    /// highest probability is a subset of it.
    #[test]
    fn pt_k_and_global_topk_are_consistent(db in db(), k in 1usize..5) {
        let rp = rank_probabilities(&db, k).unwrap();
        let loose = pt_k(&db, &rp, 0.05).unwrap();
        let tight = pt_k(&db, &rp, 0.5).unwrap();
        prop_assert!(tight.len() <= loose.len());
        for t in &tight.tuples {
            prop_assert!(loose.contains_position(t.position));
        }

        let global = global_topk(&db, &rp);
        prop_assert!(global.len() <= k);
        if let Some(kth) = global.tuples.iter().map(|t| t.prob).fold(None, |acc: Option<f64>, p| {
            Some(acc.map_or(p, |a| a.min(p)))
        }) {
            let above_kth = pt_k(&db, &rp, (kth + 1e-9).min(1.0)).unwrap();
            for t in &above_kth.tuples {
                prop_assert!(
                    global.contains_position(t.position),
                    "tuples strictly above the k-th probability must be in Global-topk"
                );
            }
        }
    }

    /// U-kRanks winners are achievable: their probability is positive and
    /// they exist in the database.
    #[test]
    fn u_k_ranks_winners_are_achievable(db in db(), k in 1usize..5) {
        let rp = rank_probabilities(&db, k).unwrap();
        let answer = u_k_ranks(&db, &rp);
        prop_assert_eq!(answer.k(), k);
        for (h0, winner) in answer.winners.iter().enumerate() {
            if let Some(w) = winner {
                prop_assert!(w.prob > 0.0);
                prop_assert!(w.position < db.len());
                prop_assert!((rp.rank_prob(w.position, h0 + 1) - w.prob).abs() < 1e-12);
            }
        }
    }
}
