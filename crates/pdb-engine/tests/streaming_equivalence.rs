//! Equivalence of the streaming mutation path and the full-rebuild
//! oracle.
//!
//! The streaming API extends [`XTupleMutation`] with [`Insert`] and
//! [`Remove`]: the database grows and shrinks under the maintained rank
//! probabilities instead of only collapsing in place.  These tests mirror
//! `delta_equivalence.rs` for the new membership mutations: after any
//! interleaving of inserts, removes, collapses and reweights, the
//! incrementally patched ρ matrix must match a fresh PSR run on the
//! mutated database within the documented tolerance — including the
//! awkward corners (shrinking towards empty, `k >= n` crossings in both
//! directions, and re-inserting an entity that was just removed).
//!
//! [`Insert`]: XTupleMutation::Insert
//! [`Remove`]: XTupleMutation::Remove

use pdb_core::RankedDatabase;
use pdb_engine::delta::{DeltaEvaluation, XTupleMutation};
use pdb_engine::psr::rank_probabilities_exact;
use proptest::collection::vec;
use proptest::prelude::*;

/// Documented tolerance of the delta path against the exact oracle, per
/// row entry, after a handful of chained mutations.
const DELTA_TOLERANCE: f64 = 1e-8;

fn assert_matches_exact(eval: &DeltaEvaluation, tol: f64, context: &str) {
    let db = eval.database();
    let rp = eval.rank_probabilities();
    assert_eq!(rp.num_tuples(), db.len(), "{context}: ρ matrix tracks the database size");
    let oracle = rank_probabilities_exact(db, rp.k()).unwrap();
    for pos in 0..db.len() {
        for h in 1..=rp.k() {
            let got = rp.rank_prob(pos, h);
            let want = oracle.rank_prob(pos, h);
            assert!(
                (got - want).abs() < tol,
                "{context}: pos {pos} h {h}: delta {got} vs exact {want}"
            );
        }
    }
}

/// One abstract mutation step, resolved against whatever database the
/// sequence has produced so far.
#[derive(Debug, Clone)]
struct Step {
    x_sel: usize,
    kind: u8,
    alt_sel: usize,
    weights: Vec<f64>,
}

fn step() -> impl Strategy<Value = Step> {
    (any::<usize>(), 0u8..5, any::<usize>(), vec(0.0f64..1.0, 8))
        .prop_map(|(x_sel, kind, alt_sel, weights)| Step { x_sel, kind, alt_sel, weights })
}

/// Resolve an abstract step into a concrete valid mutation for `db`, or
/// `None` when the step must be skipped (e.g. a removal that would empty
/// the database).
fn resolve(db: &RankedDatabase, s: &Step) -> Option<(usize, XTupleMutation)> {
    let m = db.num_x_tuples();
    let l = s.x_sel % m;
    let info = db.x_tuple(l);
    match s.kind {
        0 => {
            let keep_pos = info.members[s.alt_sel % info.members.len()];
            Some((l, XTupleMutation::CollapseToAlternative { keep_pos }))
        }
        1 if info.null_prob() > 1e-9 && m > 1 => Some((l, XTupleMutation::CollapseToNull)),
        1 => None,
        2 => {
            // Reweight: scale the drawn weights so the total mass stays in
            // (0, 1]; keeps the database valid for any draw.
            let raw: Vec<f64> = info
                .members
                .iter()
                .enumerate()
                .map(|(i, _)| s.weights[i % s.weights.len()])
                .collect();
            let total: f64 = raw.iter().sum();
            if total <= 0.0 {
                return None;
            }
            let target = 0.2 + 0.8 * s.weights[0];
            let probs = raw.iter().map(|w| w / total * target).collect();
            Some((l, XTupleMutation::Reweight { probs }))
        }
        3 => {
            // Insert: a fresh entity appended at x-index m with one to
            // three alternatives whose mass stays in (0, 1].
            let count = 1 + s.alt_sel % 3;
            let raw: Vec<(f64, f64)> =
                (0..count).map(|i| (s.weights[i] * 100.0, 0.05 + 0.9 * s.weights[i + 3])).collect();
            let total: f64 = raw.iter().map(|&(_, p)| p).sum();
            let target = 0.2 + 0.8 * s.weights[6];
            let alternatives = raw.iter().map(|&(sc, p)| (sc, p / total * target)).collect();
            let key = format!("ins{}", s.x_sel % 97);
            Some((m, XTupleMutation::Insert { key, alternatives }))
        }
        4 if m > 1 => Some((l, XTupleMutation::Remove)),
        _ => None,
    }
}

fn x_tuple() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((0.0f64..100.0, 0.05f64..1.0), 1..5), 0.1f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        alts.into_iter().map(|(s, w)| (s, w / total * mass)).collect()
    })
}

fn db() -> impl Strategy<Value = RankedDatabase> {
    vec(x_tuple(), 2..8).prop_map(|x| RankedDatabase::from_scored_x_tuples(&x).unwrap())
}

/// An adversarial database family: clustered scores and near-certain
/// alternatives make the divided factors heavy, so inserts and removes
/// land next to the ill-conditioned (`q > MAX_DIVISOR_Q`) rebuild paths.
fn adversarial_db() -> impl Strategy<Value = RankedDatabase> {
    vec((0.0f64..5.0, 0.0f64..1.0), 3..10).prop_map(|alts| {
        let x: Vec<Vec<(f64, f64)>> = alts
            .into_iter()
            .map(|(s, raw)| {
                let p = if raw < 0.5 { 0.85 + raw * 0.3 } else { 0.01 + (raw - 0.5) * 0.58 };
                vec![(s, p)]
            })
            .collect();
        RankedDatabase::from_scored_x_tuples(&x).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every step of a random insert/remove/collapse/reweight
    /// interleaving, the streaming delta matches the exact full rebuild.
    #[test]
    fn streaming_sequences_match_the_exact_oracle(
        db in db(),
        k in 1usize..6,
        steps in vec(step(), 1..8),
    ) {
        let mut eval = DeltaEvaluation::new(db, k).unwrap();
        for (i, s) in steps.iter().enumerate() {
            let Some((l, mutation)) = resolve(eval.database(), s) else { continue };
            eval.apply(l, &mutation).unwrap();
            assert_matches_exact(&eval, DELTA_TOLERANCE, &format!("step {i} ({mutation:?})"));
        }
    }

    /// Near-certain single-alternative databases force the saturated and
    /// ill-conditioned fallbacks; streaming membership changes must still
    /// track the oracle there.
    #[test]
    fn adversarial_streaming_sequences_match_the_exact_oracle(
        db in adversarial_db(),
        k in 1usize..4,
        steps in vec(step(), 1..6),
    ) {
        let mut eval = DeltaEvaluation::new(db, k).unwrap();
        for (i, s) in steps.iter().enumerate() {
            let Some((l, mutation)) = resolve(eval.database(), s) else { continue };
            eval.apply(l, &mutation).unwrap();
            assert_matches_exact(&eval, DELTA_TOLERANCE, &format!("step {i} ({mutation:?})"));
        }
    }
}

#[test]
fn shrinking_to_the_last_entity_stays_exact_and_the_final_removal_errors() {
    let db = RankedDatabase::from_scored_x_tuples(&[
        vec![(21.0, 0.6), (32.0, 0.4)],
        vec![(30.0, 0.7), (22.0, 0.3)],
        vec![(25.0, 0.4), (27.0, 0.6)],
        vec![(26.0, 1.0)],
    ])
    .unwrap();
    let mut eval = DeltaEvaluation::new(db, 2).unwrap();
    // Remove from the front so every surviving x-index shifts each time.
    for step in 0..3 {
        eval.apply(0, &XTupleMutation::Remove).unwrap();
        assert_eq!(eval.database().num_x_tuples(), 3 - step);
        assert_matches_exact(&eval, DELTA_TOLERANCE, &format!("shrink step {step}"));
    }
    // The last entity may not be removed: databases stay non-empty, same
    // as the null-collapse invariant.
    let err = eval.apply(0, &XTupleMutation::Remove).unwrap_err();
    assert!(matches!(err, pdb_core::DbError::EmptyDatabase), "{err:?}");
    assert_eq!(eval.database().num_x_tuples(), 1, "failed removal leaves the database intact");
    assert_matches_exact(&eval, DELTA_TOLERANCE, "after rejected removal");
}

#[test]
fn inserts_cross_the_k_geq_n_boundary_in_both_directions() {
    // Start with n = 2 < k = 4: every rank position is representable.
    let db =
        RankedDatabase::from_scored_x_tuples(&[vec![(10.0, 0.5), (9.0, 0.5)], vec![(8.0, 0.7)]])
            .unwrap();
    let mut eval = DeltaEvaluation::new(db, 4).unwrap();
    // Grow across the k = n boundary one insert at a time.
    for (i, (score, prob)) in [(7.0, 0.9), (11.0, 0.4), (6.5, 0.25)].iter().enumerate() {
        let l = eval.database().num_x_tuples();
        let mutation =
            XTupleMutation::Insert { key: format!("g{i}"), alternatives: vec![(*score, *prob)] };
        eval.apply(l, &mutation).unwrap();
        assert_matches_exact(&eval, DELTA_TOLERANCE, &format!("grow step {i}"));
    }
    // And shrink back below it.
    for step in 0..3 {
        eval.apply(0, &XTupleMutation::Remove).unwrap();
        assert_matches_exact(&eval, DELTA_TOLERANCE, &format!("shrink-back step {step}"));
    }
    assert_eq!(eval.database().num_x_tuples(), 2);
}

#[test]
fn reinserting_a_removed_entity_matches_a_fresh_evaluation() {
    let db = RankedDatabase::from_scored_x_tuples(&[
        vec![(21.0, 0.6), (32.0, 0.4)],
        vec![(30.0, 0.7), (22.0, 0.3)],
        vec![(25.0, 0.4), (27.0, 0.6)],
    ])
    .unwrap();
    let mut eval = DeltaEvaluation::new(db, 2).unwrap();
    let departed: Vec<(f64, f64)> = {
        let db = eval.database();
        db.x_tuple(1).members.iter().map(|&p| (db.tuple(p).score, db.tuple(p).prob)).collect()
    };
    eval.apply(1, &XTupleMutation::Remove).unwrap();
    assert_matches_exact(&eval, DELTA_TOLERANCE, "after remove");

    // The same alternatives come back under a fresh key: tuple ids are
    // newly allocated, the x-index lands at the end, and the maintained
    // probabilities agree with a from-scratch evaluation of the result.
    let l = eval.database().num_x_tuples();
    let mutation = XTupleMutation::Insert { key: "returned".into(), alternatives: departed };
    eval.apply(l, &mutation).unwrap();
    assert_matches_exact(&eval, DELTA_TOLERANCE, "after re-insert");
    assert_eq!(eval.database().num_x_tuples(), 3);
    assert_eq!(eval.database().x_tuple(l).key, "returned");
}
