//! Equivalence of the incremental delta engine and the full-rebuild
//! oracles.
//!
//! [`DeltaEvaluation`] promises that, after any sequence of
//! single-x-tuple mutations, its rank probabilities match what
//! [`rank_probabilities_exact`] computes from scratch on the mutated
//! database within the documented tolerance (rebuilt rows match the
//! incremental scan bit-for-bit; factor-swapped rows accumulate one
//! divide + one multiply of floating-point error per mutation).  These
//! tests pin that promise across proptest-generated collapse / reweight
//! sequences and on deterministic databases that force the saturated and
//! ill-conditioned (`q > MAX_DIVISOR_Q`) rebuild paths.

use pdb_core::RankedDatabase;
use pdb_engine::delta::{apply_mutation, DeltaEvaluation, XTupleMutation};
use pdb_engine::psr::{rank_probabilities, rank_probabilities_exact};
use proptest::collection::vec;
use proptest::prelude::*;

/// Documented tolerance of the delta path against the exact oracle, per
/// row entry, after a handful of chained mutations.
const DELTA_TOLERANCE: f64 = 1e-8;

fn assert_matches_exact(eval: &DeltaEvaluation, tol: f64, context: &str) {
    let db = eval.database();
    let rp = eval.rank_probabilities();
    let oracle = rank_probabilities_exact(db, rp.k()).unwrap();
    for pos in 0..db.len() {
        for h in 1..=rp.k() {
            let got = rp.rank_prob(pos, h);
            let want = oracle.rank_prob(pos, h);
            assert!(
                (got - want).abs() < tol,
                "{context}: pos {pos} h {h}: delta {got} vs exact {want}"
            );
        }
    }
}

/// One abstract mutation step, resolved against whatever database the
/// sequence has produced so far.
#[derive(Debug, Clone)]
struct Step {
    x_sel: usize,
    kind: u8,
    alt_sel: usize,
    weights: Vec<f64>,
}

fn step() -> impl Strategy<Value = Step> {
    (any::<usize>(), 0u8..3, any::<usize>(), vec(0.0f64..1.0, 8))
        .prop_map(|(x_sel, kind, alt_sel, weights)| Step { x_sel, kind, alt_sel, weights })
}

/// Resolve an abstract step into a concrete valid mutation for `db`, or
/// `None` when the step must be skipped (e.g. a null collapse that would
/// empty the database).
fn resolve(db: &RankedDatabase, s: &Step) -> Option<(usize, XTupleMutation)> {
    let m = db.num_x_tuples();
    let l = s.x_sel % m;
    let info = db.x_tuple(l);
    match s.kind {
        0 => {
            let keep_pos = info.members[s.alt_sel % info.members.len()];
            Some((l, XTupleMutation::CollapseToAlternative { keep_pos }))
        }
        1 if info.null_prob() > 1e-9 && m > 1 => Some((l, XTupleMutation::CollapseToNull)),
        1 => None,
        _ => {
            // Reweight: scale the drawn weights so the total mass stays in
            // (0, 1]; keeps the database valid for any draw.
            let raw: Vec<f64> = info
                .members
                .iter()
                .enumerate()
                .map(|(i, _)| s.weights[i % s.weights.len()])
                .collect();
            let total: f64 = raw.iter().sum();
            if total <= 0.0 {
                return None;
            }
            let target = 0.2 + 0.8 * s.weights[0];
            let probs = raw.iter().map(|w| w / total * target).collect();
            Some((l, XTupleMutation::Reweight { probs }))
        }
    }
}

fn x_tuple() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((0.0f64..100.0, 0.05f64..1.0), 1..5), 0.1f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        alts.into_iter().map(|(s, w)| (s, w / total * mass)).collect()
    })
}

fn db() -> impl Strategy<Value = RankedDatabase> {
    vec(x_tuple(), 2..8).prop_map(|x| RankedDatabase::from_scored_x_tuples(&x).unwrap())
}

/// An adversarial database family: clustered scores and near-certain
/// alternatives drive the PSR saturation machinery and make the divided
/// factors heavy, exercising the `q > MAX_DIVISOR_Q` rebuild paths.
fn adversarial_db() -> impl Strategy<Value = RankedDatabase> {
    // The raw probability draw is bimodal: half the x-tuples are
    // near-certain (0.85..1.0), the rest are light (0.01..0.3).
    vec((0.0f64..5.0, 0.0f64..1.0), 3..10).prop_map(|alts| {
        let x: Vec<Vec<(f64, f64)>> = alts
            .into_iter()
            .map(|(s, raw)| {
                let p = if raw < 0.5 { 0.85 + raw * 0.3 } else { 0.01 + (raw - 0.5) * 0.58 };
                vec![(s, p)]
            })
            .collect();
        RankedDatabase::from_scored_x_tuples(&x).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every mutation of a random sequence, the delta evaluation
    /// matches the exact full rebuild within the documented tolerance.
    #[test]
    fn mutation_sequences_match_the_exact_oracle(
        db in db(),
        k in 1usize..6,
        steps in vec(step(), 1..6),
    ) {
        let mut eval = DeltaEvaluation::new(db, k).unwrap();
        for (i, s) in steps.iter().enumerate() {
            let Some((l, mutation)) = resolve(eval.database(), s) else { continue };
            eval.apply(l, &mutation).unwrap();
            assert_matches_exact(&eval, DELTA_TOLERANCE, &format!("step {i} ({mutation:?})"));
        }
    }

    /// Near-certain single-alternative databases force saturation and the
    /// ill-conditioned rebuild fallbacks; the delta path must still track
    /// the oracle.
    #[test]
    fn adversarial_sequences_match_the_exact_oracle(
        db in adversarial_db(),
        k in 1usize..4,
        steps in vec(step(), 1..5),
    ) {
        let mut eval = DeltaEvaluation::new(db, k).unwrap();
        for (i, s) in steps.iter().enumerate() {
            let Some((l, mutation)) = resolve(eval.database(), s) else { continue };
            eval.apply(l, &mutation).unwrap();
            assert_matches_exact(&eval, DELTA_TOLERANCE, &format!("step {i} ({mutation:?})"));
        }
    }

    /// The delta result also matches the production (incremental PSR)
    /// rebuild — the path the adaptive session would otherwise take.
    #[test]
    fn single_collapse_matches_the_incremental_rebuild(db in db(), k in 1usize..6) {
        let rp = rank_probabilities(&db, k).unwrap();
        let info = db.x_tuple(0);
        let keep_pos = info.members[0];
        let (db2, rp2, _) =
            apply_mutation(&db, &rp, 0, &XTupleMutation::CollapseToAlternative { keep_pos })
                .unwrap();
        let rebuilt = rank_probabilities(&db2, k).unwrap();
        for pos in 0..db2.len() {
            for h in 1..=k {
                prop_assert!(
                    (rp2.rank_prob(pos, h) - rebuilt.rank_prob(pos, h)).abs() < DELTA_TOLERANCE
                );
            }
        }
    }
}

#[test]
fn windowed_scan_handles_a_mass_resurrection() {
    // A near-certain blocker shadows thirty single-alternative x-tuples at
    // k = 2; collapsing it to null makes every shadowed row ill-conditioned
    // (divided factor q = 0.99 > MAX_DIVISOR_Q) at once, which must select
    // the windowed-scan rebuild over thirty O(m·k) exact rebuilds.
    let mut x = vec![vec![(1000.0, 0.99)], vec![(999.0, 0.99)]];
    for i in 0..30 {
        x.push(vec![(500.0 - i as f64, 0.5)]);
    }
    let db = RankedDatabase::from_scored_x_tuples(&x).unwrap();
    let rp = rank_probabilities(&db, 2).unwrap();
    let (db2, rp2, stats) = apply_mutation(&db, &rp, 0, &XTupleMutation::CollapseToNull).unwrap();
    assert!(stats.rows_rebuilt >= 30, "all shadowed rows rebuilt: {stats:?}");
    assert_eq!(stats.windowed_scans, 1, "expected the windowed scan: {stats:?}");
    let oracle = rank_probabilities_exact(&db2, 2).unwrap();
    for pos in 0..db2.len() {
        for h in 1..=2 {
            assert!((rp2.rank_prob(pos, h) - oracle.rank_prob(pos, h)).abs() < 1e-9);
        }
    }
}

#[test]
fn few_ill_rows_use_the_per_row_exact_rebuild() {
    // Many well-conditioned rows above the blocker, only two shadowed rows
    // below it: per-row exact rebuilds are cheaper than scanning the whole
    // prefix, so no windowed scan must run.
    let mut x: Vec<Vec<(f64, f64)>> = Vec::new();
    for i in 0..12 {
        x.push(vec![(1000.0 - i as f64, 0.3), (500.0 - i as f64, 0.3), (100.0 - i as f64, 0.2)]);
    }
    x.push(vec![(50.0, 0.9)]); // the blocker (null mass 0.1)
    x.push(vec![(40.0, 0.5)]);
    x.push(vec![(30.0, 0.5)]);
    let db = RankedDatabase::from_scored_x_tuples(&x).unwrap();
    let l = 12;
    let rp = rank_probabilities(&db, 1).unwrap();
    let (db2, rp2, stats) = apply_mutation(&db, &rp, l, &XTupleMutation::CollapseToNull).unwrap();
    assert_eq!(stats.rows_rebuilt, 2, "{stats:?}");
    assert_eq!(stats.windowed_scans, 0, "{stats:?}");
    let oracle = rank_probabilities_exact(&db2, 1).unwrap();
    for pos in 0..db2.len() {
        assert!((rp2.rank_prob(pos, 1) - oracle.rank_prob(pos, 1)).abs() < 1e-9);
    }
}

#[test]
fn k_edge_cases() {
    let db = RankedDatabase::from_scored_x_tuples(&[
        vec![(10.0, 0.5), (9.0, 0.5)],
        vec![(8.0, 0.7)],
        vec![(7.0, 1.0)],
    ])
    .unwrap();
    // k = 0 is rejected up front, exactly like the full pipeline.
    assert!(DeltaEvaluation::new(db.clone(), 0).is_err());
    // k far beyond n: every rank position is representable and the delta
    // still matches the oracle.
    for k in [db.len(), db.len() + 7] {
        let mut eval = DeltaEvaluation::new(db.clone(), k).unwrap();
        eval.apply(0, &XTupleMutation::CollapseToAlternative { keep_pos: 0 }).unwrap();
        eval.apply(1, &XTupleMutation::CollapseToNull).unwrap();
        assert_matches_exact(&eval, 1e-9, "k >= n");
    }
}

#[test]
fn collapsing_every_x_tuple_yields_a_certain_database() {
    let db = RankedDatabase::from_scored_x_tuples(&[
        vec![(21.0, 0.6), (32.0, 0.4)],
        vec![(30.0, 0.7), (22.0, 0.3)],
        vec![(25.0, 0.4), (27.0, 0.6)],
        vec![(26.0, 1.0)],
    ])
    .unwrap();
    let mut eval = DeltaEvaluation::new(db, 2).unwrap();
    for l in 0..4 {
        let keep_pos = eval.database().x_tuple(l).members[0];
        eval.apply(l, &XTupleMutation::CollapseToAlternative { keep_pos }).unwrap();
    }
    let db = eval.database();
    assert!(db.tuples().all(|t| (t.prob - 1.0).abs() < 1e-12));
    assert_matches_exact(&eval, 1e-9, "fully collapsed");
    // Top-2 of a certain 4-tuple database is deterministic.
    assert_eq!(eval.rank_probabilities().nonzero_positions().len(), 2);
}
