//! The cleaning model: costs, sc-probabilities, budgets and cleaning plans.
//!
//! Section V-A of the paper models a cleaning operation `pclean(τ_l)` —
//! probing a sensor, phoning a movie viewer — as an action that
//!
//! * costs `c_l` budget units each time it is attempted,
//! * succeeds with the **sc-probability** `P_l`, and
//! * on success collapses the x-tuple to a single certain tuple (the true
//!   alternative, drawn according to the existential probabilities).
//!
//! A **cleaning plan** decides which x-tuples to clean and how many times
//! to attempt each (`X` and `M` in the paper); its total cost must stay
//! within the budget `C`.

use pdb_core::{DbError, Result};
use serde::{Deserialize, Serialize};

/// Per-x-tuple cleaning parameters: cost and success probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleaningSetup {
    costs: Vec<u64>,
    sc_probs: Vec<f64>,
}

impl CleaningSetup {
    /// Build a setup from per-x-tuple costs and sc-probabilities.
    ///
    /// Costs must be at least 1 (the paper models them as natural numbers);
    /// sc-probabilities must lie in `[0, 1]`.
    pub fn new(costs: Vec<u64>, sc_probs: Vec<f64>) -> Result<Self> {
        if costs.len() != sc_probs.len() {
            return Err(DbError::invalid_parameter(format!(
                "got {} costs but {} sc-probabilities",
                costs.len(),
                sc_probs.len()
            )));
        }
        if costs.is_empty() {
            return Err(DbError::invalid_parameter("cleaning setup covers no x-tuples"));
        }
        for (l, &c) in costs.iter().enumerate() {
            if c == 0 {
                return Err(DbError::invalid_parameter(format!(
                    "x-tuple {l} has zero cleaning cost; costs must be at least 1"
                )));
            }
        }
        for (l, &p) in sc_probs.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(DbError::InvalidProbability {
                    prob: p,
                    context: format!("sc-probability of x-tuple {l}"),
                });
            }
        }
        Ok(Self { costs, sc_probs })
    }

    /// A setup where every x-tuple has the same cost and sc-probability.
    pub fn uniform(num_x_tuples: usize, cost: u64, sc_prob: f64) -> Result<Self> {
        Self::new(vec![cost; num_x_tuples], vec![sc_prob; num_x_tuples])
    }

    /// Number of x-tuples covered.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the setup covers no x-tuples (never true after validation).
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Cost of one `pclean` attempt on x-tuple `l`.
    pub fn cost(&self, l: usize) -> u64 {
        self.costs[l]
    }

    /// Probability that one `pclean` attempt on x-tuple `l` succeeds.
    pub fn sc_prob(&self, l: usize) -> f64 {
        self.sc_probs[l]
    }

    /// All costs.
    pub fn costs(&self) -> &[u64] {
        &self.costs
    }

    /// All sc-probabilities.
    pub fn sc_probs(&self) -> &[f64] {
        &self.sc_probs
    }

    /// Probability that x-tuple `l` is successfully cleaned after `attempts`
    /// independent attempts: `1 − (1 − P_l)^attempts`.
    pub fn success_prob(&self, l: usize, attempts: u64) -> f64 {
        1.0 - (1.0 - self.sc_probs[l]).powi(attempts.min(i32::MAX as u64) as i32)
    }
}

/// A cleaning plan: how many `pclean` attempts to spend on every x-tuple.
///
/// `counts[l]` is `M_l` in the paper; x-tuples outside the selected set `X`
/// simply have a count of zero.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleaningPlan {
    counts: Vec<u64>,
}

impl CleaningPlan {
    /// The empty plan (no x-tuple is cleaned).
    pub fn empty(num_x_tuples: usize) -> Self {
        Self { counts: vec![0; num_x_tuples] }
    }

    /// Build a plan from per-x-tuple attempt counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self { counts }
    }

    /// Number of x-tuples the plan covers (cleaned or not).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the plan covers no x-tuples.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of `pclean` attempts assigned to x-tuple `l`.
    pub fn count(&self, l: usize) -> u64 {
        self.counts[l]
    }

    /// All attempt counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Add one attempt on x-tuple `l`.
    pub fn add_attempt(&mut self, l: usize) {
        self.counts[l] += 1;
    }

    /// Set the attempt count of x-tuple `l`.
    pub fn set_count(&mut self, l: usize, count: u64) {
        self.counts[l] = count;
    }

    /// The selected set `X`: indices of x-tuples with at least one attempt.
    pub fn selected(&self) -> Vec<usize> {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(l, _)| l).collect()
    }

    /// Total number of attempts across all x-tuples.
    pub fn total_attempts(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total cost of the plan under the given setup.
    pub fn total_cost(&self, setup: &CleaningSetup) -> u64 {
        self.counts.iter().zip(setup.costs()).map(|(&m, &c)| m * c).sum()
    }

    /// Check that the plan fits the setup and the budget.
    pub fn validate(&self, setup: &CleaningSetup, budget: u64) -> Result<()> {
        if self.counts.len() != setup.len() {
            return Err(DbError::invalid_parameter(format!(
                "plan covers {} x-tuples but the setup covers {}",
                self.counts.len(),
                setup.len()
            )));
        }
        let cost = self.total_cost(setup);
        if cost > budget {
            return Err(DbError::invalid_parameter(format!(
                "plan costs {cost} units, exceeding the budget of {budget}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_validation() {
        assert!(CleaningSetup::new(vec![1, 2], vec![0.5, 0.7]).is_ok());
        assert!(CleaningSetup::new(vec![1], vec![0.5, 0.7]).is_err());
        assert!(CleaningSetup::new(vec![], vec![]).is_err());
        assert!(CleaningSetup::new(vec![0], vec![0.5]).is_err());
        assert!(CleaningSetup::new(vec![1], vec![1.5]).is_err());
        assert!(CleaningSetup::new(vec![1], vec![f64::NAN]).is_err());
    }

    #[test]
    fn uniform_setup() {
        let s = CleaningSetup::uniform(3, 2, 0.8).unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.cost(1), 2);
        assert_eq!(s.sc_prob(2), 0.8);
        assert_eq!(s.costs(), &[2, 2, 2]);
        assert_eq!(s.sc_probs(), &[0.8, 0.8, 0.8]);
    }

    #[test]
    fn success_probability_grows_with_attempts() {
        let s = CleaningSetup::uniform(1, 1, 0.5).unwrap();
        assert_eq!(s.success_prob(0, 0), 0.0);
        assert!((s.success_prob(0, 1) - 0.5).abs() < 1e-12);
        assert!((s.success_prob(0, 2) - 0.75).abs() < 1e-12);
        assert!((s.success_prob(0, 3) - 0.875).abs() < 1e-12);
        // A certain cleaner succeeds on the first try.
        let s = CleaningSetup::uniform(1, 1, 1.0).unwrap();
        assert_eq!(s.success_prob(0, 1), 1.0);
        // A hopeless cleaner never succeeds.
        let s = CleaningSetup::uniform(1, 1, 0.0).unwrap();
        assert_eq!(s.success_prob(0, 10), 0.0);
    }

    #[test]
    fn plan_bookkeeping() {
        let setup = CleaningSetup::new(vec![2, 3, 5], vec![0.5, 0.5, 0.5]).unwrap();
        let mut plan = CleaningPlan::empty(3);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.total_attempts(), 0);
        assert_eq!(plan.total_cost(&setup), 0);
        assert!(plan.selected().is_empty());

        plan.add_attempt(0);
        plan.add_attempt(0);
        plan.set_count(2, 1);
        assert_eq!(plan.count(0), 2);
        assert_eq!(plan.counts(), &[2, 0, 1]);
        assert_eq!(plan.selected(), vec![0, 2]);
        assert_eq!(plan.total_attempts(), 3);
        assert_eq!(plan.total_cost(&setup), 2 * 2 + 5);
    }

    #[test]
    fn setup_and_plan_round_trip_through_json() {
        let setup = CleaningSetup::new(vec![2, 3, 5], vec![0.5, 0.25, 1.0]).unwrap();
        let json = serde_json::to_string(&setup).unwrap();
        let back: CleaningSetup = serde_json::from_str(&json).unwrap();
        assert_eq!(back, setup, "via {json}");

        let plan = CleaningPlan::from_counts(vec![2, 0, 1]);
        let json = serde_json::to_string(&plan).unwrap();
        let back: CleaningPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan, "via {json}");
    }

    #[test]
    fn plan_validation() {
        let setup = CleaningSetup::new(vec![2, 3], vec![0.5, 0.5]).unwrap();
        let plan = CleaningPlan::from_counts(vec![1, 1]);
        assert!(plan.validate(&setup, 5).is_ok());
        assert!(plan.validate(&setup, 4).is_err());
        let mismatched = CleaningPlan::from_counts(vec![1]);
        assert!(mismatched.validate(&setup, 100).is_err());
    }
}
