//! Adaptive (re-planning) cleaning.
//!
//! The paper plans the whole cleaning campaign up front and notes
//! (Section V-A) that "it is possible that an x-tuple is cleaned
//! successfully before performing the assigned number of cleaning
//! operations … the interesting problem about how to update the list so
//! that the rest of resources can be used to further improve the quality
//! will be studied in future work."  This module implements that adaptive
//! strategy as a simulator: probes are executed one at a time, the outcome
//! (success with the revealed value, or failure) is observed, and the
//! remaining budget is re-planned against the *updated* database.
//!
//! Re-planning needs the fresh per-x-tuple contribution vector `g(l, D′)`
//! after every observed outcome.  Two [`ReplanMode`]s provide it:
//!
//! * [`ReplanMode::Incremental`] (the default) runs the PSR + TP pipeline
//!   **once** at session start and then patches the rank probabilities
//!   through the delta engine ([`SharedEvaluation::apply_collapse`]) after
//!   each successful probe — O(k) per affected row instead of O(n·k) per
//!   probe;
//! * [`ReplanMode::FullRebuild`] re-runs the full pipeline after every
//!   probe.  It is kept as the correctness oracle and as the baseline the
//!   `adaptive_replanning` benchmark and the `adaptive-n` / `adaptive-c`
//!   experiments measure the delta path against.
//!
//! The simulator is used by the `adaptive_cleaning` example, by the
//! `pdb adaptive` CLI command and by tests comparing the adaptive policy
//! against the paper's static plans; it is not required for reproducing
//! any figure.

use crate::improvement::marginal_gain_raw;
use crate::model::CleaningSetup;
use pdb_core::{DbError, RankedDatabase, Result};
use pdb_quality::{quality_tp, DeltaStats, SharedEvaluation, XTupleMutation};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the session recomputes the contribution vector `g(l, D′)` after an
/// observed probe outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ReplanMode {
    /// One full PSR run up front, per-probe delta updates afterwards.
    #[default]
    Incremental,
    /// The full PSR + TP pipeline is re-run for every probe (the
    /// correctness oracle / benchmark baseline).
    FullRebuild,
}

impl std::fmt::Display for ReplanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplanMode::Incremental => "incremental",
            ReplanMode::FullRebuild => "full-rebuild",
        })
    }
}

/// Outcome of one adaptive cleaning session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// Quality of the database before any probe.
    pub initial_quality: f64,
    /// Quality of the database after the session.
    pub final_quality: f64,
    /// Number of probes performed (successful or not).
    pub probes: u64,
    /// Number of probes that succeeded.
    pub successes: u64,
    /// Budget actually spent.
    pub spent: u64,
    /// Accumulated delta-engine statistics (all zeros under
    /// [`ReplanMode::FullRebuild`]).
    pub delta_stats: DeltaStats,
}

impl AdaptiveOutcome {
    /// Realised quality improvement of the session.
    pub fn improvement(&self) -> f64 {
        self.final_quality - self.initial_quality
    }
}

/// The evaluation state a session re-plans from.
enum EvalState {
    Rebuild(RankedDatabase),
    Incremental { eval: SharedEvaluation<'static>, g: Vec<f64> },
}

impl EvalState {
    fn database(&self) -> &RankedDatabase {
        match self {
            EvalState::Rebuild(db) => db,
            EvalState::Incremental { eval, .. } => eval.database(),
        }
    }
}

/// Map a uniform draw `u ∈ [0, 1)` to the revealed alternative of x-tuple
/// `l` (a rank position), or to `None` for the implicit null alternative.
///
/// A *complete* x-tuple's member probabilities can sum to slightly below 1
/// (e.g. `0.9999999999999998`) purely from floating-point rounding; a draw
/// landing in that phantom gap must not be routed to a null alternative
/// the model says does not exist.  Null is therefore only selected when
/// the x-tuple genuinely has missing mass; otherwise the residual `u` is
/// rounding noise and the last alternative with positive probability is
/// selected.
fn select_alternative(db: &RankedDatabase, l: usize, u: f64) -> Option<usize> {
    let info = db.x_tuple(l);
    let mut u = u;
    let mut last_positive = None;
    for &pos in &info.members {
        let p = db.tuple(pos).prob;
        if p > 0.0 {
            last_positive = Some(pos);
            if u < p {
                return Some(pos);
            }
            u -= p;
        }
    }
    if info.null_prob() <= pdb_core::PROB_EPSILON {
        last_positive
    } else {
        None
    }
}

/// Run one adaptive cleaning session with the default
/// [`ReplanMode::Incremental`] re-planning.
///
/// See [`run_adaptive_session_with`].
pub fn run_adaptive_session<R: Rng + ?Sized>(
    db: &RankedDatabase,
    setup: &CleaningSetup,
    k: usize,
    budget: u64,
    rng: &mut R,
) -> Result<AdaptiveOutcome> {
    run_adaptive_session_with(db, setup, k, budget, ReplanMode::default(), rng)
}

/// Run one adaptive cleaning session.
///
/// At every step the x-tuple with the best marginal-gain-per-cost ratio
/// *under the current database state* is probed once (greedy re-planning);
/// the probe succeeds with its sc-probability, in which case the true
/// alternative is revealed (drawn from the existential probabilities) and
/// the x-tuple collapses.  The session ends when the budget cannot afford
/// any useful probe or no candidate remains.
///
/// An x-tuple that has already collapsed (it is now certain, or resolved
/// to null and left the database) is never probed again, so budget is only
/// ever spent on entities that still carry ambiguity.  If the *last*
/// remaining entity resolves to null the database becomes empty and
/// certain: the session ends with a final quality of 0.  Any other
/// collapse failure is reported as an error rather than swallowed.
///
/// `setup` indexes x-tuples by their position in the *original* database;
/// the simulator tracks the original index of every surviving x-tuple, so
/// costs and sc-probabilities stay attached to the right entity even after
/// null collapses remove x-tuples (and shift the indices) of the evolving
/// database.
pub fn run_adaptive_session_with<R: Rng + ?Sized>(
    db: &RankedDatabase,
    setup: &CleaningSetup,
    k: usize,
    budget: u64,
    mode: ReplanMode,
    rng: &mut R,
) -> Result<AdaptiveOutcome> {
    if setup.len() != db.num_x_tuples() {
        return Err(DbError::invalid_parameter(format!(
            "setup covers {} x-tuples but the database has {}",
            setup.len(),
            db.num_x_tuples()
        )));
    }
    let mut remaining = budget;
    let mut probes = 0u64;
    let mut successes = 0u64;
    let mut delta_stats = DeltaStats::default();
    // Per *original* x-tuple bookkeeping: number of failed probes already
    // spent (the marginal gain of the next probe shrinks accordingly,
    // Lemma 4) and whether the entity has already collapsed.
    let mut failed_attempts = vec![0u64; db.num_x_tuples()];
    let mut resolved = vec![false; db.num_x_tuples()];
    // Current x-index -> original x-index.  Collapse-to-alternative keeps
    // indices stable; collapse-to-null removes the entry.
    let mut orig_of: Vec<usize> = (0..db.num_x_tuples()).collect();

    let initial_quality;
    let mut state = match mode {
        ReplanMode::Incremental => {
            let eval = SharedEvaluation::from_owned(db.clone(), k)?;
            let breakdown = eval.quality_breakdown();
            initial_quality = breakdown.quality;
            EvalState::Incremental { eval, g: breakdown.x_tuple_contribution }
        }
        ReplanMode::FullRebuild => {
            initial_quality = quality_tp(db, k)?;
            EvalState::Rebuild(db.clone())
        }
    };
    // Set when the last entity resolves to null: the database is empty and
    // certain, so its quality is 0 by definition.
    let mut emptied = false;

    loop {
        // Re-plan against the current state: obtain the per-x-tuple
        // contributions g(l, D′) and pick the best affordable probe.
        let rebuilt_g;
        let g: &[f64] = match &state {
            EvalState::Rebuild(current) => {
                rebuilt_g =
                    SharedEvaluation::new(current, k)?.quality_breakdown().x_tuple_contribution;
                &rebuilt_g
            }
            EvalState::Incremental { g, .. } => g,
        };
        let mut best: Option<(f64, usize)> = None;
        for (l, &gl) in g.iter().enumerate() {
            // Lemma 5: only x-tuples with a non-zero contribution are worth
            // cleaning — and entities that already collapsed never are,
            // regardless of floating-point residue in the updated g.
            if gl >= -crate::improvement::G_EPSILON {
                continue;
            }
            let ol = orig_of[l];
            if resolved[ol] {
                continue;
            }
            let cost = setup.cost(ol);
            if cost > remaining || setup.sc_prob(ol) <= 0.0 {
                continue;
            }
            let gain = marginal_gain_raw(gl, setup.sc_prob(ol), failed_attempts[ol] + 1);
            let ratio = gain / cost as f64;
            if ratio > 0.0 && best.is_none_or(|(r, _)| ratio > r) {
                best = Some((ratio, l));
            }
        }
        let Some((_, l)) = best else { break };
        let ol = orig_of[l];

        remaining -= setup.cost(ol);
        probes += 1;
        if rng.gen::<f64>() >= setup.sc_prob(ol) {
            failed_attempts[ol] += 1;
            continue;
        }
        successes += 1;
        // Reveal the true alternative of x-tuple l and collapse it.
        let chosen = select_alternative(state.database(), l, rng.gen());
        let mutation = match chosen {
            Some(pos) => XTupleMutation::CollapseToAlternative { keep_pos: pos },
            None => XTupleMutation::CollapseToNull,
        };
        let applied = match &mut state {
            EvalState::Rebuild(current) => match &mutation {
                XTupleMutation::CollapseToAlternative { keep_pos } => {
                    current.collapse_x_tuple_in_place(l, *keep_pos)
                }
                XTupleMutation::CollapseToNull => current.collapse_x_tuple_to_null_in_place(l),
                // The probe planner only emits collapse mutations; anything
                // else reaching this arm is a logic error, reported rather
                // than panicking on the session path.
                XTupleMutation::Reweight { .. }
                | XTupleMutation::Insert { .. }
                | XTupleMutation::Remove => {
                    Err(DbError::invalid_parameter("probe outcomes only collapse x-tuples"))
                }
            },
            EvalState::Incremental { eval, g } => {
                eval.apply_collapse_in_place(l, &mutation).map(|update| {
                    *g = update.g;
                    delta_stats.accumulate(&update.stats);
                })
            }
        };
        match applied {
            Ok(()) => match chosen {
                Some(_) => resolved[ol] = true,
                None => {
                    orig_of.remove(l);
                }
            },
            // The entity that resolved to null was the last one: the
            // database is now empty and fully certain.
            Err(DbError::EmptyDatabase) => {
                emptied = true;
                break;
            }
            // Anything else is a logic error — report it, don't swallow it.
            Err(e) => return Err(e),
        }
    }

    let final_quality = if emptied {
        0.0
    } else {
        match &state {
            EvalState::Rebuild(current) => quality_tp(current, k)?,
            // The evaluation's cached quality is maintained by every
            // apply_collapse_in_place, so this is a cache hit.
            EvalState::Incremental { eval, .. } => eval.quality(),
        }
    };
    Ok(AdaptiveOutcome {
        initial_quality,
        final_quality,
        probes,
        successes,
        spent: budget - remaining,
        delta_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::plan_greedy;
    use crate::improvement::{expected_improvement, simulate_cleaning, CleaningContext};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn adaptive_outcome_round_trips_through_json() {
        let db = udb1();
        let setup = CleaningSetup::uniform(db.num_x_tuples(), 1, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = run_adaptive_session(&db, &setup, 2, 5, &mut rng).unwrap();
        let json = serde_json::to_string(&outcome).unwrap();
        let back: AdaptiveOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, outcome, "via {json}");
    }

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    #[test]
    fn validates_setup_arity() {
        let db = udb1();
        let setup = CleaningSetup::uniform(3, 1, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(run_adaptive_session(&db, &setup, 2, 10, &mut rng).is_err());
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let db = udb1();
        let setup = CleaningSetup::uniform(4, 1, 0.9).unwrap();
        for mode in [ReplanMode::Incremental, ReplanMode::FullRebuild] {
            let mut rng = StdRng::seed_from_u64(1);
            let outcome = run_adaptive_session_with(&db, &setup, 2, 0, mode, &mut rng).unwrap();
            assert_eq!(outcome.probes, 0);
            assert_eq!(outcome.spent, 0);
            assert_eq!(outcome.improvement(), 0.0);
        }
    }

    #[test]
    fn certain_probes_with_ample_budget_remove_all_ambiguity() {
        let db = udb1();
        let setup = CleaningSetup::uniform(4, 1, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = run_adaptive_session(&db, &setup, 2, 100, &mut rng).unwrap();
        assert!(outcome.final_quality.abs() < 1e-9);
        assert_eq!(outcome.successes, outcome.probes);
        // Only the three uncertain sensors ever need probing.
        assert!(outcome.probes <= 3);
        assert!(outcome.spent <= 3);
    }

    /// Regression (re-probe audit): with certain probes, every probe must
    /// collapse a *distinct* entity — a collapsed (now-certain) x-tuple can
    /// never be re-probed and burn budget, in either re-planning mode.
    /// With k ≥ n every uncertain entity keeps contributing ambiguity
    /// until it collapses, so the probe count is pinned to *exactly* the
    /// number of initially-uncertain x-tuples.
    #[test]
    fn collapsed_entities_are_never_reprobed() {
        let db = udb1();
        let setup = CleaningSetup::uniform(4, 1, 1.0).unwrap();
        for mode in [ReplanMode::Incremental, ReplanMode::FullRebuild] {
            for seed in 0..40 {
                let mut rng = StdRng::seed_from_u64(seed);
                let outcome =
                    run_adaptive_session_with(&db, &setup, 7, 100, mode, &mut rng).unwrap();
                assert_eq!(outcome.probes, 3, "mode {mode}, seed {seed}: {outcome:?}");
                assert_eq!(outcome.successes, 3);
                assert_eq!(outcome.spent, 3);
                assert!(outcome.final_quality.abs() < 1e-9);
            }
        }
    }

    /// Regression (null-collapse index remap): when entities can resolve
    /// to null, the x-indices of the evolving database shift; costs,
    /// sc-probabilities and probe counts must stay attached to the right
    /// entity, and every entity still collapses exactly once.
    #[test]
    fn null_collapses_keep_setup_indices_aligned() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)],
            vec![(9.0, 0.5)],
            vec![(8.0, 0.5)],
            vec![(7.0, 1.0)],
        ])
        .unwrap();
        // Distinct costs so a mis-mapped index would change `spent`.
        let setup = CleaningSetup::new(vec![1, 2, 4, 8], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        for mode in [ReplanMode::Incremental, ReplanMode::FullRebuild] {
            for seed in 0..40 {
                let mut rng = StdRng::seed_from_u64(seed);
                let outcome =
                    run_adaptive_session_with(&db, &setup, 4, 100, mode, &mut rng).unwrap();
                // The three uncertain entities are probed exactly once each
                // (x-tuple 3 is certain; k ≥ n keeps each one a candidate
                // until it collapses), whatever mix of null/alternative
                // outcomes the seed produces.
                assert_eq!(outcome.probes, 3, "mode {mode}, seed {seed}: {outcome:?}");
                assert_eq!(outcome.spent, 1 + 2 + 4, "mode {mode}, seed {seed}");
                assert!(outcome.final_quality.abs() < 1e-9);
            }
        }
    }

    /// Sampling-drift bugfix: a complete x-tuple whose member mass rounds
    /// to just below 1 must never be routed to a null collapse.
    #[test]
    fn fp_drift_never_selects_a_phantom_null() {
        // 0.3 + 0.3 + 0.3 + 0.1 sums to 0.9999999999999999 in f64, yet the
        // x-tuple is logically complete.
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.3), (9.0, 0.3), (8.0, 0.3), (7.0, 0.1)],
            vec![(6.0, 1.0)],
        ])
        .unwrap();
        assert!(db.x_tuple(0).null_prob() > 0.0, "the phantom gap exists");
        assert!(db.x_tuple(0).null_prob() <= pdb_core::PROB_EPSILON);
        // A draw landing at (or beyond) the summed mass selects the last
        // positive-probability alternative instead of null.
        let just_below_one = 1.0 - f64::EPSILON / 2.0;
        assert_eq!(select_alternative(&db, 0, just_below_one), Some(3));
        assert_eq!(select_alternative(&db, 0, 0.95), Some(3));
        // Ordinary draws still hit their alternative...
        assert_eq!(select_alternative(&db, 0, 0.0), Some(0));
        assert_eq!(select_alternative(&db, 0, 0.65), Some(2));
        // ...and genuine missing mass still resolves to null.
        let partial =
            RankedDatabase::from_scored_x_tuples(&[vec![(10.0, 0.6)], vec![(6.0, 1.0)]]).unwrap();
        assert_eq!(select_alternative(&partial, 0, 0.7), None);
        assert_eq!(select_alternative(&partial, 0, 0.5), Some(0));
    }

    /// When the last entity resolves to null the session ends cleanly with
    /// the (empty, certain) database's quality of zero — the budget
    /// bookkeeping still reflects the probe that emptied it.
    #[test]
    fn emptying_the_database_ends_the_session_with_zero_quality() {
        let db = RankedDatabase::from_scored_x_tuples(&[vec![(10.0, 0.5)]]).unwrap();
        let setup = CleaningSetup::uniform(1, 1, 1.0).unwrap();
        let mut seen_null = false;
        for mode in [ReplanMode::Incremental, ReplanMode::FullRebuild] {
            for seed in 0..20 {
                let mut rng = StdRng::seed_from_u64(seed);
                let outcome = run_adaptive_session_with(&db, &setup, 1, 5, mode, &mut rng).unwrap();
                assert_eq!(outcome.probes, 1);
                assert_eq!(outcome.spent, 1);
                assert!(outcome.final_quality.abs() < 1e-12);
                assert!(outcome.improvement() > 0.0);
                if outcome.successes == 1 {
                    seen_null = true;
                }
            }
        }
        assert!(seen_null, "some seed resolved the entity (to null or its alternative)");
    }

    /// The incremental session takes exactly the same probes as the
    /// full-rebuild oracle and lands on the same realised quality.
    #[test]
    fn incremental_and_rebuild_sessions_agree() {
        let db = udb1();
        let setup = CleaningSetup::new(vec![2, 3, 1, 4], vec![0.4, 0.6, 0.8, 0.5]).unwrap();
        for seed in 0..60 {
            let mut rng = StdRng::seed_from_u64(seed);
            let inc =
                run_adaptive_session_with(&db, &setup, 2, 6, ReplanMode::Incremental, &mut rng)
                    .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let full =
                run_adaptive_session_with(&db, &setup, 2, 6, ReplanMode::FullRebuild, &mut rng)
                    .unwrap();
            assert_eq!(inc.probes, full.probes, "seed {seed}");
            assert_eq!(inc.successes, full.successes, "seed {seed}");
            assert_eq!(inc.spent, full.spent, "seed {seed}");
            assert!(
                (inc.final_quality - full.final_quality).abs() < 1e-8,
                "seed {seed}: {} vs {}",
                inc.final_quality,
                full.final_quality
            );
            // Only the incremental mode reports delta activity.
            assert_eq!(full.delta_stats, DeltaStats::default());
            assert_eq!(u64::from(inc.delta_stats.rows_dropped > 0), inc.successes.min(1));
        }
    }

    #[test]
    fn never_spends_more_than_the_budget_and_never_hurts() {
        let db = udb1();
        let setup = CleaningSetup::new(vec![2, 3, 1, 4], vec![0.4, 0.6, 0.8, 0.5]).unwrap();
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = run_adaptive_session(&db, &setup, 2, 6, &mut rng).unwrap();
            assert!(outcome.spent <= 6);
            assert!(outcome.improvement() >= -1e-12, "cleaning never decreases quality");
            assert!(outcome.successes <= outcome.probes);
        }
    }

    #[test]
    fn adaptive_replanning_beats_the_static_plan_on_average() {
        // With unreliable probes, the static plan wastes budget on x-tuples
        // that happen to succeed early (or keeps probing hopeless ones),
        // while the adaptive policy redirects the remaining budget.  On
        // average the adaptive realised improvement should be at least the
        // static plan's.
        let db = udb1();
        let setup = CleaningSetup::new(vec![1, 1, 1, 1], vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        let k = 2;
        let budget = 4;
        let ctx = CleaningContext::prepare(&db, k).unwrap();
        let static_plan = plan_greedy(&ctx, &setup, budget).unwrap();
        let static_expected = expected_improvement(&ctx, &setup, &static_plan);

        let trials = 600;
        let mut adaptive_total = 0.0;
        let mut static_total = 0.0;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            adaptive_total +=
                run_adaptive_session(&db, &setup, k, budget, &mut rng).unwrap().improvement();
            let mut rng = StdRng::seed_from_u64(10_000 + seed);
            let cleaned = simulate_cleaning(&db, &setup, &static_plan, &mut rng).unwrap().unwrap();
            static_total += quality_tp(&cleaned, k).unwrap() - ctx.quality;
        }
        let adaptive_mean = adaptive_total / trials as f64;
        let static_mean = static_total / trials as f64;
        // Sanity: the static Monte-Carlo mean tracks Theorem 2.
        assert!((static_mean - static_expected).abs() < 0.1);
        assert!(
            adaptive_mean + 0.02 >= static_mean,
            "adaptive {adaptive_mean} should not lose to static {static_mean}"
        );
    }
}
