//! Adaptive (re-planning) cleaning.
//!
//! The paper plans the whole cleaning campaign up front and notes
//! (Section V-A) that "it is possible that an x-tuple is cleaned
//! successfully before performing the assigned number of cleaning
//! operations … the interesting problem about how to update the list so
//! that the rest of resources can be used to further improve the quality
//! will be studied in future work."  This module implements that adaptive
//! strategy as a simulator: probes are executed one at a time, the outcome
//! (success with the revealed value, or failure) is observed, and the
//! remaining budget is re-planned against the *updated* database.
//!
//! The simulator is used by the `adaptive_cleaning` example and by tests
//! comparing the adaptive policy against the paper's static plans; it is
//! not required for reproducing any figure.

use crate::improvement::{marginal_gain, CleaningContext};
use crate::model::CleaningSetup;
use pdb_core::{DbError, RankedDatabase, Result};
use pdb_quality::quality_tp;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Outcome of one adaptive cleaning session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// Quality of the database before any probe.
    pub initial_quality: f64,
    /// Quality of the database after the session.
    pub final_quality: f64,
    /// Number of probes performed (successful or not).
    pub probes: u64,
    /// Number of probes that succeeded.
    pub successes: u64,
    /// Budget actually spent.
    pub spent: u64,
}

impl AdaptiveOutcome {
    /// Realised quality improvement of the session.
    pub fn improvement(&self) -> f64 {
        self.final_quality - self.initial_quality
    }
}

/// Run one adaptive cleaning session.
///
/// At every step the x-tuple with the best marginal-gain-per-cost ratio
/// *under the current database state* is probed once (greedy re-planning);
/// the probe succeeds with its sc-probability, in which case the true
/// alternative is revealed (drawn from the existential probabilities) and
/// the x-tuple collapses.  The session ends when the budget cannot afford
/// any useful probe or no candidate remains.
///
/// `setup` indexes x-tuples by their position in the *original* database;
/// the simulator keeps that indexing stable by collapsing x-tuples in place
/// rather than dropping them.
pub fn run_adaptive_session<R: Rng + ?Sized>(
    db: &RankedDatabase,
    setup: &CleaningSetup,
    k: usize,
    budget: u64,
    rng: &mut R,
) -> Result<AdaptiveOutcome> {
    if setup.len() != db.num_x_tuples() {
        return Err(DbError::invalid_parameter(format!(
            "setup covers {} x-tuples but the database has {}",
            setup.len(),
            db.num_x_tuples()
        )));
    }
    let initial_quality = quality_tp(db, k)?;
    let mut current = db.clone();
    let mut remaining = budget;
    let mut probes = 0u64;
    let mut successes = 0u64;
    // Number of failed probes already spent on each x-tuple; the marginal
    // gain of the next probe shrinks accordingly (Lemma 4).
    let mut failed_attempts = vec![0u64; db.num_x_tuples()];

    loop {
        // Re-plan against the current state: recompute the per-x-tuple
        // contributions g(l, D') and pick the best affordable probe.
        let ctx = CleaningContext::prepare(&current, k)?;
        let mut best: Option<(f64, usize)> = None;
        for l in ctx.candidates() {
            let cost = setup.cost(l);
            if cost > remaining || setup.sc_prob(l) <= 0.0 {
                continue;
            }
            let gain = marginal_gain(&ctx, setup, l, failed_attempts[l] + 1);
            let ratio = gain / cost as f64;
            if ratio > 0.0 && best.is_none_or(|(r, _)| ratio > r) {
                best = Some((ratio, l));
            }
        }
        let Some((_, l)) = best else { break };

        remaining -= setup.cost(l);
        probes += 1;
        if rng.gen::<f64>() < setup.sc_prob(l) {
            successes += 1;
            failed_attempts[l] = 0;
            // Reveal the true alternative of x-tuple l and collapse it.
            let members = current.x_tuple(l).members.clone();
            let mut u: f64 = rng.gen();
            let mut chosen = None;
            for &pos in &members {
                let p = current.tuple(pos).prob;
                if u < p {
                    chosen = Some(pos);
                    break;
                }
                u -= p;
            }
            current = match chosen {
                Some(pos) => current.collapse_x_tuple(l, pos)?,
                // The true value is the null alternative; the entity drops
                // out (only possible when the x-tuple had missing mass).
                None => match current.collapse_x_tuple_to_null(l) {
                    Ok(next) => next,
                    // Collapsing the last x-tuple to null would empty the
                    // database; treat the entity as resolved and stop.
                    Err(_) => break,
                },
            };
        } else {
            failed_attempts[l] += 1;
        }
    }

    let final_quality = quality_tp(&current, k)?;
    Ok(AdaptiveOutcome {
        initial_quality,
        final_quality,
        probes,
        successes,
        spent: budget - remaining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::plan_greedy;
    use crate::improvement::{expected_improvement, simulate_cleaning};
    use rand::{rngs::StdRng, SeedableRng};

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    #[test]
    fn validates_setup_arity() {
        let db = udb1();
        let setup = CleaningSetup::uniform(3, 1, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(run_adaptive_session(&db, &setup, 2, 10, &mut rng).is_err());
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let db = udb1();
        let setup = CleaningSetup::uniform(4, 1, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = run_adaptive_session(&db, &setup, 2, 0, &mut rng).unwrap();
        assert_eq!(outcome.probes, 0);
        assert_eq!(outcome.spent, 0);
        assert_eq!(outcome.improvement(), 0.0);
    }

    #[test]
    fn certain_probes_with_ample_budget_remove_all_ambiguity() {
        let db = udb1();
        let setup = CleaningSetup::uniform(4, 1, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = run_adaptive_session(&db, &setup, 2, 100, &mut rng).unwrap();
        assert!(outcome.final_quality.abs() < 1e-9);
        assert_eq!(outcome.successes, outcome.probes);
        // Only the three uncertain sensors ever need probing.
        assert!(outcome.probes <= 3);
        assert!(outcome.spent <= 3);
    }

    #[test]
    fn never_spends_more_than_the_budget_and_never_hurts() {
        let db = udb1();
        let setup = CleaningSetup::new(vec![2, 3, 1, 4], vec![0.4, 0.6, 0.8, 0.5]).unwrap();
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = run_adaptive_session(&db, &setup, 2, 6, &mut rng).unwrap();
            assert!(outcome.spent <= 6);
            assert!(outcome.improvement() >= -1e-12, "cleaning never decreases quality");
            assert!(outcome.successes <= outcome.probes);
        }
    }

    #[test]
    fn adaptive_replanning_beats_the_static_plan_on_average() {
        // With unreliable probes, the static plan wastes budget on x-tuples
        // that happen to succeed early (or keeps probing hopeless ones),
        // while the adaptive policy redirects the remaining budget.  On
        // average the adaptive realised improvement should be at least the
        // static plan's.
        let db = udb1();
        let setup = CleaningSetup::new(vec![1, 1, 1, 1], vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        let k = 2;
        let budget = 4;
        let ctx = CleaningContext::prepare(&db, k).unwrap();
        let static_plan = plan_greedy(&ctx, &setup, budget).unwrap();
        let static_expected = expected_improvement(&ctx, &setup, &static_plan);

        let trials = 600;
        let mut adaptive_total = 0.0;
        let mut static_total = 0.0;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            adaptive_total +=
                run_adaptive_session(&db, &setup, k, budget, &mut rng).unwrap().improvement();
            let mut rng = StdRng::seed_from_u64(10_000 + seed);
            let cleaned = simulate_cleaning(&db, &setup, &static_plan, &mut rng).unwrap().unwrap();
            static_total += quality_tp(&cleaned, k).unwrap() - ctx.quality;
        }
        let adaptive_mean = adaptive_total / trials as f64;
        let static_mean = static_total / trials as f64;
        // Sanity: the static Monte-Carlo mean tracks Theorem 2.
        assert!((static_mean - static_expected).abs() < 0.1);
        assert!(
            adaptive_mean + 0.02 >= static_mean,
            "adaptive {adaptive_mean} should not lose to static {static_mean}"
        );
    }
}
