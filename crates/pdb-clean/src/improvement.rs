//! Expected quality improvement of a cleaning plan.
//!
//! The central quantity of the cleaning problem (Definition 6 of the paper)
//! is the expected improvement `I(X, M, D, Q) = E[S(D′, Q)] − S(D, Q)` over
//! the random outcome `D′` of executing the plan.  Theorem 2 collapses the
//! expectation into closed form:
//!
//! ```text
//! I(X, M, D, Q) = − Σ_{τ_l ∈ X} (1 − (1 − P_l)^{M_l}) · g(l, D)
//! ```
//!
//! where `g(l, D) = Σ_{tᵢ ∈ τ_l} ωᵢ·pᵢ` is x-tuple `l`'s contribution to the
//! quality score.  This module provides that closed form, the marginal gain
//! `b(l, D, j)` of the `j`-th attempt (Equation 21), the brute-force
//! expectation over all possible cleaned databases (Equation 17 — the test
//! oracle for Theorem 2), and a Monte-Carlo cleaning simulator that actually
//! executes a plan.

use crate::model::{CleaningPlan, CleaningSetup};
use pdb_core::{DbError, RankedDatabase, Result, TupleId};
use pdb_quality::{quality_tp, BatchQuality, SharedEvaluation};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// `g(l, D)` values below this magnitude are treated as zero: cleaning such
/// an x-tuple cannot measurably improve quality (Lemma 5).
pub const G_EPSILON: f64 = 1e-12;

/// Everything the cleaning algorithms need to know about the database and
/// the query: the quality score, its per-x-tuple decomposition `g(l, D)`,
/// and the per-x-tuple top-k probability mass (used by the RandP heuristic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleaningContext {
    /// The `k` of the top-k query being improved.
    pub k: usize,
    /// The PWS-quality `S(D, Q)` of the query on the un-cleaned database.
    pub quality: f64,
    /// `g(l, D)` for every x-tuple.
    pub g: Vec<f64>,
    /// `Σ_{tᵢ ∈ τ_l} pᵢ` for every x-tuple (RandP's selection weight).
    pub x_topk: Vec<f64>,
}

impl CleaningContext {
    /// Run the shared PSR + TP evaluation once and extract the quantities
    /// the cleaning algorithms need.
    pub fn prepare(db: &RankedDatabase, k: usize) -> Result<Self> {
        let shared = SharedEvaluation::new(db, k)?;
        Ok(Self::from_shared(&shared))
    }

    /// Extract the cleaning context from an existing shared evaluation
    /// (avoids re-running PSR when the caller already has one).
    pub fn from_shared(shared: &SharedEvaluation<'_>) -> Self {
        let db = shared.database();
        let breakdown = shared.quality_breakdown();
        let mut x_topk = vec![0.0; db.num_x_tuples()];
        for pos in 0..db.len() {
            x_topk[db.tuple(pos).x_index] += shared.rank_probabilities().top_k_prob(pos);
        }
        Self {
            k: shared.k(),
            quality: breakdown.quality,
            g: breakdown.x_tuple_contribution,
            x_topk,
        }
    }

    /// The *aggregate* cleaning context of a whole registered query set:
    /// quality and decomposition are the weighted sums `Σ_q w_q·S_q` and
    /// `g_agg(l) = Σ_q w_q·g_q(l)` served by the batch's one shared PSR
    /// run.
    ///
    /// The aggregate is a fixed non-negative combination of per-query
    /// qualities, so Theorem 2 (and Lemmas 4/5 behind the planners) apply
    /// to it verbatim: every planner in [`crate::algorithms`] runs
    /// unchanged on the returned context and then maximizes the expected
    /// improvement summed over every registered query — the
    /// pick-one-plan-for-all-tenants step of a multi-query deployment.
    pub fn from_batch(batch: &BatchQuality<'_>) -> Self {
        let db = batch.database();
        let (g, combined) = batch.aggregate_parts();
        let quality = g.iter().sum();
        let mut x_topk = vec![0.0; db.num_x_tuples()];
        for pos in 0..db.len() {
            x_topk[db.tuple(pos).x_index] += combined[pos];
        }
        Self { k: batch.evaluation().k_max(), quality, g, x_topk }
    }

    /// Number of x-tuples.
    pub fn num_x_tuples(&self) -> usize {
        self.g.len()
    }

    /// The candidate set `Z`: x-tuples whose contribution `g(l, D)` is
    /// non-zero, i.e. the only ones worth cleaning (Lemma 5 of the paper).
    pub fn candidates(&self) -> Vec<usize> {
        (0..self.g.len()).filter(|&l| self.g[l] < -G_EPSILON).collect()
    }
}

/// The marginal gain `b(l, D, j)` of raising x-tuple `l`'s attempt count
/// from `j − 1` to `j` (Equation 21): `−(1 − P_l)^{j−1} · P_l · g(l, D)`.
///
/// Monotonically non-increasing in `j` (Lemma 4), which is what makes the
/// greedy algorithm near-optimal.
pub fn marginal_gain(ctx: &CleaningContext, setup: &CleaningSetup, l: usize, j: u64) -> f64 {
    marginal_gain_raw(ctx.g[l], setup.sc_prob(l), j)
}

/// [`marginal_gain`] from raw components: the x-tuple's quality
/// contribution `g(l, D)` and its sc-probability.  Used by callers whose
/// `g` vector comes from an incrementally maintained evaluation rather
/// than a [`CleaningContext`].
pub fn marginal_gain_raw(g_l: f64, sc_prob: f64, j: u64) -> f64 {
    if j == 0 {
        return 0.0;
    }
    -(1.0 - sc_prob).powi((j - 1).min(i32::MAX as u64) as i32) * sc_prob * g_l
}

/// Number of per-x-tuple terms per summation chunk.  Both the sequential
/// and the parallel path sum chunk-by-chunk in index order, so their
/// floating-point results are bit-for-bit identical.
const IMPROVEMENT_CHUNK: usize = 1024;

/// Minimum number of per-candidate evaluations before the parallel path
/// reaches for threads.  Each term costs only nanoseconds, and the
/// (pool-less) rayon stand-in pays a thread spawn/join per call, so the
/// input must be large enough to amortize that; below the gate the
/// parallel entry points run the identical chunked evaluation inline.
#[cfg(feature = "parallel")]
const PARALLEL_MIN_ITEMS: usize = 16 * IMPROVEMENT_CHUNK;

/// The contribution of x-tuples `lo..hi` to Theorem 2's sum.
fn improvement_chunk(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    plan: &CleaningPlan,
    lo: usize,
    hi: usize,
) -> f64 {
    let mut total = 0.0;
    for l in lo..hi {
        let m = plan.count(l);
        if m > 0 {
            total -= setup.success_prob(l, m) * ctx.g[l];
        }
    }
    total
}

/// The chunk boundaries covering `0..m`, allocation-free (the evaluation
/// sits in exponential/iterative planner loops).
fn improvement_chunk_bounds(m: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..m).step_by(IMPROVEMENT_CHUNK).map(move |lo| (lo, (lo + IMPROVEMENT_CHUNK).min(m)))
}

/// The expected quality improvement of a plan (Theorem 2).
///
/// With the `parallel` feature (on by default) the per-x-tuple terms are
/// evaluated across threads ([`expected_improvement_parallel`]); the
/// result is bit-for-bit identical to
/// [`expected_improvement_sequential`] because both paths sum fixed-size
/// chunks in index order.
pub fn expected_improvement(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    plan: &CleaningPlan,
) -> f64 {
    #[cfg(feature = "parallel")]
    {
        expected_improvement_parallel(ctx, setup, plan)
    }
    #[cfg(not(feature = "parallel"))]
    {
        expected_improvement_sequential(ctx, setup, plan)
    }
}

/// The strictly sequential Theorem 2 evaluation (always available; the
/// `parallel` feature's reference for equivalence testing).
pub fn expected_improvement_sequential(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    plan: &CleaningPlan,
) -> f64 {
    improvement_chunk_bounds(ctx.num_x_tuples())
        .map(|(lo, hi)| improvement_chunk(ctx, setup, plan, lo, hi))
        .sum()
}

/// Theorem 2 evaluation with the per-x-tuple terms computed across
/// threads. Inputs below `PARALLEL_MIN_ITEMS` x-tuples skip the thread
/// pool entirely and run the identical chunked sum inline.
#[cfg(feature = "parallel")]
pub fn expected_improvement_parallel(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    plan: &CleaningPlan,
) -> f64 {
    use rayon::prelude::*;

    if ctx.num_x_tuples() < PARALLEL_MIN_ITEMS {
        return expected_improvement_sequential(ctx, setup, plan);
    }
    let chunks: Vec<(usize, usize)> = improvement_chunk_bounds(ctx.num_x_tuples()).collect();
    let partials: Vec<f64> =
        chunks.par_iter().map(|&(lo, hi)| improvement_chunk(ctx, setup, plan, lo, hi)).collect();
    partials.into_iter().sum()
}

/// The first-attempt score of every candidate — `b(l, D, 1) / c_l`, the
/// quantity the greedy planner seeds its heap with.  Scores are pure per
/// candidate, so with the `parallel` feature they are evaluated across
/// threads once the candidate set is large enough; output order and values
/// match the sequential evaluation exactly.
pub fn first_attempt_scores(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    candidates: &[usize],
) -> Vec<f64> {
    let score = |&l: &usize| marginal_gain(ctx, setup, l, 1) / setup.cost(l) as f64;
    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        if candidates.len() >= PARALLEL_MIN_ITEMS {
            return candidates.par_iter().map(score).collect();
        }
    }
    candidates.iter().map(score).collect()
}

/// The single next cleaning action with the best expected improvement per
/// unit cost: `argmax_l b(l, D, 1) / c_l` over the candidate set.
///
/// Returns the chosen x-tuple and the expected improvement `b(l, D, 1)` of
/// one attempt on it, or `None` when no x-tuple can improve the quality
/// (the database is effectively certain).  On a context built with
/// [`CleaningContext::from_batch`] this is the probe maximizing the
/// *aggregate* improvement across every registered query — the greedy
/// serving-loop step of a multi-query deployment.  Ties break toward the
/// lower x-index, keeping the choice deterministic.
pub fn best_single_probe(ctx: &CleaningContext, setup: &CleaningSetup) -> Option<(usize, f64)> {
    let candidates = ctx.candidates();
    let scores = first_attempt_scores(ctx, setup, &candidates);
    let mut best: Option<(usize, f64)> = None;
    for (&l, &score) in candidates.iter().zip(&scores) {
        // Strictly positive only: a candidate whose sc-probability is 0
        // can never improve the quality, no matter how ambiguous it is.
        if score > 0.0 && best.is_none_or(|(_, s)| score > s) {
            best = Some((l, score));
        }
    }
    best.map(|(l, _)| (l, marginal_gain(ctx, setup, l, 1)))
}

/// Outcome of the cleaning attempts on one x-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanOutcome {
    /// Every attempt failed (or none was made): the x-tuple is unchanged.
    Unchanged,
    /// Cleaning succeeded and the true alternative is the tuple at this
    /// rank position.
    Tuple(usize),
    /// Cleaning succeeded and the entity turned out to have no reading (the
    /// implicit null alternative was the truth).
    Null,
}

/// Apply per-x-tuple outcomes, producing the cleaned database.
///
/// Returns `Ok(None)` when every x-tuple collapsed to null and nothing is
/// left (the degenerate fully-certain empty database, whose quality is 0).
pub fn apply_outcomes(
    db: &RankedDatabase,
    outcomes: &[CleanOutcome],
) -> Result<Option<RankedDatabase>> {
    if outcomes.len() != db.num_x_tuples() {
        return Err(DbError::invalid_parameter(format!(
            "got {} outcomes for {} x-tuples",
            outcomes.len(),
            db.num_x_tuples()
        )));
    }
    // Validate tuple outcomes before building.
    for (l, outcome) in outcomes.iter().enumerate() {
        if let CleanOutcome::Tuple(pos) = outcome {
            if *pos >= db.len() || db.tuple(*pos).x_index != l {
                return Err(DbError::index_out_of_range(format!(
                    "outcome of x-tuple {l} references position {pos}"
                )));
            }
        }
    }
    let mut entries: Vec<(TupleId, usize, f64, f64)> = Vec::new();
    let mut keys = Vec::new();
    let mut next_index = 0usize;
    for (l, info) in db.x_tuples().enumerate() {
        match outcomes[l] {
            CleanOutcome::Null => continue,
            CleanOutcome::Unchanged => {
                for &pos in &info.members {
                    let t = db.tuple(pos);
                    entries.push((t.id, next_index, t.score, t.prob));
                }
            }
            CleanOutcome::Tuple(pos) => {
                let t = db.tuple(pos);
                entries.push((t.id, next_index, t.score, 1.0));
            }
        }
        keys.push(info.key.clone());
        next_index += 1;
    }
    if entries.is_empty() {
        return Ok(None);
    }
    RankedDatabase::from_entries(entries, keys).map(Some)
}

/// Expected quality of the cleaned database computed the hard way
/// (Equation 17): enumerate every possible cleaned database, evaluate its
/// quality with TP, and weight by the outcome probability.  Exponential in
/// the number of selected x-tuples; used as the oracle that validates
/// Theorem 2.
pub fn expected_quality_exhaustive(
    db: &RankedDatabase,
    k: usize,
    setup: &CleaningSetup,
    plan: &CleaningPlan,
) -> Result<f64> {
    plan.validate(setup, u64::MAX)?;
    let selected = plan.selected();
    // Cap the enumeration: each selected x-tuple multiplies the outcome
    // count by (|τ_l| + 2).
    let mut combos: u128 = 1;
    for &l in &selected {
        combos = combos.saturating_mul(db.x_tuple(l).members.len() as u128 + 2);
    }
    if combos > 1 << 20 {
        return Err(DbError::TooManyWorlds { worlds: combos, limit: 1 << 20 });
    }

    let mut outcomes = vec![CleanOutcome::Unchanged; db.num_x_tuples()];
    let mut total = 0.0;
    enumerate_outcomes(db, k, setup, plan, &selected, 0, 1.0, &mut outcomes, &mut total)?;
    Ok(total)
}

#[allow(clippy::too_many_arguments)]
fn enumerate_outcomes(
    db: &RankedDatabase,
    k: usize,
    setup: &CleaningSetup,
    plan: &CleaningPlan,
    selected: &[usize],
    idx: usize,
    prob: f64,
    outcomes: &mut Vec<CleanOutcome>,
    total: &mut f64,
) -> Result<()> {
    // pdb-analyze: allow(float-eq): exact-zero branch probabilities are assigned, not computed; the gate prunes impossible outcome branches
    if prob == 0.0 {
        return Ok(());
    }
    if idx == selected.len() {
        let quality = match apply_outcomes(db, outcomes)? {
            Some(cleaned) => quality_tp(&cleaned, k)?,
            None => 0.0,
        };
        *total += prob * quality;
        return Ok(());
    }
    let l = selected[idx];
    let success = setup.success_prob(l, plan.count(l));

    // Outcome 1: all attempts failed.
    outcomes[l] = CleanOutcome::Unchanged;
    enumerate_outcomes(
        db,
        k,
        setup,
        plan,
        selected,
        idx + 1,
        prob * (1.0 - success),
        outcomes,
        total,
    )?;

    // Outcome 2: success, true value is one of the explicit alternatives.
    for &pos in &db.x_tuple(l).members {
        outcomes[l] = CleanOutcome::Tuple(pos);
        let p = db.tuple(pos).prob * success;
        enumerate_outcomes(db, k, setup, plan, selected, idx + 1, prob * p, outcomes, total)?;
    }

    // Outcome 3: success, true value is the null alternative.
    let null = db.x_tuple(l).null_prob();
    if null > pdb_core::PROB_EPSILON {
        outcomes[l] = CleanOutcome::Null;
        enumerate_outcomes(
            db,
            k,
            setup,
            plan,
            selected,
            idx + 1,
            prob * null * success,
            outcomes,
            total,
        )?;
    }

    outcomes[l] = CleanOutcome::Unchanged;
    Ok(())
}

/// Expected improvement computed exhaustively (Equation 17 minus the
/// original quality); the oracle counterpart of [`expected_improvement`].
pub fn expected_improvement_exhaustive(
    db: &RankedDatabase,
    k: usize,
    setup: &CleaningSetup,
    plan: &CleaningPlan,
) -> Result<f64> {
    let before = quality_tp(db, k)?;
    Ok(expected_quality_exhaustive(db, k, setup, plan)? - before)
}

/// Execute a cleaning plan once: every selected x-tuple's attempts succeed
/// or fail at random (sc-probability), and successful cleanings reveal the
/// true alternative drawn from the existential probabilities.
///
/// Returns the cleaned database, or `None` in the degenerate case where
/// every x-tuple collapsed to null.
pub fn simulate_cleaning<R: Rng + ?Sized>(
    db: &RankedDatabase,
    setup: &CleaningSetup,
    plan: &CleaningPlan,
    rng: &mut R,
) -> Result<Option<RankedDatabase>> {
    if plan.len() != db.num_x_tuples() || setup.len() != db.num_x_tuples() {
        return Err(DbError::invalid_parameter("plan/setup do not cover the database's x-tuples"));
    }
    let mut outcomes = vec![CleanOutcome::Unchanged; db.num_x_tuples()];
    for (l, outcome) in outcomes.iter_mut().enumerate() {
        let attempts = plan.count(l);
        if attempts == 0 {
            continue;
        }
        if rng.gen::<f64>() >= setup.success_prob(l, attempts) {
            continue; // every attempt failed
        }
        // Cleaning succeeded: draw the true alternative.
        let mut u: f64 = rng.gen();
        let mut chosen = CleanOutcome::Null;
        for &pos in &db.x_tuple(l).members {
            let p = db.tuple(pos).prob;
            if u < p {
                chosen = CleanOutcome::Tuple(pos);
                break;
            }
            u -= p;
        }
        *outcome = chosen;
    }
    apply_outcomes(db, &outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn cleaning_context_round_trips_through_json() {
        let ctx = CleaningContext::prepare(&udb1(), 2).unwrap();
        let json = serde_json::to_string(&ctx).unwrap();
        let back: CleaningContext = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ctx, "via {json}");
    }

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    #[test]
    fn context_exposes_quality_and_candidates() {
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        assert_eq!(ctx.num_x_tuples(), 4);
        assert!((ctx.quality - (-2.55)).abs() < 0.005);
        assert!((ctx.g.iter().sum::<f64>() - ctx.quality).abs() < 1e-12);
        // Sum of per-x-tuple top-k mass equals k for a full-mass database.
        assert!((ctx.x_topk.iter().sum::<f64>() - 2.0).abs() < 1e-9);
        // The three uncertain sensors are candidates; S4 is already certain
        // (its single tuple has weight ω = 0), so cleaning it cannot help.
        assert_eq!(ctx.candidates(), vec![0, 1, 2]);
    }

    #[test]
    fn certain_database_has_no_candidates() {
        let db =
            RankedDatabase::from_scored_x_tuples(&[vec![(3.0, 1.0)], vec![(2.0, 1.0)]]).unwrap();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        assert!(ctx.candidates().is_empty());
        assert_eq!(ctx.quality, 0.0);
    }

    #[test]
    fn marginal_gains_decrease_and_sum_to_improvement() {
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let setup = CleaningSetup::uniform(4, 1, 0.6).unwrap();
        for l in 0..4 {
            let gains: Vec<f64> = (1..=5).map(|j| marginal_gain(&ctx, &setup, l, j)).collect();
            for w in gains.windows(2) {
                assert!(w[0] >= w[1] - 1e-12, "marginal gains must be non-increasing");
            }
            assert!(gains.iter().all(|&b| b >= 0.0));
            // Equation 22: the improvement of cleaning l alone M times is the
            // sum of the first M marginal gains.
            let mut plan = CleaningPlan::empty(4);
            plan.set_count(l, 3);
            let sum: f64 = gains.iter().take(3).sum();
            assert!((expected_improvement(&ctx, &setup, &plan) - sum).abs() < 1e-12);
        }
        assert_eq!(marginal_gain(&ctx, &setup, 0, 0), 0.0);
    }

    #[test]
    fn theorem_2_matches_the_exhaustive_expectation() {
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let setup = CleaningSetup::new(vec![1, 2, 1, 3], vec![0.7, 0.5, 0.9, 1.0]).unwrap();
        // Try several plans, including multi-x-tuple and multi-attempt ones.
        let plans = vec![
            CleaningPlan::from_counts(vec![1, 0, 0, 0]),
            CleaningPlan::from_counts(vec![0, 2, 0, 0]),
            CleaningPlan::from_counts(vec![1, 1, 1, 0]),
            CleaningPlan::from_counts(vec![3, 0, 2, 1]),
        ];
        for plan in plans {
            let fast = expected_improvement(&ctx, &setup, &plan);
            let slow = expected_improvement_exhaustive(&db, 2, &setup, &plan).unwrap();
            assert!((fast - slow).abs() < 1e-8, "plan {:?}: {fast} vs {slow}", plan.counts());
            assert!(fast >= -1e-12, "cleaning can never hurt in expectation");
        }
    }

    #[test]
    fn theorem_2_holds_with_null_mass() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)],
            vec![(9.0, 0.4), (8.0, 0.2)],
            vec![(7.0, 1.0)],
        ])
        .unwrap();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let setup = CleaningSetup::uniform(3, 1, 0.8).unwrap();
        let plan = CleaningPlan::from_counts(vec![2, 1, 0]);
        let fast = expected_improvement(&ctx, &setup, &plan);
        let slow = expected_improvement_exhaustive(&db, 2, &setup, &plan).unwrap();
        assert!((fast - slow).abs() < 1e-8, "{fast} vs {slow}");
    }

    #[test]
    fn cleaning_the_whole_database_recovers_all_quality_in_the_limit() {
        // With sc-probability 1 and one attempt everywhere, the expected
        // improvement equals −S(D, Q): the cleaned database is certain.
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let setup = CleaningSetup::uniform(4, 1, 1.0).unwrap();
        let plan = CleaningPlan::from_counts(vec![1, 1, 1, 1]);
        let imp = expected_improvement(&ctx, &setup, &plan);
        assert!((imp - (-ctx.quality)).abs() < 1e-9);
    }

    #[test]
    fn apply_outcomes_collapses_and_drops() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)],
            vec![(9.0, 0.4), (8.0, 0.6)],
        ])
        .unwrap();
        let cleaned =
            apply_outcomes(&db, &[CleanOutcome::Null, CleanOutcome::Tuple(1)]).unwrap().unwrap();
        assert_eq!(cleaned.num_x_tuples(), 1);
        assert_eq!(cleaned.len(), 1);
        assert!((cleaned.tuple(0).prob - 1.0).abs() < 1e-12);

        // All-null outcome yields the empty database sentinel.
        assert!(apply_outcomes(&db, &[CleanOutcome::Null, CleanOutcome::Null]).unwrap().is_none());

        // Wrong position is rejected.
        assert!(apply_outcomes(&db, &[CleanOutcome::Tuple(1), CleanOutcome::Unchanged]).is_err());
        // Wrong arity is rejected.
        assert!(apply_outcomes(&db, &[CleanOutcome::Unchanged]).is_err());
    }

    #[test]
    fn simulation_converges_to_the_expected_improvement() {
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let setup = CleaningSetup::uniform(4, 1, 0.7).unwrap();
        let plan = CleaningPlan::from_counts(vec![1, 2, 1, 0]);
        let expected = expected_improvement(&ctx, &setup, &plan);

        let mut rng = StdRng::seed_from_u64(1234);
        let trials = 4000;
        let mut total = 0.0;
        for _ in 0..trials {
            let cleaned = simulate_cleaning(&db, &setup, &plan, &mut rng).unwrap();
            let q = match cleaned {
                Some(d) => quality_tp(&d, 2).unwrap(),
                None => 0.0,
            };
            total += q - ctx.quality;
        }
        let mean = total / trials as f64;
        assert!(
            (mean - expected).abs() < 0.05,
            "Monte-Carlo mean {mean} should approach Theorem 2 value {expected}"
        );
    }

    #[test]
    fn batch_context_aggregates_single_query_contexts() {
        use pdb_quality::{TopKQuery, WeightedQuery};
        let db = udb1();
        let specs = vec![
            WeightedQuery::weighted(TopKQuery::PTk { k: 1, threshold: 0.1 }, 1.0),
            WeightedQuery::weighted(TopKQuery::PTk { k: 3, threshold: 0.1 }, 2.0),
        ];
        let batch = BatchQuality::new(&db, specs).unwrap();
        let ctx = CleaningContext::from_batch(&batch);
        let c1 = CleaningContext::prepare(&db, 1).unwrap();
        let c3 = CleaningContext::prepare(&db, 3).unwrap();
        assert_eq!(ctx.k, 3);
        assert!((ctx.quality - (c1.quality + 2.0 * c3.quality)).abs() < 1e-9);
        for l in 0..4 {
            assert!((ctx.g[l] - (c1.g[l] + 2.0 * c3.g[l])).abs() < 1e-9, "g[{l}]");
            assert!(
                (ctx.x_topk[l] - (c1.x_topk[l] + 2.0 * c3.x_topk[l])).abs() < 1e-9,
                "x_topk[{l}]"
            );
        }
        // Theorem 2 on the aggregate context = weighted sum of Theorem 2
        // on the per-query contexts.
        let setup = CleaningSetup::uniform(4, 1, 0.8).unwrap();
        let plan = CleaningPlan::from_counts(vec![1, 2, 0, 1]);
        let agg = expected_improvement(&ctx, &setup, &plan);
        let single = expected_improvement(&c1, &setup, &plan)
            + 2.0 * expected_improvement(&c3, &setup, &plan);
        assert!((agg - single).abs() < 1e-9);
    }

    #[test]
    fn best_single_probe_maximizes_gain_per_cost() {
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        // Uniform costs: the best probe targets the largest |g|.
        let setup = CleaningSetup::uniform(4, 1, 0.8).unwrap();
        let (l, gain) = best_single_probe(&ctx, &setup).unwrap();
        let expected_l = (0..4).min_by(|&a, &b| ctx.g[a].partial_cmp(&ctx.g[b]).unwrap()).unwrap();
        assert_eq!(l, expected_l);
        assert!((gain - marginal_gain(&ctx, &setup, l, 1)).abs() < 1e-12);
        assert!(gain > 0.0);

        // A certain database has no probe worth making.
        let certain =
            RankedDatabase::from_scored_x_tuples(&[vec![(3.0, 1.0)], vec![(2.0, 1.0)]]).unwrap();
        let ctx = CleaningContext::prepare(&certain, 2).unwrap();
        let setup = CleaningSetup::uniform(2, 1, 0.8).unwrap();
        assert!(best_single_probe(&ctx, &setup).is_none());

        // Probes that can never succeed (sc-probability 0) are not worth
        // making either, however ambiguous the database is.
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let hopeless = CleaningSetup::uniform(4, 1, 0.0).unwrap();
        assert!(best_single_probe(&ctx, &hopeless).is_none());
    }

    #[test]
    fn simulation_validates_inputs() {
        let db = udb1();
        let setup = CleaningSetup::uniform(3, 1, 0.5).unwrap();
        let plan = CleaningPlan::empty(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(simulate_cleaning(&db, &setup, &plan, &mut rng).is_err());
    }
}
