//! Cleaning algorithms: DP (optimal), Greedy, RandP and RandU.
//!
//! Section V-C of the paper reduces the cleaning problem to a 0/1 knapsack:
//! the `j`-th attempt on x-tuple `l` is an item of value `b(l, D, j)`
//! (Equation 21) and cost `c_l`, and because the marginal values are
//! non-increasing in `j` (Lemma 4) an optimal knapsack solution can always
//! be rearranged into attempt *prefixes*, i.e. a valid `(X, M)` pair
//! (Theorem 3).  Section V-D then gives four solvers:
//!
//! * [`plan_dp`] — dynamic programming over the knapsack, optimal,
//!   `O(C²·|Z|)` time;
//! * [`plan_greedy`] — pick items by value-per-unit-cost with a lazy heap,
//!   `O(C·|Z|·log |Z|)`, near-optimal in practice;
//! * [`plan_rand_p`] — random selection weighted by the x-tuples' top-k
//!   probability mass;
//! * [`plan_rand_u`] — uniformly random selection (the fairness baseline).
//!
//! [`plan_exhaustive`] enumerates every feasible plan and exists purely as
//! the optimality oracle for small instances.

use crate::improvement::{expected_improvement, marginal_gain, CleaningContext, G_EPSILON};
use crate::model::{CleaningPlan, CleaningSetup};
use pdb_core::{DbError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Validate that the context and setup describe the same x-tuples.
fn validate(ctx: &CleaningContext, setup: &CleaningSetup) -> Result<()> {
    if ctx.num_x_tuples() != setup.len() {
        return Err(DbError::invalid_parameter(format!(
            "cleaning context covers {} x-tuples but the setup covers {}",
            ctx.num_x_tuples(),
            setup.len()
        )));
    }
    Ok(())
}

/// The candidate set `Z` restricted to x-tuples that are affordable at all.
fn affordable_candidates(ctx: &CleaningContext, setup: &CleaningSetup, budget: u64) -> Vec<usize> {
    ctx.candidates().into_iter().filter(|&l| setup.cost(l) <= budget).collect()
}

// ---------------------------------------------------------------------------
// DP (optimal)
// ---------------------------------------------------------------------------

/// Optimal cleaning plan via dynamic programming over the equivalent 0/1
/// knapsack problem (Section V-D.1).
///
/// Runs in `O(C² · |Z| / min_cost)` time and `O(C · |Z|)` memory, which is
/// practical for budgets in the thousands; the paper's Figure 6(d) shows the
/// same quadratic blow-up for large `C`.
pub fn plan_dp(ctx: &CleaningContext, setup: &CleaningSetup, budget: u64) -> Result<CleaningPlan> {
    validate(ctx, setup)?;
    let m = ctx.num_x_tuples();
    let candidates = affordable_candidates(ctx, setup, budget);
    let budget_usize = usize::try_from(budget)
        .map_err(|_| DbError::invalid_parameter("budget too large for the DP algorithm"))?;
    let mut plan = CleaningPlan::empty(m);
    if candidates.is_empty() || budget == 0 {
        return Ok(plan);
    }

    // best[row][c]: maximum expected improvement using the first `row`
    // candidates and at most `c` budget units.
    let width = budget_usize + 1;
    let rows = candidates.len() + 1;
    let mut best = vec![0.0_f64; rows * width];

    for (row, &l) in candidates.iter().enumerate() {
        let cost = setup.cost(l) as usize;
        let max_attempts = budget_usize / cost;
        let (prev, cur) = best.split_at_mut((row + 1) * width);
        let prev = &prev[row * width..(row + 1) * width];
        let cur = &mut cur[..width];
        for c in 0..width {
            // Option: zero attempts on l.
            let mut value = prev[c];
            // Option: j attempts on l (value of the prefix of marginal gains).
            let mut prefix = 0.0;
            for j in 1..=max_attempts.min(c / cost) {
                prefix += marginal_gain(ctx, setup, l, j as u64);
                let candidate = prev[c - j * cost] + prefix;
                if candidate > value {
                    value = candidate;
                }
            }
            cur[c] = value;
        }
    }

    // Reconstruct the attempt counts by walking the table backwards.
    let mut c = budget_usize;
    for row in (0..candidates.len()).rev() {
        let l = candidates[row];
        let cost = setup.cost(l) as usize;
        let target = best[(row + 1) * width + c];
        let prev = &best[row * width..(row + 1) * width];
        let mut prefix = 0.0;
        let mut best_j = 0usize;
        let mut best_val = prev[c];
        for j in 1..=(c / cost) {
            prefix += marginal_gain(ctx, setup, l, j as u64);
            let candidate = prev[c - j * cost] + prefix;
            if candidate > best_val + 1e-15 {
                best_val = candidate;
                best_j = j;
            }
        }
        debug_assert!((best_val - target).abs() < 1e-9);
        if best_j > 0 {
            plan.set_count(l, best_j as u64);
            c -= best_j * cost;
        }
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

/// Heap entry for the greedy algorithm: the next attempt on one x-tuple,
/// scored by expected improvement per budget unit.
#[derive(Debug, Clone, Copy)]
struct GreedyItem {
    score: f64,
    l: usize,
    next_attempt: u64,
}

impl PartialEq for GreedyItem {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.l == other.l
    }
}
impl Eq for GreedyItem {}
impl PartialOrd for GreedyItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GreedyItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by score; ties broken by x-tuple index for determinism.
        self.score.total_cmp(&other.score).then_with(|| other.l.cmp(&self.l))
    }
}

/// Greedy cleaning plan (Section V-D.4): repeatedly take the attempt with
/// the highest expected improvement per budget unit, as long as it fits.
///
/// Because marginal gains are non-increasing (Lemma 4), only the *next*
/// attempt of each x-tuple needs to sit in the heap.
pub fn plan_greedy(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    budget: u64,
) -> Result<CleaningPlan> {
    validate(ctx, setup)?;
    let m = ctx.num_x_tuples();
    let mut plan = CleaningPlan::empty(m);
    let mut remaining = budget;

    let candidates = affordable_candidates(ctx, setup, budget);
    let scores = crate::improvement::first_attempt_scores(ctx, setup, &candidates);
    let mut heap: BinaryHeap<GreedyItem> = candidates
        .into_iter()
        .zip(scores)
        .map(|(l, score)| GreedyItem { score, l, next_attempt: 1 })
        .collect();

    while let Some(item) = heap.pop() {
        if item.score <= 0.0 || remaining == 0 {
            break;
        }
        let cost = setup.cost(item.l);
        if cost > remaining {
            // Nothing cheaper will come from this x-tuple (its cost is
            // fixed), so drop it and keep looking at the others.
            continue;
        }
        plan.add_attempt(item.l);
        remaining -= cost;
        let next = item.next_attempt + 1;
        // Attempts beyond the budget's capacity can never be taken.
        if cost <= remaining {
            heap.push(GreedyItem {
                score: marginal_gain(ctx, setup, item.l, next) / cost as f64,
                l: item.l,
                next_attempt: next,
            });
        }
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Random heuristics
// ---------------------------------------------------------------------------

/// RandU (Section V-D.2): pick affordable candidate x-tuples uniformly at
/// random, with replacement, until the budget can buy no further attempt.
pub fn plan_rand_u<R: Rng + ?Sized>(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    budget: u64,
    rng: &mut R,
) -> Result<CleaningPlan> {
    validate(ctx, setup)?;
    let candidates = ctx.candidates();
    let weights = vec![1.0; candidates.len()];
    random_plan(ctx, setup, budget, &candidates, &weights, rng)
}

/// RandP (Section V-D.3): like RandU, but an x-tuple's selection probability
/// is proportional to its top-k probability mass `Σ_{tᵢ∈τ_l} pᵢ / k`.
pub fn plan_rand_p<R: Rng + ?Sized>(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    budget: u64,
    rng: &mut R,
) -> Result<CleaningPlan> {
    validate(ctx, setup)?;
    let candidates = ctx.candidates();
    let weights: Vec<f64> = candidates.iter().map(|&l| ctx.x_topk[l].max(0.0)).collect();
    random_plan(ctx, setup, budget, &candidates, &weights, rng)
}

fn random_plan<R: Rng + ?Sized>(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    budget: u64,
    candidates: &[usize],
    weights: &[f64],
    rng: &mut R,
) -> Result<CleaningPlan> {
    let mut plan = CleaningPlan::empty(ctx.num_x_tuples());
    let mut remaining = budget;
    if candidates.is_empty() {
        return Ok(plan);
    }
    loop {
        // Restrict the draw to x-tuples that still fit the remaining budget
        // so the selection loop always terminates.
        let affordable: Vec<usize> =
            (0..candidates.len()).filter(|&i| setup.cost(candidates[i]) <= remaining).collect();
        if affordable.is_empty() {
            break;
        }
        let total_weight: f64 = affordable.iter().map(|&i| weights[i]).sum();
        let chosen_idx = if total_weight <= 0.0 {
            affordable[rng.gen_range(0..affordable.len())]
        } else {
            let mut u = rng.gen::<f64>() * total_weight;
            let mut chosen = affordable[affordable.len() - 1];
            for &i in &affordable {
                if u < weights[i] {
                    chosen = i;
                    break;
                }
                u -= weights[i];
            }
            chosen
        };
        let l = candidates[chosen_idx];
        plan.add_attempt(l);
        remaining -= setup.cost(l);
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Exhaustive oracle
// ---------------------------------------------------------------------------

/// Enumerate every feasible plan and return one with maximum expected
/// improvement.  Exponential; only usable on tiny instances, where it serves
/// as the optimality oracle for [`plan_dp`].
pub fn plan_exhaustive(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    budget: u64,
) -> Result<CleaningPlan> {
    validate(ctx, setup)?;
    let candidates = affordable_candidates(ctx, setup, budget);
    let mut best = CleaningPlan::empty(ctx.num_x_tuples());
    let mut best_value = 0.0;
    let mut current = CleaningPlan::empty(ctx.num_x_tuples());
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        ctx: &CleaningContext,
        setup: &CleaningSetup,
        candidates: &[usize],
        idx: usize,
        remaining: u64,
        current: &mut CleaningPlan,
        best: &mut CleaningPlan,
        best_value: &mut f64,
    ) {
        if idx == candidates.len() {
            let value = expected_improvement(ctx, setup, current);
            if value > *best_value + 1e-15 {
                *best_value = value;
                *best = current.clone();
            }
            return;
        }
        let l = candidates[idx];
        let cost = setup.cost(l);
        let max_attempts = remaining / cost;
        for attempts in 0..=max_attempts {
            current.set_count(l, attempts);
            recurse(
                ctx,
                setup,
                candidates,
                idx + 1,
                remaining - attempts * cost,
                current,
                best,
                best_value,
            );
        }
        current.set_count(l, 0);
    }
    recurse(ctx, setup, &candidates, 0, budget, &mut current, &mut best, &mut best_value);
    Ok(best)
}

// ---------------------------------------------------------------------------
// Algorithm selector
// ---------------------------------------------------------------------------

/// The cleaning algorithms evaluated in the paper, as a selectable enum
/// (used by the experiment harness and the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CleaningAlgorithm {
    /// Optimal dynamic programming (Section V-D.1).
    Dp,
    /// Greedy by improvement-per-cost (Section V-D.4).
    Greedy,
    /// Random, weighted by top-k probability (Section V-D.3).
    RandP,
    /// Random, uniform (Section V-D.2).
    RandU,
}

impl CleaningAlgorithm {
    /// All algorithms, in the order the paper's figures list them.
    pub const ALL: [CleaningAlgorithm; 4] = [
        CleaningAlgorithm::Dp,
        CleaningAlgorithm::Greedy,
        CleaningAlgorithm::RandP,
        CleaningAlgorithm::RandU,
    ];

    /// Human-readable name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            CleaningAlgorithm::Dp => "DP",
            CleaningAlgorithm::Greedy => "Greedy",
            CleaningAlgorithm::RandP => "RandP",
            CleaningAlgorithm::RandU => "RandU",
        }
    }

    /// Produce a cleaning plan with this algorithm.  The random heuristics
    /// draw from `rng`; DP and Greedy ignore it.
    pub fn plan<R: Rng + ?Sized>(
        &self,
        ctx: &CleaningContext,
        setup: &CleaningSetup,
        budget: u64,
        rng: &mut R,
    ) -> Result<CleaningPlan> {
        match self {
            CleaningAlgorithm::Dp => plan_dp(ctx, setup, budget),
            CleaningAlgorithm::Greedy => plan_greedy(ctx, setup, budget),
            CleaningAlgorithm::RandP => plan_rand_p(ctx, setup, budget, rng),
            CleaningAlgorithm::RandU => plan_rand_u(ctx, setup, budget, rng),
        }
    }
}

impl std::fmt::Display for CleaningAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Helper used in tests and experiments: is x-tuple `l` worth cleaning at
/// all?
pub fn is_candidate(ctx: &CleaningContext, l: usize) -> bool {
    ctx.g[l] < -G_EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_core::RankedDatabase;
    use rand::{rngs::StdRng, SeedableRng};

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    fn random_db(seed: u64, m: usize) -> RankedDatabase {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x_tuples = Vec::new();
        for _ in 0..m {
            let alts = rng.gen_range(1..4);
            let mut remaining: f64 = 1.0;
            let mut v = Vec::new();
            for _ in 0..alts {
                let p = remaining * rng.gen_range(0.2..0.9);
                remaining -= p;
                v.push((rng.gen_range(0.0..100.0), p));
            }
            x_tuples.push(v);
        }
        RankedDatabase::from_scored_x_tuples(&x_tuples).unwrap()
    }

    #[test]
    fn dp_matches_the_exhaustive_optimum_on_small_instances() {
        use rand::Rng;
        for seed in 0..8 {
            let db = random_db(seed, 5);
            let ctx = CleaningContext::prepare(&db, 2).unwrap();
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let costs: Vec<u64> = (0..5).map(|_| rng.gen_range(1..=4)).collect();
            let probs: Vec<f64> = (0..5).map(|_| rng.gen_range(0.2..1.0)).collect();
            let setup = CleaningSetup::new(costs, probs).unwrap();
            for budget in [0_u64, 1, 3, 7, 12] {
                let dp = plan_dp(&ctx, &setup, budget).unwrap();
                let brute = plan_exhaustive(&ctx, &setup, budget).unwrap();
                let v_dp = expected_improvement(&ctx, &setup, &dp);
                let v_brute = expected_improvement(&ctx, &setup, &brute);
                assert!(dp.validate(&setup, budget).is_ok());
                assert!(
                    (v_dp - v_brute).abs() < 1e-9,
                    "seed {seed}, budget {budget}: DP {v_dp} vs exhaustive {v_brute}"
                );
            }
        }
    }

    #[test]
    fn greedy_is_feasible_and_close_to_optimal() {
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let setup = CleaningSetup::new(vec![2, 3, 1, 4], vec![0.6, 0.8, 0.5, 0.9]).unwrap();
        for budget in [1_u64, 2, 5, 10, 50] {
            let greedy = plan_greedy(&ctx, &setup, budget).unwrap();
            let dp = plan_dp(&ctx, &setup, budget).unwrap();
            assert!(greedy.validate(&setup, budget).is_ok());
            let v_greedy = expected_improvement(&ctx, &setup, &greedy);
            let v_dp = expected_improvement(&ctx, &setup, &dp);
            assert!(v_greedy <= v_dp + 1e-12, "greedy cannot beat the optimum");
            // The knapsack greedy guarantee is weak in theory, but on these
            // instances it should stay within a comfortable factor.
            assert!(
                v_greedy >= 0.5 * v_dp - 1e-12,
                "budget {budget}: greedy {v_greedy} too far from optimal {v_dp}"
            );
        }
    }

    #[test]
    fn greedy_never_selects_useless_x_tuples() {
        // S4 (certain) has g = 0 in a certain database; nothing is selected.
        let db =
            RankedDatabase::from_scored_x_tuples(&[vec![(3.0, 1.0)], vec![(2.0, 1.0)]]).unwrap();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let setup = CleaningSetup::uniform(2, 1, 0.9).unwrap();
        assert!(!is_candidate(&ctx, 0));
        let plan = plan_greedy(&ctx, &setup, 100).unwrap();
        assert_eq!(plan.total_attempts(), 0);
        let plan = plan_dp(&ctx, &setup, 100).unwrap();
        assert_eq!(plan.total_attempts(), 0);
    }

    #[test]
    fn zero_budget_produces_the_empty_plan() {
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let setup = CleaningSetup::uniform(4, 1, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for algo in CleaningAlgorithm::ALL {
            let plan = algo.plan(&ctx, &setup, 0, &mut rng).unwrap();
            assert_eq!(plan.total_attempts(), 0, "{algo}");
        }
    }

    #[test]
    fn random_heuristics_spend_the_budget() {
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let setup = CleaningSetup::uniform(4, 2, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for budget in [2_u64, 7, 20] {
            let u = plan_rand_u(&ctx, &setup, budget, &mut rng).unwrap();
            let p = plan_rand_p(&ctx, &setup, budget, &mut rng).unwrap();
            for plan in [&u, &p] {
                assert!(plan.validate(&setup, budget).is_ok());
                // With uniform cost 2, the leftover is at most 1 unit.
                assert!(budget - plan.total_cost(&setup) < 2);
            }
        }
    }

    #[test]
    fn rand_p_prefers_high_topk_x_tuples() {
        // Construct a database where x-tuple 0 has (almost) all the top-k
        // probability mass; RandP should pick it far more often than RandU.
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(100.0, 0.5), (99.0, 0.5)],
            vec![(1.0, 0.5), (0.5, 0.5)],
        ])
        .unwrap();
        let ctx = CleaningContext::prepare(&db, 1).unwrap();
        let setup = CleaningSetup::uniform(2, 1, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut rand_p_hits = 0u64;
        for _ in 0..200 {
            let plan = plan_rand_p(&ctx, &setup, 1, &mut rng).unwrap();
            if plan.count(0) == 1 {
                rand_p_hits += 1;
            }
        }
        // x-tuple 0 holds ~100% of the top-1 mass, so RandP should almost
        // always pick it.
        assert!(rand_p_hits > 180, "RandP picked the heavy x-tuple only {rand_p_hits}/200 times");
    }

    #[test]
    fn ordering_of_algorithms_matches_the_paper_on_average() {
        // Figure 6(a): DP ≥ Greedy ≥ RandP ≥ RandU (in expectation).
        let db = random_db(77, 12);
        let ctx = CleaningContext::prepare(&db, 3).unwrap();
        use rand::Rng;
        let mut setup_rng = StdRng::seed_from_u64(78);
        let costs: Vec<u64> = (0..12).map(|_| setup_rng.gen_range(1..=10)).collect();
        let probs: Vec<f64> = (0..12).map(|_| setup_rng.gen_range(0.0..1.0)).collect();
        let setup = CleaningSetup::new(costs, probs).unwrap();
        let budget = 30;

        let dp = expected_improvement(&ctx, &setup, &plan_dp(&ctx, &setup, budget).unwrap());
        let greedy =
            expected_improvement(&ctx, &setup, &plan_greedy(&ctx, &setup, budget).unwrap());
        let mut rng = StdRng::seed_from_u64(79);
        let trials = 60;
        let mut rp_sum = 0.0;
        let mut ru_sum = 0.0;
        for _ in 0..trials {
            rp_sum += expected_improvement(
                &ctx,
                &setup,
                &plan_rand_p(&ctx, &setup, budget, &mut rng).unwrap(),
            );
            ru_sum += expected_improvement(
                &ctx,
                &setup,
                &plan_rand_u(&ctx, &setup, budget, &mut rng).unwrap(),
            );
        }
        let rand_p = rp_sum / trials as f64;
        let rand_u = ru_sum / trials as f64;
        assert!(dp >= greedy - 1e-12);
        assert!(greedy >= rand_p - 1e-9, "greedy {greedy} vs RandP {rand_p}");
        assert!(
            rand_p >= rand_u - 0.05 * rand_u.abs().max(1e-9),
            "RandP {rand_p} vs RandU {rand_u}"
        );
        assert!(dp > 0.0);
    }

    #[test]
    fn algorithm_enum_metadata() {
        assert_eq!(CleaningAlgorithm::Dp.name(), "DP");
        assert_eq!(CleaningAlgorithm::Greedy.to_string(), "Greedy");
        assert_eq!(CleaningAlgorithm::ALL.len(), 4);
    }

    #[test]
    fn mismatched_setup_is_rejected() {
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let setup = CleaningSetup::uniform(3, 1, 0.5).unwrap();
        assert!(plan_dp(&ctx, &setup, 10).is_err());
        assert!(plan_greedy(&ctx, &setup, 10).is_err());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(plan_rand_u(&ctx, &setup, 10, &mut rng).is_err());
        assert!(plan_rand_p(&ctx, &setup, 10, &mut rng).is_err());
        assert!(plan_exhaustive(&ctx, &setup, 10).is_err());
    }
}
