//! # pdb-clean — budgeted cleaning of uncertain data for top-k quality
//!
//! This crate implements the second contribution of the ICDE 2013 paper
//! *"Cleaning Uncertain Data for Top-k Queries"*: given a limited budget,
//! decide which x-tuples to probe (and how many times) so that the expected
//! PWS-quality improvement of a top-k query is maximised.
//!
//! * [`model`] — cleaning costs, sc-probabilities, budgets and plans
//!   (Definition 5 / 7 of the paper).
//! * [`improvement`] — the expected quality improvement in closed form
//!   (Theorem 2), the exhaustive oracle (Equation 17) and a Monte-Carlo
//!   cleaning simulator.
//! * [`algorithms`] — the four solvers of Section V-D: optimal DP, Greedy,
//!   RandP and RandU, plus an exhaustive optimality oracle.
//!
//! Two extensions the paper lists as future work are also provided:
//!
//! * [`target`] — minimum-cost cleaning to reach a target quality;
//! * [`adaptive`] — adaptive cleaning that re-plans after observing each
//!   probe's outcome.
//!
//! ```
//! use pdb_core::prelude::*;
//! use pdb_clean::prelude::*;
//!
//! let db = pdb_core::examples::udb1().rank_by(&ScoreRanking);
//! let ctx = CleaningContext::prepare(&db, 2).unwrap();
//! // Every probe costs 1 unit and succeeds with probability 0.8.
//! let setup = CleaningSetup::uniform(db.num_x_tuples(), 1, 0.8).unwrap();
//! let plan = plan_greedy(&ctx, &setup, 3).unwrap();
//! let gain = expected_improvement(&ctx, &setup, &plan);
//! assert!(gain > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod algorithms;
pub mod improvement;
pub mod model;
pub mod target;

pub use adaptive::{run_adaptive_session, run_adaptive_session_with, AdaptiveOutcome, ReplanMode};
pub use algorithms::{
    plan_dp, plan_exhaustive, plan_greedy, plan_rand_p, plan_rand_u, CleaningAlgorithm,
};
#[cfg(feature = "parallel")]
pub use improvement::expected_improvement_parallel;
pub use improvement::{
    apply_outcomes, best_single_probe, expected_improvement, expected_improvement_exhaustive,
    expected_improvement_sequential, expected_quality_exhaustive, first_attempt_scores,
    marginal_gain, marginal_gain_raw, simulate_cleaning, CleanOutcome, CleaningContext,
};
pub use model::{CleaningPlan, CleaningSetup};
pub use target::{
    max_achievable_improvement, min_cost_for_quality_greedy, min_cost_greedy, min_cost_optimal,
    TargetPlan,
};

/// Convenience prelude bringing the most frequently used items into scope.
pub mod prelude {
    pub use crate::adaptive::{
        run_adaptive_session, run_adaptive_session_with, AdaptiveOutcome, ReplanMode,
    };
    pub use crate::algorithms::{
        plan_dp, plan_exhaustive, plan_greedy, plan_rand_p, plan_rand_u, CleaningAlgorithm,
    };
    pub use crate::improvement::{
        best_single_probe, expected_improvement, expected_improvement_exhaustive, marginal_gain,
        simulate_cleaning, CleanOutcome, CleaningContext,
    };
    pub use crate::model::{CleaningPlan, CleaningSetup};
    pub use crate::target::{
        max_achievable_improvement, min_cost_for_quality_greedy, min_cost_greedy, min_cost_optimal,
        TargetPlan,
    };
}
