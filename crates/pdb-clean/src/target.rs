//! Minimum-cost cleaning for a target quality (the paper's future work).
//!
//! Section VII of the paper closes with: *"We will also examine other
//! uncertain data cleaning problem\[s\], e.g., how to use minimal cost to
//! attain a given quality score."*  This module implements that dual
//! problem: instead of maximising the expected improvement under a fixed
//! budget, find the cheapest plan whose expected improvement reaches a
//! target.
//!
//! Two solvers are provided:
//!
//! * [`min_cost_greedy`] — repeatedly buy the attempt with the best
//!   improvement-per-cost ratio until the target is reached (the natural
//!   dual of the paper's Greedy algorithm);
//! * [`min_cost_optimal`] — exponential + binary search over the budget,
//!   solving the forward problem optimally with [`plan_dp`] at each probe;
//!   the smallest budget whose optimal improvement reaches the target is
//!   returned together with the corresponding plan.
//!
//! Because a cleaning attempt can fail, some targets are unreachable with
//! any finite budget: the achievable improvement is capped by
//! [`max_achievable_improvement`], the limit of Theorem 2 as every attempt
//! count goes to infinity.

use crate::algorithms::plan_dp;
use crate::improvement::{expected_improvement, marginal_gain, CleaningContext, G_EPSILON};
use crate::model::{CleaningPlan, CleaningSetup};
use pdb_core::{DbError, Result};
use serde::{Deserialize, Serialize};

/// A plan found by one of the min-cost solvers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetPlan {
    /// The cleaning plan.
    pub plan: CleaningPlan,
    /// Total cost of the plan.
    pub cost: u64,
    /// Expected quality improvement of the plan (≥ the requested target).
    pub expected_improvement: f64,
}

/// The largest expected improvement any plan can achieve, regardless of
/// budget: `Σ_l −g(l, D)` over candidates whose sc-probability is positive
/// (an x-tuple that can never be cleaned successfully contributes nothing).
pub fn max_achievable_improvement(ctx: &CleaningContext, setup: &CleaningSetup) -> f64 {
    (0..ctx.num_x_tuples())
        .filter(|&l| ctx.g[l] < -G_EPSILON && setup.sc_prob(l) > 0.0)
        .map(|l| -ctx.g[l])
        .sum()
}

fn validate_target(ctx: &CleaningContext, setup: &CleaningSetup, target: f64) -> Result<()> {
    if ctx.num_x_tuples() != setup.len() {
        return Err(DbError::invalid_parameter(format!(
            "cleaning context covers {} x-tuples but the setup covers {}",
            ctx.num_x_tuples(),
            setup.len()
        )));
    }
    if !target.is_finite() || target < 0.0 {
        return Err(DbError::invalid_parameter(format!(
            "target improvement must be a non-negative finite number, got {target}"
        )));
    }
    Ok(())
}

/// Greedy minimum-cost plan reaching `target_improvement`.
///
/// Returns `Ok(None)` when the target exceeds the achievable improvement
/// (within a small tolerance to absorb the asymptotic tail of repeated
/// failed attempts: the greedy loop stops once the residual gap can no
/// longer be closed by a full unit of marginal gain).
pub fn min_cost_greedy(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    target_improvement: f64,
) -> Result<Option<TargetPlan>> {
    validate_target(ctx, setup, target_improvement)?;
    let mut plan = CleaningPlan::empty(ctx.num_x_tuples());
    if target_improvement <= 0.0 {
        return Ok(Some(TargetPlan { plan, cost: 0, expected_improvement: 0.0 }));
    }
    if target_improvement > max_achievable_improvement(ctx, setup) + 1e-12 {
        return Ok(None);
    }

    // Lazy best-ratio selection, as in the forward Greedy: the candidate
    // heap holds, per x-tuple, the ratio of its *next* attempt.
    use std::cmp::Ordering;
    #[derive(Debug)]
    struct Item {
        ratio: f64,
        l: usize,
        next: u64,
    }
    impl PartialEq for Item {
        fn eq(&self, other: &Self) -> bool {
            self.ratio == other.ratio && self.l == other.l
        }
    }
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> Ordering {
            self.ratio.total_cmp(&other.ratio).then_with(|| other.l.cmp(&self.l))
        }
    }

    let mut heap: std::collections::BinaryHeap<Item> = ctx
        .candidates()
        .into_iter()
        .filter(|&l| setup.sc_prob(l) > 0.0)
        .map(|l| Item { ratio: marginal_gain(ctx, setup, l, 1) / setup.cost(l) as f64, l, next: 1 })
        .collect();

    let mut achieved = 0.0;
    let mut cost = 0u64;
    while achieved + 1e-12 < target_improvement {
        let Some(item) = heap.pop() else {
            // Numerically unreachable tail (marginal gains underflowed).
            return Ok(None);
        };
        let gain = marginal_gain(ctx, setup, item.l, item.next);
        if gain <= 0.0 {
            return Ok(None);
        }
        plan.add_attempt(item.l);
        cost += setup.cost(item.l);
        achieved += gain;
        heap.push(Item {
            ratio: marginal_gain(ctx, setup, item.l, item.next + 1) / setup.cost(item.l) as f64,
            l: item.l,
            next: item.next + 1,
        });
    }
    let expected = expected_improvement(ctx, setup, &plan);
    Ok(Some(TargetPlan { plan, cost, expected_improvement: expected }))
}

/// Minimum-budget plan (optimal with respect to the DP forward solver)
/// reaching `target_improvement`.
///
/// Doubles the budget until the optimal improvement reaches the target,
/// then binary-searches the smallest sufficient budget, and finally
/// re-plans at that budget.  Returns `Ok(None)` when the target is
/// unreachable.  `max_budget` bounds the search (and the DP table size).
pub fn min_cost_optimal(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    target_improvement: f64,
    max_budget: u64,
) -> Result<Option<TargetPlan>> {
    validate_target(ctx, setup, target_improvement)?;
    if target_improvement <= 0.0 {
        return Ok(Some(TargetPlan {
            plan: CleaningPlan::empty(ctx.num_x_tuples()),
            cost: 0,
            expected_improvement: 0.0,
        }));
    }
    if target_improvement > max_achievable_improvement(ctx, setup) + 1e-12 {
        return Ok(None);
    }
    let reaches = |budget: u64| -> Result<bool> {
        let plan = plan_dp(ctx, setup, budget)?;
        Ok(expected_improvement(ctx, setup, &plan) + 1e-12 >= target_improvement)
    };

    // Exponential search for a sufficient budget.
    let mut hi = 1u64;
    while hi < max_budget && !reaches(hi)? {
        hi = (hi * 2).min(max_budget);
    }
    if !reaches(hi)? {
        return Ok(None);
    }
    // Binary search for the smallest sufficient budget.
    let mut lo = 0u64;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if reaches(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let plan = plan_dp(ctx, setup, hi)?;
    let expected = expected_improvement(ctx, setup, &plan);
    Ok(Some(TargetPlan { cost: plan.total_cost(setup), plan, expected_improvement: expected }))
}

/// Convenience wrapper: minimum cost to raise the quality score itself to
/// at least `target_quality` (in expectation).
pub fn min_cost_for_quality_greedy(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    target_quality: f64,
) -> Result<Option<TargetPlan>> {
    min_cost_greedy(ctx, setup, (target_quality - ctx.quality).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_core::RankedDatabase;

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    fn ctx_and_setup(sc: f64) -> (CleaningContext, CleaningSetup) {
        let db = udb1();
        let ctx = CleaningContext::prepare(&db, 2).unwrap();
        let setup = CleaningSetup::new(vec![2, 3, 1, 5], vec![sc; 4]).unwrap();
        (ctx, setup)
    }

    #[test]
    fn max_achievable_equals_total_ambiguity_when_cleaning_can_succeed() {
        let (ctx, setup) = ctx_and_setup(0.5);
        assert!((max_achievable_improvement(&ctx, &setup) - (-ctx.quality)).abs() < 1e-9);
        // With sc-probability 0 nothing is achievable.
        let hopeless = CleaningSetup::uniform(4, 1, 0.0).unwrap();
        assert_eq!(max_achievable_improvement(&ctx, &hopeless), 0.0);
    }

    #[test]
    fn zero_target_costs_nothing() {
        let (ctx, setup) = ctx_and_setup(0.9);
        let plan = min_cost_greedy(&ctx, &setup, 0.0).unwrap().unwrap();
        assert_eq!(plan.cost, 0);
        let plan = min_cost_optimal(&ctx, &setup, 0.0, 1_000).unwrap().unwrap();
        assert_eq!(plan.cost, 0);
    }

    #[test]
    fn unreachable_targets_are_reported() {
        let (ctx, setup) = ctx_and_setup(0.9);
        let too_much = -ctx.quality + 1.0;
        assert!(min_cost_greedy(&ctx, &setup, too_much).unwrap().is_none());
        assert!(min_cost_optimal(&ctx, &setup, too_much, 10_000).unwrap().is_none());
        // Negative and non-finite targets are rejected outright.
        assert!(min_cost_greedy(&ctx, &setup, -1.0).is_err());
        assert!(min_cost_optimal(&ctx, &setup, f64::NAN, 100).is_err());
    }

    #[test]
    fn greedy_plans_reach_the_target_and_respect_reported_cost() {
        let (ctx, setup) = ctx_and_setup(0.7);
        let total = -ctx.quality;
        for fraction in [0.25, 0.5, 0.9] {
            let target = total * fraction;
            let result = min_cost_greedy(&ctx, &setup, target).unwrap().unwrap();
            assert!(result.expected_improvement + 1e-9 >= target);
            assert_eq!(result.cost, result.plan.total_cost(&setup));
            assert!(result.plan.total_attempts() > 0);
        }
    }

    #[test]
    fn optimal_cost_never_exceeds_greedy_cost() {
        let (ctx, setup) = ctx_and_setup(0.6);
        let total = -ctx.quality;
        for fraction in [0.3, 0.6, 0.85] {
            let target = total * fraction;
            let greedy = min_cost_greedy(&ctx, &setup, target).unwrap().unwrap();
            let optimal = min_cost_optimal(&ctx, &setup, target, 10_000).unwrap().unwrap();
            assert!(optimal.expected_improvement + 1e-9 >= target);
            assert!(
                optimal.cost <= greedy.cost,
                "optimal cost {} should not exceed greedy cost {}",
                optimal.cost,
                greedy.cost
            );
        }
    }

    #[test]
    fn optimal_cost_is_minimal_by_exhaustive_check() {
        // Every budget below the reported one must fail to reach the target
        // even with the optimal forward plan.
        let (ctx, setup) = ctx_and_setup(0.8);
        let target = -ctx.quality * 0.7;
        let optimal = min_cost_optimal(&ctx, &setup, target, 10_000).unwrap().unwrap();
        for budget in 0..optimal.cost {
            let plan = plan_dp(&ctx, &setup, budget).unwrap();
            assert!(
                expected_improvement(&ctx, &setup, &plan) + 1e-12 < target,
                "budget {budget} should be insufficient (optimal cost {})",
                optimal.cost
            );
        }
    }

    #[test]
    fn quality_target_wrapper_translates_correctly() {
        let (ctx, setup) = ctx_and_setup(0.9);
        // Ask for quality at least half-way between the current score and 0.
        let target_quality = ctx.quality / 2.0;
        let result = min_cost_for_quality_greedy(&ctx, &setup, target_quality).unwrap().unwrap();
        assert!(ctx.quality + result.expected_improvement + 1e-9 >= target_quality);
        // A target below the current quality is free.
        let free = min_cost_for_quality_greedy(&ctx, &setup, ctx.quality - 1.0).unwrap().unwrap();
        assert_eq!(free.cost, 0);
    }

    #[test]
    fn greedy_falls_back_to_none_when_gains_underflow() {
        // Tiny sc-probability: the achievable cap is still the full
        // ambiguity, but reaching 99.99% of it requires astronomically many
        // attempts; the solver must terminate (either plan or None) rather
        // than loop forever.
        let (ctx, setup) = ctx_and_setup(1e-3);
        let target = -ctx.quality * 0.9999;
        let result = min_cost_greedy(&ctx, &setup, target).unwrap();
        if let Some(plan) = result {
            assert!(plan.expected_improvement + 1e-9 >= target);
        }
    }
}
