//! Property-based tests of the cleaning planners against the exhaustive
//! optimum (Theorem 3: the knapsack reduction is exact).

use pdb_clean::plan_exhaustive;
use pdb_clean::prelude::*;
use pdb_core::RankedDatabase;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn x_tuple() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((0.0f64..30.0, 0.05f64..1.0), 1..4), 0.3f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        alts.into_iter().map(|(s, w)| (s, w / total * mass)).collect()
    })
}

fn small_db() -> impl Strategy<Value = RankedDatabase> {
    vec(x_tuple(), 2..6).prop_map(|x| RankedDatabase::from_scored_x_tuples(&x).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DP attains the exhaustive optimum (Theorem 3), greedy stays between
    /// the random baselines and the optimum, and every plan is feasible.
    #[test]
    fn dp_is_optimal_and_greedy_is_sandwiched(
        db in small_db(),
        k in 1usize..4,
        budget in 0u64..12,
        costs in vec(1u64..5, 6),
        probs in vec(0.05f64..1.0, 6),
    ) {
        let m = db.num_x_tuples();
        let ctx = CleaningContext::prepare(&db, k).unwrap();
        let setup = CleaningSetup::new(costs[..m].to_vec(), probs[..m].to_vec()).unwrap();

        let dp = plan_dp(&ctx, &setup, budget).unwrap();
        let brute = plan_exhaustive(&ctx, &setup, budget).unwrap();
        let greedy = plan_greedy(&ctx, &setup, budget).unwrap();
        for plan in [&dp, &brute, &greedy] {
            prop_assert!(plan.validate(&setup, budget).is_ok());
        }
        let v_dp = expected_improvement(&ctx, &setup, &dp);
        let v_brute = expected_improvement(&ctx, &setup, &brute);
        let v_greedy = expected_improvement(&ctx, &setup, &greedy);
        prop_assert!((v_dp - v_brute).abs() < 1e-9, "DP {} vs exhaustive {}", v_dp, v_brute);
        prop_assert!(v_greedy <= v_dp + 1e-9);
        prop_assert!(v_greedy >= 0.0);

        let mut rng = StdRng::seed_from_u64(budget);
        let random = plan_rand_u(&ctx, &setup, budget, &mut rng).unwrap();
        prop_assert!(random.validate(&setup, budget).is_ok());
        prop_assert!(expected_improvement(&ctx, &setup, &random) <= v_dp + 1e-9);
    }

    /// The min-cost solvers hit their targets and the optimal variant never
    /// pays more than the greedy one.
    #[test]
    fn min_cost_solvers_reach_their_targets(
        db in small_db(),
        k in 1usize..3,
        sc in 0.3f64..1.0,
        fraction in 0.1f64..0.95,
    ) {
        let ctx = CleaningContext::prepare(&db, k).unwrap();
        let setup = CleaningSetup::uniform(db.num_x_tuples(), 2, sc).unwrap();
        let cap = max_achievable_improvement(&ctx, &setup);
        prop_assume!(cap > 1e-6);
        let target = cap * fraction;
        let greedy = min_cost_greedy(&ctx, &setup, target).unwrap();
        let optimal = min_cost_optimal(&ctx, &setup, target, 100_000).unwrap();
        let greedy = greedy.expect("target below the cap is reachable");
        let optimal = optimal.expect("target below the cap is reachable");
        prop_assert!(greedy.expected_improvement + 1e-9 >= target);
        prop_assert!(optimal.expected_improvement + 1e-9 >= target);
        prop_assert!(optimal.cost <= greedy.cost);
    }
}
