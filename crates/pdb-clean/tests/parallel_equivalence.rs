//! Equivalence of the parallel and sequential cleaning-evaluation paths.
//!
//! `expected_improvement` (Theorem 2) and the greedy planner's
//! first-attempt scores must not change when the `parallel` feature moves
//! their per-candidate evaluation onto threads: results are required to
//! match the sequential path **bit for bit** (stronger than the 1e-12
//! tolerance the workspace requires).

#![cfg(feature = "parallel")]

use pdb_clean::improvement::{
    expected_improvement, expected_improvement_parallel, expected_improvement_sequential,
    first_attempt_scores, CleaningContext,
};
use pdb_clean::model::{CleaningPlan, CleaningSetup};
use pdb_core::RankedDatabase;
use proptest::collection::vec;
use proptest::prelude::*;

fn x_tuple() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((0.0f64..100.0, 0.05f64..1.0), 1..4), 0.1f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        alts.into_iter().map(|(s, w)| (s, w / total * mass)).collect()
    })
}

fn db() -> impl Strategy<Value = RankedDatabase> {
    vec(x_tuple(), 1..8).prop_map(|x| RankedDatabase::from_scored_x_tuples(&x).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On real (small) cleaning contexts the three entry points agree bit
    /// for bit.
    #[test]
    fn parallel_improvement_is_bitwise_equal_to_sequential(
        db in db(),
        k in 1usize..4,
        sc in 0.1f64..1.0,
        cost in 1u64..4,
        counts in vec(0u64..4, 8),
    ) {
        let ctx = CleaningContext::prepare(&db, k).unwrap();
        let m = ctx.num_x_tuples();
        let setup = CleaningSetup::uniform(m, cost, sc).unwrap();
        let plan = CleaningPlan::from_counts(counts[..m].to_vec());
        let par = expected_improvement_parallel(&ctx, &setup, &plan);
        let seq = expected_improvement_sequential(&ctx, &setup, &plan);
        prop_assert_eq!(par.to_bits(), seq.to_bits(), "parallel {} vs sequential {}", par, seq);
        let default = expected_improvement(&ctx, &setup, &plan);
        prop_assert_eq!(default.to_bits(), seq.to_bits());

        let candidates = ctx.candidates();
        let scores = first_attempt_scores(&ctx, &setup, &candidates);
        let reference: Vec<f64> = candidates
            .iter()
            .map(|&l| pdb_clean::marginal_gain(&ctx, &setup, l, 1) / setup.cost(l) as f64)
            .collect();
        prop_assert_eq!(scores.len(), reference.len());
        for (s, r) in scores.iter().zip(&reference) {
            prop_assert_eq!(s.to_bits(), r.to_bits());
        }
    }
}

/// A synthetic context large enough that the evaluation spans many
/// summation chunks and actually lands on the thread pool.
fn large_ctx(m: usize) -> (CleaningContext, CleaningSetup, CleaningPlan) {
    // Deterministic pseudo-data; the values just need variety.
    let g: Vec<f64> = (0..m).map(|l| -((l % 97) as f64 + 1.0) / 97.0).collect();
    let x_topk: Vec<f64> = (0..m).map(|l| ((l % 13) as f64) / 13.0).collect();
    let quality = g.iter().sum();
    let ctx = CleaningContext { k: 5, quality, g, x_topk };
    let costs: Vec<u64> = (0..m).map(|l| 1 + (l % 7) as u64).collect();
    let sc_probs: Vec<f64> = (0..m).map(|l| 0.05 + 0.9 * ((l % 11) as f64) / 11.0).collect();
    let setup = CleaningSetup::new(costs, sc_probs).unwrap();
    let plan = CleaningPlan::from_counts((0..m).map(|l| (l % 5) as u64).collect());
    (ctx, setup, plan)
}

#[test]
fn parallel_improvement_is_bitwise_equal_on_large_contexts() {
    // 32_768 x-tuples crosses the parallel gate (16 × 1024) and spreads
    // 32 summation chunks across threads; the smaller sizes cover the
    // inline fallback inside the parallel entry points.
    for m in [1_000, 10_000, 32_768, 50_000] {
        let (ctx, setup, plan) = large_ctx(m);
        let par = expected_improvement_parallel(&ctx, &setup, &plan);
        let seq = expected_improvement_sequential(&ctx, &setup, &plan);
        assert_eq!(par.to_bits(), seq.to_bits(), "m = {m}: {par} vs {seq}");
        assert!(par > 0.0, "improvement of a busy plan must be positive");

        let candidates = ctx.candidates();
        assert!(candidates.len() >= m / 2, "synthetic g values must stay candidates");
        let scores = first_attempt_scores(&ctx, &setup, &candidates);
        let reference: Vec<f64> = candidates
            .iter()
            .map(|&l| pdb_clean::marginal_gain(&ctx, &setup, l, 1) / setup.cost(l) as f64)
            .collect();
        assert_eq!(scores.len(), reference.len());
        for (i, (s, r)) in scores.iter().zip(&reference).enumerate() {
            assert_eq!(s.to_bits(), r.to_bits(), "score {i} differs");
        }
    }
}
