//! Serving-path throughput: session reuse (delta re-evaluation) vs naive
//! per-request full PSR re-evaluation, measured end-to-end over a real
//! loopback TCP connection to a running `pdb-server`.
//!
//! Both series pay the identical protocol cost (one request line, one
//! response line, same JSON payloads); the only difference is how the
//! server folds the probe outcome into the session — the in-place delta
//! patch every registered query shares, or a from-scratch PSR + TP rerun.
//! The gap is therefore exactly the value of keeping sessions (and their
//! shared PSR run) alive across requests.  The `server-smoke` CI job runs
//! this target in quick mode and commits its medians as
//! `BENCH_server.json` (see `crates/bench/src/bin/bench_json.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::TopKQuery;
use pdb_server::protocol::EvalMode;
use pdb_server::{Client, DatasetSpec, Server, ServerConfig};
use std::cell::Cell;
use std::hint::black_box;
use std::time::Duration;

const TUPLES: usize = 10_000;

/// The registered query mix: three PT-k tenants with distinct `k`
/// (k_max = 50 drives the shared PSR run).
const KS: [usize; 3] = [5, 15, 50];

/// One `apply_probe` + refreshed qualities round trip per iteration.  The
/// mutation alternates between the x-tuple's original probabilities and a
/// copy with the first and last alternatives' masses exchanged: like a
/// collapse, it perturbs cumulative mass only inside the x-tuple's own
/// rank window (the x-tuple total is preserved, so rows below its last
/// alternative keep their factors), and the session returns to the same
/// state every two iterations so the series is stationary.
fn bench_probe_requality(c: &mut Criterion) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        shards: 4,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let server_thread = std::thread::spawn(move || server.run());

    let spec = DatasetSpec::Synthetic { tuples: TUPLES };
    // The generator is deterministic, so the client can mirror the
    // database to learn x-tuple 0's alternative probabilities.
    let db = pdb_gen::spec::build_dataset(&spec).expect("mirror dataset");
    let original: Vec<f64> = db.x_tuple(0).members.iter().map(|&pos| db.tuple(pos).prob).collect();
    let mut swapped = original.clone();
    swapped.swap(0, original.len() - 1);

    let mut client = Client::connect(addr).expect("connect");
    let mut group = c.benchmark_group("server/probe_requality");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    for (mode, label) in [(EvalMode::Delta, "session_delta"), (EvalMode::Rebuild, "full_rebuild")] {
        let session = client.create_session(spec.clone(), 1, 0.8).expect("create_session").session;
        for &k in &KS {
            client
                .register_query(session, TopKQuery::PTk { k, threshold: 0.1 }, 1.0)
                .expect("register_query");
        }
        let flip = Cell::new(false);
        group.bench_with_input(BenchmarkId::new(label, TUPLES), &TUPLES, |b, _| {
            b.iter(|| {
                let probs = if flip.replace(!flip.get()) { &original } else { &swapped };
                let applied = client
                    .apply_probe(
                        session,
                        0,
                        XTupleMutation::Reweight { probs: probs.clone() },
                        mode,
                    )
                    .expect("apply_probe");
                black_box(applied.update.aggregate)
            })
        });
        client.drop_session(session).expect("drop_session");
    }
    group.finish();

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread").expect("clean shutdown");
}

criterion_group!(benches, bench_probe_requality);
criterion_main!(benches);
