//! Batched multi-query shared evaluation: one PSR run at `k_max` serving a
//! whole registered query set vs one independent evaluation per query, and
//! the shared delta repatch vs a full batch rebuild after a probe outcome.
//! Times the same workload as the `batch-q` experiment (n = 10⁴); the
//! `bench-smoke` CI job runs this target in quick mode and commits its
//! medians as `BENCH_batch.json` (see `crates/bench/src/bin/bench_json.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb_bench::synthetic;
use pdb_engine::batch::BatchEvaluation;
use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::TopKQuery;
// The same registered query set the batch-q experiment measures, so the
// committed BENCH_batch.json and the experiment figures track one
// workload.
use pdb_experiments::datasets::DEFAULT_THRESHOLD as THRESHOLD;
use pdb_experiments::sharing_exp::batch_query_set as query_set;
use pdb_quality::{BatchQuality, SharedEvaluation};
use std::hint::black_box;
use std::time::Duration;

const TUPLES: usize = 10_000;

fn bench_batch_vs_independent(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch/query_plus_quality");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let db = synthetic(TUPLES);
    for &q in &[2usize, 10] {
        let specs = query_set(q);
        group.bench_with_input(BenchmarkId::new("independent", q), &q, |b, _| {
            b.iter(|| {
                let mut out = Vec::with_capacity(specs.len());
                for spec in &specs {
                    let shared = SharedEvaluation::new(black_box(&db), spec.query.k()).unwrap();
                    let answer = shared.pt_k(THRESHOLD).unwrap();
                    out.push((answer.len(), shared.quality()));
                }
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("shared", q), &q, |b, _| {
            b.iter(|| {
                let batch = BatchQuality::new(black_box(&db), specs.clone()).unwrap();
                let answers = batch.answers().unwrap();
                (answers.len(), batch.quality_vector())
            })
        });
    }
    group.finish();
}

fn bench_collapse_repatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch/collapse");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let db = synthetic(TUPLES);
    let queries: Vec<TopKQuery> = query_set(10).into_iter().map(|s| s.query).collect();
    // Probe a mid-ranking x-tuple: plenty of affected rows below it.
    let l = db.tuple(db.len() / 2).x_index;
    let keep = db.x_tuple(l).members[0];
    let mutation = XTupleMutation::CollapseToAlternative { keep_pos: keep };
    let batch = BatchEvaluation::new(&db, queries.clone()).unwrap();
    // One shared delta pass re-serves all 10 registered queries.
    group.bench_with_input(BenchmarkId::new("delta_repatch", 10), &l, |b, &l| {
        b.iter(|| batch.apply_collapse(black_box(l), &mutation).unwrap())
    });
    // Baseline: rebuild the whole batch evaluation on the mutated database.
    let mut mutated = db.clone();
    mutated.collapse_x_tuple_in_place(l, keep).unwrap();
    group.bench_with_input(BenchmarkId::new("full_rebuild", 10), &mutated, |b, mutated| {
        b.iter(|| BatchEvaluation::new(black_box(mutated), queries.clone()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_batch_vs_independent, bench_collapse_repatch);
criterion_main!(benches);
