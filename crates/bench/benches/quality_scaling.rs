//! Figures 4(e)/4(f): TP quality computation scaling with database size and
//! with k (the regime where PWR has already dropped out), plus a bounded
//! PWR run showing where it gives up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb_bench::{mov, synthetic};
use pdb_quality::{quality_pwr_bounded, quality_tp};
use std::hint::black_box;
use std::time::Duration;

fn bench_tp_vs_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4e/tp_time_vs_db_size_k15");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &tuples in &[1_000usize, 10_000, 50_000, 200_000] {
        let db = synthetic(tuples);
        group.bench_with_input(BenchmarkId::new("TP", tuples), &db, |b, db| {
            b.iter(|| quality_tp(black_box(db), 15).unwrap())
        });
    }
    group.finish();
}

fn bench_tp_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4f/quality_time_vs_k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let db = synthetic(5_000);
    for &k in &[1usize, 15, 100, 500] {
        group.bench_with_input(BenchmarkId::new("TP", k), &k, |b, &k| {
            b.iter(|| quality_tp(black_box(&db), k).unwrap())
        });
        // PWR with a bounded pw-result budget: small k completes, larger k
        // returns None almost immediately, matching the paper's "cannot
        // return the quality in reasonable time" observation.
        group.bench_with_input(BenchmarkId::new("PWR_bounded_1M", k), &k, |b, &k| {
            b.iter(|| quality_pwr_bounded(black_box(&db), k, 1_000_000).unwrap())
        });
    }
    group.finish();
}

fn bench_tp_on_mov(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4c/tp_time_mov");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let db = mov(4_999);
    for &k in &[5usize, 15, 30] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| quality_tp(black_box(&db), k).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tp_vs_size, bench_tp_vs_k, bench_tp_on_mov);
criterion_main!(benches);
