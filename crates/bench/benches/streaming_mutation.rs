//! Streaming membership mutations on a served batch: one incremental
//! insert/remove patch of the shared ρ matrix re-serving every registered
//! query vs rebuilding the whole batch evaluation (PSR + per-query
//! answers) on the mutated database.  The insert patch shifts the ρ
//! row-groups below the arrival and multiplies one binomial factor into
//! every other row; the remove patch divides the departing factor out
//! (the `q' = 0` collapse).  Same workload shape as `batch/collapse`,
//! with the membership mutations on the new axis; the `bench-smoke` CI
//! job runs this target in quick mode, emits `BENCH_streaming.json` (see
//! `crates/bench/src/bin/bench_json.rs`) and asserts the delta patch
//! beats the rebuild.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb_bench::synthetic;
use pdb_engine::batch::BatchEvaluation;
use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::TopKQuery;
use pdb_experiments::sharing_exp::batch_query_set as query_set;
use std::hint::black_box;
use std::time::Duration;

const TUPLES: usize = 10_000;
const QUERIES: usize = 10;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming/insert");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let db = synthetic(TUPLES);
    let queries: Vec<TopKQuery> = query_set(QUERIES).into_iter().map(|s| s.query).collect();
    let batch = BatchEvaluation::new(&db, queries.clone()).unwrap();
    // The arrival straddles the middle of the ranking: half the rows
    // shift and rescale, half only rescale.
    let mid = db.tuple(db.len() / 2).score;
    let alternatives = vec![(mid + 0.25, 0.25), (mid * 0.5, 0.1)];
    let l = db.num_x_tuples();
    let mutation =
        XTupleMutation::Insert { key: "arrival".into(), alternatives: alternatives.clone() };
    // One shared delta pass grows the master matrix and re-serves all
    // registered queries.
    group.bench_with_input(BenchmarkId::new("delta", QUERIES), &l, |b, &l| {
        b.iter(|| batch.apply_collapse(black_box(l), &mutation).unwrap())
    });
    // Baseline: apply the arrival to the database and rebuild the whole
    // batch evaluation — both sides start from the same `(db, mutation)`
    // input a streaming session receives.
    group.bench_with_input(BenchmarkId::new("full_rebuild", QUERIES), &db, |b, db| {
        b.iter(|| {
            let (grown, _) = db.insert_x_tuple("arrival".into(), &alternatives).unwrap();
            let batch = BatchEvaluation::new(black_box(&grown), queries.clone()).unwrap();
            black_box(&batch);
            grown.len()
        })
    });
    group.finish();
}

fn bench_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming/remove");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let db = synthetic(TUPLES);
    let queries: Vec<TopKQuery> = query_set(QUERIES).into_iter().map(|s| s.query).collect();
    let batch = BatchEvaluation::new(&db, queries.clone()).unwrap();
    // Remove a mid-ranking entity: plenty of affected rows below it.
    let l = db.tuple(db.len() / 2).x_index;
    group.bench_with_input(BenchmarkId::new("delta", QUERIES), &l, |b, &l| {
        b.iter(|| batch.apply_collapse(black_box(l), &XTupleMutation::Remove).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("full_rebuild", QUERIES), &db, |b, db| {
        b.iter(|| {
            let shrunk = db.remove_x_tuple(l).unwrap();
            let batch = BatchEvaluation::new(black_box(&shrunk), queries.clone()).unwrap();
            black_box(&batch);
            shrunk.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_remove);
criterion_main!(benches);
