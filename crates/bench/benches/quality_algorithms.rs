//! Figure 4(d): quality-computation time of PW, PWR and TP on small
//! databases (k = 5), where the possible-world baseline is still feasible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb_bench::synthetic;
use pdb_quality::{quality_pw, quality_pwr, quality_tp};
use std::hint::black_box;
use std::time::Duration;

fn bench_quality_algorithms(c: &mut Criterion) {
    let k = 5;
    let mut group = c.benchmark_group("fig4d/quality_time_small_db");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &tuples in &[10usize, 30, 50] {
        let db = synthetic(tuples);
        group.bench_with_input(BenchmarkId::new("PW", tuples), &db, |b, db| {
            b.iter(|| quality_pw(black_box(db), k).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("PWR", tuples), &db, |b, db| {
            b.iter(|| quality_pwr(black_box(db), k).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("TP", tuples), &db, |b, db| {
            b.iter(|| quality_tp(black_box(db), k).unwrap())
        });
    }
    // Beyond the PW-feasible regime, compare PWR and TP only (the paper's
    // crossover story).
    for &tuples in &[500usize, 2_000] {
        let db = synthetic(tuples);
        group.bench_with_input(BenchmarkId::new("PWR", tuples), &db, |b, db| {
            b.iter(|| quality_pwr(black_box(db), k).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("TP", tuples), &db, |b, db| {
            b.iter(|| quality_tp(black_box(db), k).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quality_algorithms);
criterion_main!(benches);
