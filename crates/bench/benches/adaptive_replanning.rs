//! Adaptive re-planning: per-probe full PSR rebuild vs the incremental
//! delta engine, on the synthetic generator's default workload.
//!
//! Two granularities:
//!
//! * `delta/` — the kernel itself: one single-x-tuple mutation applied via
//!   the in-place delta engine ([`DeltaEvaluation::apply`]) against one
//!   full [`rank_probabilities`] rerun on the same database (a reweighting
//!   mutation, so the database size stays fixed and the step can be
//!   repeated indefinitely);
//! * `adaptive_session/` — a whole budgeted session (probes collapse
//!   x-tuples) in each [`ReplanMode`], probe stream held fixed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb_bench::{cleaning_setup, synthetic};
use pdb_clean::{run_adaptive_session_with, ReplanMode};
use pdb_engine::delta::{DeltaEvaluation, XTupleMutation};
use pdb_engine::psr::rank_probabilities;
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

const K: usize = 50;

fn bench_delta_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta/reweight_k50");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &tuples in &[10_000usize, 50_000] {
        let db = synthetic(tuples);
        // Reweight an x-tuple near the middle of the ranking, alternating
        // between two sharpenings of its distribution (a probe that
        // narrows an entity without collapsing it).
        let l = db.tuple(db.len() / 2).x_index;
        let m = db.x_tuple(l).members.len();
        let probs_a: Vec<f64> =
            (0..m).map(|i| if i == 0 { 0.9 } else { 0.1 / (m - 1) as f64 }).collect();
        let probs_b: Vec<f64> = probs_a.iter().rev().copied().collect();
        let mutations = [
            XTupleMutation::Reweight { probs: probs_a },
            XTupleMutation::Reweight { probs: probs_b },
        ];
        let mut eval = DeltaEvaluation::new(db.clone(), K).unwrap();
        let mut flip = 0usize;
        group.bench_with_input(BenchmarkId::new("incremental", tuples), &(), |b, ()| {
            b.iter(|| {
                flip ^= 1;
                eval.apply(l, black_box(&mutations[flip])).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("full_rebuild", tuples), &db, |b, db| {
            b.iter(|| rank_probabilities(black_box(db), K).unwrap())
        });
    }
    group.finish();
}

fn bench_adaptive_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_session/n10000_k50");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let db = synthetic(10_000);
    let setup = cleaning_setup(db.num_x_tuples());
    for &budget in &[16u64, 64] {
        for (name, mode) in
            [("incremental", ReplanMode::Incremental), ("full_rebuild", ReplanMode::FullRebuild)]
        {
            group.bench_with_input(BenchmarkId::new(name, budget), &budget, |b, &budget| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    run_adaptive_session_with(black_box(&db), &setup, K, budget, mode, &mut rng)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_delta_vs_rebuild, bench_adaptive_session);
criterion_main!(benches);
