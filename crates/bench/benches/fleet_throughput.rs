//! Group commit vs per-record WAL flushing: the fleet's durability
//! trade-off, measured at the store layer where it lives.  Four writer
//! threads — standing in for a shard's worker threads acknowledging
//! concurrent sessions — each append 16 probe records per iteration:
//!
//! * `wal_append/per_record` — `FlushPolicy::PerRecord`, one fsync per
//!   record before the append returns (the durability oracle every
//!   recovery test runs against);
//! * `wal_append/group_commit` — `FlushPolicy::GroupCommit`, a dedicated
//!   flusher batches the appends and pays one fsync per window while
//!   every writer still blocks until the sync covering its record
//!   completes.
//!
//! Same acknowledged-implies-durable contract, so group commit must win
//! on fsync count alone; the `fleet-smoke` CI job runs this target in
//! quick mode, asserts the direction, and tracks the medians as
//! `BENCH_fleet.json`.  The WAL lives on a real filesystem (beware:
//! on a tmpfs `/tmp` fsync is nearly free and the gap collapses).

use criterion::{criterion_group, criterion_main, Criterion};
use pdb_engine::delta::XTupleMutation;
use pdb_store::{FlushPolicy, Store, WalRecord};
use std::hint::black_box;
use std::time::Duration;

const WRITERS: usize = 4;
const APPENDS_PER_WRITER: usize = 16;

/// One iteration of the contended-append workload: `WRITERS` threads
/// each journal `APPENDS_PER_WRITER` resolved probe outcomes.
fn append_burst(store: &Store) {
    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            scope.spawn(move || {
                for i in 0..APPENDS_PER_WRITER {
                    let record = WalRecord::ApplyProbe {
                        session: writer as u64 + 1,
                        x_tuple: i,
                        mutation: XTupleMutation::Reweight { probs: vec![0.25, 0.5] },
                    };
                    store.append(black_box(&record)).expect("journal append");
                }
            });
        }
    });
}

fn bench_fleet_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_throughput");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    let base = std::env::temp_dir().join(format!("pdb-bench-fleet-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    for (name, policy) in [
        ("per_record", FlushPolicy::PerRecord),
        // max_wait 0: fsync as soon as the device is free — batches form
        // from the records that accrue while the previous fsync runs,
        // without taxing every commit with an artificial linger.
        ("group_commit", FlushPolicy::GroupCommit { max_batch: 64, max_wait: Duration::ZERO }),
    ] {
        let dir = base.join(name);
        std::fs::create_dir_all(&dir).unwrap();
        let (store, _recovery) =
            Store::open_with_policy(&dir, policy, &pdb_gen::build_dataset).expect("open store");
        group.bench_function(format!("wal_append/{name}"), |b| b.iter(|| append_burst(&store)));
    }

    group.finish();
    std::fs::remove_dir_all(&base).ok();
}

criterion_group!(benches, bench_fleet_throughput);
criterion_main!(benches);
