//! PSR rank-probability computation: incremental O(kn) algorithm vs the
//! O(n·m·k) recomputing reference, across database sizes and k.
//!
//! This is the shared substrate of every query and of the TP quality
//! algorithm, so its scaling underpins Figures 4(e)/4(f) and 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb_bench::synthetic;
use pdb_engine::psr::{rank_probabilities, rank_probabilities_exact};
use std::hint::black_box;
use std::time::Duration;

fn bench_psr_vs_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("psr/size_k15");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &tuples in &[1_000usize, 5_000, 20_000] {
        let db = synthetic(tuples);
        group.bench_with_input(BenchmarkId::new("incremental", tuples), &db, |b, db| {
            b.iter(|| rank_probabilities(black_box(db), 15).unwrap())
        });
        if tuples <= 5_000 {
            group.bench_with_input(BenchmarkId::new("exact_reference", tuples), &db, |b, db| {
                b.iter(|| rank_probabilities_exact(black_box(db), 15).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_psr_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("psr/k_5000tuples");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let db = synthetic(5_000);
    for &k in &[1usize, 15, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| rank_probabilities(black_box(&db), k).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_psr_vs_size, bench_psr_vs_k);
criterion_main!(benches);
