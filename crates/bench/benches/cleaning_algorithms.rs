//! Figures 6(d)/6(e): planning time of the cleaning algorithms (DP, Greedy,
//! RandP, RandU) as the budget and k grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb_bench::{cleaning_setup, synthetic};
use pdb_clean::{CleaningAlgorithm, CleaningContext};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn bench_time_vs_budget(c: &mut Criterion) {
    let db = synthetic(50_000);
    let ctx = CleaningContext::prepare(&db, 15).expect("context preparation succeeds");
    let setup = cleaning_setup(db.num_x_tuples());

    let mut group = c.benchmark_group("fig6d/plan_time_vs_budget");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &budget in &[10u64, 100, 1_000] {
        for algo in CleaningAlgorithm::ALL {
            // DP at large budgets takes quadratic time; keep the bench at
            // paper-representative but bounded values.
            if algo == CleaningAlgorithm::Dp && budget > 1_000 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(algo.name(), budget), &budget, |b, &budget| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(budget);
                    algo.plan(black_box(&ctx), &setup, budget, &mut rng).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_time_vs_k(c: &mut Criterion) {
    let db = synthetic(50_000);
    let setup = cleaning_setup(db.num_x_tuples());

    let mut group = c.benchmark_group("fig6e/plan_time_vs_k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &k in &[5usize, 15, 30] {
        let ctx = CleaningContext::prepare(&db, k).expect("context preparation succeeds");
        for algo in CleaningAlgorithm::ALL {
            group.bench_with_input(BenchmarkId::new(algo.name(), k), &k, |b, &k| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(k as u64);
                    algo.plan(black_box(&ctx), &setup, 100, &mut rng).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_context_preparation(c: &mut Criterion) {
    // The one-off cost of preparing the cleaning context (PSR + weights +
    // per-x-tuple aggregation), shared by every algorithm.
    let db = synthetic(50_000);
    let mut group = c.benchmark_group("cleaning/context_preparation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("prepare_k15", |b| {
        b.iter(|| CleaningContext::prepare(black_box(&db), 15).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_time_vs_budget, bench_time_vs_k, bench_context_preparation);
criterion_main!(benches);
