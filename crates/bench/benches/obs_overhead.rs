//! Observability overhead: the served request path with metrics
//! recording enabled vs disabled, end-to-end over a real loopback TCP
//! connection — the workload `server_throughput` uses, at the same
//! scale, so the two series differ only in whether every dispatch bumps
//! the pdb-obs counters and histogram span timers.
//!
//! CI's `obs-smoke` job runs this target in quick mode, commits the
//! medians as `BENCH_obs.json`, and **fails if the enabled median
//! regresses more than 5% over the disabled one** — the "near-zero cost
//! when idle, cheap when hot" claim is asserted, not assumed.
//!
//! The disabled series runs first: `pdb_obs::set_enabled` is a global
//! process-wide switch, and flipping it back on before the enabled
//! series leaves the process in the default state when the harness
//! exits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::TopKQuery;
use pdb_server::protocol::EvalMode;
use pdb_server::{Client, DatasetSpec, Server, ServerConfig};
use std::cell::Cell;
use std::hint::black_box;
use std::time::Duration;

/// Smaller than `server_throughput`'s 10⁴ on purpose: a ~10× cheaper
/// round trip means ~10× more iterations per Criterion sample, which
/// averages out scheduler jitter — the 5% CI gate needs sample medians
/// stable to a couple percent, and the per-request instrumentation cost
/// under test is constant per request, so a cheaper request makes the
/// gate *more* sensitive, not less.
const TUPLES: usize = 1_000;

/// Same three-tenant PT-k mix as `server_throughput` (k_max = 50).
const KS: [usize; 3] = [5, 15, 50];

/// One `apply_probe` (delta mode) round trip per iteration, with the
/// same self-inverting reweight mutation as `server_throughput`, so the
/// session state is stationary over the run.
fn bench_obs_overhead(c: &mut Criterion) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        shards: 4,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let server_thread = std::thread::spawn(move || server.run());

    let spec = DatasetSpec::Synthetic { tuples: TUPLES };
    let db = pdb_gen::spec::build_dataset(&spec).expect("mirror dataset");
    let original: Vec<f64> = db.x_tuple(0).members.iter().map(|&pos| db.tuple(pos).prob).collect();
    let mut swapped = original.clone();
    swapped.swap(0, original.len() - 1);

    let mut client = Client::connect(addr).expect("connect");
    let mut group = c.benchmark_group("obs/server");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    for (enabled, label) in [(false, "disabled"), (true, "enabled")] {
        // The server runs in this process, so the switch reaches its
        // dispatch path directly.
        pdb_obs::set_enabled(enabled);
        let session = client.create_session(spec.clone(), 1, 0.8).expect("create_session").session;
        for &k in &KS {
            client
                .register_query(session, TopKQuery::PTk { k, threshold: 0.1 }, 1.0)
                .expect("register_query");
        }
        let flip = Cell::new(false);
        group.bench_with_input(BenchmarkId::new(label, TUPLES), &TUPLES, |b, _| {
            b.iter(|| {
                let probs = if flip.replace(!flip.get()) { &original } else { &swapped };
                let applied = client
                    .apply_probe(
                        session,
                        0,
                        XTupleMutation::Reweight { probs: probs.clone() },
                        EvalMode::Delta,
                    )
                    .expect("apply_probe");
                black_box(applied.update.aggregate)
            })
        });
        client.drop_session(session).expect("drop_session");
    }
    group.finish();
    pdb_obs::set_enabled(true);

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread").expect("clean shutdown");
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
