//! Snapshot I/O vs regeneration: loading a binary snapshot must beat
//! regenerating the dataset and re-running PSR — that is the premise of
//! checkpoint-based recovery (a session restart loads its last snapshot
//! instead of rebuilding the dirty database and replaying everything).
//!
//! Three timings at n = 10⁴:
//!
//! * `load_snapshot` — `Snapshot::read` of the columnar binary file;
//! * `regenerate` — the synthetic generator alone (what a snapshot-less
//!   restart pays before any evaluation);
//! * `regenerate_and_psr` — generator + one PSR run at k = 50 (the full
//!   price of rebuilding a session's evaluation from nothing).
//!
//! The `recovery-smoke` CI job runs this target in quick mode and tracks
//! its medians as `BENCH_store.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb_bench::synthetic;
use pdb_engine::psr::rank_probabilities;
use pdb_store::Snapshot;
use std::hint::black_box;
use std::time::Duration;

const TUPLES: usize = 10_000;
const K: usize = 50;

fn bench_snapshot_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_io");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    let db = synthetic(TUPLES);
    let dir = std::env::temp_dir().join("pdb-bench-snapshot-io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("bench-{TUPLES}.pdbs"));
    Snapshot::write(&db, &path).unwrap();

    group.bench_with_input(BenchmarkId::new("load_snapshot", TUPLES), &path, |b, path| {
        b.iter(|| Snapshot::read(black_box(path)).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("regenerate", TUPLES), &TUPLES, |b, &n| {
        b.iter(|| synthetic(black_box(n)))
    });
    group.bench_with_input(BenchmarkId::new("regenerate_and_psr", TUPLES), &TUPLES, |b, &n| {
        b.iter(|| {
            let db = synthetic(black_box(n));
            rank_probabilities(&db, K).unwrap()
        })
    });

    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_snapshot_io);
criterion_main!(benches);
