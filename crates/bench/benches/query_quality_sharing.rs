//! Figure 5: sharing the PSR run between query evaluation and quality
//! computation.  Compares (a) evaluating PT-k and quality with two
//! independent PSR runs vs one shared run, and (b) the marginal cost of
//! each query semantics and of the quality score once the rank
//! probabilities are available.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb_bench::{mov, synthetic};
use pdb_core::RankedDatabase;
use pdb_engine::psr::rank_probabilities;
use pdb_engine::queries::{global_topk, pt_k, u_k_ranks};
use pdb_quality::{quality_tp, quality_tp_with, SharedEvaluation};
use std::hint::black_box;
use std::time::Duration;

const THRESHOLD: f64 = 0.1;

fn bench_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a/query_plus_quality");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let db = synthetic(50_000);
    for &k in &[15usize, 50, 100] {
        group.bench_with_input(BenchmarkId::new("non_sharing", k), &k, |b, &k| {
            b.iter(|| {
                let rp = rank_probabilities(black_box(&db), k).unwrap();
                let answer = pt_k(&db, &rp, THRESHOLD).unwrap();
                let quality = quality_tp(&db, k).unwrap();
                (answer, quality)
            })
        });
        group.bench_with_input(BenchmarkId::new("sharing", k), &k, |b, &k| {
            b.iter(|| {
                let shared = SharedEvaluation::new(black_box(&db), k).unwrap();
                let answer = shared.pt_k(THRESHOLD).unwrap();
                let quality = shared.quality();
                (answer, quality)
            })
        });
    }
    group.finish();
}

fn bench_marginal_costs(db_name: &str, db: &RankedDatabase, c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("fig5bc/marginal_{db_name}"));
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &k in &[15usize, 100] {
        let rp = rank_probabilities(db, k).unwrap();
        group.bench_with_input(BenchmarkId::new("psr", k), &k, |b, &k| {
            b.iter(|| rank_probabilities(black_box(db), k).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pt_k_select", k), &rp, |b, rp| {
            b.iter(|| pt_k(black_box(db), rp, THRESHOLD).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("u_k_ranks_select", k), &rp, |b, rp| {
            b.iter(|| u_k_ranks(black_box(db), rp))
        });
        group.bench_with_input(BenchmarkId::new("global_topk_select", k), &rp, |b, rp| {
            b.iter(|| global_topk(black_box(db), rp))
        });
        group.bench_with_input(BenchmarkId::new("quality_extra", k), &rp, |b, rp| {
            b.iter(|| quality_tp_with(black_box(db), rp))
        });
    }
    group.finish();
}

fn bench_marginal(c: &mut Criterion) {
    let synthetic_db = synthetic(50_000);
    bench_marginal_costs("synthetic", &synthetic_db, c);
    let mov_db = mov(4_999);
    bench_marginal_costs("mov", &mov_db, c);
}

criterion_group!(benches, bench_sharing, bench_marginal);
criterion_main!(benches);
