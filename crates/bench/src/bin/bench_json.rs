//! Convert Criterion bench output into a `BENCH_*.json` artifact.
//!
//! Reads bench output lines from stdin — either the vendored stand-in's
//! `<id>  time: [<min> <median> <max>]  (...)` summary lines or the real
//! crate's `<id>  time:   [1.23 ms 1.30 ms 1.40 ms]` estimates — and
//! writes a JSON object mapping each benchmark id to its **median
//! nanoseconds** (the middle value of the bracketed triple) to stdout.
//! Non-matching lines are ignored, so piping the whole `cargo bench`
//! output through works.
//!
//! Usage (what CI's `bench-smoke` job runs):
//!
//! ```sh
//! cargo bench --bench batch_evaluation -- --warm-up-time 0.5 --measurement-time 1 \
//!   | tee bench-out.txt
//! cargo run --release -p pdb-bench --bin bench_json < bench-out.txt > BENCH_batch.json
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::io::Read;

/// Convert a `(value, unit)` pair from a criterion summary to nanoseconds.
fn to_ns(value: f64, unit: &str) -> Option<f64> {
    let factor = match unit {
        "ns" => 1.0,
        "us" | "µs" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some(value * factor)
}

/// Parse one bench output line into `(bench id, median ns)`.
///
/// Expects `<id> ... time: [<v> <u> <v> <u> <v> <u>] ...` and returns the
/// middle (median) value; `None` for lines that are not bench summaries.
fn parse_line(line: &str) -> Option<(String, f64)> {
    let (head, tail) = line.split_once("time:")?;
    let id = head.trim();
    if id.is_empty() {
        return None;
    }
    let bracket = tail.trim().strip_prefix('[')?;
    let (inside, _) = bracket.split_once(']')?;
    let tokens: Vec<&str> = inside.split_whitespace().collect();
    if tokens.len() != 6 {
        return None;
    }
    let median = tokens[2].parse::<f64>().ok()?;
    to_ns(median, tokens[3]).map(|ns| (id.to_string(), ns))
}

/// Render the map as deterministic, human-diffable JSON.  Bench ids only
/// contain `[A-Za-z0-9_/.-]`, but escape quotes and backslashes anyway.
fn to_json(medians: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (i, (id, ns)) in medians.iter().enumerate() {
        let escaped: String = id
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c => vec![c],
            })
            .collect();
        out.push_str(&format!("  \"{escaped}\": {ns:.1}"));
        out.push_str(if i + 1 < medians.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

fn main() {
    let mut input = String::new();
    std::io::stdin().read_to_string(&mut input).expect("reading stdin failed");
    let medians: BTreeMap<String, f64> = input.lines().filter_map(parse_line).collect();
    if medians.is_empty() {
        eprintln!("bench_json: no `time: [..]` summary lines found on stdin");
        std::process::exit(1);
    }
    print!("{}", to_json(&medians));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_stand_in_summary_lines() {
        let line = "batch/query_plus_quality/shared/10                 \
                    time: [3.10 ms 3.25 ms 3.90 ms]  (10 samples x 1 iters)";
        let (id, ns) = parse_line(line).unwrap();
        assert_eq!(id, "batch/query_plus_quality/shared/10");
        assert!((ns - 3.25e6).abs() < 1e-6);
    }

    #[test]
    fn parses_real_criterion_estimate_lines() {
        let line = "fib 20                  time:   [26.029 us 26.251 us 26.505 us]";
        let (id, ns) = parse_line(line).unwrap();
        assert_eq!(id, "fib 20");
        assert!((ns - 26_251.0).abs() < 1e-6);
    }

    #[test]
    fn converts_all_units_to_ns() {
        assert_eq!(to_ns(2.0, "ns"), Some(2.0));
        assert_eq!(to_ns(2.0, "us"), Some(2_000.0));
        assert_eq!(to_ns(2.0, "ms"), Some(2_000_000.0));
        assert_eq!(to_ns(2.0, "s"), Some(2_000_000_000.0));
        assert_eq!(to_ns(2.0, "lightyears"), None);
    }

    #[test]
    fn ignores_non_summary_lines() {
        assert!(parse_line("Running benches/batch_evaluation.rs").is_none());
        assert!(parse_line("   time: [garbage]").is_none());
        assert!(parse_line("id time: [1.0 ms 2.0 ms]").is_none());
        assert!(parse_line("").is_none());
    }

    #[test]
    fn json_is_sorted_escaped_and_well_formed() {
        let mut m = BTreeMap::new();
        m.insert("b/second".to_string(), 2.5);
        m.insert("a\"quote".to_string(), 1.0);
        let json = to_json(&m);
        assert_eq!(json, "{\n  \"a\\\"quote\": 1.0,\n  \"b/second\": 2.5\n}\n");
    }
}
