//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench target regenerates the timing series of one figure family of
//! the paper (see the figure-to-experiment mapping in the workspace
//! README.md).  The fixtures here keep
//! dataset construction out of the measured code and consistent across
//! targets.

#![forbid(unsafe_code)]

use pdb_clean::CleaningSetup;
use pdb_core::RankedDatabase;
use pdb_gen::cleaning_params::{generate as gen_params, CleaningParamsConfig};
use pdb_gen::mov::{self, MovConfig};
use pdb_gen::synthetic::{self, SyntheticConfig};

/// Synthetic dataset with approximately `tuples` tuples (10 alternatives
/// per x-tuple, Gaussian uncertainty — the paper's default family).
pub fn synthetic(tuples: usize) -> RankedDatabase {
    synthetic::generate_ranked(&SyntheticConfig::with_total_tuples(tuples))
        .expect("synthetic generation succeeds")
}

/// MOV stand-in dataset with the given number of (movie, viewer) pairs.
pub fn mov(x_tuples: usize) -> RankedDatabase {
    mov::generate_ranked(&MovConfig { num_x_tuples: x_tuples, ..MovConfig::paper_default() })
        .expect("MOV generation succeeds")
}

/// The paper's default cleaning parameters for a database with `m`
/// x-tuples (cost uniform in [1, 10], sc-probability uniform in [0, 1]).
pub fn cleaning_setup(m: usize) -> CleaningSetup {
    let params = gen_params(m, &CleaningParamsConfig::default());
    // pdb-analyze: allow(panic-path): bench harness helper; generated parameters are valid by construction
    CleaningSetup::new(params.costs, params.sc_probs).expect("generated parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_the_requested_shape() {
        assert_eq!(synthetic(500).len(), 500);
        assert_eq!(mov(100).num_x_tuples(), 100);
        assert_eq!(cleaning_setup(50).len(), 50);
    }
}
