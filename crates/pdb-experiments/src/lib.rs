//! # pdb-experiments — the evaluation harness
//!
//! One driver per figure of the paper's evaluation section (Section VI).
//! Every driver returns an [`ExperimentResult`] holding the same series the
//! paper plots, renderable as a text table or CSV.  Experiments accept a
//! [`Scale`]: `Quick` runs a scaled-down configuration in seconds (used by
//! the integration tests and the default CLI invocation), `Paper` uses the
//! paper's parameters.
//!
//! | id | paper figure | driver |
//! |----|--------------|--------|
//! | `fig2-3` | Figs. 2–3 (udb1/udb2 pw-results) | [`quality_exp::fig2_3`] |
//! | `fig4a`–`fig4f` | Fig. 4 (quality & quality-computation time) | [`quality_exp`] |
//! | `fig5a`–`fig5d` | Fig. 5 (query/quality computation sharing) | [`sharing_exp`] |
//! | `fig6a`–`fig6g` | Fig. 6 (cleaning effectiveness & efficiency) | [`cleaning_exp`] |
//! | `adaptive-n`, `adaptive-c` | beyond the paper: adaptive re-planning, incremental vs full rebuild | [`adaptive_exp`] |
//! | `batch-q` | beyond the paper: batched multi-query shared evaluation vs independent runs | [`sharing_exp`] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive_exp;
pub mod cleaning_exp;
pub mod datasets;
pub mod quality_exp;
pub mod report;
pub mod scale;
pub mod sharing_exp;

pub use report::{ExperimentResult, Series};
pub use scale::Scale;

use pdb_core::{DbError, Result};

/// All experiment identifiers, in the order they appear in the paper.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig2-3",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig4d",
    "fig4e",
    "fig4f",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig6d",
    "fig6e",
    "fig6f",
    "fig6g",
    "adaptive-n",
    "adaptive-c",
    "batch-q",
];

/// Run one experiment by its identifier (see [`ALL_EXPERIMENTS`]).
pub fn run(id: &str, scale: Scale) -> Result<ExperimentResult> {
    match id {
        "fig2-3" | "fig2" | "fig3" => quality_exp::fig2_3(scale),
        "fig4a" => quality_exp::fig4a(scale),
        "fig4b" => quality_exp::fig4b(scale),
        "fig4c" => quality_exp::fig4c(scale),
        "fig4d" => quality_exp::fig4d(scale),
        "fig4e" => quality_exp::fig4e(scale),
        "fig4f" => quality_exp::fig4f(scale),
        "fig5a" => sharing_exp::fig5a(scale),
        "fig5b" => sharing_exp::fig5b(scale),
        "fig5c" => sharing_exp::fig5c(scale),
        "fig5d" => sharing_exp::fig5d(scale),
        "fig6a" => cleaning_exp::fig6a(scale),
        "fig6b" => cleaning_exp::fig6b(scale),
        "fig6c" => cleaning_exp::fig6c(scale),
        "fig6d" => cleaning_exp::fig6d(scale),
        "fig6e" => cleaning_exp::fig6e(scale),
        "fig6f" => cleaning_exp::fig6f(scale),
        "fig6g" => cleaning_exp::fig6g(scale),
        "adaptive-n" => adaptive_exp::adaptive_n(scale),
        "adaptive-c" => adaptive_exp::adaptive_c(scale),
        "batch-q" => sharing_exp::batch_q(scale),
        other => Err(DbError::invalid_parameter(format!(
            "unknown experiment {other:?}; known ids: {}",
            ALL_EXPERIMENTS.join(", ")
        ))),
    }
}

/// Run every experiment at the given scale.
pub fn run_all(scale: Scale) -> Result<Vec<ExperimentResult>> {
    ALL_EXPERIMENTS.iter().map(|id| run(id, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_is_runnable_by_id() {
        // Just dispatch checking: unknown ids error, aliases resolve.
        assert!(run("not-an-experiment", Scale::Quick).is_err());
        let r = run("fig2", Scale::Quick).unwrap();
        assert_eq!(r.id, "fig2-3");
    }

    #[test]
    fn experiment_ids_are_unique() {
        let mut ids = ALL_EXPERIMENTS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_EXPERIMENTS.len());
        assert_eq!(ALL_EXPERIMENTS.len(), 21);
    }
}
