//! Experiment output: named series, tables and CSV.
//!
//! Every experiment of the harness produces an [`ExperimentResult`]: a set
//! of named series over a common x-axis, mirroring one figure of the
//! paper's evaluation section.  Results can be rendered as an aligned text
//! table (for the CLI and EXPERIMENTS.md) or as CSV (for external
//! plotting).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One line of a figure: a named sequence of `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Name of the series (e.g. `"TP"`, `"Greedy"`).
    pub name: String,
    /// `(x, y)` points in x order.  A missing measurement (e.g. an
    /// algorithm that was skipped because it would take too long) simply
    /// has no point at that x.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create a series from points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self { name: name.into(), points }
    }

    /// The y value measured at the given x, if any.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| (px - x).abs() < 1e-9).map(|(_, y)| *y)
    }
}

/// The reproduction of one figure (or table) of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment identifier (`fig4a`, `fig6c`, …) as listed in the
    /// workspace README.md and [`crate::ALL_EXPERIMENTS`].
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The measured series.
    pub series: Vec<Series>,
    /// Free-form notes (dataset summary, skipped configurations, …).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Create an empty result with the given metadata.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push_series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Add a note.
    pub fn push_note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Find a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// All distinct x values across the series, in ascending order.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> =
            self.series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Render as an aligned text table (rows = x values, columns = series).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        for note in &self.notes {
            let _ = writeln!(out, "# note: {note}");
        }
        let xs = self.x_values();
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.name.clone()));
        let mut rows: Vec<Vec<String>> = vec![header];
        for &x in &xs {
            let mut row = vec![format_num(x)];
            for s in &self.series {
                row.push(s.y_at(x).map(format_num).unwrap_or_else(|| "-".into()));
            }
            rows.push(row);
        }
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        for row in rows {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(cell, w)| format!("{cell:>w$}", w = w)).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        let _ = writeln!(out, "# y axis: {}", self.y_label);
        out
    }

    /// Render as CSV (first column = x, one column per series).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.name.clone()));
        let _ = writeln!(out, "{}", header.join(","));
        for x in self.x_values() {
            let mut row = vec![format!("{x}")];
            for s in &self.series {
                row.push(s.y_at(x).map(|y| format!("{y}")).unwrap_or_default());
            }
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

fn format_num(v: f64) -> String {
    // pdb-analyze: allow(float-eq): display-only shortcut for literal zero; a near-zero falls through to scientific notation, which is what we want
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        let mut r = ExperimentResult::new("figX", "demo", "k", "quality");
        r.push_series(Series::new("TP", vec![(1.0, -1.5), (2.0, -2.0)]));
        r.push_series(Series::new("PW", vec![(1.0, -1.5)]));
        r.push_note("synthetic dataset, 100 tuples");
        r
    }

    #[test]
    fn x_values_are_merged_and_sorted() {
        let r = sample();
        assert_eq!(r.x_values(), vec![1.0, 2.0]);
        assert_eq!(r.series_named("PW").unwrap().y_at(1.0), Some(-1.5));
        assert_eq!(r.series_named("PW").unwrap().y_at(2.0), None);
        assert!(r.series_named("nope").is_none());
    }

    #[test]
    fn table_contains_headers_missing_cells_and_notes() {
        let t = sample().to_table();
        assert!(t.contains("figX"));
        assert!(t.contains("note: synthetic"));
        assert!(t.contains("TP"));
        assert!(t.contains("PW"));
        assert!(t.contains('-'), "missing cell rendered as a dash");
        assert!(t.contains("y axis: quality"));
    }

    #[test]
    fn csv_has_one_row_per_x() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "k,TP,PW");
        assert!(lines[2].starts_with('2'));
        assert!(lines[2].ends_with(','), "missing PW measurement at x=2");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(0.0), "0");
        assert_eq!(format_num(15.0), "15");
        assert_eq!(format_num(-2.5504), "-2.5504");
        assert!(format_num(1.5e7).contains('e'));
        assert!(format_num(2.0e-5).contains('e'));
    }

    #[test]
    fn serde_round_trip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
