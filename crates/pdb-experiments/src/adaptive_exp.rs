//! Adaptive re-planning at scale: incremental deltas vs per-probe full
//! rebuilds.
//!
//! These experiments go beyond the paper (whose Section V-A leaves
//! adaptive re-planning as future work): they measure the wall-clock cost
//! of one adaptive cleaning session when every observed probe outcome
//! triggers a full PSR + TP rerun ([`ReplanMode::FullRebuild`], O(C·n·k)
//! for `C` probes) against the incremental delta engine
//! ([`ReplanMode::Incremental`], one PSR run up front and O(k)-per-row
//! patches afterwards), sweeping the database size (`adaptive-n`) and the
//! cleaning budget (`adaptive-c`).

use crate::datasets;
use crate::report::{ExperimentResult, Series};
use crate::scale::{time_ms, Scale};
use pdb_clean::{run_adaptive_session_with, AdaptiveOutcome, CleaningSetup, ReplanMode};
use pdb_core::{RankedDatabase, Result};
use rand::{rngs::StdRng, SeedableRng};

/// Seed of the probe-outcome stream; both modes replay the same stream so
/// their sessions are directly comparable.
const SESSION_SEED: u64 = 0x5EED;

/// Time one adaptive session in each re-planning mode on the same
/// database, setup and random stream.
fn timed_pair(
    db: &RankedDatabase,
    setup: &CleaningSetup,
    k: usize,
    budget: u64,
) -> Result<((AdaptiveOutcome, f64), (AdaptiveOutcome, f64))> {
    let mut rng = StdRng::seed_from_u64(SESSION_SEED);
    let (inc, inc_ms) = time_ms(|| {
        run_adaptive_session_with(db, setup, k, budget, ReplanMode::Incremental, &mut rng)
    });
    let mut rng = StdRng::seed_from_u64(SESSION_SEED);
    let (full, full_ms) = time_ms(|| {
        run_adaptive_session_with(db, setup, k, budget, ReplanMode::FullRebuild, &mut rng)
    });
    Ok(((inc?, inc_ms), (full?, full_ms)))
}

fn push_pair(
    result: &mut ExperimentResult,
    series: &mut [(&str, Vec<(f64, f64)>); 2],
    x: f64,
    pair: &((AdaptiveOutcome, f64), (AdaptiveOutcome, f64)),
) {
    let ((inc, inc_ms), (full, full_ms)) = pair;
    series[0].1.push((x, *inc_ms));
    series[1].1.push((x, *full_ms));
    result.push_note(format!(
        "x = {x}: incremental {:.2} ms / full-rebuild {:.2} ms ({:.1}x); \
         probes {} vs {}, improvement {:.4} vs {:.4}; delta rows: {} swapped, {} copied, {} rebuilt",
        inc_ms,
        full_ms,
        full_ms / inc_ms.max(1e-9),
        inc.probes,
        full.probes,
        inc.improvement(),
        full.improvement(),
        inc.delta_stats.rows_swapped,
        inc.delta_stats.rows_copied,
        inc.delta_stats.rows_rebuilt,
    ));
}

fn finish(mut result: ExperimentResult, series: [(&str, Vec<(f64, f64)>); 2]) -> ExperimentResult {
    for (name, points) in series {
        result.push_series(Series::new(name, points));
    }
    result
}

/// `adaptive-n`: session wall-clock vs database size at a fixed budget.
pub fn adaptive_n(scale: Scale) -> Result<ExperimentResult> {
    let sizes: Vec<usize> = scale.pick(vec![1_000, 2_000, 4_000], vec![10_000, 20_000, 50_000]);
    let budget = scale.pick(8, 64);
    let k = datasets::DEFAULT_K;
    let mut result = ExperimentResult::new(
        "adaptive-n",
        "adaptive session wall-clock vs database size",
        "tuples n",
        "session time (ms)",
    );
    result.push_note(format!("k = {k}; budget C = {budget}; one session per point, shared seed"));
    let mut series = [("incremental", Vec::new()), ("full-rebuild", Vec::new())];
    for &n in &sizes {
        let db = datasets::synthetic_with_tuples(n)?;
        let setup = datasets::default_cleaning_setup(db.num_x_tuples())?;
        let pair = timed_pair(&db, &setup, k, budget)?;
        push_pair(&mut result, &mut series, n as f64, &pair);
    }
    Ok(finish(result, series))
}

/// `adaptive-c`: session wall-clock vs cleaning budget at a fixed size.
pub fn adaptive_c(scale: Scale) -> Result<ExperimentResult> {
    let budgets: Vec<u64> = scale.pick(vec![2, 4, 8, 16], vec![8, 16, 32, 64, 128]);
    let n = scale.pick(2_000, 10_000);
    let k = datasets::DEFAULT_K;
    let db = datasets::synthetic_with_tuples(n)?;
    let setup = datasets::default_cleaning_setup(db.num_x_tuples())?;
    let mut result = ExperimentResult::new(
        "adaptive-c",
        "adaptive session wall-clock vs cleaning budget",
        "budget C",
        "session time (ms)",
    );
    result
        .push_note(format!("k = {k}; n = {} tuples; one session per point, shared seed", db.len()));
    let mut series = [("incremental", Vec::new()), ("full-rebuild", Vec::new())];
    for &budget in &budgets {
        let pair = timed_pair(&db, &setup, k, budget)?;
        push_pair(&mut result, &mut series, budget as f64, &pair);
    }
    Ok(finish(result, series))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_n_reports_both_replan_modes() {
        let r = adaptive_n(Scale::Quick).unwrap();
        for name in ["incremental", "full-rebuild"] {
            let s = r.series_named(name).unwrap();
            assert_eq!(s.points.len(), 3, "{name}");
            assert!(s.points.iter().all(|&(_, ms)| ms >= 0.0));
        }
        assert!(r.notes.iter().any(|n| n.contains("probes")));
    }

    #[test]
    fn adaptive_c_sweeps_the_budget() {
        let r = adaptive_c(Scale::Quick).unwrap();
        for name in ["incremental", "full-rebuild"] {
            assert_eq!(r.series_named(name).unwrap().points.len(), 4, "{name}");
        }
    }
}
