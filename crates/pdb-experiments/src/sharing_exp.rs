//! Experiments on sharing computation between query evaluation and quality
//! computation (Figure 5 of the paper, Section IV-C).

use crate::datasets;
use crate::report::{ExperimentResult, Series};
use crate::scale::{time_ms, Scale};
use pdb_core::{RankedDatabase, Result};
use pdb_engine::psr::rank_probabilities;
use pdb_engine::queries::{global_topk, pt_k, u_k_ranks};
use pdb_quality::{quality_tp, quality_tp_with, SharedEvaluation};

fn sweep_ks(scale: Scale) -> Vec<usize> {
    scale.pick(vec![5, 15, 30, 50, 80, 100], vec![1, 5, 15, 30, 50, 80, 100])
}

/// Figure 5(a): total time to obtain a PT-k answer *and* its quality score,
/// with and without sharing the PSR run.
pub fn fig5a(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    let mut result = ExperimentResult::new(
        "fig5a",
        "query + quality evaluation time, sharing vs non-sharing (PT-k)",
        "k",
        "time (ms)",
    );
    let mut sharing = Vec::new();
    let mut non_sharing = Vec::new();
    for &k in &sweep_ks(scale) {
        let x = k as f64;
        // Non-sharing: the query evaluates PSR, then quality evaluation
        // re-runs PSR from scratch.
        let (res, ms) = time_ms(|| -> Result<()> {
            let rp = rank_probabilities(&db, k)?;
            let _answer = pt_k(&db, &rp, datasets::DEFAULT_THRESHOLD)?;
            let _quality = quality_tp(&db, k)?;
            Ok(())
        });
        res?;
        non_sharing.push((x, ms));

        // Sharing: one PSR run feeds both the answer and the quality score.
        let (res, ms) = time_ms(|| -> Result<()> {
            let shared = SharedEvaluation::new(&db, k)?;
            let _answer = shared.pt_k(datasets::DEFAULT_THRESHOLD)?;
            let _quality = shared.quality();
            Ok(())
        });
        res?;
        sharing.push((x, ms));
    }
    result.push_note(format!("{} x-tuples, {} tuples", db.num_x_tuples(), db.len()));
    result.push_series(Series::new("non-sharing", non_sharing));
    result.push_series(Series::new("sharing", sharing));
    Ok(result)
}

/// Figure 5(b): PT-k evaluation time vs the *extra* time needed to compute
/// the quality from the shared rank probabilities (synthetic data).
pub fn fig5b(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    query_vs_quality_breakdown("fig5b", "PT-k time vs extra quality time (synthetic)", &db, scale)
}

/// Figure 5(d): the same breakdown on the MOV dataset.
pub fn fig5d(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::mov_dataset(scale)?;
    query_vs_quality_breakdown("fig5d", "PT-k time vs extra quality time (MOV)", &db, scale)
}

fn query_vs_quality_breakdown(
    id: &str,
    title: &str,
    db: &RankedDatabase,
    scale: Scale,
) -> Result<ExperimentResult> {
    let mut result = ExperimentResult::new(id, title, "k", "time (ms)");
    let mut query_points = Vec::new();
    let mut quality_points = Vec::new();
    for &k in &sweep_ks(scale) {
        let x = k as f64;
        // Query evaluation: PSR + PT-k selection.
        let (rp, query_ms) = time_ms(|| rank_probabilities(db, k));
        let rp = rp?;
        let (answer, select_ms) = time_ms(|| pt_k(db, &rp, datasets::DEFAULT_THRESHOLD));
        answer?;
        query_points.push((x, query_ms + select_ms));
        // Quality evaluation reusing the shared rank probabilities.
        let (_q, quality_ms) = time_ms(|| quality_tp_with(db, &rp));
        quality_points.push((x, quality_ms));
    }
    result.push_note(format!("{} x-tuples, {} tuples", db.num_x_tuples(), db.len()));
    result.push_series(Series::new("PT-k", query_points));
    result.push_series(Series::new("Quality", quality_points));
    Ok(result)
}

/// Figure 5(c): evaluation time of the three query semantics compared with
/// the extra quality-computation time.
pub fn fig5c(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    let mut result = ExperimentResult::new(
        "fig5c",
        "query evaluation time per semantics vs extra quality time",
        "k",
        "time (ms)",
    );
    let mut ukranks_points = Vec::new();
    let mut global_points = Vec::new();
    let mut ptk_points = Vec::new();
    let mut quality_points = Vec::new();
    for &k in &sweep_ks(scale) {
        let x = k as f64;
        let (rp, psr_ms) = time_ms(|| rank_probabilities(&db, k));
        let rp = rp?;
        let (_a, ms) = time_ms(|| u_k_ranks(&db, &rp));
        ukranks_points.push((x, psr_ms + ms));
        let (_a, ms) = time_ms(|| global_topk(&db, &rp));
        global_points.push((x, psr_ms + ms));
        let (a, ms) = time_ms(|| pt_k(&db, &rp, datasets::DEFAULT_THRESHOLD));
        a?;
        ptk_points.push((x, psr_ms + ms));
        let (_q, ms) = time_ms(|| quality_tp_with(&db, &rp));
        quality_points.push((x, ms));
    }
    result.push_note(format!("{} x-tuples, {} tuples", db.num_x_tuples(), db.len()));
    result.push_series(Series::new("U-kRanks", ukranks_points));
    result.push_series(Series::new("Global-topk", global_points));
    result.push_series(Series::new("PT-k", ptk_points));
    result.push_series(Series::new("Quality", quality_points));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_sharing_is_not_slower_on_average() {
        let r = fig5a(Scale::Quick).unwrap();
        let sharing = r.series_named("sharing").unwrap();
        let non_sharing = r.series_named("non-sharing").unwrap();
        assert_eq!(sharing.points.len(), non_sharing.points.len());
        let total = |s: &Series| s.points.iter().map(|(_, y)| y).sum::<f64>();
        // Sharing skips one full PSR run per k, so the sweep total must be
        // smaller (allow generous slack for timer noise).
        assert!(
            total(sharing) < total(non_sharing) * 1.05,
            "sharing {} vs non-sharing {}",
            total(sharing),
            total(non_sharing)
        );
    }

    #[test]
    fn fig5b_quality_overhead_is_a_small_fraction() {
        let r = fig5b(Scale::Quick).unwrap();
        let query = r.series_named("PT-k").unwrap();
        let quality = r.series_named("Quality").unwrap();
        let query_total: f64 = query.points.iter().map(|(_, y)| y).sum();
        let quality_total: f64 = quality.points.iter().map(|(_, y)| y).sum();
        // The paper reports the quality overhead dropping to ~6% of the
        // query time; we only require it to stay below the query time.
        assert!(
            quality_total < query_total,
            "quality overhead {quality_total} should be below query time {query_total}"
        );
    }

    #[test]
    fn fig5c_has_all_four_series() {
        let r = fig5c(Scale::Quick).unwrap();
        for name in ["U-kRanks", "Global-topk", "PT-k", "Quality"] {
            assert!(!r.series_named(name).unwrap().points.is_empty(), "{name}");
        }
    }

    #[test]
    fn fig5d_runs_on_mov() {
        let r = fig5d(Scale::Quick).unwrap();
        assert_eq!(r.series.len(), 2);
        assert!(r.notes[0].contains("x-tuples"));
    }
}
