//! Experiments on sharing computation between query evaluation and quality
//! computation (Figure 5 of the paper, Section IV-C), and on the batched
//! multi-query generalisation of that sharing (`batch-q`, beyond the
//! paper): one PSR run at `k_max` serving a whole registered query set.

use crate::datasets;
use crate::report::{ExperimentResult, Series};
use crate::scale::{time_ms, Scale};
use pdb_core::{RankedDatabase, Result};
use pdb_engine::psr::rank_probabilities;
use pdb_engine::queries::{global_topk, pt_k, u_k_ranks, TopKQuery};
use pdb_quality::{quality_tp, quality_tp_with, BatchQuality, SharedEvaluation, WeightedQuery};

fn sweep_ks(scale: Scale) -> Vec<usize> {
    scale.pick(vec![5, 15, 30, 50, 80, 100], vec![1, 5, 15, 30, 50, 80, 100])
}

/// Figure 5(a): total time to obtain a PT-k answer *and* its quality score,
/// with and without sharing the PSR run.
pub fn fig5a(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    let mut result = ExperimentResult::new(
        "fig5a",
        "query + quality evaluation time, sharing vs non-sharing (PT-k)",
        "k",
        "time (ms)",
    );
    let mut sharing = Vec::new();
    let mut non_sharing = Vec::new();
    for &k in &sweep_ks(scale) {
        let x = k as f64;
        // Non-sharing: the query evaluates PSR, then quality evaluation
        // re-runs PSR from scratch.
        let (res, ms) = time_ms(|| -> Result<()> {
            let rp = rank_probabilities(&db, k)?;
            let _answer = pt_k(&db, &rp, datasets::DEFAULT_THRESHOLD)?;
            let _quality = quality_tp(&db, k)?;
            Ok(())
        });
        res?;
        non_sharing.push((x, ms));

        // Sharing: one PSR run feeds both the answer and the quality score.
        let (res, ms) = time_ms(|| -> Result<()> {
            let shared = SharedEvaluation::new(&db, k)?;
            let _answer = shared.pt_k(datasets::DEFAULT_THRESHOLD)?;
            let _quality = shared.quality();
            Ok(())
        });
        res?;
        sharing.push((x, ms));
    }
    result.push_note(format!("{} x-tuples, {} tuples", db.num_x_tuples(), db.len()));
    result.push_series(Series::new("non-sharing", non_sharing));
    result.push_series(Series::new("sharing", sharing));
    Ok(result)
}

/// Figure 5(b): PT-k evaluation time vs the *extra* time needed to compute
/// the quality from the shared rank probabilities (synthetic data).
pub fn fig5b(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    query_vs_quality_breakdown("fig5b", "PT-k time vs extra quality time (synthetic)", &db, scale)
}

/// Figure 5(d): the same breakdown on the MOV dataset.
pub fn fig5d(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::mov_dataset(scale)?;
    query_vs_quality_breakdown("fig5d", "PT-k time vs extra quality time (MOV)", &db, scale)
}

fn query_vs_quality_breakdown(
    id: &str,
    title: &str,
    db: &RankedDatabase,
    scale: Scale,
) -> Result<ExperimentResult> {
    let mut result = ExperimentResult::new(id, title, "k", "time (ms)");
    let mut query_points = Vec::new();
    let mut quality_points = Vec::new();
    for &k in &sweep_ks(scale) {
        let x = k as f64;
        // Query evaluation: PSR + PT-k selection.
        let (rp, query_ms) = time_ms(|| rank_probabilities(db, k));
        let rp = rp?;
        let (answer, select_ms) = time_ms(|| pt_k(db, &rp, datasets::DEFAULT_THRESHOLD));
        answer?;
        query_points.push((x, query_ms + select_ms));
        // Quality evaluation reusing the shared rank probabilities.
        let (_q, quality_ms) = time_ms(|| quality_tp_with(db, &rp));
        quality_points.push((x, quality_ms));
    }
    result.push_note(format!("{} x-tuples, {} tuples", db.num_x_tuples(), db.len()));
    result.push_series(Series::new("PT-k", query_points));
    result.push_series(Series::new("Quality", quality_points));
    Ok(result)
}

/// Figure 5(c): evaluation time of the three query semantics compared with
/// the extra quality-computation time.
pub fn fig5c(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    let mut result = ExperimentResult::new(
        "fig5c",
        "query evaluation time per semantics vs extra quality time",
        "k",
        "time (ms)",
    );
    let mut ukranks_points = Vec::new();
    let mut global_points = Vec::new();
    let mut ptk_points = Vec::new();
    let mut quality_points = Vec::new();
    for &k in &sweep_ks(scale) {
        let x = k as f64;
        let (rp, psr_ms) = time_ms(|| rank_probabilities(&db, k));
        let rp = rp?;
        let (_a, ms) = time_ms(|| u_k_ranks(&db, &rp));
        ukranks_points.push((x, psr_ms + ms));
        let (_a, ms) = time_ms(|| global_topk(&db, &rp));
        global_points.push((x, psr_ms + ms));
        let (a, ms) = time_ms(|| pt_k(&db, &rp, datasets::DEFAULT_THRESHOLD));
        a?;
        ptk_points.push((x, psr_ms + ms));
        let (_q, ms) = time_ms(|| quality_tp_with(&db, &rp));
        quality_points.push((x, ms));
    }
    result.push_note(format!("{} x-tuples, {} tuples", db.num_x_tuples(), db.len()));
    result.push_series(Series::new("U-kRanks", ukranks_points));
    result.push_series(Series::new("Global-topk", global_points));
    result.push_series(Series::new("PT-k", ptk_points));
    result.push_series(Series::new("Quality", quality_points));
    Ok(result)
}

/// The `k` of the largest registered query in the `batch-q` sweep.
pub const BATCH_K_MAX: usize = 200;

/// The registered query set of the `batch-q` experiment: `q` PT-k queries
/// with `k` spread evenly up to [`BATCH_K_MAX`] (for `q = 10`:
/// k = 20, 40, …, 200), all with weight 1.
pub fn batch_query_set(q: usize) -> Vec<WeightedQuery> {
    (1..=q)
        .map(|i| {
            WeightedQuery::new(TopKQuery::PTk {
                k: (BATCH_K_MAX * i).div_ceil(q),
                threshold: datasets::DEFAULT_THRESHOLD,
            })
        })
        .collect()
}

/// Beyond the paper: batched shared evaluation of a registered query set
/// vs one independent evaluation per query, sweeping the batch size `Q`
/// (n = 10⁴ tuples at quick scale, 10⁵ at paper scale).
///
/// Both sides produce every query's PT-k answer *and* quality score.  The
/// independent side runs one full PSR per query (Σᵢ n·kᵢ polynomial
/// steps); the batched side runs PSR once at `k_max` and serves every
/// query from prefix snapshots, so its cost stays ≈ n·k_max and the
/// speedup approaches Σᵢ kᵢ / k_max (5.5× for the 10-query set).
pub fn batch_q(scale: Scale) -> Result<ExperimentResult> {
    let n = scale.pick(10_000, 100_000);
    let db = datasets::synthetic_with_tuples(n)?;
    let mut result = ExperimentResult::new(
        "batch-q",
        "batched multi-query evaluation vs independent per-query runs",
        "Q (registered queries)",
        "time (ms)",
    );
    // Best of five repetitions per measurement: the workload is
    // deterministic, so the minimum is the least noisy estimator (shared
    // CI runners and frequency scaling only ever add time).
    const REPS: usize = 5;
    let min_time = |f: &dyn Fn() -> Result<()>| -> Result<f64> {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let (res, ms) = time_ms(f);
            res?;
            best = best.min(ms);
        }
        Ok(best)
    };

    let mut independent = Vec::new();
    let mut batched = Vec::new();
    let mut speedups = Vec::new();
    for &q in &scale.pick(vec![2usize, 5, 10], vec![2, 5, 10, 20, 50]) {
        let x = q as f64;
        let specs = batch_query_set(q);

        // Independent: one full evaluation (PSR + answer + quality) per
        // registered query.
        let indep_ms = min_time(&|| -> Result<()> {
            for spec in &specs {
                let shared = SharedEvaluation::new(&db, spec.query.k())?;
                let _answer = shared.pt_k(datasets::DEFAULT_THRESHOLD)?;
                let _quality = shared.quality();
            }
            Ok(())
        })?;
        independent.push((x, indep_ms));

        // Batched: one PSR run at k_max serves every answer and quality.
        let batch_ms = min_time(&|| -> Result<()> {
            let batch = BatchQuality::new(&db, specs.clone())?;
            let _answers = batch.answers()?;
            let _qualities = batch.quality_vector();
            Ok(())
        })?;
        batched.push((x, batch_ms));
        speedups.push((x, indep_ms / batch_ms.max(1e-9)));
    }
    result.push_note(format!(
        "{} x-tuples, {} tuples, k_max = {BATCH_K_MAX}",
        db.num_x_tuples(),
        db.len()
    ));
    if let Some(&(q, s)) = speedups.last() {
        result.push_note(format!("shared-vs-independent speedup at Q = {q}: {s:.1}x"));
    }
    result.push_series(Series::new("independent", independent));
    result.push_series(Series::new("batched", batched));
    result.push_series(Series::new("speedup", speedups));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_sharing_is_not_slower_on_average() {
        let r = fig5a(Scale::Quick).unwrap();
        let sharing = r.series_named("sharing").unwrap();
        let non_sharing = r.series_named("non-sharing").unwrap();
        assert_eq!(sharing.points.len(), non_sharing.points.len());
        let total = |s: &Series| s.points.iter().map(|(_, y)| y).sum::<f64>();
        // Sharing skips one full PSR run per k, so the sweep total must be
        // smaller (allow generous slack for timer noise).
        assert!(
            total(sharing) < total(non_sharing) * 1.05,
            "sharing {} vs non-sharing {}",
            total(sharing),
            total(non_sharing)
        );
    }

    #[test]
    fn fig5b_quality_overhead_is_a_small_fraction() {
        let r = fig5b(Scale::Quick).unwrap();
        let query = r.series_named("PT-k").unwrap();
        let quality = r.series_named("Quality").unwrap();
        let query_total: f64 = query.points.iter().map(|(_, y)| y).sum();
        let quality_total: f64 = quality.points.iter().map(|(_, y)| y).sum();
        // The paper reports the quality overhead dropping to ~6% of the
        // query time; we only require it to stay below the query time.
        assert!(
            quality_total < query_total,
            "quality overhead {quality_total} should be below query time {query_total}"
        );
    }

    #[test]
    fn fig5c_has_all_four_series() {
        let r = fig5c(Scale::Quick).unwrap();
        for name in ["U-kRanks", "Global-topk", "PT-k", "Quality"] {
            assert!(!r.series_named(name).unwrap().points.is_empty(), "{name}");
        }
    }

    #[test]
    fn batch_q_produces_all_three_series() {
        // Wall-clock ratios are asserted only in the opt-in perf check
        // below — under a parallel `cargo test` on an oversubscribed
        // runner even a 2x margin can flake, and a timing blip must not
        // fail the functional suite.
        let r = batch_q(Scale::Quick).unwrap();
        for name in ["independent", "batched", "speedup"] {
            let series = r.series_named(name).unwrap();
            assert_eq!(series.points.len(), 3, "{name}");
            assert!(series.points.iter().all(|&(_, y)| y > 0.0), "{name}");
        }
        assert!(r.notes.iter().any(|n| n.contains("speedup at Q = 10")));
    }

    /// Opt-in perf regression check (`cargo test -- --ignored`): the
    /// 10-query batch must beat independent evaluation by well over 2x
    /// (amortization bound 5.5x; ~3.3-4x measured on one idle core).
    /// Run alone, not under the parallel test harness.
    #[test]
    #[ignore = "wall-clock assertion; run explicitly on an idle machine"]
    fn batch_q_beats_independent_evaluation() {
        let r = batch_q(Scale::Quick).unwrap();
        let q = 10.0;
        let indep = r.series_named("independent").unwrap().y_at(q).unwrap();
        let batch = r.series_named("batched").unwrap().y_at(q).unwrap();
        assert!(
            indep > 2.0 * batch,
            "10-query batch should be well over 2x faster: independent {indep} ms vs \
             batched {batch} ms"
        );
        assert!(r.series_named("speedup").unwrap().y_at(q).unwrap() > 2.0);
    }

    #[test]
    fn batch_query_set_spreads_ks_up_to_k_max() {
        let specs = batch_query_set(10);
        let ks: Vec<usize> = specs.iter().map(|s| s.query.k()).collect();
        assert_eq!(ks, vec![20, 40, 60, 80, 100, 120, 140, 160, 180, 200]);
        assert_eq!(batch_query_set(1)[0].query.k(), BATCH_K_MAX);
    }

    #[test]
    fn fig5d_runs_on_mov() {
        let r = fig5d(Scale::Quick).unwrap();
        assert_eq!(r.series.len(), 2);
        assert!(r.notes[0].contains("x-tuples"));
    }
}
