//! Shared dataset construction for the experiments.
//!
//! Every figure of the evaluation section runs either on the synthetic
//! dataset family or on the MOV stand-in; this module centralises their
//! construction (scaled by [`Scale`]) so all experiments of a figure group
//! measure the same data.

use crate::scale::Scale;
use pdb_clean::CleaningSetup;
use pdb_core::{RankedDatabase, Result};
use pdb_gen::cleaning_params::{self, CleaningParamsConfig, ScPdf};
use pdb_gen::mov::{self, MovConfig};
use pdb_gen::synthetic::{self, SyntheticConfig, UncertaintyPdf};

/// The default synthetic dataset of the paper (5 000 x-tuples × 10 tuples),
/// scaled down to 500 x-tuples under [`Scale::Quick`].
pub fn default_synthetic(scale: Scale) -> Result<RankedDatabase> {
    let config = SyntheticConfig {
        num_x_tuples: scale.pick(500, 5_000),
        ..SyntheticConfig::paper_default()
    };
    synthetic::generate_ranked(&config)
}

/// A synthetic dataset with approximately the requested number of tuples.
pub fn synthetic_with_tuples(num_tuples: usize) -> Result<RankedDatabase> {
    synthetic::generate_ranked(&SyntheticConfig::with_total_tuples(num_tuples))
}

/// A synthetic dataset with the given uncertainty pdf (Figure 4(b)).
pub fn synthetic_with_pdf(scale: Scale, pdf: UncertaintyPdf) -> Result<RankedDatabase> {
    let config = SyntheticConfig {
        num_x_tuples: scale.pick(500, 5_000),
        pdf,
        ..SyntheticConfig::paper_default()
    };
    synthetic::generate_ranked(&config)
}

/// The MOV stand-in dataset (4 999 x-tuples), scaled down to 500 under
/// [`Scale::Quick`].
pub fn mov_dataset(scale: Scale) -> Result<RankedDatabase> {
    let config = MovConfig { num_x_tuples: scale.pick(500, 4_999), ..MovConfig::paper_default() };
    mov::generate_ranked(&config)
}

/// The paper's default cleaning parameters (cost uniform in `[1, 10]`,
/// sc-probability uniform in `[0, 1]`) for a database with `m` x-tuples.
pub fn default_cleaning_setup(m: usize) -> Result<CleaningSetup> {
    cleaning_setup_with_pdf(m, ScPdf::paper_default())
}

/// Cleaning parameters with a custom sc-probability distribution
/// (Figures 6(b)/6(c)).
pub fn cleaning_setup_with_pdf(m: usize, sc_pdf: ScPdf) -> Result<CleaningSetup> {
    let params = cleaning_params::generate(
        m,
        &CleaningParamsConfig { sc_pdf, ..CleaningParamsConfig::default() },
    );
    CleaningSetup::new(params.costs, params.sc_probs)
}

/// The paper's default query parameters: `k = 15`, PT-k threshold `0.1`.
pub const DEFAULT_K: usize = 15;

/// Default PT-k probability threshold used in the evaluation.
pub const DEFAULT_THRESHOLD: f64 = 0.1;

/// Default cleaning budget used in the evaluation.
pub const DEFAULT_BUDGET: u64 = 100;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_datasets_have_the_documented_shape() {
        let syn = default_synthetic(Scale::Quick).unwrap();
        assert_eq!(syn.num_x_tuples(), 500);
        assert_eq!(syn.len(), 5_000);

        let mov = mov_dataset(Scale::Quick).unwrap();
        assert_eq!(mov.num_x_tuples(), 500);
        let avg = mov.len() as f64 / mov.num_x_tuples() as f64;
        assert!((avg - 2.0).abs() < 0.2);
    }

    #[test]
    fn sized_synthetic_matches_request() {
        let db = synthetic_with_tuples(1_000).unwrap();
        assert_eq!(db.len(), 1_000);
    }

    #[test]
    fn cleaning_setup_covers_every_x_tuple() {
        let db = default_synthetic(Scale::Quick).unwrap();
        let setup = default_cleaning_setup(db.num_x_tuples()).unwrap();
        assert_eq!(setup.len(), db.num_x_tuples());
        assert!(setup.costs().iter().all(|&c| (1..=10).contains(&c)));
    }

    #[test]
    fn pdf_variants_generate() {
        let g10 =
            synthetic_with_pdf(Scale::Quick, UncertaintyPdf::Gaussian { sigma: 10.0 }).unwrap();
        let uni = synthetic_with_pdf(Scale::Quick, UncertaintyPdf::Uniform).unwrap();
        assert_eq!(g10.len(), uni.len());
    }
}
