//! Experiment scale: paper-faithful parameters vs a quick smoke-test scale.
//!
//! The paper's experiments run on databases of up to a million tuples and
//! budgets of up to 100 000 units; reproducing every point at full size
//! takes hours.  Each experiment therefore exposes two parameterisations:
//!
//! * [`Scale::Paper`] — the sizes and sweeps of the paper (subject to the
//!   caps documented in each experiment's notes, e.g. PW only runs where
//!   the possible-world count is tractable);
//! * [`Scale::Quick`] — a scaled-down version that preserves every series
//!   and the qualitative shape while finishing in seconds.  This is what
//!   the integration tests and the default CLI invocation use.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Which parameterisation of an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scale {
    /// Scaled-down parameters: every series present, seconds to run.
    #[default]
    Quick,
    /// The paper's parameters (with documented caps on the intractable
    /// baselines).
    Paper,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "quick" | "smoke" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Pick `quick` or `paper` value depending on the scale.
    pub fn pick<T>(&self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        })
    }
}

/// Time a closure, returning its result and the elapsed wall-clock time in
/// milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, duration_ms(start.elapsed()))
}

/// Convert a [`Duration`] to fractional milliseconds.
pub fn duration_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_and_display() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::Quick.to_string(), "quick");
        assert_eq!(Scale::default(), Scale::Quick);
    }

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn timing_returns_result_and_positive_duration() {
        let (value, ms) = time_ms(|| (0..1000).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(ms >= 0.0);
        assert!(duration_ms(Duration::from_millis(250)) - 250.0 < 1e-9);
    }
}
