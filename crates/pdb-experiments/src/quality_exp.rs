//! Experiments on quality scores and quality-computation time
//! (Figures 2/3 and 4(a)–4(f) of the paper).

use crate::datasets;
use crate::report::{ExperimentResult, Series};
use crate::scale::{time_ms, Scale};
use pdb_core::{RankedDatabase, Result, ScoreRanking};
use pdb_gen::synthetic::UncertaintyPdf;
use pdb_quality::{
    pw_result_distribution, pwr_result_distribution, quality_pw, quality_pwr_bounded, quality_tp,
};

/// Maximum possible-world count the PW baseline is allowed to enumerate.
const PW_WORLD_LIMIT: u128 = 1 << 22;

/// Maximum number of pw-results PWR may enumerate before a data point is
/// reported as "did not finish" (mirrors the paper's observation that PWR
/// becomes infeasible for large databases / large k).
fn pwr_result_limit(scale: Scale) -> u64 {
    scale.pick(2_000_000, 20_000_000)
}

/// Figures 2 and 3: the pw-result distributions of the running examples
/// `udb1` and `udb2` for a top-2 query, whose qualities are −2.55 and
/// −1.85.
pub fn fig2_3(_scale: Scale) -> Result<ExperimentResult> {
    let mut result = ExperimentResult::new(
        "fig2-3",
        "pw-result distributions of udb1/udb2 (PT-2 query, Tables I & II)",
        "pw-result rank (by probability)",
        "probability",
    );
    for (name, db) in [
        ("udb1", pdb_core::examples::udb1().rank_by(&ScoreRanking)),
        ("udb2", pdb_core::examples::udb2().rank_by(&ScoreRanking)),
    ] {
        let dist = pwr_result_distribution(&db, 2)?;
        let quality = dist.quality();
        let points =
            dist.results.iter().enumerate().map(|(i, r)| ((i + 1) as f64, r.prob)).collect();
        result.push_series(Series::new(name, points));
        result.push_note(format!(
            "{name}: {} pw-results, quality = {quality:.4} (paper: {})",
            dist.len(),
            if name == "udb1" { "-2.55, 7 results" } else { "-1.85, 4 results" }
        ));
    }
    Ok(result)
}

/// Figure 4(a): PWS-quality vs `k` on the default synthetic dataset.
pub fn fig4a(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    quality_vs_k("fig4a", "quality vs k (synthetic)", &db, scale)
}

/// Figure 4(c): PWS-quality vs `k` on the MOV dataset.
pub fn fig4c(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::mov_dataset(scale)?;
    quality_vs_k("fig4c", "quality vs k (MOV)", &db, scale)
}

fn quality_vs_k(
    id: &str,
    title: &str,
    db: &RankedDatabase,
    _scale: Scale,
) -> Result<ExperimentResult> {
    let ks = [1usize, 5, 10, 15, 20, 25, 30];
    let mut result = ExperimentResult::new(id, title, "k", "PWS-quality S");
    let mut points = Vec::new();
    for &k in &ks {
        points.push((k as f64, quality_tp(db, k)?));
    }
    result.push_series(Series::new("S", points));
    result.push_note(format!("{} x-tuples, {} tuples", db.num_x_tuples(), db.len()));
    Ok(result)
}

/// Figure 4(b): PWS-quality under different uncertainty pdfs
/// (G10/G30/G50/G100/uniform) at the default `k`.
pub fn fig4b(scale: Scale) -> Result<ExperimentResult> {
    let pdfs = [
        UncertaintyPdf::Gaussian { sigma: 10.0 },
        UncertaintyPdf::Gaussian { sigma: 30.0 },
        UncertaintyPdf::Gaussian { sigma: 50.0 },
        UncertaintyPdf::Gaussian { sigma: 100.0 },
        UncertaintyPdf::Uniform,
    ];
    let mut result = ExperimentResult::new(
        "fig4b",
        "quality vs uncertainty pdf (synthetic)",
        "pdf index (1=G10, 2=G30, 3=G50, 4=G100, 5=Uniform)",
        "PWS-quality S",
    );
    let mut points = Vec::new();
    for (i, pdf) in pdfs.iter().enumerate() {
        let db = datasets::synthetic_with_pdf(scale, *pdf)?;
        let q = quality_tp(&db, datasets::DEFAULT_K)?;
        points.push(((i + 1) as f64, q));
        result.push_note(format!("{} -> quality {q:.3}", pdf.label()));
    }
    result.push_series(Series::new("S", points));
    Ok(result)
}

/// Figure 4(d): quality-computation time of PW, PWR and TP vs database
/// size, for `k = 5` and small databases (the only regime where PW is
/// feasible at all).
pub fn fig4d(scale: Scale) -> Result<ExperimentResult> {
    let sizes: Vec<usize> = scale.pick(
        vec![10, 20, 30, 40, 50, 60, 100, 200, 500],
        vec![10, 20, 30, 40, 50, 60, 100, 500, 1_000, 5_000, 10_000],
    );
    let k = 5;
    let mut result = ExperimentResult::new(
        "fig4d",
        "quality computation time vs database size (k = 5)",
        "database size (tuples)",
        "time (ms)",
    );
    let mut pw_points = Vec::new();
    let mut pwr_points = Vec::new();
    let mut tp_points = Vec::new();
    for &size in &sizes {
        let db = datasets::synthetic_with_tuples(size)?;
        let x = size as f64;
        if db.world_count() <= PW_WORLD_LIMIT {
            let (q, ms) = time_ms(|| quality_pw(&db, k));
            q?;
            pw_points.push((x, ms));
        }
        let limit = pwr_result_limit(scale);
        let (q, ms) = time_ms(|| quality_pwr_bounded(&db, k, limit));
        if q?.is_some() {
            pwr_points.push((x, ms));
        } else {
            result.push_note(format!("PWR exceeded {limit} pw-results at size {size}; skipped"));
        }
        let (q, ms) = time_ms(|| quality_tp(&db, k));
        q?;
        tp_points.push((x, ms));
    }
    result.push_note(format!(
        "PW only run where the possible-world count is at most {PW_WORLD_LIMIT}"
    ));
    result.push_series(Series::new("PW", pw_points));
    result.push_series(Series::new("PWR", pwr_points));
    result.push_series(Series::new("TP", tp_points));
    Ok(result)
}

/// Figure 4(e): quality-computation time of PWR and TP vs database size,
/// at the default `k = 15` and larger databases.
pub fn fig4e(scale: Scale) -> Result<ExperimentResult> {
    let sizes: Vec<usize> = scale.pick(
        vec![1_000, 2_000, 5_000, 10_000, 20_000],
        vec![1_000, 10_000, 50_000, 100_000, 500_000, 1_000_000],
    );
    let k = datasets::DEFAULT_K;
    let mut result = ExperimentResult::new(
        "fig4e",
        "quality computation time vs database size (k = 15)",
        "database size (tuples)",
        "time (ms)",
    );
    let mut pwr_points = Vec::new();
    let mut tp_points = Vec::new();
    let limit = pwr_result_limit(scale);
    for &size in &sizes {
        let db = datasets::synthetic_with_tuples(size)?;
        let x = size as f64;
        let (q, ms) = time_ms(|| quality_pwr_bounded(&db, k, limit));
        if q?.is_some() {
            pwr_points.push((x, ms));
        } else {
            result.push_note(format!("PWR exceeded {limit} pw-results at size {size}; skipped"));
        }
        let (q, ms) = time_ms(|| quality_tp(&db, k));
        q?;
        tp_points.push((x, ms));
    }
    result.push_series(Series::new("PWR", pwr_points));
    result.push_series(Series::new("TP", tp_points));
    Ok(result)
}

/// Figure 4(f): quality-computation time of PWR and TP vs `k` on the
/// default synthetic dataset.
pub fn fig4f(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    let ks: Vec<usize> =
        scale.pick(vec![1, 2, 5, 10, 20, 50, 100], vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000]);
    let mut result = ExperimentResult::new(
        "fig4f",
        "quality computation time vs k (synthetic)",
        "k",
        "time (ms)",
    );
    let mut pwr_points = Vec::new();
    let mut tp_points = Vec::new();
    let limit = pwr_result_limit(scale);
    for &k in &ks {
        let x = k as f64;
        let (q, ms) = time_ms(|| quality_pwr_bounded(&db, k, limit));
        if q?.is_some() {
            pwr_points.push((x, ms));
        } else {
            result.push_note(format!("PWR exceeded {limit} pw-results at k = {k}; skipped"));
        }
        let (q, ms) = time_ms(|| quality_tp(&db, k));
        q?;
        tp_points.push((x, ms));
    }
    result.push_note(format!("{} x-tuples, {} tuples", db.num_x_tuples(), db.len()));
    result.push_series(Series::new("PWR", pwr_points));
    result.push_series(Series::new("TP", tp_points));
    Ok(result)
}

/// Sanity helper used in tests: Figure 2/3's pw-result distributions agree
/// with the PW baseline.
pub fn fig2_3_cross_check() -> Result<bool> {
    let db1 = pdb_core::examples::udb1().rank_by(&ScoreRanking);
    let pw = pw_result_distribution(&db1, 2)?;
    let pwr = pwr_result_distribution(&db1, 2)?;
    Ok(pw.len() == pwr.len() && (pw.quality() - pwr.quality()).abs() < 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_3_matches_the_paper() {
        let r = fig2_3(Scale::Quick).unwrap();
        assert_eq!(r.series.len(), 2);
        let udb1 = r.series_named("udb1").unwrap();
        let udb2 = r.series_named("udb2").unwrap();
        assert_eq!(udb1.points.len(), 7);
        assert_eq!(udb2.points.len(), 4);
        // Probabilities sum to one in both distributions.
        for s in [udb1, udb2] {
            let total: f64 = s.points.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        assert!(fig2_3_cross_check().unwrap());
    }

    #[test]
    fn fig4a_quality_decreases_with_k() {
        let r = fig4a(Scale::Quick).unwrap();
        let s = r.series_named("S").unwrap();
        assert_eq!(s.points.len(), 7);
        for w in s.points.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "quality must not increase with k: {w:?}");
        }
        assert!(s.points.iter().all(|&(_, q)| q <= 0.0));
    }

    #[test]
    fn fig4b_orders_pdfs_by_concentration() {
        let r = fig4b(Scale::Quick).unwrap();
        let s = r.series_named("S").unwrap();
        assert_eq!(s.points.len(), 5);
        let q = |i: usize| s.points[i].1;
        // G10 (most concentrated) is best; the uniform pdf is worst.
        assert!(q(0) > q(3), "G10 should beat G100");
        assert!(q(4) <= q(3) + 1e-6, "uniform should not beat G100");
        assert!(q(4) <= q(0), "uniform should not beat G10");
    }

    #[test]
    fn fig4c_mov_is_less_ambiguous_than_synthetic() {
        let syn = fig4a(Scale::Quick).unwrap();
        let mov = fig4c(Scale::Quick).unwrap();
        let at_k15 = |r: &ExperimentResult| r.series_named("S").unwrap().y_at(15.0).unwrap();
        assert!(
            at_k15(&mov) > at_k15(&syn),
            "MOV (2 alternatives/x-tuple) should score higher quality than the synthetic data"
        );
    }

    #[test]
    fn fig4d_tp_beats_pwr_beats_pw() {
        let r = fig4d(Scale::Quick).unwrap();
        // PW only covers the smallest databases.
        let pw = r.series_named("PW").unwrap();
        let pwr = r.series_named("PWR").unwrap();
        let tp = r.series_named("TP").unwrap();
        assert!(!pw.points.is_empty());
        assert!(pw.points.len() < tp.points.len());
        assert!(!pwr.points.is_empty());
        assert_eq!(tp.points.len(), 9);
        // At the largest size PW covers, it is the slowest of the three.
        let (x_last, pw_time) = *pw.points.last().unwrap();
        if let (Some(pwr_time), Some(tp_time)) = (pwr.y_at(x_last), tp.y_at(x_last)) {
            assert!(pw_time >= pwr_time * 0.5, "PW should not be much faster than PWR");
            assert!(pw_time >= tp_time, "PW should not beat TP");
        }
    }

    #[test]
    fn fig4e_and_4f_always_report_tp() {
        let r = fig4e(Scale::Quick).unwrap();
        assert_eq!(r.series_named("TP").unwrap().points.len(), 5);
        let r = fig4f(Scale::Quick).unwrap();
        assert_eq!(r.series_named("TP").unwrap().points.len(), 7);
    }
}
