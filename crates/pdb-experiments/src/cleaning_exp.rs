//! Experiments on the cleaning algorithms (Figure 6 of the paper).

use crate::datasets;
use crate::report::{ExperimentResult, Series};
use crate::scale::{time_ms, Scale};
use pdb_clean::{expected_improvement, CleaningAlgorithm, CleaningContext, CleaningSetup};
use pdb_core::{RankedDatabase, Result};
use pdb_gen::cleaning_params::ScPdf;
use rand::{rngs::StdRng, SeedableRng};

/// Number of runs the random heuristics are averaged over.
const RANDOM_TRIALS: u32 = 10;

/// Budgets above this value skip the DP algorithm (its `O(C²·|Z|)` table
/// would take minutes to hours, exactly as the paper's Figure 6(d) shows);
/// the cap is recorded in the experiment notes.
fn dp_budget_cap(scale: Scale) -> u64 {
    scale.pick(2_000, 20_000)
}

fn budget_sweep(scale: Scale) -> Vec<u64> {
    scale.pick(vec![1, 10, 100, 1_000, 10_000], vec![1, 10, 100, 1_000, 10_000, 100_000])
}

/// Run every cleaning algorithm for one `(context, setup, budget)` and
/// report the expected quality improvement of each plan.
fn improvements_for(
    ctx: &CleaningContext,
    setup: &CleaningSetup,
    budget: u64,
    dp_cap: u64,
    seed: u64,
) -> Result<Vec<(CleaningAlgorithm, Option<f64>)>> {
    let mut out = Vec::new();
    for algo in CleaningAlgorithm::ALL {
        if algo == CleaningAlgorithm::Dp && budget > dp_cap {
            out.push((algo, None));
            continue;
        }
        let value = match algo {
            CleaningAlgorithm::Dp | CleaningAlgorithm::Greedy => {
                let mut rng = StdRng::seed_from_u64(seed);
                let plan = algo.plan(ctx, setup, budget, &mut rng)?;
                expected_improvement(ctx, setup, &plan)
            }
            CleaningAlgorithm::RandP | CleaningAlgorithm::RandU => {
                let mut total = 0.0;
                for trial in 0..RANDOM_TRIALS {
                    let mut rng = StdRng::seed_from_u64(seed ^ (0x9E37 + u64::from(trial)));
                    let plan = algo.plan(ctx, setup, budget, &mut rng)?;
                    total += expected_improvement(ctx, setup, &plan);
                }
                total / f64::from(RANDOM_TRIALS)
            }
        };
        out.push((algo, Some(value)));
    }
    Ok(out)
}

fn improvement_vs_budget(
    id: &str,
    title: &str,
    db: &RankedDatabase,
    scale: Scale,
) -> Result<ExperimentResult> {
    let ctx = CleaningContext::prepare(db, datasets::DEFAULT_K)?;
    let setup = datasets::default_cleaning_setup(db.num_x_tuples())?;
    let dp_cap = dp_budget_cap(scale);
    let mut result = ExperimentResult::new(id, title, "budget C", "expected improvement I");
    let mut series: Vec<(CleaningAlgorithm, Vec<(f64, f64)>)> =
        CleaningAlgorithm::ALL.iter().map(|a| (*a, Vec::new())).collect();
    for &budget in &budget_sweep(scale) {
        for (algo, value) in improvements_for(&ctx, &setup, budget, dp_cap, budget)? {
            if let Some(v) = value {
                series
                    .iter_mut()
                    .find(|(a, _)| *a == algo)
                    // pdb-analyze: allow(panic-path): series is seeded from CleaningAlgorithm::ALL; a missing entry is a harness bug
                    .expect("known algo")
                    .1
                    .push((budget as f64, v));
            } else {
                result.push_note(format!(
                    "{algo} skipped at C = {budget} (budget above DP cap {dp_cap})"
                ));
            }
        }
    }
    result.push_note(format!(
        "|S| = {:.4}; k = {}; {} x-tuples, {} candidates",
        ctx.quality.abs(),
        datasets::DEFAULT_K,
        db.num_x_tuples(),
        ctx.candidates().len()
    ));
    for (algo, points) in series {
        result.push_series(Series::new(algo.name(), points));
    }
    Ok(result)
}

/// Figure 6(a): expected improvement vs budget on the synthetic dataset.
pub fn fig6a(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    improvement_vs_budget("fig6a", "expected improvement vs budget (synthetic)", &db, scale)
}

/// Figure 6(f): expected improvement vs budget on the MOV dataset.
pub fn fig6f(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::mov_dataset(scale)?;
    improvement_vs_budget("fig6f", "expected improvement vs budget (MOV)", &db, scale)
}

/// Figure 6(b): expected improvement under different sc-probability
/// distributions (clipped normals of increasing variance, then uniform).
pub fn fig6b(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    let ctx = CleaningContext::prepare(&db, datasets::DEFAULT_K)?;
    let pdfs = [
        ScPdf::Normal { mean: 0.5, sigma: 0.13 },
        ScPdf::Normal { mean: 0.5, sigma: 0.167 },
        ScPdf::Normal { mean: 0.5, sigma: 0.3 },
        ScPdf::paper_default(),
    ];
    let mut result = ExperimentResult::new(
        "fig6b",
        "expected improvement vs sc-pdf (synthetic, C = 100)",
        "sc-pdf index (1=normal(0.13), 2=normal(0.167), 3=normal(0.3), 4=uniform)",
        "expected improvement I",
    );
    let mut series: Vec<(CleaningAlgorithm, Vec<(f64, f64)>)> =
        CleaningAlgorithm::ALL.iter().map(|a| (*a, Vec::new())).collect();
    for (i, pdf) in pdfs.iter().enumerate() {
        let setup = datasets::cleaning_setup_with_pdf(db.num_x_tuples(), *pdf)?;
        result.push_note(format!("index {} = {}", i + 1, pdf.label()));
        for (algo, value) in improvements_for(
            &ctx,
            &setup,
            datasets::DEFAULT_BUDGET,
            dp_budget_cap(scale),
            i as u64,
        )? {
            if let Some(v) = value {
                series
                    .iter_mut()
                    .find(|(a, _)| *a == algo)
                    // pdb-analyze: allow(panic-path): series is seeded from CleaningAlgorithm::ALL; a missing entry is a harness bug
                    .expect("known algo")
                    .1
                    .push(((i + 1) as f64, v));
            }
        }
    }
    for (algo, points) in series {
        result.push_series(Series::new(algo.name(), points));
    }
    Ok(result)
}

fn improvement_vs_avg_sc(
    id: &str,
    title: &str,
    db: &RankedDatabase,
    scale: Scale,
) -> Result<ExperimentResult> {
    let ctx = CleaningContext::prepare(db, datasets::DEFAULT_K)?;
    let lows = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut result =
        ExperimentResult::new(id, title, "average sc-probability", "expected improvement I");
    let mut series: Vec<(CleaningAlgorithm, Vec<(f64, f64)>)> =
        CleaningAlgorithm::ALL.iter().map(|a| (*a, Vec::new())).collect();
    for (i, &lo) in lows.iter().enumerate() {
        let pdf = ScPdf::Uniform { lo, hi: 1.0 };
        let avg = pdf.mean();
        let setup = datasets::cleaning_setup_with_pdf(db.num_x_tuples(), pdf)?;
        for (algo, value) in improvements_for(
            &ctx,
            &setup,
            datasets::DEFAULT_BUDGET,
            dp_budget_cap(scale),
            i as u64,
        )? {
            if let Some(v) = value {
                series
                    .iter_mut()
                    .find(|(a, _)| *a == algo)
                    // pdb-analyze: allow(panic-path): series is seeded from CleaningAlgorithm::ALL; a missing entry is a harness bug
                    .expect("known algo")
                    .1
                    .push((avg, v));
            }
        }
    }
    result.push_note("sc-pdf = uniform[x, 1]; C = 100; k = 15".to_string());
    for (algo, points) in series {
        result.push_series(Series::new(algo.name(), points));
    }
    Ok(result)
}

/// Figure 6(c): expected improvement vs the average sc-probability
/// (synthetic data).
pub fn fig6c(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    improvement_vs_avg_sc(
        "fig6c",
        "expected improvement vs avg sc-probability (synthetic)",
        &db,
        scale,
    )
}

/// Figure 6(g): expected improvement vs the average sc-probability (MOV).
pub fn fig6g(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::mov_dataset(scale)?;
    improvement_vs_avg_sc("fig6g", "expected improvement vs avg sc-probability (MOV)", &db, scale)
}

/// Figure 6(d): planning time of the four algorithms vs budget.
pub fn fig6d(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    let ctx = CleaningContext::prepare(&db, datasets::DEFAULT_K)?;
    let setup = datasets::default_cleaning_setup(db.num_x_tuples())?;
    let dp_cap = dp_budget_cap(scale);
    let mut result = ExperimentResult::new(
        "fig6d",
        "cleaning-algorithm planning time vs budget (synthetic)",
        "budget C",
        "time (ms)",
    );
    let mut series: Vec<(CleaningAlgorithm, Vec<(f64, f64)>)> =
        CleaningAlgorithm::ALL.iter().map(|a| (*a, Vec::new())).collect();
    for &budget in &budget_sweep(scale) {
        for algo in CleaningAlgorithm::ALL {
            if algo == CleaningAlgorithm::Dp && budget > dp_cap {
                result.push_note(format!("DP skipped at C = {budget} (above cap {dp_cap})"));
                continue;
            }
            let mut rng = StdRng::seed_from_u64(budget);
            let (plan, ms) = time_ms(|| algo.plan(&ctx, &setup, budget, &mut rng));
            plan?;
            series
                .iter_mut()
                .find(|(a, _)| *a == algo)
                // pdb-analyze: allow(panic-path): series is seeded from CleaningAlgorithm::ALL; a missing entry is a harness bug
                .expect("known algo")
                .1
                .push((budget as f64, ms));
        }
    }
    for (algo, points) in series {
        result.push_series(Series::new(algo.name(), points));
    }
    Ok(result)
}

/// Figure 6(e): planning time of the four algorithms vs `k`.
pub fn fig6e(scale: Scale) -> Result<ExperimentResult> {
    let db = datasets::default_synthetic(scale)?;
    let setup = datasets::default_cleaning_setup(db.num_x_tuples())?;
    let mut result = ExperimentResult::new(
        "fig6e",
        "cleaning-algorithm planning time vs k (synthetic, C = 100)",
        "k",
        "time (ms)",
    );
    let mut series: Vec<(CleaningAlgorithm, Vec<(f64, f64)>)> =
        CleaningAlgorithm::ALL.iter().map(|a| (*a, Vec::new())).collect();
    for &k in &[5usize, 10, 15, 20, 25, 30] {
        let ctx = CleaningContext::prepare(&db, k)?;
        result.push_note(format!("k = {k}: |Z| = {}", ctx.candidates().len()));
        for algo in CleaningAlgorithm::ALL {
            let mut rng = StdRng::seed_from_u64(k as u64);
            let (plan, ms) =
                time_ms(|| algo.plan(&ctx, &setup, datasets::DEFAULT_BUDGET, &mut rng));
            plan?;
            series
                .iter_mut()
                .find(|(a, _)| *a == algo)
                // pdb-analyze: allow(panic-path): series is seeded from CleaningAlgorithm::ALL; a missing entry is a harness bug
                .expect("known algo")
                .1
                .push((k as f64, ms));
        }
    }
    for (algo, points) in series {
        result.push_series(Series::new(algo.name(), points));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_total(r: &ExperimentResult, name: &str) -> f64 {
        r.series_named(name).unwrap().points.iter().map(|(_, y)| y).sum()
    }

    #[test]
    fn fig6a_dp_dominates_and_improvement_grows_with_budget() {
        let r = fig6a(Scale::Quick).unwrap();
        let dp = r.series_named("DP").unwrap();
        let greedy = r.series_named("Greedy").unwrap();
        let rand_u = r.series_named("RandU").unwrap();
        // Improvement is non-decreasing in the budget for DP and Greedy.
        for s in [dp, greedy] {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "{}: {w:?}", s.name);
            }
        }
        // DP >= Greedy >= RandU pointwise (where DP ran).
        for &(x, v) in &dp.points {
            let g = greedy.y_at(x).unwrap();
            assert!(v >= g - 1e-9, "DP {v} vs Greedy {g} at C={x}");
        }
        for &(x, g) in &greedy.points {
            if let Some(u) = rand_u.y_at(x) {
                assert!(g >= u - 1e-9, "Greedy {g} vs RandU {u} at C={x}");
            }
        }
        // All improvements are bounded by |S|.
        let note = r.notes.iter().find(|n| n.contains("|S|")).unwrap();
        assert!(note.contains("candidates"));
    }

    #[test]
    fn fig6b_reports_every_sc_pdf_and_keeps_dp_on_top() {
        // The paper's ordering across sc-pdfs (wider variance helps DP and
        // Greedy) is a statistical statement about the full 5 000-x-tuple
        // dataset; at the quick scale a single sc-probability draw is too
        // noisy to assert it, so this test checks structure only: all four
        // sc-pdfs are measured, improvements are positive, and the optimal
        // algorithm dominates the heuristics for every sc-pdf.
        let r = fig6b(Scale::Quick).unwrap();
        for name in ["DP", "Greedy", "RandP", "RandU"] {
            let s = r.series_named(name).unwrap();
            assert_eq!(s.points.len(), 4, "{name}");
            assert!(s.points.iter().all(|&(_, v)| v > 0.0), "{name}");
        }
        let dp = r.series_named("DP").unwrap();
        for name in ["Greedy", "RandP", "RandU"] {
            let other = r.series_named(name).unwrap();
            for &(x, v) in &other.points {
                assert!(dp.y_at(x).unwrap() >= v - 1e-9, "DP vs {name} at sc-pdf {x}");
            }
        }
    }

    #[test]
    fn fig6c_improvement_increases_with_average_sc_probability() {
        let r = fig6c(Scale::Quick).unwrap();
        for name in ["DP", "Greedy", "RandP", "RandU"] {
            let s = r.series_named(name).unwrap();
            assert_eq!(s.points.len(), 6);
            assert!(
                s.points.last().unwrap().1 >= s.points.first().unwrap().1 - 1e-9,
                "{name} should improve as cleaning gets more reliable"
            );
        }
    }

    #[test]
    fn fig6d_and_6e_report_all_algorithms() {
        let r = fig6d(Scale::Quick).unwrap();
        assert!(series_total(&r, "DP") >= series_total(&r, "RandU"));
        for name in ["DP", "Greedy", "RandP", "RandU"] {
            assert!(!r.series_named(name).unwrap().points.is_empty());
        }
        let r = fig6e(Scale::Quick).unwrap();
        for name in ["DP", "Greedy", "RandP", "RandU"] {
            assert_eq!(r.series_named(name).unwrap().points.len(), 6);
        }
    }

    #[test]
    fn fig6f_and_6g_run_on_mov() {
        let r = fig6f(Scale::Quick).unwrap();
        assert_eq!(r.series.len(), 4);
        let r = fig6g(Scale::Quick).unwrap();
        assert_eq!(r.series.len(), 4);
        // Greedy ordering also holds on MOV.
        let greedy = r.series_named("Greedy").unwrap();
        let dp = r.series_named("DP").unwrap();
        for &(x, v) in &dp.points {
            assert!(v >= greedy.y_at(x).unwrap() - 1e-9);
        }
    }
}
