//! The running examples of the paper: `udb1` (Table I) and `udb2`
//! (Table II).
//!
//! `udb1` stores the current temperature of four sensors S1–S4; `udb2` is
//! the database obtained from `udb1` after a successful `pclean(S3)` whose
//! outcome is the 27 °C reading (tuple `t5`).  These small databases are used
//! throughout the paper (and throughout this workspace's tests) to
//! illustrate pw-results, PWS-quality (−2.55 vs −1.85 for a PT-2 query) and
//! the benefit of cleaning.

use crate::database::{Database, DatabaseBuilder};

/// Table I of the paper: database `udb1`.
///
/// | Sensor | Tuple | Temp (°C) | Prob |
/// |--------|-------|-----------|------|
/// | S1     | t0    | 21        | 0.6  |
/// | S1     | t1    | 32        | 0.4  |
/// | S2     | t2    | 30        | 0.7  |
/// | S2     | t3    | 22        | 0.3  |
/// | S3     | t4    | 25        | 0.4  |
/// | S3     | t5    | 27        | 0.6  |
/// | S4     | t6    | 26        | 1.0  |
pub fn udb1() -> Database<f64> {
    let mut b = DatabaseBuilder::new();
    b.x_tuple("S1").tuple(21.0, 0.6).tuple(32.0, 0.4);
    b.x_tuple("S2").tuple(30.0, 0.7).tuple(22.0, 0.3);
    b.x_tuple("S3").tuple(25.0, 0.4).tuple(27.0, 0.6);
    b.x_tuple("S4").tuple(26.0, 1.0);
    // pdb-analyze: allow(panic-path): static paper dataset; the literals above are valid by construction
    b.build().expect("udb1 is a valid database")
}

/// Table II of the paper: database `udb2`, i.e. `udb1` after sensor S3 has
/// been successfully cleaned and reported 27 °C.
pub fn udb2() -> Database<f64> {
    let mut b = DatabaseBuilder::new();
    b.x_tuple("S1").tuple(21.0, 0.6).tuple(32.0, 0.4);
    b.x_tuple("S2").tuple(30.0, 0.7).tuple(22.0, 0.3);
    b.x_tuple("S3").tuple(27.0, 1.0);
    b.x_tuple("S4").tuple(26.0, 1.0);
    // pdb-analyze: allow(panic-path): static paper dataset; the literals above are valid by construction
    b.build().expect("udb2 is a valid database")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::ScoreRanking;
    use crate::world;

    #[test]
    fn udb1_matches_table_one() {
        let db = udb1();
        assert_eq!(db.num_x_tuples(), 4);
        assert_eq!(db.num_tuples(), 7);
        let probs: Vec<f64> = db.tuples().map(|t| t.prob).collect();
        assert_eq!(probs, vec![0.6, 0.4, 0.7, 0.3, 0.4, 0.6, 1.0]);
    }

    #[test]
    fn udb2_matches_table_two() {
        let db = udb2();
        assert_eq!(db.num_x_tuples(), 4);
        assert_eq!(db.num_tuples(), 6);
        assert!(db.x_tuple(2).unwrap().is_certain());
    }

    #[test]
    fn udb2_is_udb1_with_s3_collapsed() {
        let r1 = udb1().rank_by(&ScoreRanking);
        let pos_27 = r1.tuples().position(|t| t.score == 27.0).unwrap();
        let cleaned = r1.collapse_x_tuple(2, pos_27).unwrap();
        let r2 = udb2().rank_by(&ScoreRanking);
        let scores1: Vec<(f64, f64)> = cleaned.tuples().map(|t| (t.score, t.prob)).collect();
        let scores2: Vec<(f64, f64)> = r2.tuples().map(|t| (t.score, t.prob)).collect();
        assert_eq!(scores1, scores2);
    }

    #[test]
    fn world_counts_match_paper() {
        // udb1 has 2*2*2*1 = 8 possible worlds; udb2 has 4.
        assert_eq!(udb1().rank_by(&ScoreRanking).world_count(), 8);
        assert_eq!(udb2().rank_by(&ScoreRanking).world_count(), 4);
        let total: f64 =
            world::worlds(&udb1().rank_by(&ScoreRanking)).unwrap().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
