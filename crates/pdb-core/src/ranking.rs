//! Ranking functions.
//!
//! A probabilistic top-k query is parameterised by a ranking function `f`
//! that orders tuples by their attribute values (Section III-B of the
//! paper).  The paper assumes `f` assigns a *unique* rank to every tuple;
//! uniqueness is obtained here by breaking score ties with the tuple
//! insertion id (smaller id ranks higher), exactly as the evaluation section
//! describes ("for two tuples with the same value, the tuple with a smaller
//! index is ranked higher").

use crate::tuple::Tuple;

/// Maps a tuple payload to a numeric score; higher scores rank higher.
///
/// Implementations must be deterministic and produce finite scores for every
/// payload that appears in the database (non-finite scores are rejected when
/// the database is ranked).
pub trait Ranking<V> {
    /// Score of a payload.  Higher is better (ranked closer to the top).
    fn score(&self, payload: &V) -> f64;

    /// Score of a tuple; by default simply the score of its payload.
    fn score_tuple(&self, tuple: &Tuple<V>) -> f64 {
        self.score(&tuple.payload)
    }
}

/// The identity ranking for databases whose payload already *is* the score
/// (`V = f64`), e.g. the temperature readings of Table I.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoreRanking;

impl Ranking<f64> for ScoreRanking {
    fn score(&self, payload: &f64) -> f64 {
        *payload
    }
}

/// Ranks multi-attribute payloads (`V = Vec<f64>`) by a weighted sum of
/// their attributes — the ranking used for the MOV dataset, where the score
/// of a rating tuple is `normalised(date) + normalised(rating)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSumRanking {
    /// One weight per attribute; missing attributes contribute zero.
    pub weights: Vec<f64>,
}

impl WeightedSumRanking {
    /// Equal weights over `n` attributes (each weight 1.0).
    pub fn uniform(n: usize) -> Self {
        Self { weights: vec![1.0; n] }
    }

    /// Explicit per-attribute weights.
    pub fn new(weights: Vec<f64>) -> Self {
        Self { weights }
    }
}

impl Ranking<Vec<f64>> for WeightedSumRanking {
    fn score(&self, payload: &Vec<f64>) -> f64 {
        payload.iter().zip(self.weights.iter()).map(|(v, w)| v * w).sum()
    }
}

/// Blanket implementation so closures `Fn(&V) -> f64` can be used directly
/// as ranking functions.
impl<V, F> Ranking<V> for F
where
    F: Fn(&V) -> f64,
{
    fn score(&self, payload: &V) -> f64 {
        self(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{TupleId, XTupleId};

    #[test]
    fn score_ranking_is_identity() {
        assert_eq!(ScoreRanking.score(&21.0), 21.0);
        let t = Tuple { id: TupleId(0), x_tuple: XTupleId(0), payload: 32.0, prob: 0.4 };
        assert_eq!(ScoreRanking.score_tuple(&t), 32.0);
    }

    #[test]
    fn weighted_sum_ranks_by_dot_product() {
        let r = WeightedSumRanking::new(vec![1.0, 2.0]);
        assert_eq!(r.score(&vec![0.5, 0.25]), 1.0);
        // Extra attributes beyond the weights are ignored.
        assert_eq!(r.score(&vec![0.5, 0.25, 100.0]), 1.0);
        // Missing attributes contribute nothing.
        assert_eq!(r.score(&vec![0.5]), 0.5);
    }

    #[test]
    fn uniform_weighting_sums_attributes() {
        let r = WeightedSumRanking::uniform(3);
        assert_eq!(r.score(&vec![0.1, 0.2, 0.3]), 0.6000000000000001);
    }

    #[test]
    fn closures_are_rankings() {
        let by_negation = |v: &f64| -v;
        assert_eq!(by_negation.score(&3.0), -3.0);
    }
}
