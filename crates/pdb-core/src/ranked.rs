//! The rank-sorted physical representation of a probabilistic database.
//!
//! Every algorithm in this workspace (PSR, the quality algorithms PW / PWR /
//! TP, and the cleaning algorithms) assumes that "tuples in `D` are arranged
//! in descending order of ranks" (Section IV of the paper).
//! [`RankedDatabase`] is that arrangement: tuples are flattened out of their
//! x-tuples, scored by a ranking function, and sorted so that position 0
//! holds the highest-ranked tuple.

use crate::error::{DbError, Result};
use crate::tuple::TupleId;
use serde::{Deserialize, Serialize};

/// One tuple of a [`RankedDatabase`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedTuple {
    /// Original tuple identifier (stable across ranking).
    pub id: TupleId,
    /// Index of the x-tuple this tuple belongs to (`0..m`).
    pub x_index: usize,
    /// Ranking score; higher scores appear earlier in the database.
    pub score: f64,
    /// Existential probability `eᵢ`.
    pub prob: f64,
}

/// Per-x-tuple metadata kept alongside the sorted tuple array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XTupleInfo {
    /// Human-readable key of the entity.
    pub key: String,
    /// Positions (indices into the sorted tuple array) of this x-tuple's
    /// alternatives, in descending rank order.
    pub members: Vec<usize>,
    /// Total existential mass of the explicit alternatives.
    pub total_mass: f64,
}

impl XTupleInfo {
    /// Probability of the implicit null alternative.
    pub fn null_prob(&self) -> f64 {
        (1.0 - self.total_mass).max(0.0)
    }
}

/// A probabilistic database flattened and sorted by descending rank.
///
/// Positions (`usize` indices into [`RankedDatabase::tuples`]) double as
/// ranks: position 0 is the globally highest-ranked tuple.  Ties in score
/// are broken by the original tuple id (smaller id ranks higher), which
/// makes the order — and therefore every downstream computation —
/// deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedDatabase {
    tuples: Vec<RankedTuple>,
    x_tuples: Vec<XTupleInfo>,
    /// For each tuple position, the existential mass of *strictly
    /// higher-ranked* tuples within the same x-tuple.  This is the quantity
    /// `Σ_{tᵢ' ∈ τ_l ∧ tᵢ' > tᵢ} eᵢ'` that appears in Lemma 1 and in the
    /// weight ωᵢ of Theorem 1; precomputing it keeps those algorithms
    /// O(1)-per-tuple.
    higher_mass_within: Vec<f64>,
}

impl RankedDatabase {
    /// Build a ranked database from `(tuple id, x-tuple index, score, prob)`
    /// entries plus the per-x-tuple keys.
    ///
    /// Entries may be given in any order; they are sorted by descending
    /// score with ties broken by tuple id.
    pub fn from_entries(
        mut entries: Vec<(TupleId, usize, f64, f64)>,
        x_keys: Vec<String>,
    ) -> Result<Self> {
        if entries.is_empty() || x_keys.is_empty() {
            return Err(DbError::EmptyDatabase);
        }
        for &(id, x_index, score, prob) in &entries {
            if !score.is_finite() {
                return Err(DbError::NonFiniteScore { tuple_index: id.0 });
            }
            if !prob.is_finite() || !(0.0..=1.0 + crate::PROB_EPSILON).contains(&prob) {
                return Err(DbError::InvalidProbability {
                    prob,
                    context: format!("x-tuple #{x_index}, tuple {id}"),
                });
            }
            if x_index >= x_keys.len() {
                return Err(DbError::index_out_of_range(format!(
                    "tuple {id} references x-tuple {x_index} but only {} keys were supplied",
                    x_keys.len()
                )));
            }
        }
        entries.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));

        let tuples: Vec<RankedTuple> = entries
            .into_iter()
            .map(|(id, x_index, score, prob)| RankedTuple { id, x_index, score, prob })
            .collect();

        let mut x_tuples: Vec<XTupleInfo> = x_keys
            .into_iter()
            .map(|key| XTupleInfo { key, members: Vec::new(), total_mass: 0.0 })
            .collect();
        let mut higher_mass_within = vec![0.0; tuples.len()];
        for (pos, t) in tuples.iter().enumerate() {
            let info = &mut x_tuples[t.x_index];
            higher_mass_within[pos] = info.total_mass;
            info.members.push(pos);
            info.total_mass += t.prob;
        }
        for (l, info) in x_tuples.iter().enumerate() {
            if info.total_mass > 1.0 + 1e-6 {
                return Err(DbError::XTupleMassExceedsOne {
                    x_tuple: info.key.clone(),
                    total: info.total_mass,
                });
            }
            if info.members.is_empty() {
                return Err(DbError::EmptyXTuple { x_tuple: format!("#{l} ({})", info.key) });
            }
        }
        Ok(Self { tuples, x_tuples, higher_mass_within })
    }

    /// Build a ranked database directly from per-x-tuple `(score, prob)`
    /// alternative lists.  Convenient for tests and generators.
    pub fn from_scored_x_tuples(x_tuples: &[Vec<(f64, f64)>]) -> Result<Self> {
        let mut entries = Vec::new();
        let mut keys = Vec::with_capacity(x_tuples.len());
        let mut next_id = 0;
        for (l, alts) in x_tuples.iter().enumerate() {
            keys.push(format!("x{l}"));
            for &(score, prob) in alts {
                entries.push((TupleId(next_id), l, score, prob));
                next_id += 1;
            }
        }
        Self::from_entries(entries, keys)
    }

    /// Number of tuples, `n` in the paper.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the database holds no tuples (never true for a successfully
    /// constructed database).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of x-tuples, `m` in the paper.
    pub fn num_x_tuples(&self) -> usize {
        self.x_tuples.len()
    }

    /// The tuple at the given rank position (0 = highest rank).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn tuple(&self, pos: usize) -> &RankedTuple {
        &self.tuples[pos]
    }

    /// Iterate over tuples in descending rank order.
    pub fn tuples(&self) -> std::slice::Iter<'_, RankedTuple> {
        self.tuples.iter()
    }

    /// All tuples as a slice, in descending rank order.
    pub fn as_slice(&self) -> &[RankedTuple] {
        &self.tuples
    }

    /// Metadata of the x-tuple with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `x_index >= self.num_x_tuples()`.
    pub fn x_tuple(&self, x_index: usize) -> &XTupleInfo {
        &self.x_tuples[x_index]
    }

    /// Iterate over the x-tuple metadata.
    pub fn x_tuples(&self) -> std::slice::Iter<'_, XTupleInfo> {
        self.x_tuples.iter()
    }

    /// Existential mass of tuples in the *same x-tuple* as the tuple at
    /// `pos` that are ranked strictly higher than it:
    /// `Σ_{tᵢ' ∈ τ_l, tᵢ' > tᵢ} eᵢ'`.
    pub fn higher_mass_within(&self, pos: usize) -> f64 {
        self.higher_mass_within[pos]
    }

    /// Existential mass of tuples in the same x-tuple ranked higher than
    /// *or equal to* the tuple at `pos` (i.e. including the tuple itself):
    /// `Σ_{tᵢ' ∈ τ_l, tᵢ' ≥ tᵢ} eᵢ'`.
    pub fn higher_or_equal_mass_within(&self, pos: usize) -> f64 {
        self.higher_mass_within[pos] + self.tuples[pos].prob
    }

    /// Number of possible worlds of this database, saturating at
    /// `u128::MAX`.  An x-tuple with total mass < 1 contributes an extra
    /// (null) alternative.
    pub fn world_count(&self) -> u128 {
        let mut count: u128 = 1;
        for info in &self.x_tuples {
            let alts = info.members.len() as u128
                + if info.null_prob() > crate::PROB_EPSILON { 1 } else { 0 };
            count = count.saturating_mul(alts.max(1));
        }
        count
    }

    /// Recompute the per-x-tuple membership index and the within-x-tuple
    /// higher-ranked masses from the tuple array.  The in-place mutators
    /// call this after editing `tuples`; it never re-sorts (every mutation
    /// preserves the score/id order of the surviving tuples).
    fn rebuild_index(&mut self) {
        let Self { tuples, x_tuples, higher_mass_within } = self;
        for info in x_tuples.iter_mut() {
            info.members.clear();
            info.total_mass = 0.0;
        }
        higher_mass_within.clear();
        higher_mass_within.resize(tuples.len(), 0.0);
        for (pos, t) in tuples.iter().enumerate() {
            let info = &mut x_tuples[t.x_index];
            higher_mass_within[pos] = info.total_mass;
            info.members.push(pos);
            info.total_mass += t.prob;
        }
    }

    /// Produce the cleaned database that results from a *successful*
    /// `pclean(τ_l)` whose outcome is the alternative at rank position
    /// `keep_pos` (Definition 5 of the paper): every other alternative of
    /// x-tuple `l` is removed and the kept alternative becomes certain
    /// (probability 1).
    ///
    /// Returns an error if `keep_pos` does not belong to x-tuple `l`.
    pub fn collapse_x_tuple(&self, l: usize, keep_pos: usize) -> Result<Self> {
        let mut next = self.clone();
        next.collapse_x_tuple_in_place(l, keep_pos)?;
        Ok(next)
    }

    /// [`collapse_x_tuple`](Self::collapse_x_tuple) without reallocating
    /// the database: surviving tuples keep their relative order, so the
    /// tuple array is compacted and the membership index rebuilt in one
    /// O(n) pass — no re-sort, no key cloning.  On error the database is
    /// unchanged.
    pub fn collapse_x_tuple_in_place(&mut self, l: usize, keep_pos: usize) -> Result<()> {
        if l >= self.x_tuples.len() {
            return Err(DbError::index_out_of_range(format!(
                "x-tuple {l} of {}",
                self.x_tuples.len()
            )));
        }
        if self.tuples.get(keep_pos).map(|t| t.x_index) != Some(l) {
            return Err(DbError::index_out_of_range(format!(
                "tuple position {keep_pos} is not an alternative of x-tuple {l}"
            )));
        }
        self.tuples[keep_pos].prob = 1.0;
        let mut pos = 0usize;
        self.tuples.retain(|t| {
            let keep = t.x_index != l || pos == keep_pos;
            pos += 1;
            keep
        });
        self.rebuild_index();
        Ok(())
    }

    /// Produce the database where x-tuple `l`'s alternatives keep their
    /// scores (and therefore their rank positions) but carry new
    /// existential probabilities.  `probs[i]` applies to the alternative at
    /// `self.x_tuple(l).members[i]`, i.e. probabilities are given in the
    /// x-tuple's rank order.
    ///
    /// This is the "probability reweighting" mutation of the incremental
    /// re-evaluation engine: a partial cleaning observation (or an updated
    /// sensor model) that sharpens an entity's distribution without
    /// collapsing it.  The usual construction invariants are re-validated:
    /// every probability must lie in `[0, 1]` and the x-tuple's total mass
    /// must not exceed 1.
    pub fn reweight_x_tuple(&self, l: usize, probs: &[f64]) -> Result<Self> {
        let mut next = self.clone();
        next.reweight_x_tuple_in_place(l, probs)?;
        Ok(next)
    }

    /// [`reweight_x_tuple`](Self::reweight_x_tuple) without reallocating
    /// the database.  Validates the new probabilities (range and total
    /// mass) before touching anything; on error the database is unchanged.
    pub fn reweight_x_tuple_in_place(&mut self, l: usize, probs: &[f64]) -> Result<()> {
        if l >= self.x_tuples.len() {
            return Err(DbError::index_out_of_range(format!(
                "x-tuple {l} of {}",
                self.x_tuples.len()
            )));
        }
        let info = &self.x_tuples[l];
        if probs.len() != info.members.len() {
            return Err(DbError::invalid_parameter(format!(
                "x-tuple {l} has {} alternatives but {} probabilities were supplied",
                info.members.len(),
                probs.len()
            )));
        }
        let mut total = 0.0;
        for &p in probs {
            if !p.is_finite() || !(0.0..=1.0 + crate::PROB_EPSILON).contains(&p) {
                return Err(DbError::InvalidProbability {
                    prob: p,
                    context: format!("x-tuple #{l} ({})", info.key),
                });
            }
            total += p;
        }
        if total > 1.0 + 1e-6 {
            return Err(DbError::XTupleMassExceedsOne { x_tuple: info.key.clone(), total });
        }
        let members = self.x_tuples[l].members.clone();
        for (&pos, &p) in members.iter().zip(probs) {
            self.tuples[pos].prob = p;
        }
        self.rebuild_index();
        Ok(())
    }

    /// Produce the cleaned database where x-tuple `l` collapses to its
    /// implicit *null* alternative (the entity turns out to have no
    /// reading).  All explicit alternatives of `l` are removed; because a
    /// certain null tuple ranks below everything and never enters a top-k
    /// answer, the x-tuple is dropped from the physical representation and
    /// the remaining x-tuples keep their indices.
    pub fn collapse_x_tuple_to_null(&self, l: usize) -> Result<Self> {
        let mut next = self.clone();
        next.collapse_x_tuple_to_null_in_place(l)?;
        Ok(next)
    }

    /// [`collapse_x_tuple_to_null`](Self::collapse_x_tuple_to_null)
    /// without reallocating the database: the x-tuple's alternatives are
    /// compacted out of the tuple array, the remaining x-tuples re-indexed
    /// densely, and the membership index rebuilt — one O(n) pass, no
    /// re-sort.  On error the database is unchanged.
    pub fn collapse_x_tuple_to_null_in_place(&mut self, l: usize) -> Result<()> {
        if l >= self.x_tuples.len() {
            return Err(DbError::index_out_of_range(format!(
                "x-tuple {l} of {}",
                self.x_tuples.len()
            )));
        }
        if self.x_tuples[l].null_prob() <= crate::PROB_EPSILON {
            return Err(DbError::invalid_parameter(format!(
                "x-tuple {l} has no null alternative to collapse to"
            )));
        }
        self.remove_x_tuple_in_place(l)
    }

    /// Produce the database extended with a brand-new x-tuple built from
    /// `(score, prob)` alternatives, returning `(database, x_index)`.
    pub fn insert_x_tuple(
        &self,
        key: String,
        alternatives: &[(f64, f64)],
    ) -> Result<(Self, usize)> {
        let mut next = self.clone();
        let l = next.insert_x_tuple_in_place(key, alternatives)?;
        Ok((next, l))
    }

    /// Insert a brand-new x-tuple (the streaming-arrival mutation),
    /// returning its x-index, which is always `self.num_x_tuples()` before
    /// the call — inserts append to the x-tuple table, so existing
    /// x-indices stay stable.
    ///
    /// The new alternatives receive fresh [`TupleId`]s larger than every
    /// id already in the database (allocated in the order given), which
    /// keeps the rank order deterministic: a new tuple that ties an
    /// existing score ranks *below* it, exactly as
    /// [`from_entries`](Self::from_entries) would place it.  The usual
    /// construction invariants are validated up front (finite scores,
    /// probabilities in `[0, 1]`, total mass ≤ 1, at least one
    /// alternative); on error the database is unchanged.
    pub fn insert_x_tuple_in_place(
        &mut self,
        key: String,
        alternatives: &[(f64, f64)],
    ) -> Result<usize> {
        let l = self.x_tuples.len();
        if alternatives.is_empty() {
            return Err(DbError::EmptyXTuple { x_tuple: format!("#{l} ({key})") });
        }
        let next_id = self.tuples.iter().map(|t| t.id.0 + 1).max().unwrap_or(0);
        let mut total = 0.0;
        for (i, &(score, prob)) in alternatives.iter().enumerate() {
            if !score.is_finite() {
                return Err(DbError::NonFiniteScore { tuple_index: next_id + i });
            }
            if !prob.is_finite() || !(0.0..=1.0 + crate::PROB_EPSILON).contains(&prob) {
                return Err(DbError::InvalidProbability {
                    prob,
                    context: format!("x-tuple #{l} ({key})"),
                });
            }
            total += prob;
        }
        if total > 1.0 + 1e-6 {
            return Err(DbError::XTupleMassExceedsOne { x_tuple: key, total });
        }
        for (i, &(score, prob)) in alternatives.iter().enumerate() {
            self.tuples.push(RankedTuple { id: TupleId(next_id + i), x_index: l, score, prob });
        }
        // Existing tuples are already in this order (scores and ids never
        // change after construction), so the stable sort only threads the
        // new alternatives into place.
        self.tuples.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
        self.x_tuples.push(XTupleInfo { key, members: Vec::new(), total_mass: 0.0 });
        self.rebuild_index();
        Ok(l)
    }

    /// Produce the database with x-tuple `l` removed entirely (the
    /// streaming-departure mutation).
    pub fn remove_x_tuple(&self, l: usize) -> Result<Self> {
        let mut next = self.clone();
        next.remove_x_tuple_in_place(l)?;
        Ok(next)
    }

    /// Remove x-tuple `l` and every one of its alternatives, regardless of
    /// null mass — unlike
    /// [`collapse_x_tuple_to_null_in_place`](Self::collapse_x_tuple_to_null_in_place),
    /// which models an *observation* and therefore requires the null
    /// alternative to have been possible.  Later x-tuples are re-indexed
    /// densely (index `l+1` becomes `l`, and so on); one O(n) pass, no
    /// re-sort.  Removing the last x-tuple is an error (a
    /// [`RankedDatabase`] is never empty); on error the database is
    /// unchanged.
    pub fn remove_x_tuple_in_place(&mut self, l: usize) -> Result<()> {
        if l >= self.x_tuples.len() {
            return Err(DbError::index_out_of_range(format!(
                "x-tuple {l} of {}",
                self.x_tuples.len()
            )));
        }
        if self.x_tuples[l].members.len() == self.tuples.len() {
            return Err(DbError::EmptyDatabase);
        }
        self.tuples.retain(|t| t.x_index != l);
        for t in &mut self.tuples {
            if t.x_index > l {
                t.x_index -= 1;
            }
        }
        self.x_tuples.remove(l);
        self.rebuild_index();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// udb1 of Table I, expressed directly as scored x-tuples.
    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    #[test]
    fn tuples_are_sorted_descending() {
        let db = udb1();
        let scores: Vec<f64> = db.tuples().map(|t| t.score).collect();
        assert_eq!(scores, vec![32.0, 30.0, 27.0, 26.0, 25.0, 22.0, 21.0]);
        assert_eq!(db.len(), 7);
        assert_eq!(db.num_x_tuples(), 4);
        assert!(!db.is_empty());
    }

    #[test]
    fn ties_break_by_tuple_id() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)],
            vec![(10.0, 0.5)],
            vec![(10.0, 1.0)],
        ])
        .unwrap();
        let ids: Vec<usize> = db.tuples().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn members_are_listed_in_rank_order() {
        let db = udb1();
        // x-tuple 0 = {21 (pos 6), 32 (pos 0)} -> members sorted by rank.
        assert_eq!(db.x_tuple(0).members, vec![0, 6]);
        assert_eq!(db.x_tuple(2).members, vec![2, 4]);
        assert!((db.x_tuple(0).total_mass - 1.0).abs() < 1e-12);
        assert_eq!(db.x_tuples().count(), 4);
    }

    #[test]
    fn higher_mass_within_matches_definition() {
        let db = udb1();
        // Position 4 is the 25-degree tuple of sensor S3; its higher-ranked
        // sibling (27 degrees, prob 0.6) contributes 0.6.
        assert!((db.higher_mass_within(4) - 0.6).abs() < 1e-12);
        assert!((db.higher_or_equal_mass_within(4) - 1.0).abs() < 1e-12);
        // Position 0 (32 degrees) has no higher-ranked sibling.
        assert_eq!(db.higher_mass_within(0), 0.0);
    }

    #[test]
    fn world_count_multiplies_alternative_counts() {
        let db = udb1();
        // 2 * 2 * 2 * 1 = 8 (all x-tuples have full mass, no null).
        assert_eq!(db.world_count(), 8);

        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)],            // + null
            vec![(9.0, 0.4), (8.0, 0.6)], // no null
        ])
        .unwrap();
        assert_eq!(db.world_count(), 4);
    }

    #[test]
    fn collapse_x_tuple_makes_entity_certain() {
        let db = udb1();
        // Clean sensor S3 (x-index 2) to its 27-degree reading (position 2),
        // reproducing the udb1 -> udb2 transition of the paper.
        let cleaned = db.collapse_x_tuple(2, 2).unwrap();
        assert_eq!(cleaned.len(), 6);
        assert_eq!(cleaned.num_x_tuples(), 4);
        let s3 = cleaned.x_tuple(2);
        assert_eq!(s3.members.len(), 1);
        assert!((s3.total_mass - 1.0).abs() < 1e-12);
        assert!((cleaned.tuple(s3.members[0]).prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collapse_keeps_exactly_one_tuple_under_duplicate_ids() {
        // from_entries does not enforce TupleId uniqueness; the collapse
        // must select the revealed alternative by position, not by id.
        let db = RankedDatabase::from_entries(
            vec![(TupleId(7), 0, 10.0, 0.5), (TupleId(7), 0, 9.0, 0.5), (TupleId(1), 1, 8.0, 1.0)],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        let cleaned = db.collapse_x_tuple(0, 1).unwrap();
        assert_eq!(cleaned.x_tuple(0).members.len(), 1);
        assert_eq!(cleaned.tuple(cleaned.x_tuple(0).members[0]).score, 9.0);
        assert!((cleaned.x_tuple(0).total_mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collapse_rejects_foreign_positions() {
        let db = udb1();
        assert!(db.collapse_x_tuple(2, 0).is_err());
        assert!(db.collapse_x_tuple(99, 0).is_err());
    }

    #[test]
    fn collapse_to_null_removes_the_entity() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)], // null prob 0.5
            vec![(9.0, 1.0)],
        ])
        .unwrap();
        let cleaned = db.collapse_x_tuple_to_null(0).unwrap();
        assert_eq!(cleaned.num_x_tuples(), 1);
        assert_eq!(cleaned.len(), 1);
        assert_eq!(cleaned.tuple(0).score, 9.0);
        // The second x-tuple had no null mass: collapsing it is an error.
        assert!(db.collapse_x_tuple_to_null(1).is_err());
    }

    #[test]
    fn reweight_x_tuple_replaces_member_probabilities() {
        let db = udb1();
        // Sharpen sensor S3 (members at positions 2 and 4) towards 27°.
        let updated = db.reweight_x_tuple(2, &[0.9, 0.1]).unwrap();
        assert_eq!(updated.len(), db.len());
        assert_eq!(updated.x_tuple(2).members, db.x_tuple(2).members);
        assert!((updated.tuple(2).prob - 0.9).abs() < 1e-12);
        assert!((updated.tuple(4).prob - 0.1).abs() < 1e-12);
        // Other x-tuples are untouched.
        assert_eq!(updated.tuple(0).prob, db.tuple(0).prob);

        // Mass may also be withdrawn, opening a null alternative.
        let partial = db.reweight_x_tuple(2, &[0.5, 0.2]).unwrap();
        assert!((partial.x_tuple(2).null_prob() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn reweight_x_tuple_validates_input() {
        let db = udb1();
        assert!(db.reweight_x_tuple(99, &[0.5]).is_err());
        assert!(db.reweight_x_tuple(2, &[0.5]).is_err(), "arity mismatch");
        assert!(db.reweight_x_tuple(2, &[0.7, 0.7]).is_err(), "mass above 1");
        assert!(db.reweight_x_tuple(2, &[-0.1, 0.5]).is_err(), "negative probability");
    }

    #[test]
    fn insert_x_tuple_threads_new_alternatives_into_rank_order() {
        let mut db = udb1();
        let l = db.insert_x_tuple_in_place("S5".into(), &[(28.0, 0.5), (23.0, 0.5)]).unwrap();
        assert_eq!(l, 4);
        assert_eq!(db.num_x_tuples(), 5);
        assert_eq!(db.len(), 9);
        assert_eq!(db.x_tuple(4).key, "S5");
        let scores: Vec<f64> = db.tuples().map(|t| t.score).collect();
        assert_eq!(scores, vec![32.0, 30.0, 28.0, 27.0, 26.0, 25.0, 23.0, 22.0, 21.0]);
        // Fresh ids, larger than every pre-existing one, in argument order.
        let inserted = db.x_tuple(4).members.clone();
        assert_eq!(inserted, vec![2, 6]);
        assert_eq!(db.tuple(2).id.0, 7);
        assert_eq!(db.tuple(6).id.0, 8);
        // Existing x-tuples keep their indices and membership.
        assert_eq!(db.x_tuple(0).key, "x0");
        assert!((db.higher_mass_within(6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insert_breaks_score_ties_below_existing_tuples() {
        let mut db = RankedDatabase::from_scored_x_tuples(&[vec![(10.0, 0.5)]]).unwrap();
        db.insert_x_tuple_in_place("x1".into(), &[(10.0, 0.5)]).unwrap();
        // Same score: the older tuple (smaller id) keeps rank 0, matching
        // what from_entries would produce for the combined entry set.
        assert_eq!(db.tuple(0).id.0, 0);
        assert_eq!(db.tuple(1).id.0, 1);
        let rebuilt =
            RankedDatabase::from_scored_x_tuples(&[vec![(10.0, 0.5)], vec![(10.0, 0.5)]]).unwrap();
        assert_eq!(db, rebuilt);
    }

    #[test]
    fn insert_x_tuple_validates_input() {
        let mut db = udb1();
        let before = db.clone();
        assert!(matches!(
            db.insert_x_tuple_in_place("e".into(), &[]),
            Err(DbError::EmptyXTuple { .. })
        ));
        assert!(matches!(
            db.insert_x_tuple_in_place("e".into(), &[(f64::NAN, 0.5)]),
            Err(DbError::NonFiniteScore { .. })
        ));
        assert!(matches!(
            db.insert_x_tuple_in_place("e".into(), &[(1.0, 1.5)]),
            Err(DbError::InvalidProbability { .. })
        ));
        assert!(matches!(
            db.insert_x_tuple_in_place("e".into(), &[(1.0, 0.7), (2.0, 0.7)]),
            Err(DbError::XTupleMassExceedsOne { .. })
        ));
        assert_eq!(db, before, "failed inserts must leave the database unchanged");
    }

    #[test]
    fn remove_x_tuple_drops_the_entity_and_reindexes() {
        let db = udb1();
        // Unlike collapse-to-null, removal works even with zero null mass.
        assert!(db.x_tuple(1).null_prob() <= 1e-12);
        let smaller = db.remove_x_tuple(1).unwrap();
        assert_eq!(smaller.num_x_tuples(), 3);
        assert_eq!(smaller.len(), 5);
        assert_eq!(smaller.x_tuple(1).key, "x2");
        let scores: Vec<f64> = smaller.tuples().map(|t| t.score).collect();
        assert_eq!(scores, vec![32.0, 27.0, 26.0, 25.0, 21.0]);
        assert!(smaller.tuples().all(|t| t.x_index < 3));
    }

    #[test]
    fn remove_x_tuple_rejects_out_of_range_and_last_entity() {
        let mut db = RankedDatabase::from_scored_x_tuples(&[vec![(1.0, 1.0)]]).unwrap();
        assert!(matches!(db.remove_x_tuple_in_place(1), Err(DbError::IndexOutOfRange { .. })));
        assert!(matches!(db.remove_x_tuple_in_place(0), Err(DbError::EmptyDatabase)));
    }

    #[test]
    fn remove_then_reinsert_round_trips_through_fresh_ids() {
        let db = udb1();
        let removed = db.remove_x_tuple(3).unwrap();
        let (back, l) = removed.insert_x_tuple("x3".into(), &[(26.0, 1.0)]).unwrap();
        assert_eq!(l, 3);
        assert_eq!(back.num_x_tuples(), db.num_x_tuples());
        let scores: Vec<f64> = back.tuples().map(|t| t.score).collect();
        let original: Vec<f64> = db.tuples().map(|t| t.score).collect();
        assert_eq!(scores, original);
    }

    #[test]
    fn from_entries_validates_input() {
        assert!(matches!(
            RankedDatabase::from_entries(vec![], vec![]),
            Err(DbError::EmptyDatabase)
        ));
        assert!(matches!(
            RankedDatabase::from_entries(vec![(TupleId(0), 3, 1.0, 0.5)], vec!["a".into()]),
            Err(DbError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            RankedDatabase::from_entries(vec![(TupleId(0), 0, f64::NAN, 0.5)], vec!["a".into()]),
            Err(DbError::NonFiniteScore { .. })
        ));
        assert!(matches!(
            RankedDatabase::from_entries(vec![(TupleId(0), 0, 1.0, 1.5)], vec!["a".into()]),
            Err(DbError::InvalidProbability { .. })
        ));
        // An x-tuple key with no member tuples is rejected.
        assert!(matches!(
            RankedDatabase::from_entries(
                vec![(TupleId(0), 0, 1.0, 0.5)],
                vec!["a".into(), "b".into()]
            ),
            Err(DbError::EmptyXTuple { .. })
        ));
        // Over-full x-tuple.
        assert!(matches!(
            RankedDatabase::from_scored_x_tuples(&[vec![(1.0, 0.7), (2.0, 0.7)]]),
            Err(DbError::XTupleMassExceedsOne { .. })
        ));
    }

    #[test]
    fn serde_round_trip() {
        let db = udb1();
        let json = serde_json::to_string(&db).unwrap();
        let back: RankedDatabase = serde_json::from_str(&json).unwrap();
        assert_eq!(db, back);
    }
}
