//! # pdb-core — x-tuple probabilistic database model
//!
//! This crate implements the data model used by the ICDE 2013 paper
//! *"Cleaning Uncertain Data for Top-k Queries"* (Mo, Cheng, Li, Cheung,
//! Yang): the **x-tuple** probabilistic database (Section III-A of the
//! paper) together with its **possible-world semantics** (PWS).
//!
//! ## Model in one paragraph
//!
//! A probabilistic database `D` contains `m` *x-tuples* τ₁..τₘ (one per
//! real-world entity, e.g. one per sensor).  Each x-tuple is a set of
//! mutually exclusive *tuples*; tuple `tᵢ` carries a payload (its attribute
//! values), and an *existential probability* `eᵢ` — the chance that `tᵢ` is
//! the true state of the entity.  Tuples belonging to different x-tuples are
//! independent.  If the probabilities inside an x-tuple sum to less than 1,
//! the remaining mass is an implicit *null* tuple ("the entity produced no
//! reading"), which is ranked below every non-null tuple.  A *possible
//! world* picks exactly one alternative (possibly null) from every x-tuple;
//! its probability is the product of the chosen alternatives'
//! probabilities.
//!
//! ## Crate layout
//!
//! * [`mod@tuple`] — identifiers and the [`Tuple`] / [`XTuple`] types.
//! * [`database`] — the user-facing [`Database`] container and its
//!   builder/validation logic.
//! * [`ranking`] — ranking functions that map payloads to a total order.
//! * [`ranked`] — [`RankedDatabase`]: the flattened, rank-sorted
//!   representation every algorithm in the workspace operates on.
//! * [`world`] — possible-world enumeration and per-world deterministic
//!   top-k evaluation (used by the brute-force oracles and small examples).
//! * [`examples`] — the paper's running examples `udb1` (Table I) and
//!   `udb2` (Table II).
//! * [`stats`] — simple descriptive statistics over a database.
//! * [`error`] — error types.
//!
//! ## Quick example
//!
//! ```
//! use pdb_core::prelude::*;
//!
//! // Table I of the paper: four temperature sensors.
//! let db = pdb_core::examples::udb1();
//! assert_eq!(db.num_x_tuples(), 4);
//! assert_eq!(db.num_tuples(), 7);
//!
//! // Flatten + sort by descending temperature for query processing.
//! let ranked = db.rank_by(&ScoreRanking);
//! assert_eq!(ranked.len(), 7);
//! // The highest-ranked tuple is t1 (32 degrees C).
//! assert_eq!(ranked.tuple(0).score, 32.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod database;
pub mod error;
pub mod examples;
pub mod ranked;
pub mod ranking;
pub mod stats;
pub mod tuple;
pub mod world;

pub use database::{Database, DatabaseBuilder};
pub use error::{DbError, Result};
pub use ranked::{RankedDatabase, RankedTuple};
pub use ranking::{Ranking, ScoreRanking, WeightedSumRanking};
pub use tuple::{Tuple, TupleId, XTuple, XTupleId};
pub use world::{PossibleWorld, WorldIter};

/// Convenience prelude bringing the most frequently used types into scope.
pub mod prelude {
    pub use crate::database::{Database, DatabaseBuilder};
    pub use crate::error::{DbError, Result};
    pub use crate::ranked::{RankedDatabase, RankedTuple};
    pub use crate::ranking::{Ranking, ScoreRanking, WeightedSumRanking};
    pub use crate::tuple::{Tuple, TupleId, XTuple, XTupleId};
    pub use crate::world::{PossibleWorld, WorldIter};
}

/// Absolute tolerance used throughout the workspace when comparing
/// probabilities and quality scores computed by different algorithms.
///
/// The paper reports that PW, PWR and TP agree within `1e-8`; we adopt the
/// same figure for cross-checking tests.
pub const PROB_EPSILON: f64 = 1e-8;
