//! Possible-world semantics: enumeration and per-world top-k evaluation.
//!
//! A possible world picks exactly one alternative (possibly the implicit
//! null alternative) from every x-tuple; its probability is the product of
//! the chosen alternatives' probabilities and all world probabilities sum to
//! 1 (Section III-A).  Enumeration is exponential in the number of x-tuples
//! and is therefore only exposed for *small* databases; it serves as the
//! correctness oracle (the "PW" baseline) for every efficient algorithm in
//! this workspace.

use crate::error::{DbError, Result};
use crate::ranked::RankedDatabase;

/// Default cap on the number of worlds [`WorldIter`] will agree to
/// enumerate.  Chosen so that oracle computations stay in the millisecond
/// range; raise it explicitly via [`worlds_with_limit`] when needed.
pub const DEFAULT_WORLD_LIMIT: u128 = 1 << 22;

/// One possible world of a ranked database.
#[derive(Debug, Clone, PartialEq)]
pub struct PossibleWorld {
    /// For every x-tuple index `l`, the rank position of the chosen
    /// alternative, or `None` when the null alternative was chosen.
    pub chosen: Vec<Option<usize>>,
    /// Probability of this world (product of the chosen alternatives'
    /// existential probabilities).
    pub prob: f64,
}

impl PossibleWorld {
    /// Rank positions of the tuples that exist in this world, in descending
    /// rank order (i.e. ascending position).
    pub fn existing_positions(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.chosen.iter().filter_map(|c| *c).collect();
        v.sort_unstable();
        v
    }

    /// The deterministic top-k answer in this world: the `k` highest-ranked
    /// existing tuples (fewer if the world contains fewer than `k` non-null
    /// tuples), as rank positions in descending rank order.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut v = self.existing_positions();
        v.truncate(k);
        v
    }

    /// Whether the tuple at the given rank position exists in this world.
    pub fn contains(&self, pos: usize) -> bool {
        self.chosen.contains(&Some(pos))
    }
}

/// Iterator over all possible worlds of a database (odometer enumeration).
#[derive(Debug, Clone)]
pub struct WorldIter {
    /// Per x-tuple: the list of alternatives (`None` = null) and their
    /// probabilities.
    alternatives: Vec<Vec<(Option<usize>, f64)>>,
    /// Current odometer state; `None` once exhausted.
    state: Option<Vec<usize>>,
}

impl WorldIter {
    fn new(db: &RankedDatabase) -> Self {
        let alternatives = db
            .x_tuples()
            .map(|info| {
                let mut alts: Vec<(Option<usize>, f64)> =
                    info.members.iter().map(|&pos| (Some(pos), db.tuple(pos).prob)).collect();
                let null = info.null_prob();
                if null > crate::PROB_EPSILON {
                    alts.push((None, null));
                }
                alts
            })
            .collect::<Vec<_>>();
        let state = Some(vec![0; alternatives.len()]);
        Self { alternatives, state }
    }
}

impl Iterator for WorldIter {
    type Item = PossibleWorld;

    fn next(&mut self) -> Option<PossibleWorld> {
        let state = self.state.as_mut()?;
        let mut chosen = Vec::with_capacity(state.len());
        let mut prob = 1.0;
        for (l, &idx) in state.iter().enumerate() {
            let (pos, p) = self.alternatives[l][idx];
            chosen.push(pos);
            prob *= p;
        }
        // Advance the odometer.
        let mut exhausted = true;
        for l in (0..state.len()).rev() {
            state[l] += 1;
            if state[l] < self.alternatives[l].len() {
                exhausted = false;
                break;
            }
            state[l] = 0;
        }
        if exhausted {
            self.state = None;
        }
        Some(PossibleWorld { chosen, prob })
    }
}

/// Enumerate all possible worlds of `db`, refusing when the world count
/// exceeds [`DEFAULT_WORLD_LIMIT`].
pub fn worlds(db: &RankedDatabase) -> Result<WorldIter> {
    worlds_with_limit(db, DEFAULT_WORLD_LIMIT)
}

/// Enumerate all possible worlds of `db`, refusing when the world count
/// exceeds `limit`.
pub fn worlds_with_limit(db: &RankedDatabase, limit: u128) -> Result<WorldIter> {
    let count = db.world_count();
    if count > limit {
        return Err(DbError::TooManyWorlds { worlds: count, limit });
    }
    Ok(WorldIter::new(db))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let db = udb1();
        let total: f64 = worlds(&db).unwrap().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(worlds(&db).unwrap().count(), 8);
    }

    #[test]
    fn worlds_include_null_alternatives() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)], // null prob 0.5
            vec![(9.0, 1.0)],
        ])
        .unwrap();
        let ws: Vec<_> = worlds(&db).unwrap().collect();
        assert_eq!(ws.len(), 2);
        let total: f64 = ws.iter().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // One of the worlds does not contain the uncertain tuple.
        assert!(ws.iter().any(|w| w.chosen[0].is_none()));
    }

    #[test]
    fn paper_example_world_probability() {
        // The paper: W = {t0, t3, t4, t6} exists with probability
        // 0.6 * 0.3 * 0.4 * 1 = 0.072.
        let db = udb1();
        // Identify rank positions by score.
        let pos_of = |score: f64| {
            db.tuples().position(|t| (t.score - score).abs() < 1e-9).expect("score present")
        };
        let target: Vec<usize> = {
            let mut v = vec![pos_of(21.0), pos_of(22.0), pos_of(25.0), pos_of(26.0)];
            v.sort_unstable();
            v
        };
        let w =
            worlds(&db).unwrap().find(|w| w.existing_positions() == target).expect("world exists");
        assert!((w.prob - 0.072).abs() < 1e-12);
    }

    #[test]
    fn per_world_top_k_takes_highest_ranked() {
        let db = udb1();
        let pos_25 = db.tuples().position(|t| t.score == 25.0).unwrap();
        let pos_26 = db.tuples().position(|t| t.score == 26.0).unwrap();
        let pos_21 = db.tuples().position(|t| t.score == 21.0).unwrap();
        let pos_22 = db.tuples().position(|t| t.score == 22.0).unwrap();
        // World {t0(21), t3(22), t4(25), t6(26)}: top-2 = (26, 25).
        let w = worlds(&db)
            .unwrap()
            .find(|w| {
                let e = w.existing_positions();
                e.contains(&pos_21) && e.contains(&pos_22) && e.contains(&pos_25)
            })
            .unwrap();
        assert_eq!(w.top_k(2), vec![pos_26, pos_25]);
        assert!(w.contains(pos_26));
        // Asking for more than the world holds returns everything.
        assert_eq!(w.top_k(10).len(), 4);
    }

    #[test]
    fn enumeration_limit_is_enforced() {
        let db = udb1();
        let err = worlds_with_limit(&db, 4).unwrap_err();
        assert!(matches!(err, DbError::TooManyWorlds { worlds: 8, limit: 4 }));
    }
}
