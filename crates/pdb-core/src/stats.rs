//! Descriptive statistics over a ranked probabilistic database.
//!
//! These are not part of the paper's algorithms; they support the
//! experiment harness (dataset summaries printed next to every figure) and
//! sanity checks in tests.

use crate::ranked::RankedDatabase;
use serde::{Deserialize, Serialize};

/// Summary statistics of a ranked database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatabaseStats {
    /// Number of tuples `n`.
    pub num_tuples: usize,
    /// Number of x-tuples `m`.
    pub num_x_tuples: usize,
    /// Average number of explicit alternatives per x-tuple.
    pub avg_alternatives: f64,
    /// Largest number of alternatives in any x-tuple.
    pub max_alternatives: usize,
    /// Number of x-tuples that are already certain (single alternative with
    /// probability 1).
    pub certain_x_tuples: usize,
    /// Number of x-tuples carrying null mass (total probability < 1).
    pub x_tuples_with_null: usize,
    /// Mean existential probability across all tuples.
    pub mean_prob: f64,
    /// Mean per-x-tuple entropy (in bits) of the alternative distribution,
    /// including the null alternative.  A rough measure of how ambiguous
    /// the database is before any query is asked.
    pub mean_x_tuple_entropy: f64,
    /// Minimum and maximum ranking scores.
    pub score_range: (f64, f64),
}

/// Compute summary statistics for a ranked database.
pub fn describe(db: &RankedDatabase) -> DatabaseStats {
    let n = db.len();
    let m = db.num_x_tuples();
    let mut max_alternatives = 0;
    let mut certain = 0;
    let mut with_null = 0;
    let mut entropy_sum = 0.0;
    for info in db.x_tuples() {
        max_alternatives = max_alternatives.max(info.members.len());
        let null = info.null_prob();
        if null > crate::PROB_EPSILON {
            with_null += 1;
        }
        if info.members.len() == 1 && null <= crate::PROB_EPSILON {
            certain += 1;
        }
        let mut h = 0.0;
        for &pos in &info.members {
            let p = db.tuple(pos).prob;
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
        if null > 0.0 {
            h -= null * null.log2();
        }
        entropy_sum += h;
    }
    let mean_prob = db.tuples().map(|t| t.prob).sum::<f64>() / n as f64;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for t in db.tuples() {
        lo = lo.min(t.score);
        hi = hi.max(t.score);
    }
    DatabaseStats {
        num_tuples: n,
        num_x_tuples: m,
        avg_alternatives: n as f64 / m as f64,
        max_alternatives,
        certain_x_tuples: certain,
        x_tuples_with_null: with_null,
        mean_prob,
        mean_x_tuple_entropy: entropy_sum / m as f64,
        score_range: (lo, hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_udb1() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap();
        let s = describe(&db);
        assert_eq!(s.num_tuples, 7);
        assert_eq!(s.num_x_tuples, 4);
        assert_eq!(s.max_alternatives, 2);
        assert_eq!(s.certain_x_tuples, 1);
        assert_eq!(s.x_tuples_with_null, 0);
        assert!((s.avg_alternatives - 1.75).abs() < 1e-12);
        assert!((s.mean_prob - (0.6 + 0.4 + 0.7 + 0.3 + 0.4 + 0.6 + 1.0) / 7.0).abs() < 1e-12);
        assert_eq!(s.score_range, (21.0, 32.0));
        // Entropy of S4 is 0; the three binary sensors contribute positive
        // entropy, so the mean lies strictly between 0 and 1 bit.
        assert!(s.mean_x_tuple_entropy > 0.0 && s.mean_x_tuple_entropy < 1.0);
    }

    #[test]
    fn certain_database_has_zero_entropy() {
        let db =
            RankedDatabase::from_scored_x_tuples(&[vec![(1.0, 1.0)], vec![(2.0, 1.0)]]).unwrap();
        let s = describe(&db);
        assert_eq!(s.certain_x_tuples, 2);
        assert_eq!(s.mean_x_tuple_entropy, 0.0);
    }

    #[test]
    fn null_mass_is_counted() {
        let db =
            RankedDatabase::from_scored_x_tuples(&[vec![(1.0, 0.5)], vec![(2.0, 1.0)]]).unwrap();
        let s = describe(&db);
        assert_eq!(s.x_tuples_with_null, 1);
        assert_eq!(s.certain_x_tuples, 1);
    }
}
