//! The user-facing probabilistic database container and its builder.

use crate::error::{DbError, Result};
use crate::ranked::RankedDatabase;
use crate::ranking::Ranking;
use crate::tuple::{Tuple, TupleId, XTuple, XTupleId};
use serde::{Deserialize, Serialize};

/// An x-tuple probabilistic database (Section III-A of the paper).
///
/// `Database<V>` is the *logical* representation: a list of entities
/// (x-tuples), each with mutually exclusive alternatives carrying payloads
/// of type `V`.  Query processing operates on the *physical* representation
/// produced by [`Database::rank_by`], a [`RankedDatabase`] in which all
/// tuples are flattened and sorted by descending rank.
///
/// Construct databases through [`DatabaseBuilder`], which validates
/// existential probabilities, or through [`Database::from_x_tuples`] when
/// the x-tuples have been assembled elsewhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Database<V> {
    x_tuples: Vec<XTuple<V>>,
    num_tuples: usize,
}

impl<V> Database<V> {
    /// Build a database from pre-assembled x-tuples, validating
    /// probabilities and identifiers.
    pub fn from_x_tuples(x_tuples: Vec<XTuple<V>>) -> Result<Self> {
        if x_tuples.is_empty() {
            return Err(DbError::EmptyDatabase);
        }
        let mut num_tuples = 0;
        for xt in &x_tuples {
            if xt.tuples.is_empty() {
                return Err(DbError::EmptyXTuple { x_tuple: xt.key.clone() });
            }
            let mut mass = 0.0;
            for t in &xt.tuples {
                if !t.prob.is_finite() || t.prob < 0.0 || t.prob > 1.0 + crate::PROB_EPSILON {
                    return Err(DbError::InvalidProbability {
                        prob: t.prob,
                        context: format!("{}/{}", xt.key, t.id),
                    });
                }
                mass += t.prob;
            }
            if mass > 1.0 + 1e-6 {
                return Err(DbError::XTupleMassExceedsOne { x_tuple: xt.key.clone(), total: mass });
            }
            num_tuples += xt.tuples.len();
        }
        Ok(Self { x_tuples, num_tuples })
    }

    /// Number of x-tuples (entities) in the database, `m` in the paper.
    pub fn num_x_tuples(&self) -> usize {
        self.x_tuples.len()
    }

    /// Number of explicit tuples (alternatives) in the database, `n` in the
    /// paper.  Implicit null alternatives are not counted.
    pub fn num_tuples(&self) -> usize {
        self.num_tuples
    }

    /// Access the x-tuples.
    pub fn x_tuples(&self) -> &[XTuple<V>] {
        &self.x_tuples
    }

    /// Access one x-tuple by index.
    pub fn x_tuple(&self, index: usize) -> Option<&XTuple<V>> {
        self.x_tuples.get(index)
    }

    /// Iterate over every tuple of the database in insertion order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple<V>> {
        self.x_tuples.iter().flat_map(|xt| xt.tuples.iter())
    }

    /// Average number of alternatives per x-tuple.
    pub fn avg_alternatives(&self) -> f64 {
        self.num_tuples as f64 / self.x_tuples.len() as f64
    }

    /// Flatten and sort the database by descending rank according to the
    /// given ranking function, producing the physical representation used by
    /// all query, quality and cleaning algorithms.
    ///
    /// # Panics
    ///
    /// Panics if the ranking function produces a non-finite score.  Use
    /// [`Database::try_rank_by`] to handle that case gracefully.
    pub fn rank_by<R: Ranking<V>>(&self, ranking: &R) -> RankedDatabase {
        // pdb-analyze: allow(panic-path): documented panicking API; try_rank_by is the fallible twin
        self.try_rank_by(ranking).expect("ranking produced a non-finite score")
    }

    /// Fallible version of [`Database::rank_by`].
    pub fn try_rank_by<R: Ranking<V>>(&self, ranking: &R) -> Result<RankedDatabase> {
        let mut entries = Vec::with_capacity(self.num_tuples);
        for (x_index, xt) in self.x_tuples.iter().enumerate() {
            for t in &xt.tuples {
                let score = ranking.score_tuple(t);
                if !score.is_finite() {
                    return Err(DbError::NonFiniteScore { tuple_index: t.id.0 });
                }
                entries.push((t.id, x_index, score, t.prob));
            }
        }
        let keys: Vec<String> = self.x_tuples.iter().map(|xt| xt.key.clone()).collect();
        RankedDatabase::from_entries(entries, keys)
    }
}

/// Incremental builder for [`Database`].
///
/// ```
/// use pdb_core::prelude::*;
///
/// let mut b = DatabaseBuilder::new();
/// b.x_tuple("S1").tuple(21.0, 0.6).tuple(32.0, 0.4);
/// b.x_tuple("S2").tuple(30.0, 0.7).tuple(22.0, 0.3);
/// let db: Database<f64> = b.build().unwrap();
/// assert_eq!(db.num_x_tuples(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DatabaseBuilder<V> {
    x_tuples: Vec<XTuple<V>>,
    next_tuple_id: usize,
}

impl<V> DatabaseBuilder<V> {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self { x_tuples: Vec::new(), next_tuple_id: 0 }
    }

    /// Start a new x-tuple with the given human-readable key and return a
    /// scoped builder for adding its alternatives.
    pub fn x_tuple(&mut self, key: impl Into<String>) -> XTupleBuilder<'_, V> {
        let id = XTupleId(self.x_tuples.len());
        self.x_tuples.push(XTuple { id, key: key.into(), tuples: Vec::new() });
        XTupleBuilder { builder: self }
    }

    /// Add a fully certain entity (a single alternative with probability 1).
    pub fn certain(&mut self, key: impl Into<String>, payload: V) -> &mut Self {
        self.x_tuple(key).tuple(payload, 1.0);
        self
    }

    /// Number of x-tuples added so far.
    pub fn len(&self) -> usize {
        self.x_tuples.len()
    }

    /// Whether no x-tuple has been added yet.
    pub fn is_empty(&self) -> bool {
        self.x_tuples.is_empty()
    }

    /// Validate and build the database.
    pub fn build(self) -> Result<Database<V>> {
        Database::from_x_tuples(self.x_tuples)
    }
}

/// Scoped builder returned by [`DatabaseBuilder::x_tuple`]; adds
/// alternatives to the most recently started x-tuple.
#[derive(Debug)]
pub struct XTupleBuilder<'a, V> {
    builder: &'a mut DatabaseBuilder<V>,
}

impl<V> XTupleBuilder<'_, V> {
    /// Add one alternative with the given payload and existential
    /// probability.
    pub fn tuple(self, payload: V, prob: f64) -> Self {
        let b = self.builder;
        let id = TupleId(b.next_tuple_id);
        b.next_tuple_id += 1;
        // pdb-analyze: allow(panic-path): builder invariant — tuple() is only reachable after x_tuple() pushed the entry
        let xt = b.x_tuples.last_mut().expect("x_tuple() created an entry");
        xt.tuples.push(Tuple { id, x_tuple: xt.id, payload, prob });
        Self { builder: b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::ScoreRanking;

    fn small_db() -> Database<f64> {
        let mut b = DatabaseBuilder::new();
        b.x_tuple("S1").tuple(21.0, 0.6).tuple(32.0, 0.4);
        b.x_tuple("S2").tuple(30.0, 0.7).tuple(22.0, 0.3);
        b.certain("S4", 26.0);
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let db = small_db();
        let ids: Vec<usize> = db.tuples().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        let x_ids: Vec<usize> = db.tuples().map(|t| t.x_tuple.0).collect();
        assert_eq!(x_ids, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn counts_and_average() {
        let db = small_db();
        assert_eq!(db.num_x_tuples(), 3);
        assert_eq!(db.num_tuples(), 5);
        assert!((db.avg_alternatives() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(db.x_tuple(0).unwrap().key, "S1");
        assert!(db.x_tuple(99).is_none());
    }

    #[test]
    fn rejects_empty_database() {
        let b: DatabaseBuilder<f64> = DatabaseBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.build().unwrap_err(), DbError::EmptyDatabase);
    }

    #[test]
    fn rejects_empty_x_tuple() {
        let mut b: DatabaseBuilder<f64> = DatabaseBuilder::new();
        b.x_tuple("S1");
        let err = b.build().unwrap_err();
        assert_eq!(err, DbError::EmptyXTuple { x_tuple: "S1".into() });
    }

    #[test]
    fn rejects_invalid_probability() {
        let mut b = DatabaseBuilder::new();
        b.x_tuple("S1").tuple(21.0, 1.4);
        assert!(matches!(b.build().unwrap_err(), DbError::InvalidProbability { .. }));

        let mut b = DatabaseBuilder::new();
        b.x_tuple("S1").tuple(21.0, -0.1);
        assert!(matches!(b.build().unwrap_err(), DbError::InvalidProbability { .. }));

        let mut b = DatabaseBuilder::new();
        b.x_tuple("S1").tuple(21.0, f64::NAN);
        assert!(matches!(b.build().unwrap_err(), DbError::InvalidProbability { .. }));
    }

    #[test]
    fn rejects_mass_above_one() {
        let mut b = DatabaseBuilder::new();
        b.x_tuple("S1").tuple(21.0, 0.7).tuple(32.0, 0.5);
        assert!(matches!(b.build().unwrap_err(), DbError::XTupleMassExceedsOne { .. }));
    }

    #[test]
    fn sub_one_mass_is_allowed() {
        // Missing mass is the implicit null alternative.
        let mut b = DatabaseBuilder::new();
        b.x_tuple("S1").tuple(21.0, 0.3).tuple(32.0, 0.4);
        let db = b.build().unwrap();
        assert!((db.x_tuple(0).unwrap().null_prob() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ranking_flattens_and_sorts() {
        let db = small_db();
        let ranked = db.rank_by(&ScoreRanking);
        let scores: Vec<f64> = ranked.tuples().map(|t| t.score).collect();
        assert_eq!(scores, vec![32.0, 30.0, 26.0, 22.0, 21.0]);
    }

    #[test]
    fn non_finite_scores_are_rejected() {
        let db = small_db();
        let err = db.try_rank_by(&|_: &f64| f64::NAN).unwrap_err();
        assert!(matches!(err, DbError::NonFiniteScore { .. }));
    }

    #[test]
    fn certain_helper_builds_probability_one_entity() {
        let db = small_db();
        assert!(db.x_tuple(2).unwrap().is_certain());
    }

    #[test]
    fn serde_round_trip() {
        let db = small_db();
        let json = serde_json::to_string(&db).unwrap();
        let back: Database<f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(db, back);
    }
}
