//! Tuple and x-tuple types.
//!
//! An **x-tuple** (Section III-A of the paper, following the Trio model of
//! Agrawal et al.) groups the mutually exclusive alternatives of a single
//! real-world entity.  Each alternative is a [`Tuple`] carrying a payload
//! (its attribute values) and an existential probability.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a tuple, unique within a [`Database`](crate::Database).
///
/// Tuple ids are assigned in insertion order by the
/// [`DatabaseBuilder`](crate::DatabaseBuilder) and are stable across
/// ranking: the same id refers to the same alternative before and after the
/// database is flattened into a [`RankedDatabase`](crate::RankedDatabase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TupleId(pub usize);

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of an x-tuple (an entity), unique within a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct XTupleId(pub usize);

impl fmt::Display for XTupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// One alternative of an x-tuple.
///
/// The payload type `V` carries the attribute values; the simplest payload
/// is a bare `f64` score (see [`ScoreRanking`](crate::ScoreRanking)), richer
/// payloads (e.g. the movie-rating tuples of the MOV dataset) provide their
/// own [`Ranking`](crate::Ranking) implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple<V> {
    /// Identifier of this tuple, unique within the database.
    pub id: TupleId,
    /// Identifier of the x-tuple this alternative belongs to.
    pub x_tuple: XTupleId,
    /// Attribute values of this alternative.
    pub payload: V,
    /// Existential probability `eᵢ`: the chance that this alternative is the
    /// true state of the entity.  Always within `[0, 1]`.
    pub prob: f64,
}

impl<V> Tuple<V> {
    /// Map the payload of this tuple to a different type, keeping the
    /// identifiers and probability.
    pub fn map_payload<W>(self, f: impl FnOnce(V) -> W) -> Tuple<W> {
        Tuple { id: self.id, x_tuple: self.x_tuple, payload: f(self.payload), prob: self.prob }
    }
}

/// A real-world entity together with its mutually exclusive alternatives.
///
/// The alternatives' probabilities sum to at most 1; any missing mass is the
/// implicit *null* alternative ("the entity has no reading"), which ranks
/// below every non-null tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XTuple<V> {
    /// Identifier of the x-tuple.
    pub id: XTupleId,
    /// Human-readable key of the entity (e.g. `"S1"` for sensor 1).
    pub key: String,
    /// The mutually exclusive alternatives of this entity.
    pub tuples: Vec<Tuple<V>>,
}

impl<V> XTuple<V> {
    /// Total existential probability mass of the explicit alternatives.
    pub fn total_mass(&self) -> f64 {
        self.tuples.iter().map(|t| t.prob).sum()
    }

    /// Probability of the implicit null alternative, i.e. `1 − Σ eᵢ`
    /// clamped at zero.
    pub fn null_prob(&self) -> f64 {
        (1.0 - self.total_mass()).max(0.0)
    }

    /// Number of explicit alternatives.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the x-tuple has no explicit alternatives.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Whether this entity is already *certain*: a single alternative with
    /// probability 1 (within tolerance).  Cleaning a certain x-tuple can
    /// never improve query quality.
    pub fn is_certain(&self) -> bool {
        self.tuples.len() == 1 && (self.tuples[0].prob - 1.0).abs() <= crate::PROB_EPSILON
    }

    /// Iterate over the alternatives.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple<V>> {
        self.tuples.iter()
    }
}

impl<'a, V> IntoIterator for &'a XTuple<V> {
    type Item = &'a Tuple<V>;
    type IntoIter = std::slice::Iter<'a, Tuple<V>>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(probs: &[f64]) -> XTuple<f64> {
        XTuple {
            id: XTupleId(0),
            key: "S0".into(),
            tuples: probs
                .iter()
                .enumerate()
                .map(|(i, &p)| Tuple {
                    id: TupleId(i),
                    x_tuple: XTupleId(0),
                    payload: i as f64,
                    prob: p,
                })
                .collect(),
        }
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(TupleId(3).to_string(), "t3");
        assert_eq!(XTupleId(7).to_string(), "x7");
    }

    #[test]
    fn total_and_null_mass() {
        let xt = x(&[0.6, 0.3]);
        assert!((xt.total_mass() - 0.9).abs() < 1e-12);
        assert!((xt.null_prob() - 0.1).abs() < 1e-12);
        assert_eq!(xt.len(), 2);
        assert!(!xt.is_empty());
    }

    #[test]
    fn null_prob_clamps_at_zero() {
        // Rounding may make the mass marginally exceed 1; null_prob must not
        // go negative.
        let xt = x(&[0.7, 0.3 + 1e-12]);
        assert!(xt.null_prob() >= 0.0);
    }

    #[test]
    fn certainty_detection() {
        assert!(x(&[1.0]).is_certain());
        assert!(!x(&[0.999]).is_certain());
        assert!(!x(&[0.5, 0.5]).is_certain());
    }

    #[test]
    fn map_payload_preserves_identity() {
        let t = Tuple { id: TupleId(4), x_tuple: XTupleId(2), payload: 21.0_f64, prob: 0.6 };
        let mapped = t.map_payload(|v| format!("{v}"));
        assert_eq!(mapped.id, TupleId(4));
        assert_eq!(mapped.x_tuple, XTupleId(2));
        assert_eq!(mapped.payload, "21");
        assert!((mapped.prob - 0.6).abs() < 1e-12);
    }

    #[test]
    fn iteration_yields_all_alternatives() {
        let xt = x(&[0.2, 0.3, 0.4]);
        assert_eq!(xt.iter().count(), 3);
        assert_eq!((&xt).into_iter().count(), 3);
    }
}
