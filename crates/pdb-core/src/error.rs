//! Error types for the probabilistic database model.

use std::fmt;

/// Convenience alias for results returned by this workspace.
pub type Result<T, E = DbError> = std::result::Result<T, E>;

/// Errors raised while constructing or manipulating a probabilistic
/// database.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// A tuple was given an existential probability outside `[0, 1]` or a
    /// non-finite value.
    InvalidProbability {
        /// Offending probability value.
        prob: f64,
        /// Human-readable location (x-tuple key / tuple id).
        context: String,
    },
    /// The existential probabilities inside one x-tuple sum to more than 1
    /// (beyond the numerical tolerance).
    XTupleMassExceedsOne {
        /// Key of the offending x-tuple.
        x_tuple: String,
        /// The offending total mass.
        total: f64,
    },
    /// An x-tuple contains no tuples at all.
    EmptyXTuple {
        /// Key of the offending x-tuple.
        x_tuple: String,
    },
    /// The database contains no x-tuples.
    EmptyDatabase,
    /// A ranking score was not finite (NaN or infinite), so no total order
    /// can be established.
    NonFiniteScore {
        /// Index of the offending tuple in insertion order.
        tuple_index: usize,
    },
    /// Possible-world enumeration was requested on a database whose world
    /// count exceeds the configured limit.
    TooManyWorlds {
        /// Number of possible worlds of the database (saturating).
        worlds: u128,
        /// The limit that was exceeded.
        limit: u128,
    },
    /// A query parameter was invalid (e.g. `k = 0`, or a threshold outside
    /// `[0, 1]`).
    InvalidParameter {
        /// Description of the violated constraint.
        message: String,
    },
    /// An x-tuple or tuple index was out of range.
    IndexOutOfRange {
        /// Description of the offending access.
        message: String,
    },
    /// An internal invariant failed (poisoned lock, torn state).  Carried
    /// as an error so servers reply instead of panicking mid-request.
    Internal {
        /// Description of the failed invariant.
        message: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::InvalidProbability { prob, context } => {
                write!(f, "invalid existential probability {prob} ({context}); must lie in [0, 1]")
            }
            DbError::XTupleMassExceedsOne { x_tuple, total } => {
                write!(f, "x-tuple {x_tuple:?} has total probability mass {total} > 1")
            }
            DbError::EmptyXTuple { x_tuple } => {
                write!(f, "x-tuple {x_tuple:?} contains no tuples")
            }
            DbError::EmptyDatabase => write!(f, "the database contains no x-tuples"),
            DbError::NonFiniteScore { tuple_index } => {
                write!(f, "ranking produced a non-finite score for tuple #{tuple_index}")
            }
            DbError::TooManyWorlds { worlds, limit } => {
                write!(f, "database has {worlds} possible worlds, exceeding the enumeration limit of {limit}")
            }
            DbError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
            DbError::IndexOutOfRange { message } => write!(f, "index out of range: {message}"),
            DbError::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// Helper for constructing an [`DbError::InvalidParameter`] error.
    pub fn invalid_parameter(message: impl Into<String>) -> Self {
        DbError::InvalidParameter { message: message.into() }
    }

    /// Helper for constructing an [`DbError::IndexOutOfRange`] error.
    pub fn index_out_of_range(message: impl Into<String>) -> Self {
        DbError::IndexOutOfRange { message: message.into() }
    }

    /// Helper for constructing an [`DbError::Internal`] error.
    pub fn internal(message: impl Into<String>) -> Self {
        DbError::Internal { message: message.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_facts() {
        let e = DbError::InvalidProbability { prob: 1.5, context: "S1/t0".into() };
        assert!(e.to_string().contains("1.5"));
        assert!(e.to_string().contains("S1/t0"));

        let e = DbError::XTupleMassExceedsOne { x_tuple: "S2".into(), total: 1.2 };
        assert!(e.to_string().contains("S2"));

        let e = DbError::TooManyWorlds { worlds: 1 << 40, limit: 1 << 20 };
        assert!(e.to_string().contains("possible worlds"));

        let e = DbError::invalid_parameter("k must be positive");
        assert!(e.to_string().contains("k must be positive"));

        let e = DbError::index_out_of_range("x-tuple 9 of 4");
        assert!(e.to_string().contains("x-tuple 9 of 4"));

        let e = DbError::EmptyDatabase;
        assert!(!e.to_string().is_empty());

        let e = DbError::EmptyXTuple { x_tuple: "S9".into() };
        assert!(e.to_string().contains("S9"));

        let e = DbError::NonFiniteScore { tuple_index: 3 };
        assert!(e.to_string().contains('3'));

        let e = DbError::internal("session lock poisoned");
        assert!(e.to_string().contains("session lock poisoned"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<DbError>();
    }
}
