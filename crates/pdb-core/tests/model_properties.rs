//! Property-based tests of the data model and possible-world semantics.

use pdb_core::world::{worlds_with_limit, DEFAULT_WORLD_LIMIT};
use pdb_core::{RankedDatabase, TupleId};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: raw (score, weight) alternatives for one x-tuple; weights are
/// normalised to a total mass in (0, 1].
fn x_tuple() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((-50.0f64..50.0, 0.05f64..1.0), 1..5), 0.1f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        alts.into_iter().map(|(s, w)| (s, w / total * mass)).collect()
    })
}

fn db() -> impl Strategy<Value = RankedDatabase> {
    vec(x_tuple(), 1..7).prop_map(|x| RankedDatabase::from_scored_x_tuples(&x).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tuples are sorted by descending score with ties broken by id; the
    /// per-x-tuple member lists agree with the tuple array.
    #[test]
    fn ranked_database_is_sorted_and_consistent(db in db()) {
        for w in db.as_slice().windows(2) {
            prop_assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].id < w[1].id)
            );
        }
        let mut seen = vec![false; db.len()];
        for (l, info) in db.x_tuples().enumerate() {
            let mut mass = 0.0;
            let mut last_pos = None;
            for &pos in &info.members {
                prop_assert_eq!(db.tuple(pos).x_index, l);
                prop_assert!(!seen[pos]);
                seen[pos] = true;
                if let Some(prev) = last_pos {
                    prop_assert!(pos > prev, "members listed in rank order");
                }
                last_pos = Some(pos);
                mass += db.tuple(pos).prob;
            }
            prop_assert!((mass - info.total_mass).abs() < 1e-9);
            prop_assert!(info.total_mass <= 1.0 + 1e-6);
        }
        prop_assert!(seen.into_iter().all(|s| s), "every tuple belongs to exactly one x-tuple");
    }

    /// The precomputed within-x-tuple prefix masses match their definition.
    #[test]
    fn higher_mass_within_matches_definition(db in db()) {
        for pos in 0..db.len() {
            let t = db.tuple(pos);
            let expected: f64 = db
                .x_tuple(t.x_index)
                .members
                .iter()
                .filter(|&&p| p < pos)
                .map(|&p| db.tuple(p).prob)
                .sum();
            prop_assert!((db.higher_mass_within(pos) - expected).abs() < 1e-9);
            prop_assert!(
                (db.higher_or_equal_mass_within(pos) - (expected + t.prob)).abs() < 1e-9
            );
        }
    }

    /// Possible-world probabilities form a distribution and the world count
    /// matches the enumeration.
    #[test]
    fn possible_worlds_form_a_distribution(db in db()) {
        prop_assume!(db.world_count() <= DEFAULT_WORLD_LIMIT);
        let worlds: Vec<_> = worlds_with_limit(&db, DEFAULT_WORLD_LIMIT).unwrap().collect();
        prop_assert_eq!(worlds.len() as u128, db.world_count());
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for w in &worlds {
            prop_assert!(w.prob >= 0.0);
            // Exactly one (possibly null) choice per x-tuple.
            prop_assert_eq!(w.chosen.len(), db.num_x_tuples());
            // Existing tuples are distinct and sorted by rank.
            let e = w.existing_positions();
            for pair in e.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
        }
    }

    /// A tuple's marginal existence probability (summed over worlds) equals
    /// its existential probability.
    #[test]
    fn world_marginals_match_existential_probabilities(db in db()) {
        prop_assume!(db.world_count() <= 1 << 12);
        let worlds: Vec<_> = worlds_with_limit(&db, 1 << 12).unwrap().collect();
        for pos in 0..db.len() {
            let marginal: f64 = worlds.iter().filter(|w| w.contains(pos)).map(|w| w.prob).sum();
            prop_assert!((marginal - db.tuple(pos).prob).abs() < 1e-9);
        }
    }

    /// Collapsing any x-tuple to any of its members keeps the database
    /// valid, makes that entity certain, and never increases the number of
    /// worlds.
    #[test]
    fn collapse_is_well_behaved(db in db(), idx in any::<prop::sample::Index>()) {
        let l = idx.index(db.num_x_tuples());
        let members = db.x_tuple(l).members.clone();
        let keep = members[idx.index(members.len())];
        let cleaned = db.collapse_x_tuple(l, keep).unwrap();
        prop_assert_eq!(cleaned.num_x_tuples(), db.num_x_tuples());
        prop_assert!(cleaned.world_count() <= db.world_count());
        let info = cleaned.x_tuple(l);
        prop_assert_eq!(info.members.len(), 1);
        prop_assert!((cleaned.tuple(info.members[0]).prob - 1.0).abs() < 1e-9);
        prop_assert_eq!(cleaned.tuple(info.members[0]).id, db.tuple(keep).id);
        // Other x-tuples are untouched (same ids and probabilities).
        for (other, orig) in cleaned.x_tuples().zip(db.x_tuples()) {
            if std::ptr::eq(other, info) {
                continue;
            }
            prop_assert_eq!(other.members.len(), orig.members.len());
        }
    }

    /// Round-tripping through `from_entries` preserves the database.
    #[test]
    fn from_entries_round_trip(db in db()) {
        let entries: Vec<(TupleId, usize, f64, f64)> =
            db.tuples().map(|t| (t.id, t.x_index, t.score, t.prob)).collect();
        let keys = db.x_tuples().map(|x| x.key.clone()).collect();
        let rebuilt = RankedDatabase::from_entries(entries, keys).unwrap();
        prop_assert_eq!(rebuilt, db);
    }
}
