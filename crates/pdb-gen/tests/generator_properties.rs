//! Property-based tests of the dataset generators.

use pdb_gen::cleaning_params::{generate as gen_params, CleaningParamsConfig, ScPdf};
use pdb_gen::mov::{self, MovConfig};
use pdb_gen::synthetic::{self, SyntheticConfig, UncertaintyPdf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The synthetic generator always produces a valid database of the
    /// requested shape, with per-x-tuple mass 1 and values inside the
    /// uncertainty interval around the domain.
    #[test]
    fn synthetic_generator_is_well_formed(
        m in 1usize..60,
        bars in 2usize..15,
        sigma in 5.0f64..300.0,
        uniform in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let config = SyntheticConfig {
            num_x_tuples: m,
            bars_per_x_tuple: bars,
            pdf: if uniform { UncertaintyPdf::Uniform } else { UncertaintyPdf::Gaussian { sigma } },
            seed,
            ..SyntheticConfig::paper_default()
        };
        let db = synthetic::generate(&config).unwrap();
        prop_assert_eq!(db.num_x_tuples(), m);
        prop_assert_eq!(db.num_tuples(), m * bars);
        for xt in db.x_tuples() {
            prop_assert_eq!(xt.len(), bars);
            prop_assert!((xt.total_mass() - 1.0).abs() < 1e-6);
            for t in xt {
                prop_assert!(t.prob >= 0.0 && t.prob <= 1.0 + 1e-9);
                prop_assert!(t.payload >= config.domain.0 - config.interval_len.1);
                prop_assert!(t.payload <= config.domain.1 + config.interval_len.1);
            }
        }
        // Ranking the generated database always succeeds.
        let ranked = synthetic::generate_ranked(&config).unwrap();
        prop_assert_eq!(ranked.len(), m * bars);
    }

    /// The MOV generator produces normalised attributes, full per-x-tuple
    /// mass, and 1..=max alternatives.
    #[test]
    fn mov_generator_is_well_formed(m in 1usize..200, max_alts in 1usize..4, seed in any::<u64>()) {
        let config = MovConfig { num_x_tuples: m, max_alternatives: max_alts, seed };
        let db = mov::generate(&config).unwrap();
        prop_assert_eq!(db.num_x_tuples(), m);
        for xt in db.x_tuples() {
            prop_assert!(!xt.is_empty() && xt.len() <= max_alts.max(1));
            prop_assert!((xt.total_mass() - 1.0).abs() < 1e-9);
            for t in xt {
                prop_assert!((0.0..=1.0).contains(&t.payload.date));
                prop_assert!((0.0..=1.0).contains(&t.payload.rating));
            }
        }
    }

    /// Cleaning parameters respect their configured ranges for every
    /// sc-pdf variant.
    #[test]
    fn cleaning_parameters_stay_in_range(
        m in 1usize..300,
        lo in 0.0f64..0.9,
        sigma in 0.05f64..0.5,
        use_normal in any::<bool>(),
        cost_hi in 1u64..20,
        seed in any::<u64>(),
    ) {
        let sc_pdf = if use_normal {
            ScPdf::Normal { mean: 0.5, sigma }
        } else {
            ScPdf::Uniform { lo, hi: 1.0 }
        };
        let config = CleaningParamsConfig { cost_range: (1, cost_hi), sc_pdf, seed };
        let params = gen_params(m, &config);
        prop_assert_eq!(params.costs.len(), m);
        prop_assert_eq!(params.sc_probs.len(), m);
        for &c in &params.costs {
            prop_assert!(c >= 1 && c <= cost_hi);
        }
        for &p in &params.sc_probs {
            prop_assert!((0.0..=1.0).contains(&p));
            if !use_normal {
                prop_assert!(p + 1e-12 >= lo);
            }
        }
    }
}
