//! The MOV dataset stand-in.
//!
//! The paper evaluates on "a real-world probabilistic dataset \[4\], which
//! stores movie-viewer ratings from Netflix and synthetic uncertainty of
//! the actual ratings" (the Trio project's example data).  That download is
//! no longer available and is not redistributable, so this module
//! synthesises a dataset with the same *published statistics*, which is all
//! the evaluation depends on:
//!
//! * 4 999 x-tuples, each keyed by `(movie-id, viewer-id)`;
//! * on average 2 tuples (alternative ratings) per x-tuple;
//! * attributes `date` (2000-01-01 … 2005-12-31) and `rating` (1 … 5), both
//!   normalised to `[0, 1]`;
//! * `confidence` is the existential probability of an alternative;
//! * the ranking score of a tuple is `date + rating` (both normalised), so
//!   the top-k query finds recent, highly rated entries.
//!
//! See the "note on the MOV dataset" in the workspace README.md for why
//! this substitution preserves the paper's qualitative findings (MOV is
//! less ambiguous than the synthetic data because its x-tuples have far
//! fewer alternatives).

use pdb_core::{Database, DatabaseBuilder, RankedDatabase, Ranking, Result};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One alternative rating of a (movie, viewer) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovRating {
    /// Movie identifier.
    pub movie_id: u32,
    /// Viewer identifier.
    pub viewer_id: u32,
    /// Rating date, normalised to `[0, 1]` over 2000-01-01 … 2005-12-31.
    pub date: f64,
    /// Star rating, normalised to `[0, 1]` (1 star → 0.0, 5 stars → 1.0).
    pub rating: f64,
}

impl MovRating {
    /// The ranking score the paper uses: `date + rating` (both normalised).
    pub fn score(&self) -> f64 {
        self.date + self.rating
    }
}

/// Ranking function for MOV payloads (`date + rating`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MovRanking;

impl Ranking<MovRating> for MovRanking {
    fn score(&self, payload: &MovRating) -> f64 {
        payload.score()
    }
}

/// Configuration of the MOV stand-in generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovConfig {
    /// Number of (movie, viewer) x-tuples; the real dataset has 4 999.
    pub num_x_tuples: usize,
    /// Maximum number of alternative ratings per x-tuple (alternatives are
    /// drawn from 1..=max so that the mean matches the published "2 tuples
    /// per x-tuple on average").
    pub max_alternatives: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MovConfig {
    fn default() -> Self {
        Self { num_x_tuples: 4_999, max_alternatives: 3, seed: 0x_4D0F }
    }
}

impl MovConfig {
    /// The configuration matching the paper's published statistics.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generate the logical MOV database.
pub fn generate(config: &MovConfig) -> Result<Database<MovRating>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = DatabaseBuilder::new();
    for i in 0..config.num_x_tuples {
        let movie_id = rng.gen_range(0..5_000u32);
        let viewer_id = i as u32;
        // 1..=max alternatives, weighted so the mean is ~2 when max = 3
        // (probabilities 0.25 / 0.5 / 0.25 as in a binomial-like spread).
        let alternatives = match config.max_alternatives {
            1 => 1,
            2 => rng.gen_range(1..=2),
            _ => {
                let u: f64 = rng.gen();
                if u < 0.25 {
                    1
                } else if u < 0.75 {
                    2
                } else {
                    3
                }
            }
        };
        // Confidence values: random positive weights normalised to sum to 1
        // (every (movie, viewer) pair has exactly one true rating).
        let mut weights: Vec<f64> = (0..alternatives).map(|_| rng.gen_range(0.1..1.0)).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        // The alternatives represent uncertainty about one event, so their
        // dates are close together and the ratings differ.
        let base_date: f64 = rng.gen();
        let mut xb = builder.x_tuple(format!("m{movie_id}/v{viewer_id}"));
        for &confidence in &weights {
            let date = (base_date + rng.gen_range(-0.02..0.02)).clamp(0.0, 1.0);
            let stars = rng.gen_range(1..=5u8);
            let rating =
                MovRating { movie_id, viewer_id, date, rating: f64::from(stars - 1) / 4.0 };
            xb = xb.tuple(rating, confidence);
        }
    }
    builder.build()
}

/// Generate the ranked (query-ready) form of the MOV stand-in, ranked by
/// `date + rating`.
pub fn generate_ranked(config: &MovConfig) -> Result<RankedDatabase> {
    generate(config)?.try_rank_by(&MovRanking)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_published_statistics() {
        let c = MovConfig::paper_default();
        assert_eq!(c.num_x_tuples, 4_999);
        let db = generate(&MovConfig { num_x_tuples: 2_000, ..c }).unwrap();
        assert_eq!(db.num_x_tuples(), 2_000);
        let avg = db.avg_alternatives();
        assert!((avg - 2.0).abs() < 0.1, "average alternatives {avg} should be ~2");
    }

    #[test]
    fn confidences_sum_to_one_per_x_tuple() {
        let db = generate(&MovConfig { num_x_tuples: 300, ..MovConfig::default() }).unwrap();
        for xt in db.x_tuples() {
            assert!((xt.total_mass() - 1.0).abs() < 1e-9);
            assert!(!xt.is_empty() && xt.len() <= 3);
        }
    }

    #[test]
    fn attributes_are_normalised() {
        let db = generate(&MovConfig { num_x_tuples: 200, ..MovConfig::default() }).unwrap();
        for t in db.tuples() {
            assert!((0.0..=1.0).contains(&t.payload.date));
            assert!((0.0..=1.0).contains(&t.payload.rating));
            assert!((0.0..=2.0).contains(&t.payload.score()));
        }
    }

    #[test]
    fn ranking_is_by_date_plus_rating() {
        let r = MovRating { movie_id: 0, viewer_id: 0, date: 0.5, rating: 0.75 };
        assert_eq!(MovRanking.score(&r), 1.25);
        let db = generate_ranked(&MovConfig { num_x_tuples: 100, ..MovConfig::default() }).unwrap();
        for w in db.as_slice().windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let c = MovConfig { num_x_tuples: 50, ..MovConfig::default() };
        assert_eq!(generate(&c).unwrap(), generate(&c).unwrap());
        assert_ne!(generate(&c.clone().with_seed(1)).unwrap(), generate(&c).unwrap());
    }

    #[test]
    fn single_alternative_configuration_is_certain() {
        let c = MovConfig { num_x_tuples: 20, max_alternatives: 1, ..MovConfig::default() };
        let db = generate(&c).unwrap();
        for xt in db.x_tuples() {
            assert!(xt.is_certain());
        }
    }
}
