//! Synthetic dataset generator (Section VI of the paper).
//!
//! Following the paper's setup (which in turn follows reference \[16\]):
//!
//! * every x-tuple describes one entity with a 1-D attribute `y` drawn from
//!   the domain `[0, 10 000]`;
//! * `y` carries an *uncertainty interval* `y.L` whose length is uniform in
//!   `[60, 100]` and is centred on the (uniformly drawn) mean `μ`;
//! * the *uncertainty pdf* `y.U` over that interval is either a Gaussian
//!   `N(μ, σ²)` (default `σ = 100`) or a uniform distribution;
//! * the pdf is discretised into a fixed number of equal-width histogram
//!   bars (default 10): each bar becomes one tuple whose value is the bar's
//!   midpoint and whose existential probability is the bar's (normalised)
//!   probability mass.
//!
//! The default configuration therefore yields 5 000 x-tuples × 10 tuples =
//! 50 000 tuples, the "default synthetic dataset" used throughout the
//! evaluation.

use crate::dist::normal_cdf;
use pdb_core::{Database, DatabaseBuilder, RankedDatabase, Result, ScoreRanking};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The uncertainty pdf `y.U` of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UncertaintyPdf {
    /// Gaussian with the given standard deviation, centred on the entity's
    /// mean value.  The paper's `GX` datasets use `σ = X`.
    Gaussian {
        /// Standard deviation of the Gaussian.
        sigma: f64,
    },
    /// Uniform over the uncertainty interval.
    Uniform,
}

impl UncertaintyPdf {
    /// Display label matching the paper's figures (`G100`, `Uniform`, …).
    pub fn label(&self) -> String {
        match self {
            UncertaintyPdf::Gaussian { sigma } => format!("G{}", sigma.round() as i64),
            UncertaintyPdf::Uniform => "Uniform".to_string(),
        }
    }
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of x-tuples (entities); the paper's default is 5 000.
    pub num_x_tuples: usize,
    /// Number of histogram bars per x-tuple, i.e. tuples per x-tuple; the
    /// paper's default is 10.
    pub bars_per_x_tuple: usize,
    /// Attribute domain; the paper uses `[0, 10 000]`.
    pub domain: (f64, f64),
    /// Range of the uncertainty-interval length; the paper uses `[60, 100]`.
    pub interval_len: (f64, f64),
    /// The uncertainty pdf; the paper's default is a Gaussian with σ = 100.
    pub pdf: UncertaintyPdf,
    /// RNG seed, so every experiment is reproducible.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_x_tuples: 5_000,
            bars_per_x_tuple: 10,
            domain: (0.0, 10_000.0),
            interval_len: (60.0, 100.0),
            pdf: UncertaintyPdf::Gaussian { sigma: 100.0 },
            seed: 0x5EED,
        }
    }
}

impl SyntheticConfig {
    /// The paper's default dataset (5 000 x-tuples, 50 000 tuples, G100).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A configuration scaled to roughly `num_tuples` total tuples, keeping
    /// 10 bars per x-tuple (used for the database-size sweeps of
    /// Figures 4(d)/4(e)).
    pub fn with_total_tuples(num_tuples: usize) -> Self {
        let bars = 10;
        Self { num_x_tuples: (num_tuples / bars).max(1), bars_per_x_tuple: bars, ..Self::default() }
    }

    /// Override the uncertainty pdf (Figure 4(b)).
    pub fn with_pdf(mut self, pdf: UncertaintyPdf) -> Self {
        self.pdf = pdf;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of tuples the configuration will produce.
    pub fn num_tuples(&self) -> usize {
        self.num_x_tuples * self.bars_per_x_tuple
    }
}

/// Generate the logical database described by the configuration.
pub fn generate(config: &SyntheticConfig) -> Result<Database<f64>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = DatabaseBuilder::new();
    for entity in 0..config.num_x_tuples {
        let mu = rng.gen_range(config.domain.0..config.domain.1);
        let len = rng.gen_range(config.interval_len.0..config.interval_len.1);
        let lo = mu - len / 2.0;
        let hi = mu + len / 2.0;
        let bars = histogram_bars(&config.pdf, mu, lo, hi, config.bars_per_x_tuple);
        let mut xb = builder.x_tuple(format!("E{entity}"));
        for (value, prob) in bars {
            xb = xb.tuple(value, prob);
        }
    }
    builder.build()
}

/// Generate the ranked (query-ready) form of the synthetic dataset; ranking
/// is by attribute value, higher values ranking higher.
pub fn generate_ranked(config: &SyntheticConfig) -> Result<RankedDatabase> {
    generate(config)?.try_rank_by(&ScoreRanking)
}

/// Discretise an uncertainty pdf over `[lo, hi]` into `bars` equal-width
/// histogram bars, returning `(midpoint, probability)` pairs whose
/// probabilities sum to 1.
fn histogram_bars(pdf: &UncertaintyPdf, mu: f64, lo: f64, hi: f64, bars: usize) -> Vec<(f64, f64)> {
    debug_assert!(bars > 0 && hi > lo);
    let width = (hi - lo) / bars as f64;
    let mut out = Vec::with_capacity(bars);
    match pdf {
        UncertaintyPdf::Uniform => {
            let p = 1.0 / bars as f64;
            for b in 0..bars {
                let mid = lo + (b as f64 + 0.5) * width;
                out.push((mid, p));
            }
        }
        UncertaintyPdf::Gaussian { sigma } => {
            // Mass of each bar under N(mu, sigma²), normalised to the
            // interval (the paper truncates the pdf to the uncertainty
            // interval).
            let total = normal_cdf(hi, mu, *sigma) - normal_cdf(lo, mu, *sigma);
            let mut masses = Vec::with_capacity(bars);
            for b in 0..bars {
                let a = lo + b as f64 * width;
                let z = a + width;
                masses.push((normal_cdf(z, mu, *sigma) - normal_cdf(a, mu, *sigma)).max(0.0));
            }
            let norm: f64 = if total > 0.0 { masses.iter().sum() } else { 0.0 };
            for (b, mass) in masses.iter().enumerate() {
                let mid = lo + (b as f64 + 0.5) * width;
                let p = if norm > 0.0 { mass / norm } else { 1.0 / bars as f64 };
                out.push((mid, p));
            }
        }
    }
    // Guard against rounding pushing the sum marginally above 1.
    let sum: f64 = out.iter().map(|(_, p)| p).sum();
    if sum > 1.0 {
        for (_, p) in &mut out {
            *p /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let c = SyntheticConfig::paper_default();
        assert_eq!(c.num_x_tuples, 5_000);
        assert_eq!(c.bars_per_x_tuple, 10);
        assert_eq!(c.num_tuples(), 50_000);
        assert_eq!(c.pdf, UncertaintyPdf::Gaussian { sigma: 100.0 });
    }

    #[test]
    fn generates_the_requested_shape() {
        let c = SyntheticConfig { num_x_tuples: 50, ..SyntheticConfig::default() };
        let db = generate(&c).unwrap();
        assert_eq!(db.num_x_tuples(), 50);
        assert_eq!(db.num_tuples(), 500);
        for xt in db.x_tuples() {
            assert_eq!(xt.len(), 10);
            assert!((xt.total_mass() - 1.0).abs() < 1e-9);
            for t in xt {
                assert!(t.payload >= -60.0 && t.payload <= 10_060.0);
                assert!(t.prob >= 0.0 && t.prob <= 1.0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let c = SyntheticConfig { num_x_tuples: 20, ..SyntheticConfig::default() };
        let a = generate(&c).unwrap();
        let b = generate(&c).unwrap();
        assert_eq!(a, b);
        let c2 = c.clone().with_seed(999);
        assert_ne!(generate(&c2).unwrap(), a);
    }

    #[test]
    fn smaller_variance_concentrates_probability() {
        // With σ = 10 and an interval ~80 wide, the central bars carry most
        // of the mass; with σ = 100 the distribution is nearly flat.
        let narrow = SyntheticConfig {
            num_x_tuples: 30,
            pdf: UncertaintyPdf::Gaussian { sigma: 10.0 },
            ..SyntheticConfig::default()
        };
        let wide = SyntheticConfig {
            num_x_tuples: 30,
            pdf: UncertaintyPdf::Gaussian { sigma: 100.0 },
            ..SyntheticConfig::default()
        };
        let max_prob = |db: &Database<f64>| {
            db.x_tuples().iter().map(|x| x.iter().map(|t| t.prob).fold(0.0, f64::max)).sum::<f64>()
                / db.num_x_tuples() as f64
        };
        let narrow_max = max_prob(&generate(&narrow).unwrap());
        let wide_max = max_prob(&generate(&wide).unwrap());
        assert!(
            narrow_max > wide_max + 0.1,
            "narrow {narrow_max} should concentrate more than wide {wide_max}"
        );
        assert!(wide_max < 0.2, "sigma=100 over an ~80-wide interval is nearly uniform");
    }

    #[test]
    fn uniform_pdf_gives_equal_bars() {
        let c = SyntheticConfig {
            num_x_tuples: 5,
            pdf: UncertaintyPdf::Uniform,
            ..SyntheticConfig::default()
        };
        let db = generate(&c).unwrap();
        for xt in db.x_tuples() {
            for t in xt {
                assert!((t.prob - 0.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn with_total_tuples_scales_the_x_tuple_count() {
        let c = SyntheticConfig::with_total_tuples(1_000);
        assert_eq!(c.num_x_tuples, 100);
        assert_eq!(c.num_tuples(), 1_000);
        let tiny = SyntheticConfig::with_total_tuples(3);
        assert_eq!(tiny.num_x_tuples, 1);
    }

    #[test]
    fn ranked_form_is_sorted() {
        let c = SyntheticConfig { num_x_tuples: 40, ..SyntheticConfig::default() };
        let db = generate_ranked(&c).unwrap();
        assert_eq!(db.len(), 400);
        for w in db.as_slice().windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn pdf_labels_match_paper_notation() {
        assert_eq!(UncertaintyPdf::Gaussian { sigma: 30.0 }.label(), "G30");
        assert_eq!(UncertaintyPdf::Uniform.label(), "Uniform");
    }
}
