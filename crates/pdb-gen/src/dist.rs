//! Small numeric distribution helpers (normal CDF, normal sampling).
//!
//! Implemented in-house to keep the dependency set to the crates allowed by
//! the reproduction brief (`rand` provides uniform variates only; the
//! Gaussian machinery below replaces `rand_distr`).

use rand::Rng;

/// The error function `erf(x)`, via the Abramowitz & Stegun 7.1.26
/// rational approximation (absolute error below `1.5e-7`, ample for
/// building histogram bars).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// CDF of the normal distribution `N(mean, sigma²)`.
pub fn normal_cdf(x: f64, mean: f64, sigma: f64) -> f64 {
    debug_assert!(sigma > 0.0);
    0.5 * (1.0 + erf((x - mean) / (sigma * std::f64::consts::SQRT_2)))
}

/// Draw one sample from `N(mean, sigma²)` using the Box–Muller transform.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sigma * z
}

/// Draw one sample from `N(mean, sigma²)` truncated (by rejection) to
/// `[lo, hi]`.  Falls back to clamping after a bounded number of rejections
/// so adversarial parameters cannot loop forever.
pub fn sample_normal_clipped<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    debug_assert!(lo <= hi);
    for _ in 0..64 {
        let x = sample_normal(rng, mean, sigma);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    sample_normal(rng, mean, sigma).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn erf_matches_known_values() {
        // The A&S 7.1.26 approximation is accurate to ~1.5e-7, not exact.
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!(erf(6.0) > 0.999_999);
    }

    #[test]
    fn normal_cdf_is_monotone_and_symmetric() {
        assert!((normal_cdf(0.0, 0.0, 1.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96, 0.0, 1.0) - 0.975).abs() < 1e-3);
        let mut prev = 0.0;
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            let c = normal_cdf(x, 0.0, 1.0);
            assert!(c >= prev);
            prev = c;
        }
        // Scaling: the CDF of N(5, 2²) at 7 equals N(0,1) at 1.
        assert!((normal_cdf(7.0, 5.0, 2.0) - normal_cdf(1.0, 0.0, 1.0)).abs() < 1e-9);
    }

    #[test]
    fn sampled_moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "variance {var}");
    }

    #[test]
    fn clipped_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = sample_normal_clipped(&mut rng, 0.5, 0.3, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
        // Extreme parameters still terminate and stay in range.
        let x = sample_normal_clipped(&mut rng, 100.0, 0.01, 0.0, 1.0);
        assert!((0.0..=1.0).contains(&x));
    }
}
