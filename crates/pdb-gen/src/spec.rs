//! Materializing durable dataset specs.
//!
//! [`DatasetSpec`] itself lives in `pdb-store` (it is a write-ahead-log
//! and wire-protocol payload, below the generators in the dependency
//! order); this module is its builder — the one place that knows how to
//! turn every spec variant into a ranked database.  All variants are
//! deterministic, so the same spec always materializes the identical
//! database: that is what lets a `create_session` log record stand in
//! for the database it created, and what lets clients mirror a served
//! session in process.

use crate::mov::{self, MovConfig};
use crate::synthetic::{self, SyntheticConfig};
use pdb_core::{examples, RankedDatabase, Result, ScoreRanking};
use pdb_store::Snapshot;
use std::path::Path;

pub use pdb_store::DatasetSpec;

/// Materialize the database a spec describes.
pub fn build_dataset(spec: &DatasetSpec) -> Result<RankedDatabase> {
    match spec {
        DatasetSpec::Synthetic { tuples } => {
            synthetic::generate_ranked(&SyntheticConfig::with_total_tuples(*tuples))
        }
        DatasetSpec::Mov { x_tuples } => mov::generate_ranked(&MovConfig {
            num_x_tuples: *x_tuples,
            ..MovConfig::paper_default()
        }),
        DatasetSpec::Udb1 => Ok(examples::udb1().rank_by(&ScoreRanking)),
        DatasetSpec::Inline { x_tuples } => RankedDatabase::from_scored_x_tuples(x_tuples),
        DatasetSpec::Snapshot { path } => Snapshot::read(Path::new(path)).map_err(Into::into),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_builds_deterministically() {
        for spec in [
            DatasetSpec::Udb1,
            DatasetSpec::Synthetic { tuples: 200 },
            DatasetSpec::Mov { x_tuples: 20 },
            DatasetSpec::Inline { x_tuples: vec![vec![(1.0, 0.5), (2.0, 0.5)], vec![(3.0, 1.0)]] },
        ] {
            let a = build_dataset(&spec).unwrap();
            let b = build_dataset(&spec).unwrap();
            assert!(!a.is_empty());
            assert_eq!(a.len(), b.len(), "{spec:?}");
            for pos in 0..a.len() {
                assert_eq!(a.tuple(pos).score.to_bits(), b.tuple(pos).score.to_bits());
                assert_eq!(a.tuple(pos).prob.to_bits(), b.tuple(pos).prob.to_bits());
            }
        }
        assert_eq!(build_dataset(&DatasetSpec::Udb1).unwrap().len(), 7);
    }

    #[test]
    fn snapshot_variant_loads_the_file_bit_exactly() {
        let db = build_dataset(&DatasetSpec::Synthetic { tuples: 100 }).unwrap();
        let dir = std::env::temp_dir().join("pdb-gen-spec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spec.pdbs");
        Snapshot::write(&db, &path).unwrap();
        let spec = DatasetSpec::Snapshot { path: path.display().to_string() };
        let back = build_dataset(&spec).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();

        // A missing snapshot is a clean engine error, not a panic.
        assert!(build_dataset(&spec).is_err());
    }
}
