//! Generators for the cleaning-experiment parameters: per-x-tuple cleaning
//! costs and sc-probabilities.
//!
//! The paper's setup (Section VI, "Cleaning Problem"): every x-tuple gets a
//! cleaning cost drawn uniformly from `{1, …, 10}` and an sc-probability
//! drawn from an *sc-pdf* — uniform over `[0, 1]` by default, with clipped
//! normal variants (Figure 6(b)) and shifted uniform variants `[x, 1]`
//! (Figure 6(c)) also evaluated.

use crate::dist::sample_normal_clipped;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distribution the per-x-tuple sc-probabilities are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScPdf {
    /// Uniform over `[lo, hi]` (the paper's default is `[0, 1]`; Figure 6(c)
    /// uses `[x, 1]`).
    Uniform {
        /// Lower bound of the sc-probability.
        lo: f64,
        /// Upper bound of the sc-probability.
        hi: f64,
    },
    /// Normal with the given mean and standard deviation, clipped to
    /// `[0, 1]` (Figure 6(b) uses mean 0.5 and σ ∈ {0.13, 0.167, 0.3}).
    Normal {
        /// Mean of the sc-probability distribution.
        mean: f64,
        /// Standard deviation before clipping.
        sigma: f64,
    },
}

impl ScPdf {
    /// The paper's default sc-pdf: uniform over `[0, 1]`.
    pub fn paper_default() -> Self {
        ScPdf::Uniform { lo: 0.0, hi: 1.0 }
    }

    /// Display label used in the harness output (`uniform`, `normal(0.3)`,
    /// `uniform[0.7,1]`, …).
    pub fn label(&self) -> String {
        match self {
            // pdb-analyze: allow(float-eq): labels the canonical [0,1] config, which is constructed from these exact literals
            ScPdf::Uniform { lo, hi } if *lo == 0.0 && *hi == 1.0 => "uniform".to_string(),
            ScPdf::Uniform { lo, hi } => format!("uniform[{lo},{hi}]"),
            ScPdf::Normal { sigma, .. } => format!("normal({sigma})"),
        }
    }

    /// Mean of the distribution (before clipping, for the normal variants).
    pub fn mean(&self) -> f64 {
        match self {
            ScPdf::Uniform { lo, hi } => (lo + hi) / 2.0,
            ScPdf::Normal { mean, .. } => *mean,
        }
    }

    /// Draw one sc-probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            ScPdf::Uniform { lo, hi } => {
                if (hi - lo).abs() < f64::EPSILON {
                    *lo
                } else {
                    rng.gen_range(*lo..*hi)
                }
            }
            ScPdf::Normal { mean, sigma } => sample_normal_clipped(rng, *mean, *sigma, 0.0, 1.0),
        }
    }
}

/// Configuration of the cleaning-parameter generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CleaningParamsConfig {
    /// Cleaning costs are drawn uniformly from `cost_range.0..=cost_range.1`
    /// (the paper uses `[1, 10]`).
    pub cost_range: (u64, u64),
    /// The sc-probability distribution.
    pub sc_pdf: ScPdf,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CleaningParamsConfig {
    fn default() -> Self {
        Self { cost_range: (1, 10), sc_pdf: ScPdf::paper_default(), seed: 0xC1EA }
    }
}

/// Per-x-tuple cleaning costs and sc-probabilities, as raw vectors (the
/// `pdb-clean` crate assembles them into a `CleaningSetup`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleaningParams {
    /// Per-x-tuple cleaning cost.
    pub costs: Vec<u64>,
    /// Per-x-tuple sc-probability.
    pub sc_probs: Vec<f64>,
}

/// Generate cleaning costs and sc-probabilities for `num_x_tuples` entities.
pub fn generate(num_x_tuples: usize, config: &CleaningParamsConfig) -> CleaningParams {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (lo, hi) = config.cost_range;
    let costs = (0..num_x_tuples).map(|_| rng.gen_range(lo..=hi)).collect();
    let sc_probs = (0..num_x_tuples).map(|_| config.sc_pdf.sample(&mut rng)).collect();
    CleaningParams { costs, sc_probs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let c = CleaningParamsConfig::default();
        assert_eq!(c.cost_range, (1, 10));
        assert_eq!(c.sc_pdf, ScPdf::Uniform { lo: 0.0, hi: 1.0 });
    }

    #[test]
    fn generated_values_stay_in_range() {
        let params = generate(1_000, &CleaningParamsConfig::default());
        assert_eq!(params.costs.len(), 1_000);
        assert_eq!(params.sc_probs.len(), 1_000);
        assert!(params.costs.iter().all(|&c| (1..=10).contains(&c)));
        assert!(params.sc_probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn normal_sc_pdf_clusters_around_the_mean() {
        let config = CleaningParamsConfig {
            sc_pdf: ScPdf::Normal { mean: 0.5, sigma: 0.13 },
            ..CleaningParamsConfig::default()
        };
        let params = generate(5_000, &config);
        let mean: f64 = params.sc_probs.iter().sum::<f64>() / params.sc_probs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(params.sc_probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn shifted_uniform_raises_the_average() {
        let config = CleaningParamsConfig {
            sc_pdf: ScPdf::Uniform { lo: 0.8, hi: 1.0 },
            ..CleaningParamsConfig::default()
        };
        let params = generate(2_000, &config);
        let mean: f64 = params.sc_probs.iter().sum::<f64>() / params.sc_probs.len() as f64;
        assert!((mean - 0.9).abs() < 0.02);
        // A degenerate range samples the constant.
        let one = ScPdf::Uniform { lo: 1.0, hi: 1.0 };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(one.sample(&mut rng), 1.0);
    }

    #[test]
    fn labels_and_means() {
        assert_eq!(ScPdf::paper_default().label(), "uniform");
        assert_eq!(ScPdf::Uniform { lo: 0.7, hi: 1.0 }.label(), "uniform[0.7,1]");
        assert_eq!(ScPdf::Normal { mean: 0.5, sigma: 0.3 }.label(), "normal(0.3)");
        assert_eq!(ScPdf::Uniform { lo: 0.5, hi: 1.0 }.mean(), 0.75);
        assert_eq!(ScPdf::Normal { mean: 0.5, sigma: 0.3 }.mean(), 0.5);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(100, &CleaningParamsConfig::default());
        let b = generate(100, &CleaningParamsConfig::default());
        assert_eq!(a, b);
        let c = generate(100, &CleaningParamsConfig { seed: 7, ..CleaningParamsConfig::default() });
        assert_ne!(a, c);
    }
}
