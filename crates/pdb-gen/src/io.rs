//! Saving and loading generated datasets.
//!
//! Experiments that sweep a parameter while holding the dataset fixed (most
//! of the paper's figures) benefit from generating once and reloading; this
//! module provides JSON persistence for ranked databases and generator
//! configurations.

use pdb_core::{DbError, RankedDatabase, Result};
use std::fs;
use std::path::Path;

/// Serialise a ranked database to a JSON file.
pub fn save_ranked(db: &RankedDatabase, path: &Path) -> Result<()> {
    let json = serde_json::to_string(db)
        .map_err(|e| DbError::invalid_parameter(format!("serialisation failed: {e}")))?;
    fs::write(path, json)
        .map_err(|e| DbError::invalid_parameter(format!("writing {} failed: {e}", path.display())))
}

/// Load a ranked database from a JSON file produced by [`save_ranked`].
pub fn load_ranked(path: &Path) -> Result<RankedDatabase> {
    let json = fs::read_to_string(path).map_err(|e| {
        DbError::invalid_parameter(format!("reading {} failed: {e}", path.display()))
    })?;
    serde_json::from_str(&json)
        .map_err(|e| DbError::invalid_parameter(format!("parsing {} failed: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_ranked, SyntheticConfig};

    #[test]
    fn round_trips_through_json() {
        let db =
            generate_ranked(&SyntheticConfig { num_x_tuples: 10, ..SyntheticConfig::default() })
                .unwrap();
        let dir = std::env::temp_dir().join("pdb-gen-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        save_ranked(&db, &path).unwrap();
        let back = load_ranked(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_errors_are_reported() {
        let missing = Path::new("/definitely/not/a/real/path.json");
        assert!(load_ranked(missing).is_err());
        assert!(save_ranked(
            &generate_ranked(&SyntheticConfig { num_x_tuples: 2, ..SyntheticConfig::default() })
                .unwrap(),
            missing
        )
        .is_err());
    }
}
