//! Saving and loading generated datasets.
//!
//! Experiments that sweep a parameter while holding the dataset fixed (most
//! of the paper's figures) benefit from generating once and reloading; this
//! module persists ranked databases in two formats:
//!
//! * **JSON** — human-readable, diff-able, the historical default;
//! * **binary snapshots** (`pdb-store`'s checksummed columnar format) —
//!   the fast path: a `.pdbs` file loads as a sequential read plus one
//!   index rebuild, with bit-exact `f64` fidelity, instead of a JSON
//!   parse.  The `snapshot_io` bench measures the difference against
//!   regenerating the dataset outright.
//!
//! [`save_ranked`] picks the format from the file extension (`.pdbs` →
//! binary, anything else → JSON); [`load_ranked`] sniffs the file's
//! magic bytes, so it reads either format regardless of the name.

use pdb_core::{DbError, RankedDatabase, Result};
use pdb_store::Snapshot;
use std::fs;
use std::path::Path;

/// Whether a path requests the binary snapshot format when writing.
fn wants_snapshot(path: &Path) -> bool {
    path.extension().is_some_and(|ext| ext.eq_ignore_ascii_case("pdbs"))
}

/// Serialise a ranked database to a file: binary snapshot for `.pdbs`
/// paths, JSON otherwise.
pub fn save_ranked(db: &RankedDatabase, path: &Path) -> Result<()> {
    if wants_snapshot(path) {
        return Snapshot::write(db, path).map_err(Into::into);
    }
    let json = serde_json::to_string(db)
        .map_err(|e| DbError::invalid_parameter(format!("serialisation failed: {e}")))?;
    fs::write(path, json)
        .map_err(|e| DbError::invalid_parameter(format!("writing {} failed: {e}", path.display())))
}

/// Load a ranked database saved by [`save_ranked`], auto-detecting the
/// format from the file's leading bytes.
pub fn load_ranked(path: &Path) -> Result<RankedDatabase> {
    let bytes = fs::read(path).map_err(|e| {
        DbError::invalid_parameter(format!("reading {} failed: {e}", path.display()))
    })?;
    if Snapshot::is_snapshot(&bytes) {
        return Snapshot::decode(&bytes, path).map_err(Into::into);
    }
    let json = std::str::from_utf8(&bytes).map_err(|e| {
        DbError::invalid_parameter(format!(
            "{} is neither a snapshot nor UTF-8 JSON: {e}",
            path.display()
        ))
    })?;
    serde_json::from_str(json)
        .map_err(|e| DbError::invalid_parameter(format!("parsing {} failed: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_ranked, SyntheticConfig};

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pdb-gen-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_through_json() {
        let db =
            generate_ranked(&SyntheticConfig { num_x_tuples: 10, ..SyntheticConfig::default() })
                .unwrap();
        let path = temp_dir().join("db.json");
        save_ranked(&db, &path).unwrap();
        assert_eq!(fs::read(&path).unwrap()[0], b'{', "JSON on non-.pdbs paths");
        let back = load_ranked(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trips_through_the_binary_fast_path() {
        let db =
            generate_ranked(&SyntheticConfig { num_x_tuples: 10, ..SyntheticConfig::default() })
                .unwrap();
        let path = temp_dir().join("db.pdbs");
        save_ranked(&db, &path).unwrap();
        assert_eq!(&fs::read(&path).unwrap()[..4], b"PDBS", "binary on .pdbs paths");
        let back = load_ranked(&path).unwrap();
        assert_eq!(db, back);
        for pos in 0..db.len() {
            assert_eq!(db.tuple(pos).prob.to_bits(), back.tuple(pos).prob.to_bits());
        }

        // The loader sniffs magic, not extensions: a snapshot under a
        // .json name still loads.
        let disguised = temp_dir().join("disguised.json");
        fs::copy(&path, &disguised).unwrap();
        assert_eq!(load_ranked(&disguised).unwrap(), db);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&disguised).ok();
    }

    #[test]
    fn load_errors_are_reported() {
        let missing = Path::new("/definitely/not/a/real/path.json");
        assert!(load_ranked(missing).is_err());
        assert!(save_ranked(
            &generate_ranked(&SyntheticConfig { num_x_tuples: 2, ..SyntheticConfig::default() })
                .unwrap(),
            missing
        )
        .is_err());
        // A corrupt snapshot is a clean error through the auto-detecting
        // loader too.
        let path = temp_dir().join("corrupt.pdbs");
        let db =
            generate_ranked(&SyntheticConfig { num_x_tuples: 4, ..SyntheticConfig::default() })
                .unwrap();
        save_ranked(&db, &path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(load_ranked(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
