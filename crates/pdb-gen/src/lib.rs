//! # pdb-gen — dataset generators for the ICDE'13 evaluation
//!
//! The paper's experiments run on two data families, both reproduced here:
//!
//! * [`synthetic`] — the synthetic x-tuple datasets (5 000 entities × 10
//!   histogram bars by default, Gaussian or uniform uncertainty pdfs);
//! * [`mov`] — a statistically matched stand-in for the Trio/Netflix MOV
//!   movie-rating dataset (4 999 x-tuples, ~2 alternatives each, ranked by
//!   normalised `date + rating`).
//!
//! [`cleaning_params`] generates the per-x-tuple cleaning costs and
//! sc-probabilities of the cleaning experiments, [`dist`] holds the small
//! amount of in-house numerics (normal CDF / sampling), [`io`] persists
//! generated datasets (JSON, with a binary-snapshot fast path), and
//! [`spec`] materializes durable [`spec::DatasetSpec`] descriptions into
//! databases.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cleaning_params;
pub mod dist;
pub mod io;
pub mod mov;
pub mod spec;
pub mod synthetic;

pub use cleaning_params::{CleaningParams, CleaningParamsConfig, ScPdf};
pub use mov::{MovConfig, MovRanking, MovRating};
pub use spec::{build_dataset, DatasetSpec};
pub use synthetic::{SyntheticConfig, UncertaintyPdf};

/// Convenience prelude bringing the most frequently used items into scope.
pub mod prelude {
    pub use crate::cleaning_params::{CleaningParams, CleaningParamsConfig, ScPdf};
    pub use crate::mov::{MovConfig, MovRanking, MovRating};
    pub use crate::spec::{build_dataset, DatasetSpec};
    pub use crate::synthetic::{SyntheticConfig, UncertaintyPdf};
}
