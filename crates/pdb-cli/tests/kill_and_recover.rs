//! Kill-and-recover: a store-backed `pdb serve` process is killed
//! (SIGKILL — no drain, no graceful shutdown) mid-session after several
//! applied probes plus a streaming insert and remove, restarted on the
//! same `--store-dir`, and must serve the recovered session with answers
//! and qualities matching an uninterrupted in-process mirror at 1e-12.
//!
//! This is the end-to-end proof of the durability chain: every
//! `apply_probe` / `apply_mutation` was fsync'd into the write-ahead log
//! before it was acknowledged, so none of the acknowledged mutations may
//! be lost, and recovery replays them through the delta engine onto the
//! journalled base dataset — including the re-allocation of tuple ids for
//! inserted x-tuples, which must come out byte-identical on replay.

use pdb_quality::{BatchQuality, TopKQuery, WeightedQuery, XTupleMutation};
use pdb_server::protocol::EvalMode;
use pdb_server::{Client, DatasetSpec};
use std::io::BufRead;
use std::process::{Child, Command, Stdio};

const TOL: f64 = 1e-12;

/// A served `pdb serve` child process, killed on drop so a failing test
/// never leaks a server.
struct ServerProcess {
    child: Child,
    addr: String,
}

impl ServerProcess {
    /// Spawn `pdb serve --store-dir <dir>` on an ephemeral port and wait
    /// for its readiness line.
    fn spawn(store_dir: &str) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pdb"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2",
                "--shards",
                "2",
                "--store-dir",
                store_dir,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn pdb serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = std::io::BufReader::new(stdout);
        let mut addr = None;
        let mut line = String::new();
        while addr.is_none() {
            line.clear();
            if reader.read_line(&mut line).expect("read server stdout") == 0 {
                panic!("server exited before announcing readiness");
            }
            if let Some(rest) = line.trim().strip_prefix("pdb-server listening on ") {
                addr = rest.split_whitespace().next().map(|a| a.to_string());
            }
        }
        // Keep draining stdout so the server never blocks on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        Self { child, addr: addr.expect("address parsed") }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        self.kill();
    }
}

fn assert_close(a: f64, b: f64, what: &str) {
    assert!((a - b).abs() <= TOL, "{what}: served {a} vs mirror {b}");
}

#[test]
fn killed_server_recovers_sessions_from_its_store() {
    let store_dir = std::env::temp_dir()
        .join("pdb-cli-kill-and-recover")
        .join(format!("run-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let store_dir_arg = store_dir.display().to_string();

    let spec = DatasetSpec::Synthetic { tuples: 400 };
    let queries = [
        WeightedQuery::new(TopKQuery::PTk { k: 5, threshold: 0.1 }),
        WeightedQuery::weighted(TopKQuery::UKRanks { k: 8 }, 0.5),
        WeightedQuery::weighted(TopKQuery::GlobalTopk { k: 12 }, 2.0),
    ];

    // ---- phase 1: scripted session against the first server ----------
    let mut first = ServerProcess::spawn(&store_dir_arg);
    let mut client = Client::connect(&first.addr).expect("connect to first server");
    let created = client.create_session(spec.clone(), 1, 0.8).expect("create_session");
    assert_eq!(created.tuples, 400);

    // The uninterrupted in-process mirror of the same session.
    let db = pdb_gen::build_dataset(&spec).expect("mirror dataset");
    let mut mirror = BatchQuality::from_owned(db, queries.to_vec()).expect("mirror batch");
    for wq in &queries {
        client.register_query(created.session, wq.query, wq.weight).expect("register_query");
    }

    // Apply four probes (≥ 3, as the acceptance criterion demands),
    // mirroring each on the in-process session.
    for probe in 0..4usize {
        let l = probe * 7; // spread over distinct x-tuples
        let keep_pos = mirror.database().x_tuple(l).members[0];
        let mutation = XTupleMutation::CollapseToAlternative { keep_pos };
        let served = client
            .apply_probe(created.session, l, mutation.clone(), EvalMode::Delta)
            .expect("apply_probe");
        let direct = mirror.apply_collapse_in_place(l, &mutation).expect("mirror probe");
        assert_close(served.update.aggregate, direct.aggregate, "live aggregate");
    }

    // Two streaming mutations ride the same WAL before the kill: a new
    // entity arrives, an existing one departs.  Both are acknowledged, so
    // both must survive — including the fresh tuple ids the insert
    // allocates, which replay re-derives rather than reads.
    let alternatives = vec![(875.5, 0.5), (431.25, 0.3)];
    let arrival =
        XTupleMutation::Insert { key: "arrival".into(), alternatives: alternatives.clone() };
    let appended_at = mirror.database().num_x_tuples();
    let served = client
        .insert_x_tuple(created.session, "arrival", alternatives, EvalMode::Delta)
        .expect("streaming insert");
    let direct = mirror.apply_collapse_in_place(appended_at, &arrival).expect("mirror insert");
    assert_close(served.update.aggregate, direct.aggregate, "insert aggregate");

    let served =
        client.remove_x_tuple(created.session, 3, EvalMode::Delta).expect("streaming remove");
    let direct = mirror.apply_collapse_in_place(3, &XTupleMutation::Remove).expect("mirror remove");
    assert_close(served.update.aggregate, direct.aggregate, "remove aggregate");

    // ---- phase 2: kill the process, no drain, mid-session ------------
    first.kill();
    drop(client);

    // ---- phase 3: restart on the same store and compare ---------------
    let second = ServerProcess::spawn(&store_dir_arg);
    let mut client = Client::connect(&second.addr).expect("connect to restarted server");

    let stats = client.stats().expect("stats");
    assert!(stats.durable, "restarted server reports a durable store");
    assert_eq!(stats.sessions_live, 1, "the killed session recovered");
    assert_eq!(stats.sessions[0].session, created.session);
    assert_eq!(stats.sessions[0].queries, 3);
    assert_eq!(stats.sessions[0].probes, 6, "all acknowledged mutations survived the kill");

    let answers = client.evaluate(created.session).expect("evaluate recovered session");
    assert_eq!(answers.answers, mirror.answers().expect("mirror answers"), "recovered answers");

    let report = client.quality(created.session).expect("quality of recovered session");
    assert_close(report.aggregate, mirror.aggregate_quality(), "recovered aggregate");
    let mirror_qualities = mirror.quality_vector();
    for (q, quality) in report.qualities.iter().enumerate() {
        assert_close(*quality, mirror_qualities[q], &format!("recovered quality {q}"));
    }

    // The recovered session keeps evolving: one more probe on both sides.
    let l = 2;
    let keep_pos = mirror.database().x_tuple(l).members[0];
    let mutation = XTupleMutation::CollapseToAlternative { keep_pos };
    let served = client
        .apply_probe(created.session, l, mutation.clone(), EvalMode::Delta)
        .expect("post-recovery probe");
    let direct = mirror.apply_collapse_in_place(l, &mutation).expect("mirror post-recovery probe");
    assert_close(served.update.aggregate, direct.aggregate, "post-recovery aggregate");

    // persist: the session checkpoints into the store on demand.
    let persisted = client.persist(created.session).expect("persist verb");
    assert!(persisted.snapshot.ends_with(".pdbs"), "{}", persisted.snapshot);
    assert_eq!(persisted.probes, 7);
    assert!(store_dir.join(&persisted.snapshot).exists(), "snapshot file written");

    client.shutdown().expect("graceful shutdown of the restarted server");
    std::fs::remove_dir_all(&store_dir).ok();
}
