//! Fleet kill-and-recover: a real `pdb fleet serve` process tree — one
//! router over three store-backed shard processes — serves six sessions
//! under concurrent client traffic while one shard is SIGKILLed
//! mid-stream.  The router must fail over (respawn the shard into its
//! store directory, WAL replay rehydrates its sessions) and **zero
//! acknowledged mutations may be lost**: after the traffic drains, every
//! session's answers and qualities must match an uninterrupted
//! in-process mirror at 1e-12.
//!
//! The mid-kill traffic is `Reweight` with absolute probabilities — the
//! idempotent mutation — because the router's failover retry is
//! at-least-once: a request the dying shard journalled but never
//! acknowledged may be applied twice (once by replay, once by the
//! retry), which for an absolute reweight is state-identical.

use pdb_quality::{BatchQuality, TopKQuery, WeightedQuery, XTupleMutation};
use pdb_server::protocol::EvalMode;
use pdb_server::{Client, DatasetSpec};
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const TOL: f64 = 1e-12;
const SHARDS: usize = 3;
const SESSIONS: usize = 6;
const ROUNDS: usize = 150;

/// A `pdb fleet serve` process tree: the router child plus the shard
/// pids it announced.  Killed on drop — shards explicitly, because
/// SIGKILLing the router would orphan them.
struct FleetProcess {
    child: Child,
    router_addr: String,
    shard_pids: Vec<u32>,
}

impl FleetProcess {
    fn spawn(store_dir: &str) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pdb"))
            .args([
                "fleet",
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--shards",
                &SHARDS.to_string(),
                // Every inbound router connection opens its own client
                // per shard, so each shard must have worker threads for
                // every concurrent router connection: six traffic
                // threads + the main client + slack.
                "--threads",
                "8",
                "--store-dir",
                store_dir,
                "--flush",
                "group-commit",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn pdb fleet serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = std::io::BufReader::new(stdout);
        let mut shard_pids = vec![0u32; SHARDS];
        let mut router_addr = None;
        let mut line = String::new();
        while router_addr.is_none() {
            line.clear();
            if reader.read_line(&mut line).expect("read fleet stdout") == 0 {
                panic!("fleet exited before announcing readiness");
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            // "pdb-fleet shard <i> pid <pid> listening on <addr>"
            if let ["pdb-fleet", "shard", index, "pid", pid, "listening", "on", _] = words[..] {
                let index: usize = index.parse().expect("shard index");
                shard_pids[index] = pid.parse().expect("shard pid");
            }
            // "pdb-fleet router listening on <addr> (<n> shards)"
            if let ["pdb-fleet", "router", "listening", "on", addr, ..] = words[..] {
                router_addr = Some(addr.to_string());
            }
        }
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        assert!(shard_pids.iter().all(|&p| p != 0), "every shard announced its pid");
        Self { child, router_addr: router_addr.expect("router address parsed"), shard_pids }
    }

    /// SIGKILL one announced shard pid — no drain, mid-traffic.
    fn sigkill_shard(&self, index: usize) {
        let status = Command::new("kill")
            .args(["-9", &self.shard_pids[index].to_string()])
            .status()
            .expect("run kill -9");
        assert!(status.success(), "kill -9 shard {index}");
    }
}

impl Drop for FleetProcess {
    fn drop(&mut self) {
        // Shards first (they are the router's children; killing the
        // router with SIGKILL would leak them), then the router itself.
        for pid in &self.shard_pids {
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn assert_close(a: f64, b: f64, what: &str) {
    assert!((a - b).abs() <= TOL, "{what}: served {a} vs mirror {b}");
}

/// The deterministic reweight program of one session's traffic thread:
/// `(x_tuple, mutation)` in program order.  Absolute probabilities, so
/// replaying any prefix twice is state-identical.
fn reweight_program(session: usize, members: &[usize]) -> Vec<(usize, XTupleMutation)> {
    let mut out = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let target = 3 + (round % 3); // x-tuples 3..5: disjoint from the collapsed ones
        let m = members[target];
        let probs: Vec<f64> =
            (0..m).map(|j| (0.2 + 0.05 * ((session + round + j) % 5) as f64) / m as f64).collect();
        out.push((target, XTupleMutation::Reweight { probs }));
    }
    out
}

/// Apply one mutation through the router, retrying through failover
/// windows: a `Server`-side error or a broken connection both mean "try
/// again" — the mutation is idempotent and the router respawns the dead
/// shard on the next forward.
fn apply_with_retry(
    client: &mut Client,
    addr: &str,
    session: u64,
    x_tuple: usize,
    mutation: &XTupleMutation,
) {
    for _ in 0..200 {
        match client.apply_probe(session, x_tuple, mutation.clone(), EvalMode::Delta) {
            Ok(_) => return,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
                if let Ok(fresh) = Client::connect(addr) {
                    *client = fresh;
                }
            }
        }
    }
    panic!("session {session}: reweight never acknowledged across 200 attempts");
}

#[test]
fn fleet_survives_a_sigkilled_shard_with_zero_lost_mutations() {
    let store_dir = std::env::temp_dir()
        .join("pdb-cli-fleet-kill-and-recover")
        .join(format!("run-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    std::fs::create_dir_all(&store_dir).unwrap();
    let store_dir_arg = store_dir.display().to_string();

    let fleet = FleetProcess::spawn(&store_dir_arg);
    let mut client = Client::connect(&fleet.router_addr).expect("connect to router");

    // ---- phase 1: six sessions spread over the ring ------------------
    let queries = [
        WeightedQuery::new(TopKQuery::PTk { k: 4, threshold: 0.1 }),
        WeightedQuery::weighted(TopKQuery::UKRanks { k: 6 }, 0.5),
    ];
    let mut mirrors = Vec::new();
    let mut sessions = Vec::new();
    for i in 0..SESSIONS {
        let spec = DatasetSpec::Synthetic { tuples: 120 + 40 * i };
        let created = client.create_session(spec.clone(), 1, 0.8).expect("create_session");
        sessions.push(created.session);
        let mut mirror =
            BatchQuality::from_owned(pdb_gen::build_dataset(&spec).unwrap(), queries.to_vec())
                .expect("mirror batch");
        for wq in &queries {
            client.register_query(created.session, wq.query, wq.weight).expect("register_query");
        }
        // Two collapse probes per session before the kill, asserted live.
        for l in [0usize, 1] {
            let keep_pos = mirror.database().x_tuple(l).members[0];
            let mutation = XTupleMutation::CollapseToAlternative { keep_pos };
            let served = client
                .apply_probe(created.session, l, mutation.clone(), EvalMode::Delta)
                .expect("pre-kill probe");
            let direct = mirror.apply_collapse_in_place(l, &mutation).expect("mirror probe");
            assert_close(served.update.aggregate, direct.aggregate, "pre-kill aggregate");
        }
        mirrors.push(mirror);
    }

    // The ring the router uses is deterministic, so the test knows which
    // shard owns which session without asking.
    let ring = pdb_fleet::HashRing::with_default_replicas(SHARDS);
    let victim = ring.shard_for(sessions[0]).expect("non-empty ring");
    assert!(
        sessions.iter().any(|&s| ring.shard_for(s) != Some(victim)),
        "at least one session must live outside the victim shard"
    );

    // ---- phase 2: concurrent traffic, SIGKILL mid-stream -------------
    let programs: Vec<Vec<(usize, XTupleMutation)>> = mirrors
        .iter()
        .enumerate()
        .map(|(i, mirror)| {
            let members: Vec<usize> = (0..mirror.database().num_x_tuples())
                .map(|x| mirror.database().x_tuple(x).members.len())
                .collect();
            reweight_program(i, &members)
        })
        .collect();

    let workers: Vec<_> = sessions
        .iter()
        .zip(&programs)
        .map(|(&session, program)| {
            let addr = fleet.router_addr.clone();
            let program = program.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("traffic client connects");
                for (x_tuple, mutation) in &program {
                    apply_with_retry(&mut client, &addr, session, *x_tuple, mutation);
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(30));
    fleet.sigkill_shard(victim);

    for worker in workers {
        worker.join().expect("traffic thread");
    }

    // Every acknowledged reweight goes into the mirrors in program order
    // (threads are per-session, so per-session order is program order).
    for (mirror, program) in mirrors.iter_mut().zip(&programs) {
        for (x_tuple, mutation) in program {
            mirror.apply_collapse_in_place(*x_tuple, mutation).expect("mirror reweight");
        }
    }

    // ---- phase 3: zero lost mutations across the whole fleet ---------
    let mut client = Client::connect(&fleet.router_addr).expect("reconnect to router");
    let stats = client.stats().expect("merged stats");
    assert!(stats.durable, "every shard reports a durable store");
    assert_eq!(stats.shards as usize, SHARDS);
    assert_eq!(stats.sessions_live as usize, SESSIONS, "no session was lost to the kill");

    for (i, (&session, mirror)) in sessions.iter().zip(&mirrors).enumerate() {
        let answers = client.evaluate(session).expect("evaluate after failover");
        assert_eq!(answers.answers, mirror.answers().unwrap(), "session {i} answers");
        let report = client.quality(session).expect("quality after failover");
        assert_close(
            report.aggregate,
            mirror.aggregate_quality(),
            &format!("session {i} aggregate"),
        );
        let mirror_qualities = mirror.quality_vector();
        for (q, quality) in report.qualities.iter().enumerate() {
            assert_close(*quality, mirror_qualities[q], &format!("session {i} quality {q}"));
        }
    }

    client.shutdown().expect("graceful fleet shutdown");
    std::fs::remove_dir_all(&store_dir).ok();
}
