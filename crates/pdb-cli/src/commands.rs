//! Execution of parsed CLI commands.

use crate::args::{Command, DatasetChoice, USAGE};
use pdb_clean::CleaningPlan;
use pdb_clean::{
    best_single_probe, expected_improvement, plan_greedy, run_adaptive_session_with,
    CleaningAlgorithm, CleaningContext, CleaningSetup, ReplanMode,
};
use pdb_core::{DbError, RankedDatabase, Result, ScoreRanking};
use pdb_experiments::{datasets, report::ExperimentResult, scale::time_ms, Scale, ALL_EXPERIMENTS};
use pdb_quality::{
    quality_pw, quality_pwr, quality_tp, BatchQuality, QueryAnswer, SharedEvaluation, TopKQuery,
    WeightedQuery,
};
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;
use std::fmt::Write as _;

/// Run a parsed command and return the text to print.
pub fn run(command: Command) -> Result<String> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::List => Ok(list()),
        Command::Experiment { id, scale, csv } => {
            let result = pdb_experiments::run(&id, scale)?;
            Ok(if csv { result.to_csv() } else { result.to_table() })
        }
        Command::All { scale, csv_dir } => run_all(scale, csv_dir.as_deref()),
        Command::Quality { dataset, k, algo, json } => quality(dataset, k, &algo, json),
        Command::Clean { dataset, k, budget, algo, json } => clean(dataset, k, budget, &algo, json),
        Command::Serve { addr, threads, shards } => serve(&addr, threads, shards),
        Command::Call { addr, request } => call(&addr, &request),
        Command::Adaptive { dataset, k, budget, trials, mode } => {
            adaptive(dataset, k, budget, trials, &mode)
        }
        Command::Batch { dataset, ks, weights, threshold, budget } => {
            batch(dataset, &ks, weights.as_deref(), threshold, budget)
        }
    }
}

fn list() -> String {
    let mut out = String::from("available experiments (see README.md for the figure mapping):\n");
    for id in ALL_EXPERIMENTS {
        let _ = writeln!(out, "  {id}");
    }
    out
}

fn run_all(scale: Scale, csv_dir: Option<&str>) -> Result<String> {
    let mut out = String::new();
    for id in ALL_EXPERIMENTS {
        let result = pdb_experiments::run(id, scale)?;
        let _ = writeln!(out, "{}", result.to_table());
        if let Some(dir) = csv_dir {
            write_csv(dir, &result)?;
        }
    }
    if let Some(dir) = csv_dir {
        let _ = writeln!(out, "CSV files written to {dir}");
    }
    Ok(out)
}

fn write_csv(dir: &str, result: &ExperimentResult) -> Result<()> {
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| {
        DbError::invalid_parameter(format!("creating {} failed: {e}", dir.display()))
    })?;
    let path = dir.join(format!("{}.csv", result.id));
    std::fs::write(&path, result.to_csv())
        .map_err(|e| DbError::invalid_parameter(format!("writing {} failed: {e}", path.display())))
}

fn load_dataset(choice: DatasetChoice) -> Result<RankedDatabase> {
    match choice {
        DatasetChoice::Synthetic => datasets::default_synthetic(Scale::Quick),
        DatasetChoice::Mov => datasets::mov_dataset(Scale::Quick),
        DatasetChoice::Udb1 => Ok(pdb_core::examples::udb1().rank_by(&ScoreRanking)),
    }
}

fn dataset_name(choice: DatasetChoice) -> &'static str {
    match choice {
        DatasetChoice::Synthetic => "synthetic (quick scale)",
        DatasetChoice::Mov => "MOV stand-in (quick scale)",
        DatasetChoice::Udb1 => "udb1 (Table I)",
    }
}

/// Machine-readable `pdb quality --json` report (one JSON object on
/// stdout, reusing the workspace's serde impls for the answer payload).
#[derive(Serialize)]
struct QualityJson {
    dataset: String,
    tuples: usize,
    x_tuples: usize,
    k: usize,
    threshold: f64,
    algorithm: String,
    quality: f64,
    pt_k: QueryAnswer,
}

fn quality(choice: DatasetChoice, k: usize, algo: &str, json: bool) -> Result<String> {
    let db = load_dataset(choice)?;
    let quality = match algo {
        "tp" => quality_tp(&db, k)?,
        "pwr" => quality_pwr(&db, k)?,
        "pw" => quality_pw(&db, k)?,
        other => {
            return Err(DbError::invalid_parameter(format!(
                "unknown quality algorithm {other:?} (expected tp, pwr or pw)"
            )))
        }
    };
    let shared = SharedEvaluation::new(&db, k)?;
    let answer = shared.pt_k(datasets::DEFAULT_THRESHOLD)?;
    if json {
        let report = QualityJson {
            dataset: dataset_name(choice).to_string(),
            tuples: db.len(),
            x_tuples: db.num_x_tuples(),
            k,
            threshold: datasets::DEFAULT_THRESHOLD,
            algorithm: algo.to_string(),
            quality,
            pt_k: QueryAnswer::TupleSet(answer),
        };
        return to_json_line(&report);
    }
    let mut out = String::new();
    let _ = writeln!(out, "dataset   : {}", dataset_name(choice));
    let _ = writeln!(out, "tuples    : {} ({} x-tuples)", db.len(), db.num_x_tuples());
    let _ = writeln!(out, "query     : top-{k} (PT-k threshold {})", datasets::DEFAULT_THRESHOLD);
    let _ = writeln!(out, "algorithm : {}", algo.to_ascii_uppercase());
    let _ = writeln!(out, "quality   : {quality:.6}");
    let _ = writeln!(out, "PT-k size : {} tuples", answer.len());
    Ok(out)
}

/// Serialize a report as one JSON line, mapping serde failures onto the
/// CLI's error type.
fn to_json_line<T: Serialize>(report: &T) -> Result<String> {
    serde_json::to_string(report)
        .map_err(|e| DbError::invalid_parameter(format!("serializing JSON output failed: {e}")))
}

/// Machine-readable `pdb clean --json` report.  `plan` reuses
/// [`CleaningPlan`]'s own serde impl, so scripted callers get the full
/// per-x-tuple attempt counts, not just the summary.
#[derive(Serialize)]
struct CleanJson {
    dataset: String,
    k: usize,
    budget: u64,
    algorithm: String,
    quality_before: f64,
    plan: CleaningPlan,
    x_tuples_cleaned: usize,
    total_attempts: u64,
    budget_spent: u64,
    expected_improvement: f64,
    expected_quality: f64,
}

fn clean(choice: DatasetChoice, k: usize, budget: u64, algo: &str, json: bool) -> Result<String> {
    let db = load_dataset(choice)?;
    let algorithm = match algo {
        "dp" => CleaningAlgorithm::Dp,
        "greedy" => CleaningAlgorithm::Greedy,
        "randp" => CleaningAlgorithm::RandP,
        "randu" => CleaningAlgorithm::RandU,
        other => {
            return Err(DbError::invalid_parameter(format!(
                "unknown cleaning algorithm {other:?} (expected dp, greedy, randp or randu)"
            )))
        }
    };
    let ctx = CleaningContext::prepare(&db, k)?;
    let setup = match choice {
        DatasetChoice::Udb1 => CleaningSetup::uniform(db.num_x_tuples(), 1, 0.8)?,
        _ => datasets::default_cleaning_setup(db.num_x_tuples())?,
    };
    let mut rng = StdRng::seed_from_u64(budget);
    let plan = algorithm.plan(&ctx, &setup, budget, &mut rng)?;
    let improvement = expected_improvement(&ctx, &setup, &plan);
    if json {
        let report = CleanJson {
            dataset: dataset_name(choice).to_string(),
            k,
            budget,
            algorithm: algorithm.to_string(),
            quality_before: ctx.quality,
            x_tuples_cleaned: plan.selected().len(),
            total_attempts: plan.total_attempts(),
            budget_spent: plan.total_cost(&setup),
            expected_improvement: improvement,
            expected_quality: ctx.quality + improvement,
            plan,
        };
        return to_json_line(&report);
    }
    let mut out = String::new();
    let _ = writeln!(out, "dataset              : {}", dataset_name(choice));
    let _ = writeln!(out, "query                : top-{k}");
    let _ = writeln!(out, "quality before       : {:.6}", ctx.quality);
    let _ = writeln!(out, "budget               : {budget}");
    let _ = writeln!(out, "algorithm            : {algorithm}");
    let _ = writeln!(out, "x-tuples cleaned     : {}", plan.selected().len());
    let _ = writeln!(out, "total attempts       : {}", plan.total_attempts());
    let _ = writeln!(out, "budget spent         : {}", plan.total_cost(&setup));
    let _ = writeln!(out, "expected improvement : {improvement:.6}");
    let _ = writeln!(out, "expected quality     : {:.6}", ctx.quality + improvement);
    Ok(out)
}

/// `pdb serve`: bind the cleaning service and block until a `shutdown`
/// request drains it.
fn serve(addr: &str, threads: usize, shards: usize) -> Result<String> {
    let config = pdb_server::ServerConfig { addr: addr.to_string(), threads, shards };
    let server = pdb_server::Server::bind(&config)
        .map_err(|e| DbError::invalid_parameter(format!("binding {addr} failed: {e}")))?;
    let bound = server
        .local_addr()
        .map_err(|e| DbError::invalid_parameter(format!("resolving bound address failed: {e}")))?;
    // Announce readiness before blocking: scripts wait for this line.
    println!("pdb-server listening on {bound} ({threads} threads, {shards} shards)");
    server.run().map_err(|e| DbError::invalid_parameter(format!("server failed: {e}")))?;
    Ok(format!("pdb-server on {bound} drained in-flight requests and shut down"))
}

/// `pdb call`: send one JSON request line to a running server and print
/// the JSON response line.
fn call(addr: &str, request: &str) -> Result<String> {
    let request = pdb_server::protocol::decode_request(request)
        .map_err(|e| DbError::invalid_parameter(format!("invalid request JSON: {e}")))?;
    let mut client = pdb_server::Client::connect(addr)
        .map_err(|e| DbError::invalid_parameter(format!("connecting to {addr} failed: {e}")))?;
    let response = client.call(&request).map_err(|e| DbError::invalid_parameter(e.to_string()))?;
    pdb_server::protocol::encode(&response)
        .map_err(|e| DbError::invalid_parameter(format!("encoding response failed: {e}")))
}

fn adaptive(
    choice: DatasetChoice,
    k: usize,
    budget: u64,
    trials: u64,
    mode: &str,
) -> Result<String> {
    let db = load_dataset(choice)?;
    let modes: Vec<ReplanMode> = match mode {
        "incremental" | "inc" => vec![ReplanMode::Incremental],
        "rebuild" | "full" | "full-rebuild" => vec![ReplanMode::FullRebuild],
        "both" => vec![ReplanMode::Incremental, ReplanMode::FullRebuild],
        other => {
            return Err(DbError::invalid_parameter(format!(
                "unknown re-planning mode {other:?} (expected incremental, rebuild or both)"
            )))
        }
    };
    if trials == 0 {
        return Err(DbError::invalid_parameter("at least one trial is required"));
    }
    let setup = match choice {
        DatasetChoice::Udb1 => CleaningSetup::uniform(db.num_x_tuples(), 1, 0.8)?,
        _ => datasets::default_cleaning_setup(db.num_x_tuples())?,
    };
    let mut out = String::new();
    let _ = writeln!(out, "dataset : {}", dataset_name(choice));
    let _ =
        writeln!(out, "query   : top-{k}; budget {budget}; {trials} simulated sessions per mode");
    for mode in modes {
        let mut improvement = 0.0;
        let mut probes = 0u64;
        let mut successes = 0u64;
        let mut swapped = 0usize;
        let mut rebuilt = 0usize;
        let (sessions, ms) = time_ms(|| -> Result<()> {
            for seed in 0..trials {
                let mut rng = StdRng::seed_from_u64(seed);
                let outcome = run_adaptive_session_with(&db, &setup, k, budget, mode, &mut rng)?;
                improvement += outcome.improvement();
                probes += outcome.probes;
                successes += outcome.successes;
                swapped += outcome.delta_stats.rows_swapped;
                rebuilt += outcome.delta_stats.rows_rebuilt;
            }
            Ok(())
        });
        sessions?;
        let t = trials as f64;
        let _ = writeln!(
            out,
            "{mode:>12}: improvement {:+.4}, {:.1} probes ({:.1} successful), \
             {:.2} ms per session",
            improvement / t,
            probes as f64 / t,
            successes as f64 / t,
            ms / t,
        );
        if mode == ReplanMode::Incremental {
            let _ = writeln!(
                out,
                "              delta rows per session: {:.1} swapped, {:.1} rebuilt",
                swapped as f64 / t,
                rebuilt as f64 / t,
            );
        }
    }
    Ok(out)
}

fn batch(
    choice: DatasetChoice,
    ks: &[usize],
    weights: Option<&[f64]>,
    threshold: f64,
    budget: u64,
) -> Result<String> {
    let db = load_dataset(choice)?;
    let specs: Vec<WeightedQuery> = ks
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let query = TopKQuery::PTk { k, threshold };
            match weights {
                Some(w) => WeightedQuery::weighted(query, w[i]),
                None => WeightedQuery::new(query),
            }
        })
        .collect();

    // Batched: one PSR run at k_max serves every query.
    let (shared, batch_ms) = time_ms(|| -> Result<(BatchQuality<'_>, Vec<f64>, Vec<usize>)> {
        let batch = BatchQuality::new(&db, specs.clone())?;
        let qualities = batch.quality_vector();
        let sizes = batch.answers()?.iter().map(|a| a.len()).collect();
        Ok((batch, qualities, sizes))
    });
    let (batch_eval, qualities, sizes) = shared?;

    // Independent baseline: one full evaluation per registered query.
    let (independent, independent_ms) = time_ms(|| -> Result<()> {
        for spec in &specs {
            let shared = SharedEvaluation::new(&db, spec.query.k())?;
            let _answer = shared.pt_k(threshold)?;
            let _quality = shared.quality();
        }
        Ok(())
    });
    independent?;

    let mut out = String::new();
    let _ = writeln!(out, "dataset          : {}", dataset_name(choice));
    let _ = writeln!(out, "tuples           : {} ({} x-tuples)", db.len(), db.num_x_tuples());
    let _ = writeln!(
        out,
        "registered       : {} PT-k queries (threshold {threshold}), k_max = {}",
        specs.len(),
        batch_eval.evaluation().k_max()
    );
    for (i, spec) in specs.iter().enumerate() {
        let _ = writeln!(
            out,
            "  query {i:>2}       : k = {:>4}, weight {:.2}, answer {:>4} tuples, quality {:+.6}",
            spec.query.k(),
            spec.weight,
            sizes[i],
            qualities[i],
        );
    }
    let _ = writeln!(out, "aggregate quality: {:+.6}", batch_eval.aggregate_quality());
    let plan = batch_eval.evaluation().plan();
    let _ = writeln!(
        out,
        "shared PSR       : {:.2} ms for the batch vs {:.2} ms independent ({:.1}x, \
         amortization bound {:.1}x)",
        batch_ms,
        independent_ms,
        independent_ms / batch_ms.max(1e-9),
        plan.amortization(batch_eval.evaluation().queries()),
    );

    // Aggregate cleaning: one plan maximizing Σ_q w_q · improvement.
    let setup = match choice {
        DatasetChoice::Udb1 => CleaningSetup::uniform(db.num_x_tuples(), 1, 0.8)?,
        _ => datasets::default_cleaning_setup(db.num_x_tuples())?,
    };
    let ctx = CleaningContext::from_batch(&batch_eval);
    match best_single_probe(&ctx, &setup) {
        Some((l, gain)) => {
            let _ = writeln!(
                out,
                "best next probe  : x-tuple {l} (expected aggregate improvement {gain:+.6})"
            );
        }
        None => {
            let _ = writeln!(out, "best next probe  : none (database is effectively certain)");
        }
    }
    let greedy = plan_greedy(&ctx, &setup, budget)?;
    let improvement = expected_improvement(&ctx, &setup, &greedy);
    let _ = writeln!(
        out,
        "greedy (C = {budget:>4}): {} x-tuples, {} attempts, expected aggregate \
         improvement {improvement:+.6}",
        greedy.selected().len(),
        greedy.total_attempts(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_mentions_every_experiment() {
        let text = list();
        for id in ALL_EXPERIMENTS {
            assert!(text.contains(id), "{id} missing from list output");
        }
    }

    #[test]
    fn quality_command_on_udb1_matches_the_paper() {
        let out = quality(DatasetChoice::Udb1, 2, "tp", false).unwrap();
        assert!(out.contains("quality   : -2.55"), "{out}");
        let out = quality(DatasetChoice::Udb1, 2, "pw", false).unwrap();
        assert!(out.contains("quality   : -2.55"), "{out}");
        assert!(quality(DatasetChoice::Udb1, 2, "bogus", false).is_err());
    }

    #[test]
    fn quality_json_mode_emits_parsable_json() {
        let out = quality(DatasetChoice::Udb1, 2, "tp", true).unwrap();
        let value: serde::Value = serde_json::from_str(&out).unwrap();
        let map = value.as_map().expect("top-level object");
        let quality = match serde::Value::map_get(map, "quality") {
            Some(serde::Value::F64(q)) => *q,
            other => panic!("missing/invalid quality field: {other:?}"),
        };
        assert!((quality - (-2.55)).abs() < 0.005, "{out}");
        // The PT-k answer payload reuses the engine's QueryAnswer impl.
        assert!(out.contains("\"TupleSet\""), "{out}");
        assert!(out.contains("\"position\""), "{out}");
    }

    #[test]
    fn clean_command_reports_a_positive_improvement() {
        let out = clean(DatasetChoice::Udb1, 2, 5, "greedy", false).unwrap();
        assert!(out.contains("expected improvement"));
        let line = out.lines().find(|l| l.starts_with("expected improvement")).unwrap();
        let value: f64 = line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!(value > 0.0);
        assert!(clean(DatasetChoice::Udb1, 2, 5, "nope", false).is_err());
    }

    #[test]
    fn clean_json_mode_emits_plan_and_improvement() {
        let out = clean(DatasetChoice::Udb1, 2, 5, "greedy", true).unwrap();
        let value: serde::Value = serde_json::from_str(&out).unwrap();
        let map = value.as_map().expect("top-level object");
        let improvement = match serde::Value::map_get(map, "expected_improvement") {
            Some(serde::Value::F64(v)) => *v,
            other => panic!("missing/invalid expected_improvement: {other:?}"),
        };
        assert!(improvement > 0.0, "{out}");
        let plan: CleaningPlan =
            serde::Deserialize::from_value(serde::Value::map_get(map, "plan").expect("plan field"))
                .unwrap();
        assert!(plan.total_attempts() > 0);
    }

    #[test]
    fn call_command_round_trips_against_a_served_instance() {
        let server = pdb_server::Server::bind(&pdb_server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            shards: 1,
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());

        let reply = call(
            &addr,
            "{\"create_session\": {\"dataset\": \"Udb1\", \"probe_cost\": 1, \
             \"probe_success\": 0.8}}",
        )
        .unwrap();
        assert!(reply.contains("session_created"), "{reply}");
        assert!(reply.contains("\"tuples\":7"), "{reply}");

        assert!(call(&addr, "not json").is_err());
        let reply = call(&addr, "{\"evaluate\": {\"session\": 12345}}").unwrap();
        assert!(reply.contains("error"), "{reply}");

        let reply = call(&addr, "\"shutdown\"").unwrap();
        assert!(reply.contains("shutting_down"), "{reply}");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn experiment_command_renders_table_and_csv() {
        let table =
            run(Command::Experiment { id: "fig2-3".into(), scale: Scale::Quick, csv: false })
                .unwrap();
        assert!(table.contains("udb1"));
        let csv = run(Command::Experiment { id: "fig2-3".into(), scale: Scale::Quick, csv: true })
            .unwrap();
        assert!(csv.lines().next().unwrap().contains("udb1"));
    }

    #[test]
    fn adaptive_command_compares_both_replan_modes() {
        let out = adaptive(DatasetChoice::Udb1, 2, 5, 10, "both").unwrap();
        assert!(out.contains("incremental"), "{out}");
        assert!(out.contains("full-rebuild"), "{out}");
        assert!(out.contains("delta rows"), "{out}");
        let single = adaptive(DatasetChoice::Udb1, 2, 5, 5, "rebuild").unwrap();
        assert!(!single.contains("incremental"));
        assert!(adaptive(DatasetChoice::Udb1, 2, 5, 5, "bogus").is_err());
        assert!(adaptive(DatasetChoice::Udb1, 2, 5, 0, "both").is_err());
    }

    #[test]
    fn batch_command_serves_multiple_queries_from_one_run() {
        let out = batch(DatasetChoice::Udb1, &[1, 2, 4], None, 0.4, 5).unwrap();
        assert!(out.contains("k_max = 4"), "{out}");
        assert!(out.contains("query  0"), "{out}");
        assert!(out.contains("aggregate quality"), "{out}");
        assert!(out.contains("best next probe"), "{out}");
        assert!(out.contains("greedy"), "{out}");
        // PT-2 answer of the paper at threshold 0.4 has 3 tuples.
        assert!(out.contains("answer    3 tuples"), "{out}");

        let weighted = batch(DatasetChoice::Udb1, &[1, 2], Some(&[0.0, 1.0]), 0.4, 5).unwrap();
        assert!(weighted.contains("weight 0.00"), "{weighted}");
        assert!(batch(DatasetChoice::Udb1, &[1, 2], Some(&[-1.0, 1.0]), 0.4, 5).is_err());
        assert!(batch(DatasetChoice::Udb1, &[1], None, 0.0, 5).is_err());
    }

    #[test]
    fn help_prints_usage() {
        assert!(run(Command::Help).unwrap().contains("usage"));
    }
}
