//! Execution of parsed CLI commands.

use crate::args::{Command, DatasetChoice, FleetOp, FlushChoice, MutateOp, USAGE};
use pdb_clean::CleaningPlan;
use pdb_clean::{
    best_single_probe, expected_improvement, plan_greedy, run_adaptive_session_with,
    CleaningAlgorithm, CleaningContext, CleaningSetup, ReplanMode,
};
use pdb_core::{DbError, RankedDatabase, Result, ScoreRanking};
use pdb_experiments::{datasets, report::ExperimentResult, scale::time_ms, Scale, ALL_EXPERIMENTS};
use pdb_quality::{
    quality_pw, quality_pwr, quality_tp, BatchQuality, QueryAnswer, SharedEvaluation, TopKQuery,
    WeightedQuery,
};
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;
use std::fmt::Write as _;

/// Run a parsed command and return the text to print.
pub fn run(command: Command) -> Result<String> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::List => Ok(list()),
        Command::Experiment { id, scale, csv } => {
            let result = pdb_experiments::run(&id, scale)?;
            Ok(if csv { result.to_csv() } else { result.to_table() })
        }
        Command::All { scale, csv_dir } => run_all(scale, csv_dir.as_deref()),
        Command::Quality { dataset, k, algo, json } => quality(dataset, k, &algo, json),
        Command::Clean { dataset, k, budget, algo, json } => clean(dataset, k, budget, &algo, json),
        Command::Serve { addr, threads, shards, store_dir, compact_every, flush } => {
            serve(&addr, threads, shards, store_dir, compact_every, flush)
        }
        Command::Fleet { op } => fleet(op),
        Command::Call { addr, request, timing } => call(&addr, &request, timing),
        Command::Metrics { addr, text } => metrics(&addr, text),
        Command::Mutate { addr, session, op, mode } => mutate(&addr, session, op, &mode),
        Command::Export { dataset, tuples, out } => export(dataset, tuples, &out),
        Command::Import { file, out } => import(&file, out.as_deref()),
        Command::Recover { store_dir } => recover(&store_dir),
        Command::Adaptive { dataset, k, budget, trials, mode } => {
            adaptive(dataset, k, budget, trials, &mode)
        }
        Command::Batch { dataset, ks, weights, threshold, budget } => {
            batch(dataset, &ks, weights.as_deref(), threshold, budget)
        }
    }
}

fn list() -> String {
    let mut out = String::from("available experiments (see README.md for the figure mapping):\n");
    for id in ALL_EXPERIMENTS {
        let _ = writeln!(out, "  {id}");
    }
    out
}

fn run_all(scale: Scale, csv_dir: Option<&str>) -> Result<String> {
    let mut out = String::new();
    for id in ALL_EXPERIMENTS {
        let result = pdb_experiments::run(id, scale)?;
        let _ = writeln!(out, "{}", result.to_table());
        if let Some(dir) = csv_dir {
            write_csv(dir, &result)?;
        }
    }
    if let Some(dir) = csv_dir {
        let _ = writeln!(out, "CSV files written to {dir}");
    }
    Ok(out)
}

fn write_csv(dir: &str, result: &ExperimentResult) -> Result<()> {
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| {
        DbError::invalid_parameter(format!("creating {} failed: {e}", dir.display()))
    })?;
    let path = dir.join(format!("{}.csv", result.id));
    std::fs::write(&path, result.to_csv())
        .map_err(|e| DbError::invalid_parameter(format!("writing {} failed: {e}", path.display())))
}

fn load_dataset(choice: DatasetChoice) -> Result<RankedDatabase> {
    match choice {
        DatasetChoice::Synthetic => datasets::default_synthetic(Scale::Quick),
        DatasetChoice::Mov => datasets::mov_dataset(Scale::Quick),
        DatasetChoice::Udb1 => Ok(pdb_core::examples::udb1().rank_by(&ScoreRanking)),
    }
}

fn dataset_name(choice: DatasetChoice) -> &'static str {
    match choice {
        DatasetChoice::Synthetic => "synthetic (quick scale)",
        DatasetChoice::Mov => "MOV stand-in (quick scale)",
        DatasetChoice::Udb1 => "udb1 (Table I)",
    }
}

/// Machine-readable `pdb quality --json` report (one JSON object on
/// stdout, reusing the workspace's serde impls for the answer payload).
#[derive(Serialize)]
struct QualityJson {
    dataset: String,
    tuples: usize,
    x_tuples: usize,
    k: usize,
    threshold: f64,
    algorithm: String,
    quality: f64,
    pt_k: QueryAnswer,
}

fn quality(choice: DatasetChoice, k: usize, algo: &str, json: bool) -> Result<String> {
    let db = load_dataset(choice)?;
    let quality = match algo {
        "tp" => quality_tp(&db, k)?,
        "pwr" => quality_pwr(&db, k)?,
        "pw" => quality_pw(&db, k)?,
        other => {
            return Err(DbError::invalid_parameter(format!(
                "unknown quality algorithm {other:?} (expected tp, pwr or pw)"
            )))
        }
    };
    let shared = SharedEvaluation::new(&db, k)?;
    let answer = shared.pt_k(datasets::DEFAULT_THRESHOLD)?;
    if json {
        let report = QualityJson {
            dataset: dataset_name(choice).to_string(),
            tuples: db.len(),
            x_tuples: db.num_x_tuples(),
            k,
            threshold: datasets::DEFAULT_THRESHOLD,
            algorithm: algo.to_string(),
            quality,
            pt_k: QueryAnswer::TupleSet(answer),
        };
        return to_json_line(&report);
    }
    let mut out = String::new();
    let _ = writeln!(out, "dataset   : {}", dataset_name(choice));
    let _ = writeln!(out, "tuples    : {} ({} x-tuples)", db.len(), db.num_x_tuples());
    let _ = writeln!(out, "query     : top-{k} (PT-k threshold {})", datasets::DEFAULT_THRESHOLD);
    let _ = writeln!(out, "algorithm : {}", algo.to_ascii_uppercase());
    let _ = writeln!(out, "quality   : {quality:.6}");
    let _ = writeln!(out, "PT-k size : {} tuples", answer.len());
    Ok(out)
}

/// Serialize a report as one JSON line, mapping serde failures onto the
/// CLI's error type.
fn to_json_line<T: Serialize>(report: &T) -> Result<String> {
    serde_json::to_string(report)
        .map_err(|e| DbError::invalid_parameter(format!("serializing JSON output failed: {e}")))
}

/// Machine-readable `pdb clean --json` report.  `plan` reuses
/// [`CleaningPlan`]'s own serde impl, so scripted callers get the full
/// per-x-tuple attempt counts, not just the summary.
#[derive(Serialize)]
struct CleanJson {
    dataset: String,
    k: usize,
    budget: u64,
    algorithm: String,
    quality_before: f64,
    plan: CleaningPlan,
    x_tuples_cleaned: usize,
    total_attempts: u64,
    budget_spent: u64,
    expected_improvement: f64,
    expected_quality: f64,
}

fn clean(choice: DatasetChoice, k: usize, budget: u64, algo: &str, json: bool) -> Result<String> {
    let db = load_dataset(choice)?;
    let algorithm = match algo {
        "dp" => CleaningAlgorithm::Dp,
        "greedy" => CleaningAlgorithm::Greedy,
        "randp" => CleaningAlgorithm::RandP,
        "randu" => CleaningAlgorithm::RandU,
        other => {
            return Err(DbError::invalid_parameter(format!(
                "unknown cleaning algorithm {other:?} (expected dp, greedy, randp or randu)"
            )))
        }
    };
    let ctx = CleaningContext::prepare(&db, k)?;
    let setup = match choice {
        DatasetChoice::Udb1 => CleaningSetup::uniform(db.num_x_tuples(), 1, 0.8)?,
        _ => datasets::default_cleaning_setup(db.num_x_tuples())?,
    };
    let mut rng = StdRng::seed_from_u64(budget);
    let plan = algorithm.plan(&ctx, &setup, budget, &mut rng)?;
    let improvement = expected_improvement(&ctx, &setup, &plan);
    if json {
        let report = CleanJson {
            dataset: dataset_name(choice).to_string(),
            k,
            budget,
            algorithm: algorithm.to_string(),
            quality_before: ctx.quality,
            x_tuples_cleaned: plan.selected().len(),
            total_attempts: plan.total_attempts(),
            budget_spent: plan.total_cost(&setup),
            expected_improvement: improvement,
            expected_quality: ctx.quality + improvement,
            plan,
        };
        return to_json_line(&report);
    }
    let mut out = String::new();
    let _ = writeln!(out, "dataset              : {}", dataset_name(choice));
    let _ = writeln!(out, "query                : top-{k}");
    let _ = writeln!(out, "quality before       : {:.6}", ctx.quality);
    let _ = writeln!(out, "budget               : {budget}");
    let _ = writeln!(out, "algorithm            : {algorithm}");
    let _ = writeln!(out, "x-tuples cleaned     : {}", plan.selected().len());
    let _ = writeln!(out, "total attempts       : {}", plan.total_attempts());
    let _ = writeln!(out, "budget spent         : {}", plan.total_cost(&setup));
    let _ = writeln!(out, "expected improvement : {improvement:.6}");
    let _ = writeln!(out, "expected quality     : {:.6}", ctx.quality + improvement);
    Ok(out)
}

/// `pdb serve`: bind the cleaning service and block until a `shutdown`
/// request drains it.
/// Translate the CLI flush flags into the store's policy.
fn flush_policy(flush: FlushChoice) -> pdb_store::FlushPolicy {
    match flush {
        FlushChoice::PerRecord => pdb_store::FlushPolicy::PerRecord,
        FlushChoice::GroupCommit { max_batch, max_wait_ms } => {
            pdb_store::FlushPolicy::GroupCommit {
                max_batch,
                max_wait: std::time::Duration::from_millis(max_wait_ms),
            }
        }
    }
}

fn serve(
    addr: &str,
    threads: usize,
    shards: usize,
    store_dir: Option<String>,
    compact_every: u64,
    flush: FlushChoice,
) -> Result<String> {
    let durable = store_dir.clone();
    let config = pdb_server::ServerConfig {
        addr: addr.to_string(),
        threads,
        shards,
        store_dir,
        compact_every,
        flush: flush_policy(flush),
    };
    let server = pdb_server::Server::bind(&config)
        .map_err(|e| DbError::invalid_parameter(format!("binding {addr} failed: {e}")))?;
    let bound = server
        .local_addr()
        .map_err(|e| DbError::invalid_parameter(format!("resolving bound address failed: {e}")))?;
    if let Some(dir) = &durable {
        println!(
            "pdb-server recovered {} session(s) from {dir} (compact every {compact_every} records)",
            server.sessions_recovered()
        );
    }
    // Announce readiness before blocking: scripts wait for this line.
    println!("pdb-server listening on {bound} ({threads} threads, {shards} shards)");
    server.run().map_err(|e| DbError::invalid_parameter(format!("server failed: {e}")))?;
    Ok(format!("pdb-server on {bound} drained in-flight requests and shut down"))
}

/// `pdb fleet ...`: multi-process scale-out (see `pdb-fleet`).
fn fleet(op: FleetOp) -> Result<String> {
    match op {
        FleetOp::Serve { addr, shards, threads, store_dir, compact_every, flush } => {
            fleet_serve(&addr, shards, threads, store_dir, compact_every, flush)
        }
        FleetOp::Status { addr } => fleet_status(&addr),
    }
}

/// `pdb fleet serve`: spawn the shard processes, bind the router over
/// them, and block until a `shutdown` request drains everything.
fn fleet_serve(
    addr: &str,
    shards: usize,
    threads: usize,
    store_dir: Option<String>,
    compact_every: u64,
    flush: FlushChoice,
) -> Result<String> {
    let program = std::env::current_exe()
        .map_err(|e| DbError::invalid_parameter(format!("resolving the pdb binary failed: {e}")))?;
    let config = pdb_fleet::FleetConfig {
        program,
        shards,
        threads,
        store_dir: store_dir.map(std::path::PathBuf::from),
        compact_every,
        flush: flush_policy(flush),
    };
    let fleet = std::sync::Arc::new(
        pdb_fleet::Fleet::spawn(config)
            .map_err(|e| DbError::invalid_parameter(format!("spawning the fleet failed: {e}")))?,
    );
    for status in fleet.statuses() {
        // One line per shard before the router line: scripts (and the
        // kill-and-recover test) parse these for pids and addresses.
        println!(
            "pdb-fleet shard {} pid {} listening on {}",
            status.index, status.pid, status.addr
        );
    }
    let router = pdb_fleet::Router::bind(addr, fleet)
        .map_err(|e| DbError::invalid_parameter(format!("binding the router failed: {e}")))?;
    let bound = router
        .local_addr()
        .map_err(|e| DbError::invalid_parameter(format!("resolving bound address failed: {e}")))?;
    // Announce readiness last, like `pdb serve`: once this line prints,
    // the whole fleet serves.
    println!("pdb-fleet router listening on {bound} ({shards} shards)");
    router.run().map_err(|e| DbError::invalid_parameter(format!("router failed: {e}")))?;
    Ok(format!("pdb-fleet router on {bound} drained in-flight requests and shut down"))
}

/// `pdb fleet status`: the router's merged `stats`, formatted.
fn fleet_status(addr: &str) -> Result<String> {
    let mut client = pdb_server::Client::connect_with(addr, &pdb_server::RetryPolicy::default())
        .map_err(|e| DbError::invalid_parameter(format!("connecting to {addr} failed: {e}")))?;
    let stats =
        client.stats().map_err(|e| DbError::invalid_parameter(format!("stats failed: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(out, "shards            : {}", stats.shards);
    let _ = writeln!(out, "threads (total)   : {}", stats.threads);
    let _ = writeln!(out, "durable           : {}", stats.durable);
    let _ = writeln!(out, "sessions live     : {}", stats.sessions_live);
    let _ = writeln!(out, "sessions created  : {}", stats.sessions_created);
    let _ = writeln!(out, "probes applied    : {}", stats.probes_applied);
    let _ = writeln!(out, "requests served   : {}", stats.requests_served);
    let _ = writeln!(out, "connect retries   : {}", stats.connect_retries);
    if let Some(err) = &stats.flush_error {
        let _ = writeln!(out, "flush error       : {err}");
    }
    for session in &stats.sessions {
        let _ = writeln!(
            out,
            "session {:>6} : {} queries, {} probes, {} ms old",
            session.session, session.queries, session.probes, session.age_ms
        );
    }
    // The router's merged `metrics` reply carries every shard's request
    // histograms (already merged, associatively, shard order immaterial);
    // surface per-verb latency quantiles for the verbs that ran.
    let reply =
        client.metrics().map_err(|e| DbError::invalid_parameter(format!("metrics failed: {e}")))?;
    let snapshot = reply
        .to_snapshot()
        .map_err(|e| DbError::invalid_parameter(format!("metrics reply does not parse: {e}")))?;
    let mut latency_header = false;
    for sample in &snapshot.series {
        if sample.name != pdb_obs::names::SERVER_REQUEST_LATENCY_NS || sample.value == 0 {
            continue;
        }
        if !latency_header {
            let _ = writeln!(out, "request latency (merged across shards, ns):");
            latency_header = true;
        }
        let _ = writeln!(
            out,
            "  {:<16} : count {:>8}  p50 {:>12}  p90 {:>12}  p99 {:>12}",
            sample.label_value,
            sample.value,
            sample.quantile(0.50),
            sample.quantile(0.90),
            sample.quantile(0.99),
        );
    }
    Ok(out)
}

/// `pdb metrics`: fetch every registered observability series from a
/// running server — or a fleet router, whose reply merges every shard's
/// snapshot — and print it as the raw JSON response line, or (with
/// `--text`) as Prometheus-style text exposition.
fn metrics(addr: &str, text: bool) -> Result<String> {
    let mut client = pdb_server::Client::connect_with(addr, &pdb_server::RetryPolicy::default())
        .map_err(|e| DbError::invalid_parameter(format!("connecting to {addr} failed: {e}")))?;
    let reply =
        client.metrics().map_err(|e| DbError::invalid_parameter(format!("metrics failed: {e}")))?;
    if text {
        let snapshot = reply.to_snapshot().map_err(|e| {
            DbError::invalid_parameter(format!("metrics reply does not parse: {e}"))
        })?;
        Ok(pdb_obs::text::render(&snapshot))
    } else {
        pdb_server::protocol::encode(&pdb_server::Response::Metrics(reply))
            .map_err(|e| DbError::invalid_parameter(format!("encoding response failed: {e}")))
    }
}

/// `pdb call`: send one JSON request line to a running server and print
/// the JSON response line.  With `-` as the request, newline-delimited
/// requests are streamed from stdin over one persistent connection — one
/// response line per request line, printed as they arrive — so scripted
/// clients pay the connect cost once instead of per request.
fn call(addr: &str, request: &str, timing: bool) -> Result<String> {
    let mut client = pdb_server::Client::connect(addr)
        .map_err(|e| DbError::invalid_parameter(format!("connecting to {addr} failed: {e}")))?;
    if request == "-" {
        return call_lines(&mut client, std::io::stdin().lock(), timing);
    }
    let request = pdb_server::protocol::decode_request(request)
        .map_err(|e| DbError::invalid_parameter(format!("invalid request JSON: {e}")))?;
    let started = std::time::Instant::now();
    let response = client.call(&request).map_err(|e| DbError::invalid_parameter(e.to_string()))?;
    if timing {
        print_timing(request.verb(), started.elapsed());
    }
    pdb_server::protocol::encode(&response)
        .map_err(|e| DbError::invalid_parameter(format!("encoding response failed: {e}")))
}

/// `--timing` output: one stderr line per request, so the response JSON
/// on stdout stays machine-parseable.
fn print_timing(verb: &str, elapsed: std::time::Duration) {
    eprintln!("timing: {verb} {:.3} ms", elapsed.as_secs_f64() * 1e3);
}

/// The `pdb call -` line mode: stream requests from `input` over one
/// connection.  A malformed line yields a local `{"error": ...}` line
/// (matching the server's own error shape) and the stream continues.
fn call_lines(
    client: &mut pdb_server::Client,
    input: impl std::io::BufRead,
    timing: bool,
) -> Result<String> {
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut served = 0u64;
    for line in input.lines() {
        let line =
            line.map_err(|e| DbError::invalid_parameter(format!("reading stdin failed: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match pdb_server::protocol::decode_request(line.trim()) {
            Ok(request) => {
                let started = std::time::Instant::now();
                let response =
                    client.call(&request).map_err(|e| DbError::invalid_parameter(e.to_string()))?;
                if timing {
                    print_timing(request.verb(), started.elapsed());
                }
                response
            }
            Err(err) => pdb_server::Response::error(format!("invalid request JSON: {err}")),
        };
        let encoded = pdb_server::protocol::encode(&response)
            .map_err(|e| DbError::invalid_parameter(format!("encoding response failed: {e}")))?;
        let mut out = stdout.lock();
        if let Err(e) = writeln!(out, "{encoded}").and_then(|()| out.flush()) {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                break; // reader hung up: stop streaming quietly
            }
            return Err(DbError::invalid_parameter(format!("writing output failed: {e}")));
        }
        served += 1;
    }
    Ok(format!("{served} request(s) served over one connection"))
}

/// `pdb mutate`: send one streaming insert/remove (the `apply_mutation`
/// verb) to a running server through the typed client and print the
/// `probe_applied` response line — the same JSON a scripted `pdb call`
/// would see, so both entry points compose.
fn mutate(addr: &str, session: u64, op: MutateOp, mode: &str) -> Result<String> {
    let mode = match mode {
        "rebuild" => pdb_server::protocol::EvalMode::Rebuild,
        _ => pdb_server::protocol::EvalMode::Delta,
    };
    let mut client = pdb_server::Client::connect(addr)
        .map_err(|e| DbError::invalid_parameter(format!("connecting to {addr} failed: {e}")))?;
    let applied = match op {
        MutateOp::Insert { key, alternatives } => {
            client.insert_x_tuple(session, key, alternatives, mode)
        }
        MutateOp::Remove { x_tuple } => client.remove_x_tuple(session, x_tuple, mode),
    }
    .map_err(|e| DbError::invalid_parameter(e.to_string()))?;
    pdb_server::protocol::encode(&pdb_server::Response::ProbeApplied(applied))
        .map_err(|e| DbError::invalid_parameter(format!("encoding response failed: {e}")))
}

/// The spec `pdb export` materializes for each dataset choice.
fn export_spec(choice: DatasetChoice, tuples: usize) -> pdb_gen::DatasetSpec {
    match choice {
        // MOV averages ~2 alternatives per x-tuple, so halve the count.
        DatasetChoice::Synthetic => pdb_gen::DatasetSpec::Synthetic { tuples },
        DatasetChoice::Mov => pdb_gen::DatasetSpec::Mov { x_tuples: (tuples / 2).max(1) },
        DatasetChoice::Udb1 => pdb_gen::DatasetSpec::Udb1,
    }
}

/// `pdb export`: generate a dataset and write it as a binary snapshot.
fn export(choice: DatasetChoice, tuples: usize, out: &str) -> Result<String> {
    let db = pdb_gen::build_dataset(&export_spec(choice, tuples))?;
    let path = std::path::Path::new(out);
    pdb_gen::io::save_ranked(&db, path)?;
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "exported {} ({} tuples, {} x-tuples) to {out} ({bytes} bytes)",
        dataset_name(choice),
        db.len(),
        db.num_x_tuples(),
    ))
}

/// `pdb import`: load a snapshot (or JSON) database, print its shape and
/// optionally re-export it (format picked by the output extension).
fn import(file: &str, out: Option<&str>) -> Result<String> {
    let db = pdb_gen::io::load_ranked(std::path::Path::new(file))?;
    let mut text = String::new();
    let _ = writeln!(text, "file      : {file}");
    let _ = writeln!(text, "tuples    : {} ({} x-tuples)", db.len(), db.num_x_tuples());
    let _ =
        writeln!(text, "avg alts  : {:.2} per x-tuple", db.len() as f64 / db.num_x_tuples() as f64);
    let _ = writeln!(text, "worlds    : {}", db.world_count());
    if let Some(out) = out {
        pdb_gen::io::save_ranked(&db, std::path::Path::new(out))?;
        let _ = writeln!(text, "written   : {out}");
    }
    Ok(text)
}

/// `pdb recover`: dry-run a store directory's recovery and report what a
/// server started with `--store-dir` would rehydrate.  Strictly
/// read-only: nothing is created, and a torn log tail is reported, not
/// truncated.
fn recover(store_dir: &str) -> Result<String> {
    let recovery = pdb_store::Store::peek(std::path::Path::new(store_dir), &pdb_gen::build_dataset)
        .map_err(DbError::from)?;
    let mut text = String::new();
    let _ = writeln!(text, "store      : {store_dir}");
    let _ = writeln!(
        text,
        "log        : {} record(s), {} torn tail byte(s) (a restart truncates them)",
        recovery.records, recovery.truncated_bytes
    );
    let _ = writeln!(text, "sessions   : {} recovered", recovery.sessions.len());
    for session in &recovery.sessions {
        let state = match &session.state {
            pdb_store::RecoveredState::Idle(_) => "idle".to_string(),
            pdb_store::RecoveredState::Live(batch) => {
                format!("live, aggregate quality {:+.6}", batch.aggregate_quality())
            }
        };
        let _ = writeln!(
            text,
            "  session {:>3}: {} tuples, {} quer{}, {} probe(s) ({} replayed, {} delta rows), {state}",
            session.id,
            session.state.database().len(),
            session.specs.len(),
            if session.specs.len() == 1 { "y" } else { "ies" },
            session.probes,
            session.probes_replayed,
            session.replay_stats.rows_total(),
        );
    }
    let _ = writeln!(text, "next id    : {}", recovery.next_session_id);
    Ok(text)
}

fn adaptive(
    choice: DatasetChoice,
    k: usize,
    budget: u64,
    trials: u64,
    mode: &str,
) -> Result<String> {
    let db = load_dataset(choice)?;
    let modes: Vec<ReplanMode> = match mode {
        "incremental" | "inc" => vec![ReplanMode::Incremental],
        "rebuild" | "full" | "full-rebuild" => vec![ReplanMode::FullRebuild],
        "both" => vec![ReplanMode::Incremental, ReplanMode::FullRebuild],
        other => {
            return Err(DbError::invalid_parameter(format!(
                "unknown re-planning mode {other:?} (expected incremental, rebuild or both)"
            )))
        }
    };
    if trials == 0 {
        return Err(DbError::invalid_parameter("at least one trial is required"));
    }
    let setup = match choice {
        DatasetChoice::Udb1 => CleaningSetup::uniform(db.num_x_tuples(), 1, 0.8)?,
        _ => datasets::default_cleaning_setup(db.num_x_tuples())?,
    };
    let mut out = String::new();
    let _ = writeln!(out, "dataset : {}", dataset_name(choice));
    let _ =
        writeln!(out, "query   : top-{k}; budget {budget}; {trials} simulated sessions per mode");
    for mode in modes {
        let mut improvement = 0.0;
        let mut probes = 0u64;
        let mut successes = 0u64;
        let mut swapped = 0usize;
        let mut rebuilt = 0usize;
        let (sessions, ms) = time_ms(|| -> Result<()> {
            for seed in 0..trials {
                let mut rng = StdRng::seed_from_u64(seed);
                let outcome = run_adaptive_session_with(&db, &setup, k, budget, mode, &mut rng)?;
                improvement += outcome.improvement();
                probes += outcome.probes;
                successes += outcome.successes;
                swapped += outcome.delta_stats.rows_swapped;
                rebuilt += outcome.delta_stats.rows_rebuilt;
            }
            Ok(())
        });
        sessions?;
        let t = trials as f64;
        let _ = writeln!(
            out,
            "{mode:>12}: improvement {:+.4}, {:.1} probes ({:.1} successful), \
             {:.2} ms per session",
            improvement / t,
            probes as f64 / t,
            successes as f64 / t,
            ms / t,
        );
        if mode == ReplanMode::Incremental {
            let _ = writeln!(
                out,
                "              delta rows per session: {:.1} swapped, {:.1} rebuilt",
                swapped as f64 / t,
                rebuilt as f64 / t,
            );
        }
    }
    Ok(out)
}

fn batch(
    choice: DatasetChoice,
    ks: &[usize],
    weights: Option<&[f64]>,
    threshold: f64,
    budget: u64,
) -> Result<String> {
    let db = load_dataset(choice)?;
    // Weight-list length is validated at parse time; zipping (rather than
    // indexing) keeps this panic-free even if that ever regresses.
    let specs: Vec<WeightedQuery> = match weights {
        Some(w) => ks
            .iter()
            .zip(w)
            .map(|(&k, &weight)| WeightedQuery::weighted(TopKQuery::PTk { k, threshold }, weight))
            .collect(),
        None => ks.iter().map(|&k| WeightedQuery::new(TopKQuery::PTk { k, threshold })).collect(),
    };

    // Batched: one PSR run at k_max serves every query.
    let (shared, batch_ms) = time_ms(|| -> Result<(BatchQuality<'_>, Vec<f64>, Vec<usize>)> {
        let batch = BatchQuality::new(&db, specs.clone())?;
        let qualities = batch.quality_vector();
        let sizes = batch.answers()?.iter().map(|a| a.len()).collect();
        Ok((batch, qualities, sizes))
    });
    let (batch_eval, qualities, sizes) = shared?;

    // Independent baseline: one full evaluation per registered query.
    let (independent, independent_ms) = time_ms(|| -> Result<()> {
        for spec in &specs {
            let shared = SharedEvaluation::new(&db, spec.query.k())?;
            let _answer = shared.pt_k(threshold)?;
            let _quality = shared.quality();
        }
        Ok(())
    });
    independent?;

    let mut out = String::new();
    let _ = writeln!(out, "dataset          : {}", dataset_name(choice));
    let _ = writeln!(out, "tuples           : {} ({} x-tuples)", db.len(), db.num_x_tuples());
    let _ = writeln!(
        out,
        "registered       : {} PT-k queries (threshold {threshold}), k_max = {}",
        specs.len(),
        batch_eval.evaluation().k_max()
    );
    for (i, ((spec, size), quality)) in specs.iter().zip(&sizes).zip(&qualities).enumerate() {
        let _ = writeln!(
            out,
            "  query {i:>2}       : k = {:>4}, weight {:.2}, answer {:>4} tuples, quality {:+.6}",
            spec.query.k(),
            spec.weight,
            size,
            quality,
        );
    }
    let _ = writeln!(out, "aggregate quality: {:+.6}", batch_eval.aggregate_quality());
    let plan = batch_eval.evaluation().plan();
    let _ = writeln!(
        out,
        "shared PSR       : {:.2} ms for the batch vs {:.2} ms independent ({:.1}x, \
         amortization bound {:.1}x)",
        batch_ms,
        independent_ms,
        independent_ms / batch_ms.max(1e-9),
        plan.amortization(batch_eval.evaluation().queries()),
    );

    // Aggregate cleaning: one plan maximizing Σ_q w_q · improvement.
    let setup = match choice {
        DatasetChoice::Udb1 => CleaningSetup::uniform(db.num_x_tuples(), 1, 0.8)?,
        _ => datasets::default_cleaning_setup(db.num_x_tuples())?,
    };
    let ctx = CleaningContext::from_batch(&batch_eval);
    match best_single_probe(&ctx, &setup) {
        Some((l, gain)) => {
            let _ = writeln!(
                out,
                "best next probe  : x-tuple {l} (expected aggregate improvement {gain:+.6})"
            );
        }
        None => {
            let _ = writeln!(out, "best next probe  : none (database is effectively certain)");
        }
    }
    let greedy = plan_greedy(&ctx, &setup, budget)?;
    let improvement = expected_improvement(&ctx, &setup, &greedy);
    let _ = writeln!(
        out,
        "greedy (C = {budget:>4}): {} x-tuples, {} attempts, expected aggregate \
         improvement {improvement:+.6}",
        greedy.selected().len(),
        greedy.total_attempts(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_mentions_every_experiment() {
        let text = list();
        for id in ALL_EXPERIMENTS {
            assert!(text.contains(id), "{id} missing from list output");
        }
    }

    #[test]
    fn quality_command_on_udb1_matches_the_paper() {
        let out = quality(DatasetChoice::Udb1, 2, "tp", false).unwrap();
        assert!(out.contains("quality   : -2.55"), "{out}");
        let out = quality(DatasetChoice::Udb1, 2, "pw", false).unwrap();
        assert!(out.contains("quality   : -2.55"), "{out}");
        assert!(quality(DatasetChoice::Udb1, 2, "bogus", false).is_err());
    }

    #[test]
    fn quality_json_mode_emits_parsable_json() {
        let out = quality(DatasetChoice::Udb1, 2, "tp", true).unwrap();
        let value: serde::Value = serde_json::from_str(&out).unwrap();
        let map = value.as_map().expect("top-level object");
        let quality = match serde::Value::map_get(map, "quality") {
            Some(serde::Value::F64(q)) => *q,
            other => panic!("missing/invalid quality field: {other:?}"),
        };
        assert!((quality - (-2.55)).abs() < 0.005, "{out}");
        // The PT-k answer payload reuses the engine's QueryAnswer impl.
        assert!(out.contains("\"TupleSet\""), "{out}");
        assert!(out.contains("\"position\""), "{out}");
    }

    #[test]
    fn clean_command_reports_a_positive_improvement() {
        let out = clean(DatasetChoice::Udb1, 2, 5, "greedy", false).unwrap();
        assert!(out.contains("expected improvement"));
        let line = out.lines().find(|l| l.starts_with("expected improvement")).unwrap();
        let value: f64 = line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!(value > 0.0);
        assert!(clean(DatasetChoice::Udb1, 2, 5, "nope", false).is_err());
    }

    #[test]
    fn clean_json_mode_emits_plan_and_improvement() {
        let out = clean(DatasetChoice::Udb1, 2, 5, "greedy", true).unwrap();
        let value: serde::Value = serde_json::from_str(&out).unwrap();
        let map = value.as_map().expect("top-level object");
        let improvement = match serde::Value::map_get(map, "expected_improvement") {
            Some(serde::Value::F64(v)) => *v,
            other => panic!("missing/invalid expected_improvement: {other:?}"),
        };
        assert!(improvement > 0.0, "{out}");
        let plan: CleaningPlan =
            serde::Deserialize::from_value(serde::Value::map_get(map, "plan").expect("plan field"))
                .unwrap();
        assert!(plan.total_attempts() > 0);
    }

    #[test]
    fn call_command_round_trips_against_a_served_instance() {
        let server = pdb_server::Server::bind(&pdb_server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            shards: 1,
            ..pdb_server::ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());

        let reply = call(
            &addr,
            "{\"create_session\": {\"dataset\": \"Udb1\", \"probe_cost\": 1, \
             \"probe_success\": 0.8}}",
            false,
        )
        .unwrap();
        assert!(reply.contains("session_created"), "{reply}");
        assert!(reply.contains("\"tuples\":7"), "{reply}");

        assert!(call(&addr, "not json", false).is_err());
        let reply = call(&addr, "{\"evaluate\": {\"session\": 12345}}", false).unwrap();
        assert!(reply.contains("error"), "{reply}");

        let reply = call(&addr, "\"shutdown\"", false).unwrap();
        assert!(reply.contains("shutting_down"), "{reply}");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn mutate_command_inserts_and_removes_against_a_served_instance() {
        let server = pdb_server::Server::bind(&pdb_server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            shards: 1,
            ..pdb_server::ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());

        let reply = call(
            &addr,
            "{\"create_session\": {\"dataset\": \"Udb1\", \"probe_cost\": 1, \
             \"probe_success\": 0.8}}",
            false,
        )
        .unwrap();
        assert!(reply.contains("session_created"), "{reply}");
        call(&addr, "{\"register_query\": {\"session\": 1, \"query\": {\"PTk\": {\"k\": 2, \"threshold\": 0.4}}, \"weight\": 1}}", false)
            .unwrap();

        // A new entity arrives: the response reports the grown database.
        let op =
            MutateOp::Insert { key: "s9".into(), alternatives: vec![(28.5, 0.5), (23.0, 0.25)] };
        let reply = mutate(&addr, 1, op, "delta").unwrap();
        assert!(reply.contains("probe_applied"), "{reply}");

        // And departs again, through the rebuild oracle this time.
        let reply = mutate(&addr, 1, MutateOp::Remove { x_tuple: 4 }, "rebuild").unwrap();
        assert!(reply.contains("probe_applied"), "{reply}");

        // Out-of-range removal surfaces as a server error, not a hang.
        assert!(mutate(&addr, 1, MutateOp::Remove { x_tuple: 99 }, "delta").is_err());

        call(&addr, "\"shutdown\"", false).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn call_line_mode_streams_requests_over_one_connection() {
        let server = pdb_server::Server::bind(&pdb_server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            shards: 1,
            ..pdb_server::ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());

        let mut client = pdb_server::Client::connect(&addr).unwrap();
        let script = "\
{\"create_session\": {\"dataset\": \"Udb1\", \"probe_cost\": 1, \"probe_success\": 0.8}}\n\
\n\
{\"register_query\": {\"session\": 1, \"query\": {\"PTk\": {\"k\": 2, \"threshold\": 0.4}}, \"weight\": 1}}\n\
not json\n\
{\"evaluate\": {\"session\": 1}}\n";
        let summary = call_lines(&mut client, std::io::Cursor::new(script), false).unwrap();
        assert!(summary.contains("4 request(s)"), "{summary}");

        // The connection survives the malformed line; the session built
        // up over the stream still answers.
        let answers = client.evaluate(1).unwrap();
        assert_eq!(answers.answers[0].len(), 3);

        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn export_then_import_round_trips_a_snapshot() {
        let dir = std::env::temp_dir().join("pdb-cli-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = dir.join("udb1.pdbs");
        let json = dir.join("udb1.json");

        let out = export(DatasetChoice::Udb1, 7, &snapshot.display().to_string()).unwrap();
        assert!(out.contains("7 tuples"), "{out}");
        assert!(snapshot.exists());

        let summary =
            import(&snapshot.display().to_string(), Some(&json.display().to_string())).unwrap();
        assert!(summary.contains("tuples    : 7 (4 x-tuples)"), "{summary}");
        assert!(summary.contains("worlds    : 8"), "{summary}");
        let back = pdb_gen::io::load_ranked(&json).unwrap();
        assert_eq!(back.len(), 7);

        assert!(import("/definitely/not/here.pdbs", None).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_command_reports_the_replayed_log() {
        use pdb_quality::{TopKQuery, XTupleMutation};
        let dir = std::env::temp_dir().join("pdb-cli-recover-test");
        std::fs::remove_dir_all(&dir).ok();
        {
            let (store, _) = pdb_store::Store::open(&dir, true, &pdb_gen::build_dataset).unwrap();
            store
                .append(&pdb_store::WalRecord::CreateSession {
                    session: 1,
                    dataset: pdb_gen::DatasetSpec::Udb1,
                    probe_cost: 1,
                    probe_success: 0.8,
                })
                .unwrap();
            store
                .append(&pdb_store::WalRecord::RegisterQuery {
                    session: 1,
                    query: TopKQuery::PTk { k: 2, threshold: 0.4 },
                    weight: 1.0,
                })
                .unwrap();
            store
                .append(&pdb_store::WalRecord::ApplyProbe {
                    session: 1,
                    x_tuple: 2,
                    mutation: XTupleMutation::CollapseToAlternative { keep_pos: 2 },
                })
                .unwrap();
        }
        let text = recover(&dir.display().to_string()).unwrap();
        assert!(text.contains("3 record(s)"), "{text}");
        // Dry run: peeking a missing store is an error, not a mkdir.
        let missing = dir.join("not-a-store");
        assert!(recover(&missing.display().to_string()).is_err());
        assert!(!missing.exists(), "recover must not create directories");
        assert!(text.contains("sessions   : 1 recovered"), "{text}");
        assert!(text.contains("1 probe(s) (1 replayed"), "{text}");
        assert!(text.contains("live, aggregate quality"), "{text}");
        assert!(text.contains("next id    : 2"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn experiment_command_renders_table_and_csv() {
        let table =
            run(Command::Experiment { id: "fig2-3".into(), scale: Scale::Quick, csv: false })
                .unwrap();
        assert!(table.contains("udb1"));
        let csv = run(Command::Experiment { id: "fig2-3".into(), scale: Scale::Quick, csv: true })
            .unwrap();
        assert!(csv.lines().next().unwrap().contains("udb1"));
    }

    #[test]
    fn adaptive_command_compares_both_replan_modes() {
        let out = adaptive(DatasetChoice::Udb1, 2, 5, 10, "both").unwrap();
        assert!(out.contains("incremental"), "{out}");
        assert!(out.contains("full-rebuild"), "{out}");
        assert!(out.contains("delta rows"), "{out}");
        let single = adaptive(DatasetChoice::Udb1, 2, 5, 5, "rebuild").unwrap();
        assert!(!single.contains("incremental"));
        assert!(adaptive(DatasetChoice::Udb1, 2, 5, 5, "bogus").is_err());
        assert!(adaptive(DatasetChoice::Udb1, 2, 5, 0, "both").is_err());
    }

    #[test]
    fn batch_command_serves_multiple_queries_from_one_run() {
        let out = batch(DatasetChoice::Udb1, &[1, 2, 4], None, 0.4, 5).unwrap();
        assert!(out.contains("k_max = 4"), "{out}");
        assert!(out.contains("query  0"), "{out}");
        assert!(out.contains("aggregate quality"), "{out}");
        assert!(out.contains("best next probe"), "{out}");
        assert!(out.contains("greedy"), "{out}");
        // PT-2 answer of the paper at threshold 0.4 has 3 tuples.
        assert!(out.contains("answer    3 tuples"), "{out}");

        let weighted = batch(DatasetChoice::Udb1, &[1, 2], Some(&[0.0, 1.0]), 0.4, 5).unwrap();
        assert!(weighted.contains("weight 0.00"), "{weighted}");
        assert!(batch(DatasetChoice::Udb1, &[1, 2], Some(&[-1.0, 1.0]), 0.4, 5).is_err());
        assert!(batch(DatasetChoice::Udb1, &[1], None, 0.0, 5).is_err());
    }

    #[test]
    fn help_prints_usage() {
        assert!(run(Command::Help).unwrap().contains("usage"));
    }
}
