//! Command-line argument parsing for the `pdb` binary.
//!
//! Hand-rolled (no external CLI crate) and strict: unknown flags are
//! reported rather than ignored.

use pdb_experiments::Scale;

/// Usage text printed on parse errors and for `pdb help`.
pub const USAGE: &str = "usage:
  pdb list
  pdb exp <id> [--scale quick|paper] [--csv]
  pdb all [--scale quick|paper] [--csv <dir>]
  pdb quality [--dataset synthetic|mov|udb1] [--k <k>] [--algo tp|pwr|pw] [--json]
  pdb clean [--dataset synthetic|mov|udb1] [--k <k>] [--budget <C>] [--algo greedy|dp|randp|randu] [--json]
  pdb adaptive [--dataset synthetic|mov|udb1] [--k <k>] [--budget <C>] [--trials <t>] [--mode incremental|rebuild|both]
  pdb batch [--dataset synthetic|mov|udb1] [--ks <k1,k2,...>] [--weights <w1,w2,...>] [--threshold <T>] [--budget <C>]
  pdb serve [--addr <host:port>] [--threads <n>] [--shards <n>] [--store-dir <dir>] [--compact-every <n>]
            [--flush per-record|group-commit] [--flush-batch <n>] [--flush-wait-ms <ms>]
  pdb fleet serve [--addr <host:port>] [--shards <n>] [--threads <n per shard>] [--store-dir <dir>]
                  [--compact-every <n>] [--flush per-record|group-commit] [--flush-batch <n>] [--flush-wait-ms <ms>]
  pdb fleet status [--addr <host:port>]
  pdb metrics [--addr <host:port>] [--text]
  pdb call <request-json | -> [--addr <host:port>] [--timing]   (- streams stdin lines over one connection)
  pdb mutate <session> insert --key <key> --alts <score:prob,...> [--mode delta|rebuild] [--addr <host:port>]
  pdb mutate <session> remove --x-tuple <l> [--mode delta|rebuild] [--addr <host:port>]
  pdb export [--dataset synthetic|mov|udb1] [--tuples <n>] --out <file.pdbs>
  pdb import <file> [--out <file>]
  pdb recover --store-dir <dir>
  pdb help

call verbs (one JSON object per request, e.g. {\"evaluate\":{\"session\":0}}):
  create_session register_query evaluate quality recommend_probe apply_mutation
  apply_probe drop_session persist restore fetch_chunk stats metrics shutdown";

/// Which dataset a `quality` / `clean` invocation runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetChoice {
    /// The paper's default synthetic dataset (quick scale).
    Synthetic,
    /// The MOV stand-in dataset (quick scale).
    Mov,
    /// The running example `udb1` of Table I.
    Udb1,
}

impl DatasetChoice {
    fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "synthetic" | "syn" => Ok(DatasetChoice::Synthetic),
            "mov" | "movies" => Ok(DatasetChoice::Mov),
            "udb1" | "example" => Ok(DatasetChoice::Udb1),
            other => Err(format!("unknown dataset {other:?} (expected synthetic, mov or udb1)")),
        }
    }
}

/// Parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `pdb list`
    List,
    /// `pdb help`
    Help,
    /// `pdb exp <id>`
    Experiment {
        /// Experiment identifier (`fig4a`, …).
        id: String,
        /// Run scale.
        scale: Scale,
        /// Emit CSV instead of the aligned table.
        csv: bool,
    },
    /// `pdb all`
    All {
        /// Run scale.
        scale: Scale,
        /// Directory to write one CSV per experiment into (optional).
        csv_dir: Option<String>,
    },
    /// `pdb quality`
    Quality {
        /// Dataset to evaluate.
        dataset: DatasetChoice,
        /// Query parameter `k`.
        k: usize,
        /// Quality algorithm (`tp`, `pwr`, `pw`).
        algo: String,
        /// Emit machine-readable JSON instead of the aligned table.
        json: bool,
    },
    /// `pdb clean`
    Clean {
        /// Dataset to clean.
        dataset: DatasetChoice,
        /// Query parameter `k`.
        k: usize,
        /// Cleaning budget `C`.
        budget: u64,
        /// Cleaning algorithm (`greedy`, `dp`, `randp`, `randu`).
        algo: String,
        /// Emit machine-readable JSON instead of the aligned table.
        json: bool,
    },
    /// `pdb batch`
    Batch {
        /// Dataset to serve the batch on.
        dataset: DatasetChoice,
        /// The `k` of each registered PT-k query.
        ks: Vec<usize>,
        /// Per-query aggregate weights (same length as `ks`; all 1 when
        /// omitted).
        weights: Option<Vec<f64>>,
        /// PT-k probability threshold shared by the registered queries.
        threshold: f64,
        /// Budget for the aggregate greedy cleaning plan.
        budget: u64,
    },
    /// `pdb serve`
    Serve {
        /// Address to bind (port 0 picks an ephemeral port).
        addr: String,
        /// Worker threads handling connections.
        threads: usize,
        /// Shards of the session store.
        shards: usize,
        /// Durable store directory (sessions journalled + recovered).
        store_dir: Option<String>,
        /// Auto-compaction threshold in WAL records (0 disables).
        compact_every: u64,
        /// How journal appends reach disk.
        flush: FlushChoice,
    },
    /// `pdb fleet ...`
    Fleet {
        /// Which fleet operation to run.
        op: FleetOp,
    },
    /// `pdb call`
    Call {
        /// Server address to connect to.
        addr: String,
        /// The request, as one JSON value (see README "Serving &
        /// sessions"), or `-` to stream newline-delimited requests from
        /// stdin over one persistent connection.
        request: String,
        /// Print per-request client-side latency to stderr.
        timing: bool,
    },
    /// `pdb metrics`
    Metrics {
        /// Server (or router) address to connect to.
        addr: String,
        /// Render Prometheus-style text exposition instead of JSON.
        text: bool,
    },
    /// `pdb mutate`
    Mutate {
        /// Server address to connect to.
        addr: String,
        /// Session id to mutate.
        session: u64,
        /// The streaming operation (insert or remove).
        op: MutateOp,
        /// Evaluation mode (`delta` or `rebuild`).
        mode: String,
    },
    /// `pdb export`
    Export {
        /// Dataset to generate and export.
        dataset: DatasetChoice,
        /// Approximate tuple count for generated datasets.
        tuples: usize,
        /// Output snapshot file.
        out: String,
    },
    /// `pdb import`
    Import {
        /// Snapshot (or JSON) file to load.
        file: String,
        /// Optional re-export target (format picked by extension).
        out: Option<String>,
    },
    /// `pdb recover`
    Recover {
        /// Store directory to replay.
        store_dir: String,
    },
    /// `pdb adaptive`
    Adaptive {
        /// Dataset to clean adaptively.
        dataset: DatasetChoice,
        /// Query parameter `k`.
        k: usize,
        /// Cleaning budget `C`.
        budget: u64,
        /// Number of simulated sessions to average over.
        trials: u64,
        /// Re-planning mode (`incremental`, `rebuild` or `both`).
        mode: String,
    },
}

/// How `pdb serve` / `pdb fleet serve` flush journal appends (the CLI
/// face of `pdb_store::FlushPolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushChoice {
    /// fsync every record before acknowledging it (the default, and the
    /// durability oracle).
    PerRecord,
    /// Batch concurrent appends into one fsync per window.
    GroupCommit {
        /// Largest batch one fsync may cover.
        max_batch: usize,
        /// Optional linger for a fuller batch, in ms.  Zero (the
        /// default) fsyncs as soon as the device is free — batches
        /// still form from the appends that land during the previous
        /// fsync.
        max_wait_ms: u64,
    },
}

/// Which fleet operation `pdb fleet` runs.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetOp {
    /// `pdb fleet serve`: spawn N shard processes and route to them.
    Serve {
        /// Address the *router* binds (port 0 picks an ephemeral port).
        addr: String,
        /// Shard processes to spawn.
        shards: usize,
        /// Worker threads per shard process.
        threads: usize,
        /// Base store directory; shard `i` journals into
        /// `<dir>/shard-<i>` (omit for in-memory shards).
        store_dir: Option<String>,
        /// Per-shard auto-compaction threshold (0 disables).
        compact_every: u64,
        /// Per-shard journal flush policy.
        flush: FlushChoice,
    },
    /// `pdb fleet status`: aggregated `stats` from a running router.
    Status {
        /// Router address to connect to.
        addr: String,
    },
}

/// Which streaming mutation `pdb mutate` sends.
#[derive(Debug, Clone, PartialEq)]
pub enum MutateOp {
    /// Append a brand-new x-tuple to the session's database.
    Insert {
        /// Entity key for the new x-tuple.
        key: String,
        /// `(score, probability)` alternatives of the new x-tuple.
        alternatives: Vec<(f64, f64)>,
    },
    /// Remove x-tuple `x_tuple` entirely.
    Remove {
        /// X-index of the departing entity.
        x_tuple: usize,
    },
}

/// Extract `--flag value` pairs and standalone `--flag`s from the argument
/// list.
struct Flags<'a> {
    rest: &'a [String],
    index: usize,
}

impl<'a> Flags<'a> {
    fn new(rest: &'a [String]) -> Self {
        Self { rest, index: 0 }
    }

    fn next_flag(&mut self) -> Option<&'a str> {
        let flag = self.rest.get(self.index)?;
        self.index += 1;
        Some(flag.as_str())
    }

    fn value_for(&mut self, flag: &str) -> Result<&'a str, String> {
        let value = self.rest.get(self.index).ok_or(format!("{flag} requires a value"))?;
        self.index += 1;
        Ok(value.as_str())
    }
}

/// Parse the raw argument vector (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let (command, rest) = argv.split_first().ok_or_else(|| "no command given".to_string())?;
    match command.as_str() {
        "list" => expect_no_flags(rest).map(|_| Command::List),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "exp" | "experiment" => {
            let (id, rest) =
                rest.split_first().ok_or_else(|| "exp requires an experiment id".to_string())?;
            let mut scale = Scale::Quick;
            let mut csv = false;
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--scale" => scale = parse_scale(flags.value_for("--scale")?)?,
                    "--csv" => csv = true,
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::Experiment { id: id.clone(), scale, csv })
        }
        "all" => {
            let mut scale = Scale::Quick;
            let mut csv_dir = None;
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--scale" => scale = parse_scale(flags.value_for("--scale")?)?,
                    "--csv" => csv_dir = Some(flags.value_for("--csv")?.to_string()),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::All { scale, csv_dir })
        }
        "quality" => {
            let mut dataset = DatasetChoice::Synthetic;
            let mut k = 15;
            let mut algo = "tp".to_string();
            let mut json = false;
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--dataset" => dataset = DatasetChoice::parse(flags.value_for("--dataset")?)?,
                    "--k" => k = parse_usize(flags.value_for("--k")?, "--k")?,
                    "--algo" => algo = flags.value_for("--algo")?.to_ascii_lowercase(),
                    "--json" => json = true,
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::Quality { dataset, k, algo, json })
        }
        "clean" => {
            let mut dataset = DatasetChoice::Synthetic;
            let mut k = 15;
            let mut budget = 100;
            let mut algo = "greedy".to_string();
            let mut json = false;
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--dataset" => dataset = DatasetChoice::parse(flags.value_for("--dataset")?)?,
                    "--k" => k = parse_usize(flags.value_for("--k")?, "--k")?,
                    "--budget" => {
                        budget = parse_usize(flags.value_for("--budget")?, "--budget")? as u64
                    }
                    "--algo" => algo = flags.value_for("--algo")?.to_ascii_lowercase(),
                    "--json" => json = true,
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::Clean { dataset, k, budget, algo, json })
        }
        "serve" => {
            let mut addr = "127.0.0.1:7878".to_string();
            let mut threads = 4;
            let mut shards = 8;
            let mut store_dir = None;
            let mut compact_every = 1024;
            let mut flush = FlushFlags::default();
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--addr" => addr = flags.value_for("--addr")?.to_string(),
                    "--threads" => {
                        threads = parse_usize(flags.value_for("--threads")?, "--threads")?
                    }
                    "--shards" => shards = parse_usize(flags.value_for("--shards")?, "--shards")?,
                    "--store-dir" => store_dir = Some(flags.value_for("--store-dir")?.to_string()),
                    "--compact-every" => {
                        compact_every =
                            parse_usize(flags.value_for("--compact-every")?, "--compact-every")?
                                as u64
                    }
                    other if flush.try_flag(other, &mut flags)? => {}
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if threads == 0 || shards == 0 {
                return Err("--threads and --shards must be at least 1".to_string());
            }
            let flush = flush.resolve()?;
            Ok(Command::Serve { addr, threads, shards, store_dir, compact_every, flush })
        }
        "fleet" => {
            let (op_name, rest) = rest
                .split_first()
                .ok_or_else(|| "fleet requires an operation (serve or status)".to_string())?;
            match op_name.as_str() {
                "serve" => {
                    let mut addr = "127.0.0.1:7900".to_string();
                    let mut shards = 3;
                    let mut threads = 4;
                    let mut store_dir = None;
                    let mut compact_every = 1024;
                    let mut flush = FlushFlags::default();
                    let mut flags = Flags::new(rest);
                    while let Some(flag) = flags.next_flag() {
                        match flag {
                            "--addr" => addr = flags.value_for("--addr")?.to_string(),
                            "--shards" => {
                                shards = parse_usize(flags.value_for("--shards")?, "--shards")?
                            }
                            "--threads" => {
                                threads = parse_usize(flags.value_for("--threads")?, "--threads")?
                            }
                            "--store-dir" => {
                                store_dir = Some(flags.value_for("--store-dir")?.to_string())
                            }
                            "--compact-every" => {
                                compact_every = parse_usize(
                                    flags.value_for("--compact-every")?,
                                    "--compact-every",
                                )? as u64
                            }
                            other if flush.try_flag(other, &mut flags)? => {}
                            other => return Err(format!("unknown flag {other:?}")),
                        }
                    }
                    if threads == 0 || shards == 0 {
                        return Err("--threads and --shards must be at least 1".to_string());
                    }
                    let flush = flush.resolve()?;
                    Ok(Command::Fleet {
                        op: FleetOp::Serve {
                            addr,
                            shards,
                            threads,
                            store_dir,
                            compact_every,
                            flush,
                        },
                    })
                }
                "status" => {
                    let mut addr = "127.0.0.1:7900".to_string();
                    let mut flags = Flags::new(rest);
                    while let Some(flag) = flags.next_flag() {
                        match flag {
                            "--addr" => addr = flags.value_for("--addr")?.to_string(),
                            other => return Err(format!("unknown flag {other:?}")),
                        }
                    }
                    Ok(Command::Fleet { op: FleetOp::Status { addr } })
                }
                other => {
                    Err(format!("unknown fleet operation {other:?} (expected serve or status)"))
                }
            }
        }
        "call" => {
            let (request, rest) = rest
                .split_first()
                .ok_or_else(|| "call requires a JSON request argument".to_string())?;
            let mut addr = "127.0.0.1:7878".to_string();
            let mut timing = false;
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--addr" => addr = flags.value_for("--addr")?.to_string(),
                    "--timing" => timing = true,
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::Call { addr, request: request.clone(), timing })
        }
        "metrics" => {
            let mut addr = "127.0.0.1:7878".to_string();
            let mut text = false;
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--addr" => addr = flags.value_for("--addr")?.to_string(),
                    "--text" => text = true,
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::Metrics { addr, text })
        }
        "mutate" => {
            let (session, rest) = rest
                .split_first()
                .ok_or_else(|| "mutate requires a session id argument".to_string())?;
            let session = session
                .parse::<u64>()
                .map_err(|_| format!("mutate expects a numeric session id, got {session:?}"))?;
            let (op_name, rest) = rest
                .split_first()
                .ok_or_else(|| "mutate requires an operation (insert or remove)".to_string())?;
            let mut addr = "127.0.0.1:7878".to_string();
            let mut mode = "delta".to_string();
            let mut key = None;
            let mut alts = None;
            let mut x_tuple = None;
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--addr" => addr = flags.value_for("--addr")?.to_string(),
                    "--mode" => mode = flags.value_for("--mode")?.to_ascii_lowercase(),
                    "--key" => key = Some(flags.value_for("--key")?.to_string()),
                    "--alts" => alts = Some(parse_alternatives(flags.value_for("--alts")?)?),
                    "--x-tuple" => {
                        x_tuple = Some(parse_usize(flags.value_for("--x-tuple")?, "--x-tuple")?)
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if mode != "delta" && mode != "rebuild" {
                return Err(format!("unknown mode {mode:?} (expected delta or rebuild)"));
            }
            let op = match op_name.as_str() {
                "insert" => {
                    if x_tuple.is_some() {
                        return Err("--x-tuple only applies to mutate remove".to_string());
                    }
                    let key = key.ok_or_else(|| "mutate insert requires --key".to_string())?;
                    let alternatives = alts.ok_or_else(|| {
                        "mutate insert requires --alts <score:prob,...>".to_string()
                    })?;
                    MutateOp::Insert { key, alternatives }
                }
                "remove" => {
                    if key.is_some() || alts.is_some() {
                        return Err("--key/--alts only apply to mutate insert".to_string());
                    }
                    let x_tuple =
                        x_tuple.ok_or_else(|| "mutate remove requires --x-tuple".to_string())?;
                    MutateOp::Remove { x_tuple }
                }
                other => {
                    return Err(format!(
                        "unknown mutate operation {other:?} (expected insert or remove)"
                    ))
                }
            };
            Ok(Command::Mutate { addr, session, op, mode })
        }
        "export" => {
            let mut dataset = DatasetChoice::Synthetic;
            let mut tuples = 10_000;
            let mut out = None;
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--dataset" => dataset = DatasetChoice::parse(flags.value_for("--dataset")?)?,
                    "--tuples" => tuples = parse_usize(flags.value_for("--tuples")?, "--tuples")?,
                    "--out" => out = Some(flags.value_for("--out")?.to_string()),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let out = out.ok_or_else(|| "export requires --out <file>".to_string())?;
            if tuples == 0 {
                return Err("--tuples must be at least 1".to_string());
            }
            Ok(Command::Export { dataset, tuples, out })
        }
        "import" => {
            let (file, rest) = rest
                .split_first()
                .ok_or_else(|| "import requires a snapshot file argument".to_string())?;
            let mut out = None;
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--out" => out = Some(flags.value_for("--out")?.to_string()),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::Import { file: file.clone(), out })
        }
        "recover" => {
            let mut store_dir = None;
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--store-dir" => store_dir = Some(flags.value_for("--store-dir")?.to_string()),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let store_dir =
                store_dir.ok_or_else(|| "recover requires --store-dir <dir>".to_string())?;
            Ok(Command::Recover { store_dir })
        }
        "batch" => {
            let mut dataset = DatasetChoice::Synthetic;
            let mut ks = vec![5, 15, 50];
            let mut weights = None;
            let mut threshold = 0.1;
            let mut budget = 100;
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--dataset" => dataset = DatasetChoice::parse(flags.value_for("--dataset")?)?,
                    "--ks" => ks = parse_usize_list(flags.value_for("--ks")?, "--ks")?,
                    "--weights" => {
                        weights = Some(parse_f64_list(flags.value_for("--weights")?, "--weights")?)
                    }
                    "--threshold" => {
                        threshold = parse_f64(flags.value_for("--threshold")?, "--threshold")?
                    }
                    "--budget" => {
                        budget = parse_usize(flags.value_for("--budget")?, "--budget")? as u64
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if ks.is_empty() {
                return Err("--ks needs at least one k".to_string());
            }
            if let Some(w) = &weights {
                if w.len() != ks.len() {
                    return Err(format!(
                        "--weights lists {} values for {} queries",
                        w.len(),
                        ks.len()
                    ));
                }
            }
            Ok(Command::Batch { dataset, ks, weights, threshold, budget })
        }
        "adaptive" => {
            let mut dataset = DatasetChoice::Synthetic;
            let mut k = 15;
            let mut budget = 100;
            let mut trials = 20;
            let mut mode = "both".to_string();
            let mut flags = Flags::new(rest);
            while let Some(flag) = flags.next_flag() {
                match flag {
                    "--dataset" => dataset = DatasetChoice::parse(flags.value_for("--dataset")?)?,
                    "--k" => k = parse_usize(flags.value_for("--k")?, "--k")?,
                    "--budget" => {
                        budget = parse_usize(flags.value_for("--budget")?, "--budget")? as u64
                    }
                    "--trials" => {
                        trials = parse_usize(flags.value_for("--trials")?, "--trials")? as u64
                    }
                    "--mode" => mode = flags.value_for("--mode")?.to_ascii_lowercase(),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::Adaptive { dataset, k, budget, trials, mode })
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// The three `--flush*` flags shared by `serve` and `fleet serve`,
/// collected while scanning and validated together afterwards (the batch
/// and wait knobs only make sense for group commit).
#[derive(Default)]
struct FlushFlags {
    policy: Option<String>,
    batch: Option<usize>,
    wait_ms: Option<u64>,
}

impl FlushFlags {
    /// Consume `flag` if it is one of ours; `Ok(false)` hands it back to
    /// the caller's own match.
    fn try_flag(&mut self, flag: &str, flags: &mut Flags<'_>) -> Result<bool, String> {
        match flag {
            "--flush" => self.policy = Some(flags.value_for("--flush")?.to_ascii_lowercase()),
            "--flush-batch" => {
                self.batch = Some(parse_usize(flags.value_for("--flush-batch")?, "--flush-batch")?)
            }
            "--flush-wait-ms" => {
                self.wait_ms = Some(parse_usize(
                    flags.value_for("--flush-wait-ms")?,
                    "--flush-wait-ms",
                )? as u64)
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn resolve(self) -> Result<FlushChoice, String> {
        match self.policy.as_deref() {
            None | Some("per-record") => {
                if self.batch.is_some() || self.wait_ms.is_some() {
                    return Err(
                        "--flush-batch/--flush-wait-ms only apply with --flush group-commit"
                            .to_string(),
                    );
                }
                Ok(FlushChoice::PerRecord)
            }
            Some("group-commit") => {
                let max_batch = self.batch.unwrap_or(64);
                if max_batch == 0 {
                    return Err("--flush-batch must be at least 1".to_string());
                }
                Ok(FlushChoice::GroupCommit { max_batch, max_wait_ms: self.wait_ms.unwrap_or(0) })
            }
            Some(other) => {
                Err(format!("unknown flush policy {other:?} (expected per-record or group-commit)"))
            }
        }
    }
}

fn expect_no_flags(rest: &[String]) -> Result<(), String> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(format!("unexpected arguments: {rest:?}"))
    }
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    Scale::parse(s).ok_or_else(|| format!("unknown scale {s:?} (expected quick or paper)"))
}

fn parse_usize(s: &str, flag: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("{flag} expects a positive integer, got {s:?}"))
}

fn parse_f64(s: &str, flag: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("{flag} expects a number, got {s:?}"))
}

fn parse_usize_list(s: &str, flag: &str) -> Result<Vec<usize>, String> {
    s.split(',').map(|part| parse_usize(part.trim(), flag)).collect()
}

fn parse_f64_list(s: &str, flag: &str) -> Result<Vec<f64>, String> {
    s.split(',').map(|part| parse_f64(part.trim(), flag)).collect()
}

/// Parse `score:prob,score:prob,...` into `(score, probability)` pairs.
fn parse_alternatives(s: &str) -> Result<Vec<(f64, f64)>, String> {
    s.split(',')
        .map(|pair| {
            let (score, prob) = pair
                .split_once(':')
                .ok_or_else(|| format!("--alts expects score:prob pairs, got {pair:?}"))?;
            Ok((parse_f64(score.trim(), "--alts")?, parse_f64(prob.trim(), "--alts")?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_list_and_help() {
        assert_eq!(parse(&argv(&["list"])).unwrap(), Command::List);
        assert_eq!(parse(&argv(&["help"])).unwrap(), Command::Help);
        assert!(parse(&argv(&["list", "extra"])).is_err());
        assert!(parse(&argv(&[])).is_err());
        assert!(parse(&argv(&["bogus"])).is_err());
    }

    #[test]
    fn parses_experiment_flags() {
        let c = parse(&argv(&["exp", "fig4a", "--scale", "paper", "--csv"])).unwrap();
        assert_eq!(c, Command::Experiment { id: "fig4a".into(), scale: Scale::Paper, csv: true });
        assert!(parse(&argv(&["exp"])).is_err());
        assert!(parse(&argv(&["exp", "fig4a", "--scale"])).is_err());
        assert!(parse(&argv(&["exp", "fig4a", "--bogus"])).is_err());
    }

    #[test]
    fn parses_all_with_csv_dir() {
        let c = parse(&argv(&["all", "--csv", "/tmp/out"])).unwrap();
        assert_eq!(c, Command::All { scale: Scale::Quick, csv_dir: Some("/tmp/out".into()) });
    }

    #[test]
    fn parses_quality_and_clean() {
        let c =
            parse(&argv(&["quality", "--dataset", "mov", "--k", "5", "--algo", "pwr"])).unwrap();
        assert_eq!(
            c,
            Command::Quality { dataset: DatasetChoice::Mov, k: 5, algo: "pwr".into(), json: false }
        );

        let c = parse(&argv(&[
            "clean",
            "--budget",
            "50",
            "--algo",
            "dp",
            "--dataset",
            "udb1",
            "--k",
            "2",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Clean {
                dataset: DatasetChoice::Udb1,
                k: 2,
                budget: 50,
                algo: "dp".into(),
                json: true
            }
        );

        assert!(parse(&argv(&["quality", "--k", "abc"])).is_err());
        assert!(parse(&argv(&["clean", "--dataset", "nope"])).is_err());
    }

    #[test]
    fn parses_serve_and_call() {
        let c = parse(&argv(&["serve"])).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "127.0.0.1:7878".into(),
                threads: 4,
                shards: 8,
                store_dir: None,
                compact_every: 1024,
                flush: FlushChoice::PerRecord,
            }
        );
        let c = parse(&argv(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--threads",
            "8",
            "--shards",
            "16",
            "--store-dir",
            "/var/lib/pdb",
            "--compact-every",
            "64",
            "--flush",
            "group-commit",
            "--flush-batch",
            "32",
            "--flush-wait-ms",
            "5",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                threads: 8,
                shards: 16,
                store_dir: Some("/var/lib/pdb".into()),
                compact_every: 64,
                flush: FlushChoice::GroupCommit { max_batch: 32, max_wait_ms: 5 },
            }
        );
        assert!(parse(&argv(&["serve", "--threads", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--bogus"])).is_err());
        assert!(parse(&argv(&["serve", "--flush", "sometimes"])).is_err());
        assert!(
            parse(&argv(&["serve", "--flush-batch", "8"])).is_err(),
            "batch knob needs --flush group-commit"
        );
        assert!(parse(&argv(&["serve", "--flush", "group-commit", "--flush-batch", "0"])).is_err());

        let c = parse(&argv(&["call", "\"stats\"", "--addr", "127.0.0.1:9"])).unwrap();
        assert_eq!(
            c,
            Command::Call {
                addr: "127.0.0.1:9".into(),
                request: "\"stats\"".into(),
                timing: false,
            }
        );
        // `-` selects the stdin line mode.
        let c = parse(&argv(&["call", "-", "--timing"])).unwrap();
        assert_eq!(
            c,
            Command::Call { addr: "127.0.0.1:7878".into(), request: "-".into(), timing: true }
        );
        assert!(parse(&argv(&["call"])).is_err());
        assert!(parse(&argv(&["call", "\"stats\"", "--bogus"])).is_err());
    }

    #[test]
    fn parses_metrics() {
        let c = parse(&argv(&["metrics"])).unwrap();
        assert_eq!(c, Command::Metrics { addr: "127.0.0.1:7878".into(), text: false });
        let c = parse(&argv(&["metrics", "--addr", "127.0.0.1:9", "--text"])).unwrap();
        assert_eq!(c, Command::Metrics { addr: "127.0.0.1:9".into(), text: true });
        assert!(parse(&argv(&["metrics", "--bogus"])).is_err());
    }

    #[test]
    fn parses_fleet_serve_and_status() {
        let c = parse(&argv(&["fleet", "serve"])).unwrap();
        assert_eq!(
            c,
            Command::Fleet {
                op: FleetOp::Serve {
                    addr: "127.0.0.1:7900".into(),
                    shards: 3,
                    threads: 4,
                    store_dir: None,
                    compact_every: 1024,
                    flush: FlushChoice::PerRecord,
                }
            }
        );
        let c = parse(&argv(&[
            "fleet",
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "5",
            "--threads",
            "2",
            "--store-dir",
            "/tmp/fleet",
            "--flush",
            "group-commit",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Fleet {
                op: FleetOp::Serve {
                    addr: "127.0.0.1:0".into(),
                    shards: 5,
                    threads: 2,
                    store_dir: Some("/tmp/fleet".into()),
                    compact_every: 1024,
                    flush: FlushChoice::GroupCommit { max_batch: 64, max_wait_ms: 0 },
                }
            }
        );
        let c = parse(&argv(&["fleet", "status", "--addr", "127.0.0.1:9"])).unwrap();
        assert_eq!(c, Command::Fleet { op: FleetOp::Status { addr: "127.0.0.1:9".into() } });
        assert!(parse(&argv(&["fleet"])).is_err(), "operation is mandatory");
        assert!(parse(&argv(&["fleet", "scale"])).is_err(), "unknown operation");
        assert!(parse(&argv(&["fleet", "serve", "--shards", "0"])).is_err());
        assert!(parse(&argv(&["fleet", "status", "--shards", "2"])).is_err());
    }

    #[test]
    fn parses_export_import_recover() {
        let c = parse(&argv(&["export", "--out", "db.pdbs"])).unwrap();
        assert_eq!(
            c,
            Command::Export {
                dataset: DatasetChoice::Synthetic,
                tuples: 10_000,
                out: "db.pdbs".into()
            }
        );
        let c =
            parse(&argv(&["export", "--dataset", "udb1", "--tuples", "7", "--out", "/tmp/u.pdbs"]))
                .unwrap();
        assert_eq!(
            c,
            Command::Export { dataset: DatasetChoice::Udb1, tuples: 7, out: "/tmp/u.pdbs".into() }
        );
        assert!(parse(&argv(&["export"])).is_err(), "--out is mandatory");
        assert!(parse(&argv(&["export", "--out", "x", "--tuples", "0"])).is_err());

        let c = parse(&argv(&["import", "db.pdbs"])).unwrap();
        assert_eq!(c, Command::Import { file: "db.pdbs".into(), out: None });
        let c = parse(&argv(&["import", "db.pdbs", "--out", "db.json"])).unwrap();
        assert_eq!(c, Command::Import { file: "db.pdbs".into(), out: Some("db.json".into()) });
        assert!(parse(&argv(&["import"])).is_err());

        let c = parse(&argv(&["recover", "--store-dir", "/tmp/store"])).unwrap();
        assert_eq!(c, Command::Recover { store_dir: "/tmp/store".into() });
        assert!(parse(&argv(&["recover"])).is_err(), "--store-dir is mandatory");
        assert!(parse(&argv(&["recover", "--bogus"])).is_err());
    }

    #[test]
    fn parses_mutate_insert_and_remove() {
        let c =
            parse(&argv(&["mutate", "3", "insert", "--key", "s9", "--alts", "28.5:0.5,23:0.25"]))
                .unwrap();
        assert_eq!(
            c,
            Command::Mutate {
                addr: "127.0.0.1:7878".into(),
                session: 3,
                op: MutateOp::Insert {
                    key: "s9".into(),
                    alternatives: vec![(28.5, 0.5), (23.0, 0.25)],
                },
                mode: "delta".into(),
            }
        );
        let c = parse(&argv(&[
            "mutate",
            "0",
            "remove",
            "--x-tuple",
            "2",
            "--mode",
            "rebuild",
            "--addr",
            "127.0.0.1:9",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Mutate {
                addr: "127.0.0.1:9".into(),
                session: 0,
                op: MutateOp::Remove { x_tuple: 2 },
                mode: "rebuild".into(),
            }
        );
        assert!(parse(&argv(&["mutate"])).is_err(), "session id is mandatory");
        assert!(parse(&argv(&["mutate", "zero", "remove"])).is_err(), "session must be numeric");
        assert!(parse(&argv(&["mutate", "0"])).is_err(), "operation is mandatory");
        assert!(parse(&argv(&["mutate", "0", "reweight"])).is_err(), "unknown operation");
        assert!(parse(&argv(&["mutate", "0", "insert", "--key", "x"])).is_err(), "--alts needed");
        assert!(
            parse(&argv(&["mutate", "0", "insert", "--key", "x", "--alts", "1"])).is_err(),
            "alternatives must be score:prob pairs"
        );
        assert!(parse(&argv(&["mutate", "0", "remove"])).is_err(), "--x-tuple needed");
        assert!(
            parse(&argv(&["mutate", "0", "remove", "--x-tuple", "1", "--key", "x"])).is_err(),
            "--key only applies to insert"
        );
        assert!(
            parse(&argv(&["mutate", "0", "remove", "--x-tuple", "1", "--mode", "nope"])).is_err(),
            "mode must be delta or rebuild"
        );
    }

    #[test]
    fn parses_batch_flags() {
        let c = parse(&argv(&["batch"])).unwrap();
        assert_eq!(
            c,
            Command::Batch {
                dataset: DatasetChoice::Synthetic,
                ks: vec![5, 15, 50],
                weights: None,
                threshold: 0.1,
                budget: 100,
            }
        );
        let c = parse(&argv(&[
            "batch",
            "--dataset",
            "udb1",
            "--ks",
            "1,2,4",
            "--weights",
            "1,0.5,2",
            "--threshold",
            "0.4",
            "--budget",
            "5",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Batch {
                dataset: DatasetChoice::Udb1,
                ks: vec![1, 2, 4],
                weights: Some(vec![1.0, 0.5, 2.0]),
                threshold: 0.4,
                budget: 5,
            }
        );
        assert!(parse(&argv(&["batch", "--ks", "1,x"])).is_err());
        assert!(parse(&argv(&["batch", "--ks", "1,2", "--weights", "1"])).is_err());
        assert!(parse(&argv(&["batch", "--bogus"])).is_err());
    }

    #[test]
    fn parses_adaptive_flags() {
        let c = parse(&argv(&["adaptive"])).unwrap();
        assert_eq!(
            c,
            Command::Adaptive {
                dataset: DatasetChoice::Synthetic,
                k: 15,
                budget: 100,
                trials: 20,
                mode: "both".into()
            }
        );
        let c = parse(&argv(&[
            "adaptive",
            "--dataset",
            "udb1",
            "--k",
            "2",
            "--budget",
            "5",
            "--trials",
            "50",
            "--mode",
            "incremental",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Adaptive {
                dataset: DatasetChoice::Udb1,
                k: 2,
                budget: 5,
                trials: 50,
                mode: "incremental".into()
            }
        );
        assert!(parse(&argv(&["adaptive", "--bogus"])).is_err());
        assert!(parse(&argv(&["adaptive", "--mode"])).is_err());
    }
}
