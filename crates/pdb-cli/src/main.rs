//! `pdb` — command-line driver for the `uncertain-topk` reproduction.
//!
//! ```text
//! pdb list                          # list the available experiments
//! pdb exp fig4a [--scale paper]     # run one experiment, print its table
//! pdb all [--scale quick] [--csv DIR]
//! pdb quality [--dataset synthetic|mov|udb1] [--k 15] [--algo tp|pwr|pw]
//! pdb clean   [--dataset synthetic|mov|udb1] [--k 15] [--budget 100] [--algo greedy|dp|randp|randu]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(command) => match commands::run(command) {
            Ok(output) => {
                println!("{output}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("error: {err}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("{message}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
