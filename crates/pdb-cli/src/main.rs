//! `pdb` — command-line driver for the `uncertain-topk` reproduction.
//!
//! ```text
//! pdb list                          # list the available experiments
//! pdb exp fig4a [--scale paper]     # run one experiment, print its table
//! pdb all [--scale quick] [--csv DIR]
//! pdb quality [--dataset synthetic|mov|udb1] [--k 15] [--algo tp|pwr|pw] [--json]
//! pdb clean   [--dataset synthetic|mov|udb1] [--k 15] [--budget 100] [--algo greedy|dp|randp|randu] [--json]
//! pdb serve   [--addr 127.0.0.1:7878] [--threads 4] [--shards 8]
//! pdb call '<request-json>' [--addr 127.0.0.1:7878]
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::io::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(command) => match commands::run(command) {
            Ok(output) => match writeln!(std::io::stdout(), "{output}") {
                Ok(()) => ExitCode::SUCCESS,
                // A closed pipe (`pdb ... | head`) is a normal way for the
                // reader to stop early, not a failure.
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: writing output failed: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(err) => {
                eprintln!("error: {err}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("{message}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
