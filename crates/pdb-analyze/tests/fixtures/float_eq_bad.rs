// Bad fixture for the float-eq lint.  Never compiled — lexed only.

fn gates(x: f64, y: f64) -> bool {
    if x == 0.0 {
        return true;
    }
    if 1.5 != y {
        return false;
    }
    x == -0.25
}
