// Bad fixture for the lock-order lint: per-session mutexes taken while
// a shard-map guard is live.  Never compiled — lexed only.

fn named_guard_live(&self, id: u64) {
    let shard = self.shard(id).read().unwrap();
    let handle = shard.get(&id).cloned();
    let session = handle.lock().unwrap();
}

fn same_statement(&self, id: u64) {
    let q = self.shard(id).read().unwrap().get(&id).lock().unwrap();
}

fn if_let_guard(&self, id: u64) {
    if let Ok(shard) = self.shard(id).read() {
        let handle = shard.get(&id).cloned();
        let session = handle.lock().unwrap();
    }
}
