// Discarded fallible results on a recovery path.
fn recover(dir: &Dir, path: &Path) {
    let _ = dir.sync_all();
    std::fs::remove_file(path).ok();
}
