// Divisions the invariant allows: gate dominates, or the divisor is a
// literal.
fn rescale(e_new: f64, e_old: f64) -> f64 {
    if e_old < MIN_SCALE_PROB {
        return 0.0;
    }
    e_new / e_old
}

fn gated(q: f64, p: f64) -> f64 {
    debug_assert!(q <= MAX_DIVISOR_Q);
    p / (1.0 - q)
}

fn halve(x: f64) -> f64 {
    x / 2.0
}
