// Bad fixture for the panic-path lint: every flagged construct, plus
// the near-misses that must stay clean.  Never compiled — lexed only.

fn handle(v: &[u8], m: &std::collections::HashMap<u32, u32>) -> u32 {
    let a = v.first().unwrap();
    let b = v.iter().next().expect("nonempty");
    if v.is_empty() {
        panic!("empty request");
    }
    let c = v[0];
    let window = &v[1..3];
    let e = m[&0];
    u32::from(*a) + u32::from(*b) + u32::from(c) + window.len() as u32 + e
}

fn exhaustive(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

#[test]
fn test_code_is_exempt() {
    let v = [1u8];
    let _ = v[0];
    v.first().unwrap();
    panic!("fine in a test");
}
