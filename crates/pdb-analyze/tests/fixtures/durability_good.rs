// Good fixture for the durability-pattern lint: the tmp+fsync+rename
// publish sequence the store uses.  Never compiled.

fn save(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_data()?;
    fs::rename(&tmp, path)?;
    Ok(())
}

fn append_only(wal: &mut OpenOptions) -> io::Result<File> {
    wal.append(true).open("log")
}
