// Discards that are fine: a workspace callee with no Result, a pure
// value discard, and test code.
fn tick() -> u64 {
    7
}

fn fine(x: u64) {
    let _ = tick();
    let _ = x;
}

#[cfg(test)]
mod tests {
    #[test]
    fn discards_freely() {
        let _ = std::fs::remove_file("x");
        maybe().ok();
    }
}
