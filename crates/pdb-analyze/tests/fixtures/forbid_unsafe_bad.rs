//! A crate root missing `#![forbid(unsafe_code)]`.  Never compiled.

pub fn noop() {}
