// Good fixture for the panic-path lint: the checked alternatives the
// workspace actually uses.  Never compiled — lexed only.

fn handle(v: &[u8]) -> Option<u32> {
    let first = v.first()?;
    let window = v.get(1..3)?;
    let arr = [1u8, 2, 3];
    let all = &arr[..];
    let tail = &v[1..];
    let recovered = shared.lock().unwrap_or_else(|e| e.into_inner());
    Some(u32::from(*first) + window.len() as u32 + all.len() as u32 + tail.len() as u32)
}

#[derive(Debug)]
struct Attrs;

fn macros_and_types(x: &[u8; 4]) -> Vec<u8> {
    vec![0; x.len()]
}
