// Non-literal divisors with no stability gate in sight.
fn rescale(e_new: f64, e_old: f64) -> f64 {
    e_new / e_old
}

fn in_place(x: &mut f64, q: f64) {
    *x /= q;
}
