// Bad fixture for the durability-pattern lint.  Never compiled.

fn save_unsynced(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    Ok(())
}

fn save_convenient(path: &Path, bytes: &[u8]) -> io::Result<()> {
    fs::write(path, bytes)
}

fn save_synced_in_place(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}
