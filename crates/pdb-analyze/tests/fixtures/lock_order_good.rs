// Good fixture for the lock-order lint: every way the workspace safely
// combines shard guards with session mutexes.  Never compiled.

fn drop_before_lock(&self, id: u64) {
    let shard = self.shard(id).read().unwrap();
    let handle = shard.get(&id).cloned();
    drop(shard);
    let session = handle.lock().unwrap();
}

fn scope_before_lock(&self, id: u64) {
    let handle = {
        let shard = self.shard(id).read().unwrap();
        shard.get(&id).cloned()
    };
    let session = handle.lock().unwrap();
}

fn derived_value_not_a_guard(&self, id: u64) {
    let n = self.shard(id).read().unwrap().len();
    let session = self.handle(id).lock().unwrap();
}

fn try_lock_cannot_deadlock(&self, id: u64) {
    let shard = self.shard(id).read().unwrap();
    if let Ok(session) = self.handle(id).try_lock() {
        session.touch();
    }
}
