// Good fixture for the float-eq lint: tolerance helpers, integer
// comparisons, and test code.  Never compiled — lexed only.

fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 || a == 0.0 && b == 0.0
}

fn compare(a: f64, b: f64, n: u32) -> bool {
    approx_eq(a, b) && n == 3 && a == b
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_is_fine_in_tests() {
        assert!(0.5 == 0.5);
        assert!(super::compare(0.0, 0.0, 3));
    }
}
