//! A compliant crate root.  Never compiled — lexed only.

#![forbid(unsafe_code)]

pub fn noop() {}
