// Narrowing handled properly: typed conversion, a dominating MAX
// check, or a genuinely widening cast.
fn frame_len(payload: &[u8]) -> Result<u32, Error> {
    u32::try_from(payload.len()).map_err(|_| Error::TooLong)
}

fn bounded(n: usize) -> u32 {
    if n > u32::MAX as usize {
        return 0;
    }
    n as u32
}

fn widening(x: u32) -> u64 {
    x as u64
}
