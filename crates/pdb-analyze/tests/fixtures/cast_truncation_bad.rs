// Narrowing casts with no guard: every one silently wraps.
fn frame_len(payload: &[u8]) -> u32 {
    payload.len() as u32
}

fn header(n: usize, flags: usize) -> (u16, u8) {
    let a = n as u16;
    let b = flags as u8;
    (a, b)
}
