//! Fixture-based acceptance tests: every lint has at least one bad
//! fixture pinning exact `file:line` diagnostics and one good fixture
//! that must come back clean.  The fixtures live under
//! `tests/fixtures/` and are lexed, never compiled — several of them
//! would not type-check on purpose.

use pdb_analyze::callgraph::CallGraph;
use pdb_analyze::lexer::SourceFile;
use pdb_analyze::lints;
use pdb_analyze::scanner::FileContext;
use pdb_analyze::summaries::{self, FnSummary};
use pdb_analyze::Diagnostic;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    SourceFile::lex(name, src)
}

/// Run a per-file lint over a fixture and return the finding lines.
fn lines(diags: &[Diagnostic]) -> Vec<u32> {
    diags.iter().map(|d| d.line).collect()
}

fn run_on(name: &str, check: fn(&SourceFile, &FileContext) -> Vec<Diagnostic>) -> Vec<Diagnostic> {
    let file = fixture(name);
    let ctx = FileContext::new(&file);
    check(&file, &ctx)
}

#[test]
fn panic_path_bad_fixture_pins_lines() {
    let diags = run_on("panic_path_bad.rs", lints::panic_path::check);
    assert_eq!(lines(&diags), vec![5, 6, 8, 10, 12, 19], "{diags:?}");
    assert!(diags.iter().all(|d| d.lint == "panic-path" && d.file == "panic_path_bad.rs"));
    assert!(diags[0].message.contains(".unwrap()"), "{}", diags[0].message);
    assert!(diags[2].message.contains("panic!"), "{}", diags[2].message);
    assert!(diags[3].message.contains("indexing"), "{}", diags[3].message);
}

#[test]
fn panic_path_good_fixture_is_clean() {
    let diags = run_on("panic_path_good.rs", lints::panic_path::check);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lock_order_bad_fixture_pins_lines() {
    let diags = run_on("lock_order_bad.rs", lints::lock_order::check);
    assert_eq!(lines(&diags), vec![7, 11, 17], "{diags:?}");
    assert!(diags.iter().all(|d| d.lint == "lock-order"));
    // The named-guard diagnostic names the guard and where it was taken.
    assert!(diags[0].message.contains("`shard` (line 5)"), "{}", diags[0].message);
    // The single-statement form gets its own wording.
    assert!(diags[1].message.contains("same statement"), "{}", diags[1].message);
}

#[test]
fn lock_order_good_fixture_is_clean() {
    let diags = run_on("lock_order_good.rs", lints::lock_order::check);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn durability_bad_fixture_pins_lines() {
    let diags = run_on("durability_bad.rs", lints::durability::check);
    assert_eq!(lines(&diags), vec![4, 10, 14], "{diags:?}");
    assert!(diags.iter().all(|d| d.lint == "durability-pattern"));
    assert!(diags[0].message.contains("sync_all/sync_data and rename"), "{}", diags[0].message);
    assert!(diags[1].message.contains("fs::write"), "{}", diags[1].message);
    assert!(diags[2].message.contains("without rename"), "{}", diags[2].message);
}

#[test]
fn durability_good_fixture_is_clean() {
    let diags = run_on("durability_good.rs", lints::durability::check);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn float_eq_bad_fixture_pins_lines() {
    let diags = run_on("float_eq_bad.rs", lints::float_eq::check);
    assert_eq!(lines(&diags), vec![4, 7, 10], "{diags:?}");
    assert!(diags.iter().all(|d| d.lint == "float-eq"));
    assert!(diags[0].message.contains("`==`"), "{}", diags[0].message);
    assert!(diags[1].message.contains("`!=`"), "{}", diags[1].message);
}

#[test]
fn float_eq_good_fixture_is_clean() {
    let diags = run_on("float_eq_good.rs", lints::float_eq::check);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn forbid_unsafe_bad_fixture_pins_line_one() {
    let diags = lints::forbid_unsafe::check(&fixture("forbid_unsafe_bad.rs"));
    assert_eq!(lines(&diags), vec![1], "{diags:?}");
    assert_eq!(diags[0].lint, "forbid-unsafe");
    assert!(diags[0].message.contains("#![forbid(unsafe_code)]"), "{}", diags[0].message);
}

#[test]
fn forbid_unsafe_good_fixture_is_clean() {
    let diags = lints::forbid_unsafe::check(&fixture("forbid_unsafe_good.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

/// Lex a fixture under an in-scope pseudo-path, build the one-file call
/// graph and summaries, and run a graph-level lint on it.
fn run_graph_lint(
    name: &str,
    pseudo_path: &str,
    check: fn(&CallGraph, &[FnSummary], &[SourceFile]) -> Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let src = fixture(name);
    let file = SourceFile::lex(pseudo_path, src.src.clone());
    let ctx = FileContext::new(&file);
    let files = vec![file];
    let ctxs = vec![ctx];
    let graph = CallGraph::build(&files, &ctxs, &[true]);
    let sums = summaries::compute(&graph, &files);
    check(&graph, &sums, &files)
}

#[test]
fn cast_truncation_bad_fixture_pins_lines() {
    let diags = run_graph_lint(
        "cast_truncation_bad.rs",
        "crates/pdb-store/src/wal.rs",
        lints::cast_truncation::check,
    );
    assert_eq!(lines(&diags), vec![3, 7, 8], "{diags:?}");
    assert!(diags.iter().all(|d| d.lint == "cast-truncation"));
    assert!(diags[0].message.contains("u32::try_from"), "{}", diags[0].message);
    assert!(diags[1].message.contains("`as u16`"), "{}", diags[1].message);
}

#[test]
fn cast_truncation_good_fixture_is_clean() {
    let diags = run_graph_lint(
        "cast_truncation_good.rs",
        "crates/pdb-store/src/wal.rs",
        lints::cast_truncation::check,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn error_swallow_bad_fixture_pins_lines() {
    let diags = run_graph_lint(
        "error_swallow_bad.rs",
        "crates/pdb-store/src/recovery.rs",
        lints::error_swallow::check,
    );
    assert_eq!(lines(&diags), vec![3, 4], "{diags:?}");
    assert!(diags.iter().all(|d| d.lint == "error-swallow"));
    assert!(diags[0].message.contains("`sync_all(...)`"), "{}", diags[0].message);
    assert!(diags[1].message.contains(".ok()"), "{}", diags[1].message);
}

#[test]
fn error_swallow_good_fixture_is_clean() {
    let diags = run_graph_lint(
        "error_swallow_good.rs",
        "crates/pdb-store/src/recovery.rs",
        lints::error_swallow::check,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn div_guard_bad_fixture_pins_lines() {
    let diags = run_graph_lint(
        "div_guard_bad.rs",
        "crates/pdb-engine/src/delta.rs",
        lints::div_guard::check,
    );
    assert_eq!(lines(&diags), vec![3, 7], "{diags:?}");
    assert!(diags.iter().all(|d| d.lint == "div-guard"));
    assert!(diags[0].message.contains("stability gate"), "{}", diags[0].message);
}

#[test]
fn div_guard_good_fixture_is_clean() {
    let diags = run_graph_lint(
        "div_guard_good.rs",
        "crates/pdb-engine/src/delta.rs",
        lints::div_guard::check,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn div_guard_only_covers_the_kernels() {
    // The same divisions outside delta/psr/poly are out of scope.
    let diags = run_graph_lint(
        "div_guard_bad.rs",
        "crates/pdb-engine/src/batch.rs",
        lints::div_guard::check,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// Mini-workspace tests: suppression semantics and protocol drift need a
// directory tree, so each test builds a throwaway workspace in the temp
// dir and runs the workspace/cross-file entry points on it.
// ---------------------------------------------------------------------------

struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(name: &str, files: &[(&str, &str)]) -> Self {
        let root = std::env::temp_dir().join(format!("pdb-analyze-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for (rel, content) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, content).unwrap();
        }
        TempWorkspace { root }
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn suppressions_require_reasons_and_must_match() {
    let lib = "\
#![forbid(unsafe_code)]

fn sparsity_gate(x: f64) -> bool {
    // pdb-analyze: allow(float-eq): the value is assigned, not computed
    x == 0.0
}

fn reasonless(x: f64) -> bool {
    x != 0.0 // pdb-analyze: allow(float-eq)
}

fn unknown_lint(x: f64) -> f64 {
    // pdb-analyze: allow(no-such-lint): misspelled on purpose
    x
}

fn stale(x: f64) -> f64 {
    // pdb-analyze: allow(float-eq): nothing on the next line triggers it
    x + 1.0
}
";
    let ws =
        TempWorkspace::new("suppression", &[("Cargo.toml", "[workspace]\n"), ("src/lib.rs", lib)]);
    let diags = pdb_analyze::workspace::run(&ws.root).unwrap();
    // protocol-drift reports the missing server files in this synthetic
    // tree; everything else is what this test is about.
    let got: Vec<(&str, u32)> =
        diags.iter().filter(|d| d.lint != "protocol-drift").map(|d| (d.lint, d.line)).collect();
    assert_eq!(
        got,
        vec![
            ("float-eq", 9),     // reasonless suppression does not suppress
            ("suppression", 9),  // ...and is itself reported
            ("suppression", 13), // unknown lint name
            ("suppression", 18), // stale: matches no finding
        ],
        "{diags:?}"
    );
    // The well-formed suppression on line 4 silenced the finding on line 5.
    assert!(!got.contains(&("float-eq", 5)), "{diags:?}");
}

const DRIFT_PROTOCOL: &str = "\
//! | Verb | Payload | Response |
//! |------|---------|----------|
//! | `alpha` | — | `ok` |

impl Request {
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Alpha => \"alpha\",
            Request::Beta => \"beta\",
        }
    }
}

impl Deserialize for Request {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match verb {
            \"alpha\" => Ok(Request::Alpha),
            other => Err(other),
        }
    }
}
";

const DRIFT_CLIENT: &str = "\
impl Client {
    pub fn alpha(&mut self) -> Result<(), Error> {
        Ok(())
    }
}
";

const DRIFT_README: &str = "\
# fixture

| Verb | Payload | Response |
|------|---------|----------|
| `alpha` | — | `ok` |
| `gamma` | — | `ok` |
";

#[test]
fn protocol_drift_catches_every_echo_site() {
    let ws = TempWorkspace::new(
        "drift",
        &[
            ("Cargo.toml", "[workspace]\n"),
            ("crates/pdb-server/src/protocol.rs", DRIFT_PROTOCOL),
            ("crates/pdb-server/src/client.rs", DRIFT_CLIENT),
            ("crates/pdb-cli/src/args.rs", "pub const USAGE: &str = \"alpha\";\n"),
            ("README.md", DRIFT_README),
        ],
    );
    let diags = lints::protocol_drift::check(&ws.root);
    let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(diags.len(), 6, "{diags:?}");
    assert!(messages.iter().any(|m| m.contains("`beta`") && m.contains("match arms")));
    assert!(messages.iter().any(|m| m.contains("`beta`") && m.contains("doc table")));
    assert!(messages.iter().any(|m| m.contains("no client method for verb `beta`")));
    assert!(messages.iter().any(|m| m.contains("usage text does not mention verb `beta`")));
    assert!(messages.iter().any(|m| m.contains("`beta`") && m.contains("README verb table")));
    assert!(messages
        .iter()
        .any(|m| m.contains("`gamma`") && m.contains("fn verb() does not return")));
}

#[test]
fn protocol_drift_clean_when_all_sites_agree() {
    let protocol = DRIFT_PROTOCOL
        .replace("| `alpha` | — | `ok` |", "| `alpha` | — | `ok` |\n//! | `beta` | — | `ok` |")
        .replace(
            "\"alpha\" => Ok(Request::Alpha),",
            "\"alpha\" => Ok(Request::Alpha),\n            \"beta\" => Ok(Request::Beta),",
        );
    let client = DRIFT_CLIENT.replace(
        "    pub fn alpha(&mut self) -> Result<(), Error> {\n        Ok(())\n    }",
        "    pub fn alpha(&mut self) -> Result<(), Error> {\n        Ok(())\n    }\n\
         \n    pub fn beta(&mut self) -> Result<(), Error> {\n        Ok(())\n    }",
    );
    let readme = DRIFT_README.replace("| `gamma` | — | `ok` |", "| `beta` | — | `ok` |");
    let ws = TempWorkspace::new(
        "drift-clean",
        &[
            ("Cargo.toml", "[workspace]\n"),
            ("crates/pdb-server/src/protocol.rs", &protocol),
            ("crates/pdb-server/src/client.rs", &client),
            ("crates/pdb-cli/src/args.rs", "pub const USAGE: &str = \"alpha beta\";\n"),
            ("README.md", &readme),
        ],
    );
    let diags = lints::protocol_drift::check(&ws.root);
    assert!(diags.is_empty(), "{diags:?}");
}

/// Strip the protocol-drift noise a synthetic tree always produces
/// (missing server files) so mini-workspace tests can assert exactly.
fn without_drift(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags.into_iter().filter(|d| d.lint != "protocol-drift").collect()
}

#[test]
fn interprocedural_panic_path_sees_through_calls() {
    // The server entry calls into an "engine" file that panic-path does
    // not cover intraprocedurally; the reachable unwrap is still
    // reported (with a witness chain), the unreachable one is not.
    let server = "#![forbid(unsafe_code)]\npub fn run() { kernel_step(); }\n";
    let engine = "#![forbid(unsafe_code)]\n\
                  pub fn kernel_step(x: Option<u32>) {\n\
                  helper(x);\n\
                  }\n\
                  fn helper(x: Option<u32>) {\n\
                  x.unwrap();\n\
                  }\n\
                  fn island(x: Option<u32>) {\n\
                  x.unwrap();\n\
                  }\n";
    let ws = TempWorkspace::new(
        "interproc-panic",
        &[
            ("Cargo.toml", "[workspace]\n"),
            ("crates/pdb-server/src/lib.rs", server),
            ("crates/pdb-engine/src/lib.rs", engine),
        ],
    );
    let diags = without_drift(pdb_analyze::workspace::run(&ws.root).unwrap());
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(
        (d.lint, d.file.as_str(), d.line),
        ("panic-path", "crates/pdb-engine/src/lib.rs", 6)
    );
    assert!(d.message.contains("run -> kernel_step -> helper"), "{}", d.message);
}

#[test]
fn interprocedural_lock_order_flags_locking_callees() {
    // `compact` holds a shard guard while calling `purge`, which takes a
    // session lock one frame down.
    let session = "#![forbid(unsafe_code)]\n\
                   pub fn compact(&self) {\n\
                   let shard = self.map.read().unwrap_or_else(|e| e.into_inner());\n\
                   purge(shard.id());\n\
                   }\n\
                   fn purge(id: u64) {\n\
                   let s = handle.lock();\n\
                   drop(s);\n\
                   }\n";
    let ws = TempWorkspace::new(
        "interproc-lock",
        &[("Cargo.toml", "[workspace]\n"), ("crates/pdb-server/src/session.rs", session)],
    );
    let diags = without_drift(pdb_analyze::workspace::run(&ws.root).unwrap());
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!((d.lint, d.line), ("lock-order", 4));
    assert!(d.message.contains("`purge(...)` takes a session lock transitively"), "{}", d.message);
}

#[test]
fn dead_verb_requires_a_reachable_handler() {
    let protocol = "\
impl Request {
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Evaluate => \"evaluate\",
            Request::Orphan => \"orphan\",
            Request::Unreached => \"unreached\",
        }
    }
}
";
    let server = "\
pub fn run() {
    dispatch();
}
fn dispatch(req: Request) -> Response {
    match req {
        Request::Evaluate => respond(),
    }
}
fn cold(req: Request) -> Response {
    match req {
        Request::Unreached => respond(),
    }
}
";
    let files = vec![
        SourceFile::lex("crates/pdb-server/src/protocol.rs", protocol.to_string()),
        SourceFile::lex("crates/pdb-server/src/server.rs", server.to_string()),
    ];
    let ctxs: Vec<FileContext> = files.iter().map(FileContext::new).collect();
    let graph = CallGraph::build(&files, &ctxs, &[true, true]);
    let diags = lints::dead_verb::check(&graph, &files);
    assert_eq!(lines(&diags), vec![5, 6], "{diags:?}");
    assert!(diags[0].message.contains("`orphan`") && diags[0].message.contains("no function"));
    assert!(diags[1].message.contains("`unreached`") && diags[1].message.contains("no call chain"));
    // `evaluate` has a handler reachable from run(): not reported.
    assert!(!diags.iter().any(|d| d.message.contains("`evaluate`")), "{diags:?}");
}

#[test]
fn scan_roots_cover_examples_and_root_tests() {
    // The walker must reach root src/, examples/ and root tests/ — a
    // float-eq violation in each shows up with the right path.  The
    // unwrap in the example must NOT feed the call graph (examples are
    // aux roots), so no interprocedural panic-path appears.
    let ws = TempWorkspace::new(
        "scan-roots",
        &[
            ("Cargo.toml", "[workspace]\n"),
            ("src/lib.rs", "#![forbid(unsafe_code)]\nfn a(x: f64) -> bool { x == 0.0 }\n"),
            ("examples/demo.rs", "fn main() { let p: f64 = 0.1; if p == 0.3 { opt().unwrap(); } }\n"),
            ("tests/integration.rs", "fn close(x: f64) -> bool { x == 0.25 }\n#[test]\nfn t() { assert!(close(0.25)); }\n"),
        ],
    );
    let diags = without_drift(pdb_analyze::workspace::run(&ws.root).unwrap());
    let got: Vec<(&str, &str, u32)> =
        diags.iter().map(|d| (d.lint, d.file.as_str(), d.line)).collect();
    assert_eq!(
        got,
        vec![
            ("float-eq", "examples/demo.rs", 1),
            ("float-eq", "src/lib.rs", 2),
            ("float-eq", "tests/integration.rs", 1),
        ],
        "{diags:?}"
    );
}

/// The real workspace must stay clean — this is the in-process twin of
/// CI's `cargo run -p pdb-analyze -- --check` gate, so a regression
/// fails `cargo test` too, not just the dedicated CI job.
#[test]
fn the_workspace_itself_is_clean() {
    let root = pdb_analyze::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the crate");
    let diags = pdb_analyze::workspace::run(&root).unwrap();
    assert!(diags.is_empty(), "workspace lints regressed:\n{diags:#?}");
}
