//! Property test for the hand-rolled lexer: random interleavings of the
//! constructs that make Rust lexing hairy — comments, strings, chars,
//! raw strings, lifetimes — must come back as exactly one token per
//! fragment, with the right kind, the right byte span, and the right
//! line number.  This is the guarantee every lint leans on: a `.unwrap`
//! inside a string or comment must never look like code.

use pdb_analyze::lexer::{lex, TokenKind};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::Index;

/// Each fragment lexes to exactly one token of the paired kind.  The
/// corpus deliberately packs each fragment with the *other* fragments'
/// delimiters: quotes in comments, comment openers in strings, and so
/// on — the cases a naive scanner gets wrong.
const FRAGMENTS: &[(&str, TokenKind)] = &[
    // Comments hiding string/char delimiters.
    ("// line with \"quotes\" and 'ticks' and r\"raw\"", TokenKind::LineComment),
    ("//", TokenKind::LineComment),
    ("/* block */", TokenKind::BlockComment),
    ("/* outer /* nested */ still outer */", TokenKind::BlockComment),
    ("/* has \"string\" and 'c' and // inside */", TokenKind::BlockComment),
    // Strings hiding comment/char delimiters and escapes.
    ("\"plain\"", TokenKind::Str),
    ("\"escaped \\\" quote\"", TokenKind::Str),
    ("\"trailing backslash \\\\\"", TokenKind::Str),
    ("\"\\n\\t\\0\"", TokenKind::Str),
    ("\"// not a comment /* nor this */\"", TokenKind::Str),
    ("b\"bytes\"", TokenKind::Str),
    // Raw strings: no escapes, hash-guarded quotes.
    ("r\"raw\"", TokenKind::RawStr),
    ("r\"ends in backslash \\\"", TokenKind::RawStr),
    ("r#\"has \" a quote\"#", TokenKind::RawStr),
    ("r##\"has \"# inside\"##", TokenKind::RawStr),
    ("br#\"raw \" bytes\"#", TokenKind::RawStr),
    ("r\"/* not a comment */\"", TokenKind::RawStr),
    // Chars vs lifetimes: the same leading `'`.
    ("'a'", TokenKind::Char),
    ("'\\''", TokenKind::Char),
    ("'\\\\'", TokenKind::Char),
    ("'\"'", TokenKind::Char),
    ("b'x'", TokenKind::Char),
    ("'static", TokenKind::Lifetime),
    ("'a", TokenKind::Lifetime),
    ("'_", TokenKind::Lifetime),
    // Idents (including raw) and numbers (int/float split).
    ("ident", TokenKind::Ident),
    ("r#match", TokenKind::Ident),
    ("_underscore", TokenKind::Ident),
    ("42", TokenKind::Int),
    ("1.5", TokenKind::Float),
    ("2.5e3", TokenKind::Float),
    ("1.0f64", TokenKind::Float),
];

/// Whitespace joiners; a line comment is always followed by `\n` first,
/// since it would otherwise swallow the rest of the line.
const SEPARATORS: &[&str] = &[" ", "  ", "\n", "\t", " \n\t "];

#[test]
fn every_fragment_lexes_alone() {
    for (text, kind) in FRAGMENTS {
        let tokens = lex(text);
        assert_eq!(tokens.len(), 1, "fragment {text:?} lexed to {tokens:?}");
        assert_eq!(tokens[0].kind, *kind, "fragment {text:?}");
        assert_eq!((tokens[0].start, tokens[0].end), (0, text.len()), "fragment {text:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_interleavings_round_trip(
        picks in vec((any::<Index>(), any::<Index>()), 1..48)
    ) {
        let mut src = String::new();
        let mut expected: Vec<(usize, &str, TokenKind)> = Vec::new();
        for (frag_ix, sep_ix) in &picks {
            let (text, kind) = FRAGMENTS[frag_ix.index(FRAGMENTS.len())];
            expected.push((src.len(), text, kind));
            src.push_str(text);
            if kind == TokenKind::LineComment {
                src.push('\n');
            }
            src.push_str(SEPARATORS[sep_ix.index(SEPARATORS.len())]);
        }

        let tokens = lex(&src);
        prop_assert_eq!(tokens.len(), expected.len(), "source: {:?}", src);
        for (tok, (start, text, kind)) in tokens.iter().zip(&expected) {
            prop_assert_eq!(tok.kind, *kind, "source: {:?}", src);
            prop_assert_eq!(tok.start, *start, "source: {:?}", src);
            prop_assert_eq!(&src[tok.start..tok.end], *text, "source: {:?}", src);
            let line = 1 + src[..tok.start].bytes().filter(|&b| b == b'\n').count() as u32;
            prop_assert_eq!(tok.line, line, "source: {:?}", src);
        }
    }
}
