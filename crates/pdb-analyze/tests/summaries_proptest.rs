//! Property test for function summaries: the facts extracted from a
//! body — panic sites, lock acquisition, narrowing casts, discarded
//! results, division guards, fixpoint propagation — must be invariant
//! under comment and whitespace insertion.  The inserted comments are
//! deliberately poisoned with the exact tokens each fact detector keys
//! on (`.unwrap()`, `panic!`, `as u32`, `MAX`, `try_from`, `.lock()`),
//! so a detector that ever reads raw text instead of code tokens fails
//! here immediately.

use pdb_analyze::callgraph::CallGraph;
use pdb_analyze::lexer::SourceFile;
use pdb_analyze::scanner::FileContext;
use pdb_analyze::summaries;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::Index;

/// A base file exercising every fact kind: an unguarded cast and
/// division, a guarded division, a lock, both discard forms, both
/// panic shapes, a `Result` return, and a call edge (`risky` →
/// `persist`) for the propagation facts.
const BASE: &str = "\
fn kernel(e_new: f64, e_old: f64) -> f64 {
    let wide: u64 = 70_000;
    let narrow = wide as u32;
    let q = e_old + f64::from(narrow);
    e_new / q
}

fn guarded_kernel(p: f64, q: f64) -> f64 {
    if q > MAX_DIVISOR_Q {
        return 0.0;
    }
    p / (1.0 - q)
}

fn risky(xs: &[u64]) -> u64 {
    let guard = shard.lock();
    let _ = persist(xs);
    probe(xs).ok();
    first(xs).expect(\"non-empty\") + guard.len() as u64
}

fn persist(xs: &[u64]) -> Result<(), Error> {
    if xs.is_empty() {
        panic!(\"empty batch\");
    }
    Ok(())
}
";

/// Full lines inserted between existing lines.  Each one carries decoy
/// tokens for a different detector.
const LINE_INSERTS: &[&str] = &[
    "",
    "    // decoy: xs[0].unwrap() and panic!(\"boom\") in prose",
    "    /* decoy: let _ = persist(xs); probe(xs).ok(); shard.lock() */",
    "    // decoy: wide as u32, u64::MAX, u32::try_from(wide)",
    "    /* decoy: e_new / e_old with MAX_DIVISOR_Q nearby; -> Result */",
];

/// Fragments appended at the end of existing lines.
const TRAILERS: &[&str] = &[
    "   ",
    "\t",
    " // trailing decoy .expect(\"x\") unreachable!()",
    " /* trailing decoy: q / p as i16, MAX, try_from */",
];

/// Canonical, line-number-free rendering of every function's facts,
/// including the propagated bits.
fn shapes(src: &str) -> Vec<String> {
    let file = SourceFile::lex("crates/pdb-core/src/lib.rs", src.to_string());
    let ctx = FileContext::new(&file);
    let files = vec![file];
    let ctxs = vec![ctx];
    let graph = CallGraph::build(&files, &ctxs, &[true]);
    let sums = summaries::compute(&graph, &files);
    let prop = summaries::propagate(&graph, &sums);
    graph
        .fns
        .iter()
        .zip(&sums)
        .enumerate()
        .map(|(i, (f, s))| {
            format!(
                "{} panics={:?} lock={} result={} casts={:?} discards={:?} divs={:?} prop=({},{})",
                f.span.name,
                s.panics.iter().map(|p| p.what.as_str()).collect::<Vec<_>>(),
                s.takes_lock,
                s.returns_result,
                s.casts.iter().map(|c| (c.target.as_str(), c.guarded)).collect::<Vec<_>>(),
                s.discards.iter().map(|d| (d.callee.clone(), d.form)).collect::<Vec<_>>(),
                s.divisions.iter().map(|d| d.guarded).collect::<Vec<_>>(),
                prop.may_panic[i],
                prop.takes_lock[i],
            )
        })
        .collect()
}

fn mutate(base: &str, inserts: &[(Index, Index)], trailers: &[(Index, Index)]) -> String {
    let lines: Vec<&str> = base.lines().collect();
    let mut before: Vec<Vec<&str>> = vec![Vec::new(); lines.len() + 1];
    for (pos, frag) in inserts {
        before[pos.index(lines.len() + 1)].push(LINE_INSERTS[frag.index(LINE_INSERTS.len())]);
    }
    let mut trail: Vec<Vec<&str>> = vec![Vec::new(); lines.len()];
    for (pos, frag) in trailers {
        trail[pos.index(lines.len())].push(TRAILERS[frag.index(TRAILERS.len())]);
    }
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        for extra in &before[i] {
            out.push_str(extra);
            out.push('\n');
        }
        out.push_str(line);
        for t in &trail[i] {
            out.push_str(t);
        }
        out.push('\n');
    }
    for extra in &before[lines.len()] {
        out.push_str(extra);
        out.push('\n');
    }
    out
}

/// The property is only worth anything if the base actually trips every
/// detector; pin the exact shape once so a regression in the corpus
/// (not the detectors) is caught by name.
#[test]
fn base_shapes_cover_every_fact_kind() {
    let got = shapes(BASE);
    assert_eq!(
        got,
        vec![
            "kernel panics=[] lock=false result=false casts=[(\"u32\", false)] \
             discards=[] divs=[false] prop=(false,false)",
            "guarded_kernel panics=[] lock=false result=false casts=[] \
             discards=[] divs=[true] prop=(false,false)",
            "risky panics=[\".expect()\"] lock=true result=false casts=[] \
             discards=[(Some(\"persist\"), \"let _ =\"), (Some(\"probe\"), \".ok()\")] \
             divs=[] prop=(true,true)",
            "persist panics=[\"panic!\"] lock=false result=true casts=[] \
             discards=[] divs=[] prop=(true,false)",
        ],
        "{got:#?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn summaries_are_invariant_under_comment_and_whitespace_insertion(
        inserts in vec((any::<Index>(), any::<Index>()), 0..16),
        trailers in vec((any::<Index>(), any::<Index>()), 0..16),
    ) {
        let mutated = mutate(BASE, &inserts, &trailers);
        prop_assert_eq!(shapes(&mutated), shapes(BASE), "mutated source:\n{}", mutated);
    }
}
