//! Diagnostics: the unit of output every lint produces.

use std::fmt;

/// The named lints the analyzer ships.
pub const LINTS: &[&str] = &[
    "panic-path",
    "lock-order",
    "durability-pattern",
    "float-eq",
    "forbid-unsafe",
    "protocol-drift",
    "metric-drift",
    "cast-truncation",
    "error-swallow",
    "div-guard",
    "dead-verb",
    "suppression",
];

/// One-line description per lint, in [`LINTS`] order (`--list-lints`).
pub const LINT_DOCS: &[(&str, &str)] = &[
    ("panic-path", "no unwrap/expect/panic!/indexing on request, replay, or CLI paths (interprocedural: reachable panics count)"),
    ("lock-order", "shard-map guard must drop before a session Mutex is taken (interprocedural: callees that lock count)"),
    ("durability-pattern", "published files must be written tmp + fsync + rename"),
    ("float-eq", "no ==/!= on probability floats; compare with an epsilon"),
    ("forbid-unsafe", "every crate root must carry #![forbid(unsafe_code)]"),
    ("protocol-drift", "the wire verb set must agree everywhere it is written down"),
    ("metric-drift", "every registered pdb-obs metric must appear in the README metric table, and vice versa"),
    ("cast-truncation", "narrowing `as` casts on store/server paths need try_from or a ::MAX guard"),
    ("error-swallow", "`let _ =` / `.ok();` must not discard fallible results on store/server paths"),
    ("div-guard", "non-literal divisors in engine kernels need a stability-gate check first"),
    ("dead-verb", "every wire verb needs a handler reachable from the server run loop"),
    ("suppression", "suppressions must name a known lint, carry a reason, and match a finding"),
];

/// Whether `name` is a lint the analyzer knows about.
pub fn is_known_lint(name: &str) -> bool {
    LINTS.contains(&name)
}

/// One finding, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint that produced the finding.
    pub lint: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(lint: &'static str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Self { lint, file: file.to_string(), line, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// Render findings as a single JSON document:
/// `{"findings":[{"lint":..,"file":..,"line":..,"message":..},...],"count":N}`.
///
/// The schema is pinned by a test — tooling parses this, so additions
/// must be additive.  Hand-rolled (the crate is dependency-free); the
/// only strings needing escapes are paths and messages.
pub fn to_json(findings: &[Diagnostic]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, d) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(d.lint),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one finding as a GitHub Actions workflow command
/// (`::error file=...,line=...,title=...::message`), so findings surface
/// as PR annotations on the offending lines.
pub fn to_github(d: &Diagnostic) -> String {
    format!(
        "::error file={},line={},title=pdb-analyze[{}]::{}",
        gh_property_escape(&d.file),
        d.line,
        gh_property_escape(d.lint),
        gh_data_escape(&d.message)
    )
}

/// Workflow-command data escaping: `%`, CR, LF.
fn gh_data_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Workflow-command property escaping: data escapes plus `:` and `,`.
fn gh_property_escape(s: &str) -> String {
    gh_data_escape(s).replace(':', "%3A").replace(',', "%2C")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_lint_message() {
        let d = Diagnostic::new("float-eq", "crates/x/src/lib.rs", 12, "comparison of f64 with ==");
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:12: [float-eq] comparison of f64 with ==");
    }

    #[test]
    fn known_lints() {
        assert!(is_known_lint("panic-path"));
        assert!(is_known_lint("cast-truncation"));
        assert!(is_known_lint("dead-verb"));
        assert!(!is_known_lint("spelling"));
    }

    #[test]
    fn every_lint_is_documented_in_order() {
        assert_eq!(LINTS.len(), LINT_DOCS.len());
        for (name, (doc_name, doc)) in LINTS.iter().zip(LINT_DOCS) {
            assert_eq!(name, doc_name);
            assert!(!doc.is_empty());
        }
    }

    #[test]
    fn json_schema_is_pinned() {
        let findings = vec![
            Diagnostic::new("float-eq", "crates/x/src/lib.rs", 12, "a \"quoted\"\nmessage"),
            Diagnostic::new("panic-path", "src/lib.rs", 3, "plain"),
        ];
        assert_eq!(
            to_json(&findings),
            "{\"findings\":[\
             {\"lint\":\"float-eq\",\"file\":\"crates/x/src/lib.rs\",\"line\":12,\
             \"message\":\"a \\\"quoted\\\"\\nmessage\"},\
             {\"lint\":\"panic-path\",\"file\":\"src/lib.rs\",\"line\":3,\"message\":\"plain\"}\
             ],\"count\":2}"
        );
        assert_eq!(to_json(&[]), "{\"findings\":[],\"count\":0}");
    }

    #[test]
    fn github_format_escapes_workflow_command_chars() {
        let d = Diagnostic::new("float-eq", "src/a.rs", 7, "50% of:\nthings");
        assert_eq!(
            to_github(&d),
            "::error file=src/a.rs,line=7,title=pdb-analyze[float-eq]::50%25 of:%0Athings"
        );
    }
}
