//! Diagnostics: the unit of output every lint produces.

use std::fmt;

/// The named lints the analyzer ships.
pub const LINTS: &[&str] = &[
    "panic-path",
    "lock-order",
    "durability-pattern",
    "float-eq",
    "forbid-unsafe",
    "protocol-drift",
    "suppression",
];

/// Whether `name` is a lint the analyzer knows about.
pub fn is_known_lint(name: &str) -> bool {
    LINTS.contains(&name)
}

/// One finding, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint that produced the finding.
    pub lint: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(lint: &'static str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Self { lint, file: file.to_string(), line, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_lint_message() {
        let d = Diagnostic::new("float-eq", "crates/x/src/lib.rs", 12, "comparison of f64 with ==");
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:12: [float-eq] comparison of f64 with ==");
    }

    #[test]
    fn known_lints() {
        assert!(is_known_lint("panic-path"));
        assert!(!is_known_lint("spelling"));
    }
}
