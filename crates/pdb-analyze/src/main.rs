//! `pdb-analyze`: run the workspace invariant lints.
//!
//! ```text
//! pdb-analyze [--check] [--root <dir>] [--format <mode>]
//!                                          run every lint, print findings
//! pdb-analyze bench-drift <file>...        compare bench ids vs HEAD
//! pdb-analyze --list-lints                 lint catalog with descriptions
//! pdb-analyze --list                       lint names only
//! ```
//!
//! Exit codes: `0` — clean, or findings without `--check` (exploratory
//! runs); `1` — findings under `--check` (the CI gate) or bench-id
//! drift; `2` — usage or I/O errors (bad flag, unreadable workspace).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "bench-drift") {
        return bench_drift(&args[1..]);
    }

    let mut check = false;
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--list" => {
                for lint in pdb_analyze::diag::LINTS {
                    println!("{lint}");
                }
                return ExitCode::SUCCESS;
            }
            "--list-lints" => {
                for (lint, doc) in pdb_analyze::diag::LINT_DOCS {
                    println!("{lint:<20} {doc}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                Some(other) => {
                    return usage_error(&format!(
                        "unknown format `{other}` (expected text, json, or github)"
                    ))
                }
                None => return usage_error("--format needs a mode (text, json, or github)"),
            },
            "--help" | "-h" => {
                print!("{}", USAGE);
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root
        .or_else(|| std::env::current_dir().ok().and_then(|d| pdb_analyze::find_workspace_root(&d)))
    {
        Some(r) => r,
        None => return usage_error("could not find the workspace root; pass --root"),
    };

    let findings = match pdb_analyze::workspace::run(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("pdb-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Text => {
            for d in &findings {
                println!("{d}");
            }
        }
        Format::Json => println!("{}", pdb_analyze::diag::to_json(&findings)),
        Format::Github => {
            for d in &findings {
                println!("{}", pdb_analyze::diag::to_github(d));
            }
        }
    }
    if findings.is_empty() {
        eprintln!("pdb-analyze: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("pdb-analyze: {} finding(s)", findings.len());
        if check {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn bench_drift(files: &[String]) -> ExitCode {
    if files.is_empty() {
        return usage_error("bench-drift needs at least one BENCH_*.json path");
    }
    let root = match std::env::current_dir().ok().and_then(|d| pdb_analyze::find_workspace_root(&d))
    {
        Some(r) => r,
        None => return usage_error("could not find the workspace root"),
    };
    let mut drifted = false;
    for file in files {
        match pdb_analyze::bench_drift::check(&root, file) {
            Ok(d) if d.is_clean() => eprintln!("{file}: bench ids match HEAD"),
            Ok(d) => {
                drifted = true;
                for id in &d.added {
                    println!("{file}: id added (not in HEAD): {id}");
                }
                for id in &d.removed {
                    println!("{file}: id removed (still in HEAD): {id}");
                }
            }
            Err(e) => {
                eprintln!("pdb-analyze: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if drifted {
        eprintln!("pdb-analyze: bench id drift detected; update the committed BENCH_*.json");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("pdb-analyze: {msg}");
    eprint!("{}", USAGE);
    ExitCode::from(2)
}

const USAGE: &str = "\
Usage:
  pdb-analyze [--check] [--root <dir>] [--format <mode>]
                                         run the workspace lints
  pdb-analyze bench-drift <file>...      compare bench ids against HEAD
  pdb-analyze --list-lints               lint catalog with descriptions
  pdb-analyze --list                     lint names only

Formats: text (default, `file:line: [lint] message`), json (one document
with a findings array), github (workflow-command annotations).

Exit codes: 0 clean or findings without --check; 1 findings with --check
or bench-id drift; 2 usage or I/O errors.

Suppress one finding with a reasoned comment:
  // pdb-analyze: allow(<lint>): <reason>
";
