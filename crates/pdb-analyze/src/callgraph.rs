//! A whole-workspace call graph over the lexer/scanner, resolved by name.
//!
//! The graph is the substrate of the interprocedural lints: every `fn`
//! in the scanned first-party files becomes a node, and every call site
//! `name(...)` / `recv.name(...)` / `Path::name(...)` inside a body adds
//! edges to **every** workspace function of that name.  Name-based
//! resolution is deliberately conservative:
//!
//! - a method call resolves to every `fn` sharing the method's name,
//!   whatever type it is implemented on (shadowed names fan out);
//! - calls whose name no workspace `fn` defines (std, vendored crates)
//!   resolve to nothing and contribute no edges;
//! - macros (`name!(...)`) are never call edges;
//! - nested functions are separate nodes, but their tokens also sit
//!   inside the parent's body span, so the parent inherits their call
//!   sites — an over-approximation in the safe direction.
//!
//! That makes every derived "reachable" set an over-approximation, which
//! is the right polarity for the lints built on top (a handler flagged
//! for a panic it cannot actually reach is a suppressible false
//! positive; a panic missed because resolution was too clever would be a
//! silent soundness hole).

use crate::lexer::{SourceFile, TokenKind};
use crate::scanner::{functions, FileContext, FnSpan};
use std::collections::HashMap;

/// One function node in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the defining file in the slice the graph was built from.
    pub file: usize,
    /// The function's span (name, line, signature/body token ranges).
    pub span: FnSpan,
    /// Whether the function sits in test-only code (`#[cfg(test)]` /
    /// `#[test]`): kept in the graph but skipped by every lint.
    pub in_test: bool,
}

/// One unresolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee name as written (last path segment).
    pub name: String,
    /// Line of the callee identifier.
    pub line: u32,
    /// Resolved workspace callees (indices into [`CallGraph::fns`]);
    /// empty for std/vendored calls.
    pub targets: Vec<usize>,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Every function node, in file order.
    pub fns: Vec<FnNode>,
    /// Function ids per name (several ids when names shadow each other).
    pub by_name: HashMap<String, Vec<usize>>,
    /// Per-function call sites, aligned with [`CallGraph::fns`].
    pub calls: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Build the graph over `files`; `include[i]` gates whether file `i`
    /// contributes nodes and edges (examples and integration tests are
    /// walked by the workspace but kept out of the graph).
    pub fn build(files: &[SourceFile], ctxs: &[FileContext], include: &[bool]) -> CallGraph {
        let mut fns = Vec::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            if !include[fi] {
                continue;
            }
            for span in functions(file) {
                let in_test = ctxs[fi].in_test(&file.tokens[span.body.start]);
                by_name.entry(span.name.clone()).or_default().push(fns.len());
                fns.push(FnNode { file: fi, span, in_test });
            }
        }
        let calls = fns
            .iter()
            .map(|f| {
                let file = &files[f.file];
                call_sites(file, &f.span)
                    .into_iter()
                    .map(|(name, line)| {
                        let targets = by_name.get(&name).cloned().unwrap_or_default();
                        CallSite { name, line, targets }
                    })
                    .collect()
            })
            .collect();
        CallGraph { fns, by_name, calls }
    }

    /// Whether any workspace function named `name` satisfies `pred`.
    pub fn any_named(&self, name: &str, pred: impl Fn(usize) -> bool) -> bool {
        self.by_name.get(name).is_some_and(|ids| ids.iter().any(|&id| pred(id)))
    }

    /// Whether `name` resolves to at least one workspace function.
    pub fn defines(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Breadth-first reachability from `roots` over resolved call edges.
    /// Returns per-function "reached" flags and BFS parents (for
    /// reconstructing one call chain per reached function).
    pub fn reachable_from(&self, roots: &[usize]) -> (Vec<bool>, Vec<Option<usize>>) {
        let mut reached = vec![false; self.fns.len()];
        let mut parent = vec![None; self.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if !reached[r] {
                reached[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for site in &self.calls[f] {
                for &t in &site.targets {
                    if !reached[t] {
                        reached[t] = true;
                        parent[t] = Some(f);
                        queue.push_back(t);
                    }
                }
            }
        }
        (reached, parent)
    }

    /// The BFS call chain `root → ... → f` as function names, using the
    /// parents returned by [`CallGraph::reachable_from`].
    pub fn chain_to(&self, parent: &[Option<usize>], f: usize) -> Vec<String> {
        let mut chain = vec![self.fns[f].span.name.clone()];
        let mut cur = f;
        while let Some(p) = parent[cur] {
            chain.push(self.fns[p].span.name.clone());
            cur = p;
        }
        chain.reverse();
        chain
    }
}

/// Extract `(callee name, line)` for every call inside `span`'s body.
fn call_sites(file: &SourceFile, span: &FnSpan) -> Vec<(String, u32)> {
    let code: Vec<usize> = file
        .code_indices()
        .into_iter()
        .filter(|&ti| ti >= span.body.start && ti < span.body.end)
        .collect();
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = &file.tokens[code[i]];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = file.text(t);
        if crate::lints::is_keyword(name) {
            continue;
        }
        // A call is `name (` — possibly through a turbofish `name::<T>(`.
        // Puncts lex one char at a time, so `::<` is `:` `:` `<`.
        let mut j = i + 1;
        if crate::lints::adjacent_puncts(file, &code, j, ":", ":")
            && code.get(j + 2).is_some_and(|&ti| {
                let t = &file.tokens[ti];
                t.kind == TokenKind::Punct && file.text(t) == "<"
            })
        {
            let Some(close) = matching_angle(file, &code, j + 2) else { continue };
            j = close + 1;
        }
        let Some(&nti) = code.get(j) else { continue };
        let next = &file.tokens[nti];
        if next.kind != TokenKind::Punct || file.text(next) != "(" {
            continue;
        }
        // `fn name(` is a definition; `name!(` is a macro; `|name(` in a
        // pattern position cannot happen for parens.  Definitions are the
        // one shape that must not become a self-edge.
        if i > 0 {
            let prev = &file.tokens[code[i - 1]];
            if prev.kind == TokenKind::Ident && file.text(prev) == "fn" {
                continue;
            }
        }
        out.push((name.to_string(), t.line));
    }
    out
}

/// From the `<` at `code[open]`, the matching `>` (angle depth only).
fn matching_angle(file: &SourceFile, code: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0isize;
    for (off, &ti) in code[open..].iter().enumerate() {
        let t = &file.tokens[ti];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match file.text(t) {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(sources: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = sources.iter().map(|(p, s)| SourceFile::lex(*p, *s)).collect();
        let ctxs: Vec<FileContext> = files.iter().map(FileContext::new).collect();
        let include = vec![true; files.len()];
        let graph = CallGraph::build(&files, &ctxs, &include);
        (files, graph)
    }

    fn callees(graph: &CallGraph, name: &str) -> Vec<String> {
        let &id = &graph.by_name[name][0];
        let mut out: Vec<String> = graph.calls[id]
            .iter()
            .filter(|s| !s.targets.is_empty())
            .map(|s| s.name.clone())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn cross_file_calls_resolve() {
        let (_, g) = graph_of(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper(1); std_only(); }\n"),
            ("crates/b/src/lib.rs", "pub fn helper(x: u32) -> u32 { x }\n"),
        ]);
        assert_eq!(callees(&g, "entry"), vec!["helper"]);
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let (_, g) = graph_of(&[
            ("a.rs", "fn caller(s: &S) { s.evaluate(); v.push(1); }\n"),
            ("b.rs", "impl S { pub fn evaluate(&self) {} }\n"),
        ]);
        assert_eq!(callees(&g, "caller"), vec!["evaluate"]);
    }

    #[test]
    fn shadowed_names_fan_out_to_every_definition() {
        let (_, g) = graph_of(&[
            ("a.rs", "fn go() { helper(); }\n"),
            ("b.rs", "fn helper() {}\n"),
            ("c.rs", "fn helper() {}\n"),
        ]);
        let id = g.by_name["go"][0];
        let site = &g.calls[id][0];
        assert_eq!(site.targets.len(), 2, "{site:?}");
    }

    #[test]
    fn definitions_macros_and_turbofish_are_classified() {
        let (_, g) = graph_of(&[(
            "a.rs",
            "fn target<T>(x: T) {}\n\
             fn go() { target::<u8>(1); println!(\"target\"); }\n",
        )]);
        // The definition is not a self-edge; the turbofish call resolves;
        // the macro contributes nothing.
        assert!(g.calls[g.by_name["target"][0]].is_empty());
        assert_eq!(callees(&g, "go"), vec!["target"]);
    }

    #[test]
    fn reachability_and_chains() {
        let (_, g) = graph_of(&[(
            "a.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
        )]);
        let root = g.by_name["root"][0];
        let (reached, parent) = g.reachable_from(&[root]);
        assert!(reached[g.by_name["leaf"][0]]);
        assert!(!reached[g.by_name["island"][0]]);
        assert_eq!(g.chain_to(&parent, g.by_name["leaf"][0]), vec!["root", "mid", "leaf"]);
    }

    #[test]
    fn test_functions_are_marked() {
        let (_, g) = graph_of(&[("a.rs", "#[test]\nfn unit() {}\nfn live() {}\n")]);
        assert!(g.fns[g.by_name["unit"][0]].in_test);
        assert!(!g.fns[g.by_name["live"][0]].in_test);
    }
}
