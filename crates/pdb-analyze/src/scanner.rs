//! A lightweight item/block scanner on top of the lexer.
//!
//! The lints need three structural facts the flat token stream does not
//! give them directly:
//!
//! 1. **Test regions** — byte ranges covered by `#[cfg(test)]` modules
//!    and `#[test]` functions.  Panic/float lints deliberately skip test
//!    code: a test *should* `unwrap()` and may pin exact floats.
//! 2. **Function spans** — `fn` name + body token range, for the lints
//!    that reason per function body (lock order, durability pattern).
//! 3. **Suppressions** — `// pdb-analyze: allow(<lint>): <reason>`
//!    comments, with the line of code they cover.
//!
//! The scanner is brace-matching only — it never parses expressions —
//! which is exactly the sweet spot for repo-invariant lints: robust to
//! new syntax inside bodies, cheap to maintain, and easy to reason
//! about.

use crate::lexer::{SourceFile, Token, TokenKind};
use std::ops::Range;

/// A function found in a file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the signature: from the `fn` keyword up to
    /// (excluding) the body's opening brace.
    pub sig: Range<usize>,
    /// Token-index range of the body, *excluding* the outer braces.
    pub body: Range<usize>,
}

/// One `// pdb-analyze: allow(<lint>): <reason>` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The lint name inside `allow(...)`.
    pub lint: String,
    /// The reason after the closing paren (mandatory; an empty reason is
    /// itself a diagnostic).
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// The line of code the suppression covers (same line for a trailing
    /// comment, the next code-bearing line for a standalone one).
    pub covers_line: u32,
}

/// Byte ranges of test-only code (`#[cfg(test)]` items, `#[test]` fns).
pub fn test_regions(file: &SourceFile) -> Vec<Range<usize>> {
    let toks = &file.tokens;
    let code = file.code_indices();
    let mut regions = Vec::new();
    let mut pending_test_attr: Option<usize> = None; // token index of the `#`
    let mut i = 0usize;
    while i < code.len() {
        let ti = code[i];
        let t = &toks[ti];
        if t.kind == TokenKind::Punct && file.text(t) == "#" {
            // Attribute: `#[...]` or `#![...]` — scan the bracket group.
            let mut j = i + 1;
            if j < code.len() && file.text(&toks[code[j]]) == "!" {
                j += 1;
            }
            if j < code.len() && file.text(&toks[code[j]]) == "[" {
                let (end, mentions_test) = scan_attr(file, &code, j);
                if mentions_test && pending_test_attr.is_none() {
                    pending_test_attr = Some(ti);
                }
                i = end;
                continue;
            }
        }
        if t.kind == TokenKind::Ident {
            let text = file.text(t);
            if matches!(text, "fn" | "mod" | "impl" | "struct" | "enum" | "trait" | "const") {
                if let Some(attr_tok) = pending_test_attr.take() {
                    // The item the test attribute annotates: its region
                    // runs from the attribute to the end of the item's
                    // brace block (or its `;`).
                    let (end_byte, next_i) = item_end(file, &code, i);
                    regions.push(toks[attr_tok].start..end_byte);
                    i = next_i;
                    continue;
                }
            } else if matches!(text, "pub" | "async" | "unsafe" | "extern") {
                // Visibility/qualifiers between attribute and item keyword:
                // keep any pending attribute alive.
                i += 1;
                continue;
            }
        }
        // Any other code token between an attribute and an item keyword
        // (e.g. a statement) means the attribute annotated an expression;
        // drop the pending state so unrelated items are not swallowed.
        if !matches!(t.kind, TokenKind::Punct if matches!(file.text(t), "#" | "[" | "]" | "!")) {
            if let Some(attr_tok) = pending_test_attr {
                // Only reset when we've moved past the attribute itself.
                if t.start > toks[attr_tok].end {
                    pending_test_attr = None;
                }
            }
        }
        i += 1;
    }
    regions
}

/// Scan the attribute bracket group starting at `code[open_idx]` (the
/// `[`).  Returns (index one past the closing `]`, whether the attribute
/// mentions the identifier `test`).
fn scan_attr(file: &SourceFile, code: &[usize], open_idx: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut mentions = false;
    let mut i = open_idx;
    while i < code.len() {
        let t = &file.tokens[code[i]];
        match (t.kind, file.text(t)) {
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, mentions);
                }
            }
            (TokenKind::Ident, "test") => mentions = true,
            _ => {}
        }
        i += 1;
    }
    (i, mentions)
}

/// From the item keyword at `code[kw_idx]`, find the end of the item:
/// the matching `}` of its first brace block, or its terminating `;`.
/// Returns (byte offset one past the end, code index one past the end).
fn item_end(file: &SourceFile, code: &[usize], kw_idx: usize) -> (usize, usize) {
    let mut i = kw_idx;
    let mut depth = 0usize;
    while i < code.len() {
        let t = &file.tokens[code[i]];
        match (t.kind, file.text(t)) {
            (TokenKind::Punct, "{") => depth += 1,
            (TokenKind::Punct, "}") => {
                depth -= 1;
                if depth == 0 {
                    return (t.end, i + 1);
                }
            }
            (TokenKind::Punct, ";") if depth == 0 => return (t.end, i + 1),
            _ => {}
        }
        i += 1;
    }
    let end = file.tokens.last().map_or(0, |t| t.end);
    (end, i)
}

/// Every function in the file (test functions included — callers filter
/// by region if they need to).  Nested functions are reported separately
/// *and* included in their parent's span.
pub fn functions(file: &SourceFile) -> Vec<FnSpan> {
    let toks = &file.tokens;
    let code = file.code_indices();
    let mut fns = Vec::new();
    for (i, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokenKind::Ident || file.text(t) != "fn" {
            continue;
        }
        let Some(&name_ti) = code.get(i + 1) else { continue };
        let name_tok = &toks[name_ti];
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Find the body's `{`, unless a `;` ends the item first (trait
        // method declarations, extern fns).
        let mut j = i + 2;
        let mut angle = 0isize;
        let mut open = None;
        while let Some(&tj) = code.get(j) {
            let tok = &toks[tj];
            match (tok.kind, file.text(tok)) {
                (TokenKind::Punct, "<") => angle += 1,
                (TokenKind::Punct, ">") => angle -= 1,
                (TokenKind::Punct, "{") if angle <= 0 => {
                    open = Some(j);
                    break;
                }
                (TokenKind::Punct, ";") if angle <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        // Match the braces.
        let mut depth = 0usize;
        let mut k = open;
        let mut close = None;
        while let Some(&tk) = code.get(k) {
            match (toks[tk].kind, file.text(&toks[tk])) {
                (TokenKind::Punct, "{") => depth += 1,
                (TokenKind::Punct, "}") => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let close = close.unwrap_or(code.len());
        fns.push(FnSpan {
            name: file.text(name_tok).to_string(),
            line: t.line,
            sig: ti..code[open],
            // Token-index range over `code_indices()` positions mapped
            // back to raw token indices: store raw indices.
            body: code[open]..code.get(close).copied().unwrap_or(toks.len()),
        });
    }
    fns
}

/// Parse every suppression comment in the file.
pub fn suppressions(file: &SourceFile) -> Vec<Suppression> {
    const MARKER: &str = "pdb-analyze:";
    let mut line_has_code = std::collections::BTreeMap::<u32, bool>::new();
    let mut last_line = 1u32;
    for t in &file.tokens {
        if !t.kind.is_comment() {
            let entry = line_has_code.entry(t.line).or_insert(false);
            *entry = true;
        }
        last_line = last_line.max(t.line);
    }
    let mut out = Vec::new();
    for t in &file.tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = file.text(t);
        // Doc comments (`///`, `//!`) describe the syntax; only plain
        // `//` comments *are* suppressions.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let Some(at) = text.find(MARKER) else { continue };
        let rest = text[at + MARKER.len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else { continue };
        let Some(close) = rest.find(')') else { continue };
        let lint = rest[..close].trim().to_string();
        let mut reason = rest[close + 1..].trim();
        reason = reason.strip_prefix(':').unwrap_or(reason).trim();
        // A trailing comment covers its own line; a standalone comment
        // covers the next line that carries code.
        let covers_line = if line_has_code.get(&t.line).copied().unwrap_or(false) {
            t.line
        } else {
            (t.line + 1..=last_line)
                .find(|l| line_has_code.get(l).copied().unwrap_or(false))
                .unwrap_or(t.line + 1)
        };
        out.push(Suppression { lint, reason: reason.to_string(), line: t.line, covers_line });
    }
    out
}

/// Precomputed per-file context shared by the code lints.
#[derive(Debug)]
pub struct FileContext {
    test_regions: Vec<Range<usize>>,
}

impl FileContext {
    /// Build the context for one lexed file.
    pub fn new(file: &SourceFile) -> Self {
        Self { test_regions: test_regions(file) }
    }

    /// Whether a token sits inside test-only code.
    pub fn in_test(&self, token: &Token) -> bool {
        self.test_regions.iter().any(|r| r.contains(&token.start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_and_test_fns_are_regions() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n\
                   #[test]\nfn unit() { y.unwrap(); }\n\
                   fn also_live() {}\n";
        let file = SourceFile::lex("t.rs", src);
        let ctx = FileContext::new(&file);
        let tok_at = |needle: &str| {
            let at = src.find(needle).unwrap();
            *file.tokens.iter().find(|t| t.start == at).unwrap()
        };
        assert!(!ctx.in_test(&tok_at("live")));
        assert!(ctx.in_test(&tok_at("helper")));
        assert!(ctx.in_test(&tok_at("unit")));
        assert!(!ctx.in_test(&tok_at("also_live")));
    }

    #[test]
    fn functions_have_names_and_bodies() {
        let src = "impl Foo {\n  pub fn bar<T: Clone>(&self) -> u32 { baz(); 1 }\n}\n\
                   fn top() { inner(); fn nested() {} }\n";
        let file = SourceFile::lex("t.rs", src);
        let fns = functions(&file);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["bar", "top", "nested"]);
        let bar = &fns[0];
        let body_text: String = file.tokens[bar.body.clone()]
            .iter()
            .map(|t| file.text(t))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(body_text.contains("baz"), "{body_text}");
    }

    #[test]
    fn suppressions_parse_with_cover_lines() {
        let src = "let a = 1; // pdb-analyze: allow(float-eq): exact sentinel\n\
                   // pdb-analyze: allow(panic-path): guarded above\n\
                   let b = v[0];\n\
                   // pdb-analyze: allow(lock-order)\n\
                   let c = 2;\n";
        let file = SourceFile::lex("t.rs", src);
        let sups = suppressions(&file);
        assert_eq!(sups.len(), 3);
        assert_eq!((sups[0].lint.as_str(), sups[0].covers_line), ("float-eq", 1));
        assert_eq!(sups[0].reason, "exact sentinel");
        assert_eq!((sups[1].lint.as_str(), sups[1].covers_line), ("panic-path", 3));
        assert_eq!((sups[2].lint.as_str(), sups[2].covers_line), ("lock-order", 5));
        assert!(sups[2].reason.is_empty());
    }
}
