//! A comment/string/raw-string-aware Rust lexer.
//!
//! The lints in this crate are token-pattern matchers; the single thing
//! they cannot afford is mistaking the *inside* of a comment or literal
//! for code (a doc example calling `.unwrap()` is not a panic path) or
//! mistaking code for a literal (which would silently blind a lint).
//! This lexer does exactly that classification and nothing more: it
//! splits a source file into identifiers, numbers (integer and float
//! separately), punctuation, lifetimes, and the five literal/comment
//! shapes that can swallow arbitrary text — line comments, (nested)
//! block comments, string literals, raw strings with any number of `#`
//! guards, and char literals — each token carrying its byte span and
//! 1-based line number.
//!
//! It is *not* a full Rust lexer: it has no keyword table (keywords are
//! plain [`TokenKind::Ident`]s) and does not validate literals; it only
//! promises that token *boundaries and classes* are right, which the
//! proptest suite in `tests/lexer_proptest.rs` pins under randomized
//! interleavings of every tricky shape (lifetimes vs chars, `"#` inside
//! raw strings, quotes inside comments, `//` inside strings, ...).

/// What one token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (also raw identifiers, `r#type`).
    Ident,
    /// An integer literal (any base, with suffix).
    Int,
    /// A float literal (`1.0`, `1.`, `1e-3`, `2.5f64`).
    Float,
    /// One punctuation character (`.`, `=`, `[`, ...).
    Punct,
    /// A lifetime or loop label (`'a`, `'static`) — no closing quote.
    Lifetime,
    /// A `'x'` / `b'x'` char literal, escapes included.
    Char,
    /// A `"..."` / `b"..."` string literal, escapes included.
    Str,
    /// A raw string literal (`r"..."`, `r#"..."#`, `br##"..."##`).
    RawStr,
    /// A `// ...` comment (doc comments included), newline excluded.
    LineComment,
    /// A `/* ... */` comment, nesting respected.
    BlockComment,
}

impl TokenKind {
    /// Whether the token is a comment (invisible to code lints).
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether the token is a literal that can contain arbitrary text.
    pub fn is_textual_literal(self) -> bool {
        matches!(self, TokenKind::Str | TokenKind::RawStr | TokenKind::Char)
    }
}

/// One lexed token: class + byte span + line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token's class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

/// A lexed source file: the text plus its token stream.
#[derive(Debug)]
pub struct SourceFile {
    /// Display path used in diagnostics (workspace-relative).
    pub path: String,
    /// The raw source text.
    pub src: String,
    /// Every token, in order, comments included.
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Lex `src` into a token stream.
    pub fn lex(path: impl Into<String>, src: impl Into<String>) -> Self {
        let src = src.into();
        let tokens = lex(&src);
        Self { path: path.into(), src, tokens }
    }

    /// The text of one token.
    pub fn text(&self, token: &Token) -> &str {
        &self.src[token.start..token.end]
    }

    /// Indices of the non-comment tokens, in order (what the code lints
    /// walk).
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.tokens.len()).filter(|&i| !self.tokens[i].kind.is_comment()).collect()
    }
}

/// Lex a whole source text.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), text: src, pos: 0, line: 1, tokens: Vec::new() }.run()
}

struct Lexer<'s> {
    src: &'s [u8],
    text: &'s str,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            let kind = match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' => self.prefixed_or_ident(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => {
                    self.pos += 1;
                    TokenKind::Punct
                }
            };
            self.tokens.push(Token { kind, start, end: self.pos, line });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump_counting_lines(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_counting_lines();
            }
        }
        TokenKind::BlockComment
    }

    /// `r` / `b` can prefix raw strings, byte strings, byte chars and raw
    /// identifiers; anything else falls back to a plain identifier.
    fn prefixed_or_ident(&mut self) -> TokenKind {
        let b = self.src[self.pos];
        if b == b'b' {
            match self.peek(1) {
                Some(b'"') => {
                    self.pos += 1;
                    return self.string();
                }
                Some(b'\'') => {
                    self.pos += 1;
                    return self.char_literal();
                }
                Some(b'r') => {
                    if let Some(kind) = self.try_raw_string(2) {
                        return kind;
                    }
                }
                _ => {}
            }
        } else if b == b'r' {
            // `r#ident` is a raw identifier, `r#"` (any number of `#`)
            // opens a raw string, `r"` opens a raw string with no guard.
            if let Some(kind) = self.try_raw_string(1) {
                return kind;
            }
            if self.peek(1) == Some(b'#')
                && self.peek(2).is_some_and(|c| is_ident_start(c) || c.is_ascii_digit())
            {
                self.pos += 2; // raw identifier
                return self.ident();
            }
        }
        self.ident()
    }

    /// If the bytes at `prefix_len` hashes-then-quote open a raw string,
    /// consume it; otherwise leave the cursor untouched.
    fn try_raw_string(&mut self, prefix_len: usize) -> Option<TokenKind> {
        let mut hashes = 0usize;
        while self.peek(prefix_len + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(prefix_len + hashes) != Some(b'"') {
            return None;
        }
        self.pos += prefix_len + hashes + 1;
        // Scan for `"` followed by `hashes` hashes.
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                let mut got = 0usize;
                while got < hashes && self.peek(1 + got) == Some(b'#') {
                    got += 1;
                }
                if got == hashes {
                    self.pos += 1 + hashes;
                    return Some(TokenKind::RawStr);
                }
            }
            self.bump_counting_lines();
        }
        Some(TokenKind::RawStr) // unterminated: classify what we have
    }

    fn string(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos += 1; // the escape marker ...
                    if self.pos < self.src.len() {
                        self.bump_counting_lines(); // ... and the escaped byte
                    }
                }
                b'"' => {
                    self.pos += 1;
                    return TokenKind::Str;
                }
                _ => self.bump_counting_lines(),
            }
        }
        TokenKind::Str // unterminated
    }

    /// At a `'`: a char literal when a (possibly escaped) single char is
    /// followed by a closing quote, a lifetime/label when identifier
    /// characters follow without one.
    fn char_or_lifetime(&mut self) -> TokenKind {
        match self.peek(1) {
            Some(b'\\') => self.char_literal(),
            Some(c) => {
                // One char then a quote => char literal ('x', '(', '0').
                // The one char may be multi-byte UTF-8.
                let rest = &self.text[self.pos + 1..];
                let mut chars = rest.char_indices();
                if let Some((_, first)) = chars.next() {
                    if first != '\'' {
                        if let Some((next_at, '\'')) = chars.next() {
                            self.pos += 1 + next_at + 1;
                            return TokenKind::Char;
                        }
                    }
                }
                if is_ident_start(c) {
                    self.pos += 1;
                    while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                        self.pos += 1;
                    }
                    TokenKind::Lifetime
                } else {
                    self.pos += 1;
                    TokenKind::Punct // a stray quote; not valid Rust anyway
                }
            }
            None => {
                self.pos += 1;
                TokenKind::Punct
            }
        }
    }

    /// A char literal starting at the opening quote (escape-aware:
    /// `'\''`, `'\\'`, `'\u{1F600}'`).
    fn char_literal(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.src.len() {
                        self.pos += 1;
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    return TokenKind::Char;
                }
                b'\n' => return TokenKind::Char, // unterminated
                _ => self.pos += 1,
            }
        }
        TokenKind::Char
    }

    fn ident(&mut self) -> TokenKind {
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        TokenKind::Ident
    }

    /// An integer or float literal.  The subtle cases: `1..2` is an int
    /// and a range (not `1.` then `.2`), `x.0` is field access, `1.max()`
    /// does not exist but `1.` does, and `1e5` / `1.5e-3` carry
    /// exponents.
    fn number(&mut self) -> TokenKind {
        let mut float = false;
        if self.src[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.pos += 2;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_hexdigit() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            return TokenKind::Int;
        }
        self.digits();
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    self.pos += 1;
                    self.digits();
                }
                // `1.` is a float unless it opens a range (`1..`) or a
                // field/method access (`x.0` handled by the caller;
                // `1.to_string()` style: ident follows the dot).
                Some(b'.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    float = true;
                    self.pos += 1;
                }
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek(1), Some(b'+' | b'-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            float = true;
            self.pos += 1;
            if matches!(self.peek(0), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits();
        }
        // Type suffix (`f64`, `u32`, `_f32`).  A float suffix on digits
        // without dot/exponent (`1f64`) still makes a float.
        let suffix_start = self.pos;
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        let suffix = &self.text[suffix_start..self.pos];
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn digits(&mut self) {
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, &src[t.start..t.end])).collect()
    }

    #[test]
    fn comments_strings_and_code_separate() {
        let src = "let x = \"// not a comment\"; // real comment\n/* block \"quote\" */ y";
        let toks = kinds(src);
        assert_eq!(toks[0], (TokenKind::Ident, "let"));
        assert_eq!(toks[3], (TokenKind::Str, "\"// not a comment\""));
        assert_eq!(toks[5], (TokenKind::LineComment, "// real comment"));
        assert_eq!(toks[6], (TokenKind::BlockComment, "/* block \"quote\" */"));
        assert_eq!(toks[7], (TokenKind::Ident, "y"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ after");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "after"));
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r###"r#"has " quote"# r"plain" br##"x"# y"## tail"###;
        let toks = kinds(src);
        assert_eq!(toks[0], (TokenKind::RawStr, r##"r#"has " quote"#"##));
        assert_eq!(toks[1], (TokenKind::RawStr, r#"r"plain""#));
        assert_eq!(toks[2].0, TokenKind::RawStr);
        assert_eq!(toks[3], (TokenKind::Ident, "tail"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("&'a str 'x' '\\'' 'static b'z' '\u{e9}'");
        let got: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            got,
            vec![
                TokenKind::Punct,    // &
                TokenKind::Lifetime, // 'a
                TokenKind::Ident,    // str
                TokenKind::Char,     // 'x'
                TokenKind::Char,     // '\''
                TokenKind::Lifetime, // 'static
                TokenKind::Char,     // b'z'
                TokenKind::Char,     // 'é'
            ]
        );
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("r#type r#\"raw\"#");
        assert_eq!(toks[0], (TokenKind::Ident, "r#type"));
        assert_eq!(toks[1].0, TokenKind::RawStr);
    }

    #[test]
    fn numbers_int_vs_float() {
        let toks = kinds("1 1.0 1. 1..2 0xFF 1e5 1.5e-3 2f64 x.0 3usize");
        let nums: Vec<(TokenKind, &str)> = toks
            .into_iter()
            .filter(|(k, _)| matches!(k, TokenKind::Int | TokenKind::Float))
            .collect();
        assert_eq!(
            nums,
            vec![
                (TokenKind::Int, "1"),
                (TokenKind::Float, "1.0"),
                (TokenKind::Float, "1."),
                (TokenKind::Int, "1"),
                (TokenKind::Int, "2"),
                (TokenKind::Int, "0xFF"),
                (TokenKind::Float, "1e5"),
                (TokenKind::Float, "1.5e-3"),
                (TokenKind::Float, "2f64"),
                (TokenKind::Int, "0"),
                (TokenKind::Int, "3usize"),
            ]
        );
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n/* x\ny */\nb \"s\ntr\" c";
        let toks = lex(src);
        let by_text: Vec<(String, u32)> =
            toks.iter().map(|t| (src[t.start..t.end].to_string(), t.line)).collect();
        assert_eq!(by_text[0], ("a".to_string(), 1));
        assert_eq!(by_text[1].1, 2); // block comment starts line 2
        assert_eq!(by_text[2], ("b".to_string(), 4));
        assert_eq!(by_text[3].1, 4); // string starts line 4
        assert_eq!(by_text[4], ("c".to_string(), 5));
    }
}
