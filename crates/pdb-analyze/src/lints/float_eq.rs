//! **float-eq**: no `==`/`!=` against float literals outside approved
//! tolerance helpers.
//!
//! Probability math runs on `f64` everywhere in this workspace; exact
//! equality against a computed probability is almost always a bug (the
//! quality tests learned this the hard way — they compare through
//! `approx_*` helpers with an explicit tolerance).  The lint is
//! literal-based: it flags a comparison when either operand is a float
//! literal (`x == 0.0`, `1.5 != y`).  Comparisons of two float-typed
//! *variables* are invisible to a lexer-level pass — the lint documents
//! exactly what it can see, rather than pretending to be a type checker.
//!
//! Deliberate exact comparisons (sparsity gates against a value that was
//! *assigned*, not computed — `if prob == 0.0 { skip }`) carry a
//! suppression with a reason.  Functions whose name starts with `approx`
//! are exempt wholesale: they are the tolerance helpers themselves.

use super::adjacent_puncts;
use crate::diag::Diagnostic;
use crate::lexer::{SourceFile, TokenKind};
use crate::scanner::{functions, FileContext};

/// Run the lint on one file.
pub fn check(file: &SourceFile, ctx: &FileContext) -> Vec<Diagnostic> {
    let code = file.code_indices();
    let approx_bodies: Vec<std::ops::Range<usize>> = functions(file)
        .into_iter()
        .filter(|f| f.name.starts_with("approx"))
        .map(|f| f.body)
        .collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < code.len() {
        let is_eq = adjacent_puncts(file, &code, i, "=", "=");
        let is_ne = adjacent_puncts(file, &code, i, "!", "=");
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // `a === b` / `<==` cannot occur in valid Rust; `x !=` is only a
        // comparison when something other than `=` precedes (rules out
        // matching the tail of `==` as a fresh pair).
        let op_tok = &file.tokens[code[i]];
        let prev_float = i > 0 && file.tokens[code[i - 1]].kind == TokenKind::Float;
        // Right operand: allow a unary minus (`x == -0.5`).
        let mut rhs = i + 2;
        if code.get(rhs).is_some_and(|&ti| {
            file.tokens[ti].kind == TokenKind::Punct && file.text(&file.tokens[ti]) == "-"
        }) {
            rhs += 1;
        }
        let next_float = code.get(rhs).is_some_and(|&ti| file.tokens[ti].kind == TokenKind::Float);
        if (prev_float || next_float)
            && !ctx.in_test(op_tok)
            && !approx_bodies.iter().any(|r| r.contains(&code[i]))
        {
            let op = if is_eq { "==" } else { "!=" };
            out.push(Diagnostic::new(
                "float-eq",
                &file.path,
                op_tok.line,
                format!("`{op}` against a float literal; compare with a tolerance helper"),
            ));
        }
        i += 2; // skip past the operator pair
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileContext;

    fn run(src: &str) -> Vec<u32> {
        let file = SourceFile::lex("t.rs", src);
        let ctx = FileContext::new(&file);
        check(&file, &ctx).into_iter().map(|d| d.line).collect()
    }

    #[test]
    fn float_literal_comparisons_flagged() {
        let src = "fn f(x: f64) {\n  if x == 0.0 {}\n  if 1.5 != x {}\n  if x == y {}\n  if n == 3 {}\n}\n";
        assert_eq!(run(src), vec![2, 3]);
    }

    #[test]
    fn approx_helpers_and_tests_exempt() {
        let src = "fn approx_eq(a: f64, b: f64) -> bool { (a - b).abs() < 1e-9 || a == 0.0 }\n\
                   #[test]\nfn t() { assert!(x == 0.5); }\n";
        assert_eq!(run(src), Vec::<u32>::new());
    }

    #[test]
    fn assignment_and_arrows_not_confused() {
        let src = "fn f() {\n  let x = 0.0;\n  let c = |v| v >= 1.0;\n  match x { v => v }\n}\n";
        assert_eq!(run(src), Vec::<u32>::new());
    }
}
