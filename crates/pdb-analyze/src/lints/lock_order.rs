//! **lock-order**: a shard-map lock guard (`RwLock` `read()`/`write()`)
//! must not be live when a per-session `Mutex` is taken (`.lock()`).
//!
//! The server's deadlock-freedom argument (see
//! `pdb-server/src/session.rs`) is exactly this ordering: shard-map locks
//! are only held for map operations, and every session `Mutex` is locked
//! *after* the shard guard is dropped.  The lint enforces the argument
//! per function body:
//!
//! - a `let` binding whose initializer ends in `.read()`/`.write()`
//!   followed only by *guard-preserving* adapters (`unwrap`, `expect`,
//!   `unwrap_or_else`, ...) makes the guard **live** until its scope
//!   closes or it is explicitly `drop(...)`ed;
//! - a `.read()`/`.write()` used mid-expression keeps a temporary guard
//!   live to the end of the statement;
//! - any `.lock()` while a guard is live is a violation.
//!
//! `try_lock()` is not flagged: it cannot block, so it cannot deadlock
//! against the shard guard.

use crate::diag::Diagnostic;
use crate::lexer::{SourceFile, TokenKind};
use crate::scanner::{functions, FileContext};

/// Method names that keep returning the guard (so the binding still owns
/// it).  Anything else (`.get(..)`, `.len()`, ...) consumes the guard
/// expression into a derived value and the temporary dies with the
/// statement.
const GUARD_PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else", "unwrap_or", "map_err"];

struct Guard {
    name: String,
    /// The guard dies when brace depth drops below this.
    min_depth: isize,
    line: u32,
}

/// Run the lint on one file, intraprocedurally (fixtures and files
/// analyzed without a call graph).
pub fn check(file: &SourceFile, ctx: &FileContext) -> Vec<Diagnostic> {
    check_with(file, ctx, &|_| false)
}

/// The interprocedural form: `takes_lock(name)` answers whether a callee
/// named `name` *transitively* ends up in `.lock()` (the workspace pass
/// feeds the fixpoint summaries in here).  A call to such a function
/// while a shard guard is live deadlocks exactly like an inline
/// `.lock()` — the lock is merely one stack frame further down.
pub fn check_with(
    file: &SourceFile,
    ctx: &FileContext,
    takes_lock: &dyn Fn(&str) -> bool,
) -> Vec<Diagnostic> {
    let code = file.code_indices();
    let mut out = Vec::new();
    for f in functions(file) {
        // Map the raw-token body range back to positions in `code`.
        let body: Vec<usize> =
            code.iter().copied().filter(|&ti| ti >= f.body.start && ti < f.body.end).collect();
        if body.is_empty() || ctx.in_test(&file.tokens[f.body.start]) {
            continue;
        }
        check_body(file, &body, takes_lock, &mut out);
    }
    out
}

fn check_body(
    file: &SourceFile,
    body: &[usize],
    takes_lock: &dyn Fn(&str) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let mut depth = 0isize;
    let mut guards: Vec<Guard> = Vec::new();
    // Statement-local state.
    let mut stmt_guard_live = false; // a temporary read()/write() guard
    let mut let_names: Vec<String> = Vec::new();
    let mut in_let_pattern = false;
    let mut let_was_if = false;
    let mut i = 0usize;
    while i < body.len() {
        let ti = body[i];
        let t = &file.tokens[ti];
        let text = file.text(t);
        match t.kind {
            TokenKind::Punct => match text {
                "{" => {
                    depth += 1;
                    // Condition temporaries (`if map.read().unwrap().x() {`)
                    // drop before the block body runs.
                    stmt_guard_live = false;
                    let_was_if = false;
                }
                "}" => {
                    depth -= 1;
                    guards.retain(|g| depth >= g.min_depth);
                    stmt_guard_live = false;
                    let_was_if = false;
                }
                ";" => {
                    stmt_guard_live = false;
                    in_let_pattern = false;
                    let_names.clear();
                    let_was_if = false;
                }
                "=" if in_let_pattern => {
                    in_let_pattern = false;
                }
                _ => {}
            },
            TokenKind::Ident => match text {
                "if" | "while" => let_was_if = true,
                "let" => {
                    in_let_pattern = true;
                    let_names.clear();
                }
                "mut" => {}
                "drop" => {
                    // `drop(name)` releases a named guard.
                    if let (Some(&p), Some(&n)) = (body.get(i + 1), body.get(i + 2)) {
                        if file.text(&file.tokens[p]) == "("
                            && file.tokens[n].kind == TokenKind::Ident
                        {
                            let name = file.text(&file.tokens[n]);
                            guards.retain(|g| g.name != name);
                        }
                    }
                }
                // Relative to `code_indices` positions inside `body`.
                "read" | "write" if is_no_arg_method(file, body, i) => {
                    if in_let_pattern {
                        // `let x = ... .read()` cannot appear while the
                        // pattern is still open; ignore.
                    } else if let Some(end) = guard_preserving_chain_end(file, body, i) {
                        // Chain ends the statement: a named guard if we
                        // are in a let statement.
                        if !let_names.is_empty() && stmt_ends_at(file, body, end) {
                            let min_depth = if let_was_if { depth + 1 } else { depth };
                            guards.push(Guard {
                                name: let_names.last().cloned().unwrap_or_default(),
                                min_depth,
                                line: t.line,
                            });
                            let_names.clear();
                            let_was_if = false;
                        } else {
                            stmt_guard_live = true;
                        }
                    } else {
                        stmt_guard_live = true;
                    }
                }
                "lock" if is_no_arg_method(file, body, i) => {
                    if let Some(g) = guards.last() {
                        out.push(Diagnostic::new(
                            "lock-order",
                            &file.path,
                            t.line,
                            format!(
                                ".lock() taken while shard guard `{}` (line {}) is live; \
                                 drop the shard guard first",
                                g.name, g.line
                            ),
                        ));
                    } else if stmt_guard_live {
                        out.push(Diagnostic::new(
                            "lock-order",
                            &file.path,
                            t.line,
                            ".lock() taken in the same statement as a shard read()/write() \
                             guard; split the statement so the guard drops first",
                        ));
                    }
                }
                name if in_let_pattern => {
                    let_names.push(name.to_string());
                }
                name if is_call_at(file, body, i) && takes_lock(name) => {
                    if let Some(g) = guards.last() {
                        out.push(Diagnostic::new(
                            "lock-order",
                            &file.path,
                            t.line,
                            format!(
                                "`{name}(...)` takes a session lock transitively while shard \
                                 guard `{}` (line {}) is live; drop the shard guard first",
                                g.name, g.line
                            ),
                        ));
                    } else if stmt_guard_live {
                        out.push(Diagnostic::new(
                            "lock-order",
                            &file.path,
                            t.line,
                            format!(
                                "`{name}(...)` takes a session lock transitively in the same \
                                 statement as a shard read()/write() guard; split the statement \
                                 so the guard drops first"
                            ),
                        ));
                    }
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
}

/// `body[i]` is an ident; is it `.name()` with an empty argument list?
fn is_no_arg_method(file: &SourceFile, body: &[usize], i: usize) -> bool {
    if !is_method_call_at(file, body, i) {
        return false;
    }
    body.get(i + 2).is_some_and(|&ti| file.text(&file.tokens[ti]) == ")")
}

fn is_method_call_at(file: &SourceFile, body: &[usize], i: usize) -> bool {
    let prev_is_dot = i > 0 && file.text(&file.tokens[body[i - 1]]) == ".";
    let next_is_paren = body.get(i + 1).is_some_and(|&ti| file.text(&file.tokens[ti]) == "(");
    prev_is_dot && next_is_paren
}

/// `body[i]` is an ident; is it a call (free or method), `name(...)`?
fn is_call_at(file: &SourceFile, body: &[usize], i: usize) -> bool {
    body.get(i + 1).is_some_and(|&ti| file.text(&file.tokens[ti]) == "(")
}

/// From the `read`/`write` ident at `body[i]`, walk the trailing method
/// chain as long as every link is guard-preserving.  Returns the position
/// just past the chain (at the token that ends it) if the whole chain is
/// guard-preserving, `None` if a non-preserving method appears.
fn guard_preserving_chain_end(file: &SourceFile, body: &[usize], i: usize) -> Option<usize> {
    // Skip our own `()`.
    let mut j = i + 3; // ident ( )
    loop {
        let Some(&ti) = body.get(j) else { return Some(j) };
        if file.text(&file.tokens[ti]) != "." {
            return Some(j);
        }
        let Some(&mi) = body.get(j + 1) else { return Some(j) };
        let m = &file.tokens[mi];
        if m.kind != TokenKind::Ident || !GUARD_PRESERVING.contains(&file.text(m)) {
            return None;
        }
        // Skip the argument list (may hold a closure).
        let Some(&pi) = body.get(j + 2) else { return Some(j + 2) };
        if file.text(&file.tokens[pi]) != "(" {
            return None;
        }
        let close = matching_close_in(file, body, j + 2)?;
        j = close + 1;
    }
}

/// Whether the chain ending at `body[pos]` ends its statement: `;`, the
/// enclosing `}`, or the `{` opening an `if let` body.
fn stmt_ends_at(file: &SourceFile, body: &[usize], pos: usize) -> bool {
    body.get(pos).is_none_or(|&ti| matches!(file.text(&file.tokens[ti]), ";" | "}" | "{"))
}

fn matching_close_in(file: &SourceFile, body: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0isize;
    for (off, &ti) in body[open..].iter().enumerate() {
        let t = &file.tokens[ti];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match file.text(t) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileContext;

    fn run(src: &str) -> Vec<u32> {
        let file = SourceFile::lex("t.rs", src);
        let ctx = FileContext::new(&file);
        check(&file, &ctx).into_iter().map(|d| d.line).collect()
    }

    #[test]
    fn lock_under_live_guard_is_flagged() {
        let src = "fn f(&self) {\n\
                   let shard = self.shards[i].read().unwrap();\n\
                   let s = handle.lock().unwrap();\n\
                   }\n";
        assert_eq!(run(src), vec![3]);
    }

    #[test]
    fn guard_dropped_before_lock_is_fine() {
        let src = "fn f(&self) {\n\
                   let handle = { let shard = self.shards[i].read().unwrap(); shard.get(&id).cloned() };\n\
                   let s = handle.lock().unwrap();\n\
                   }\n";
        assert_eq!(run(src), Vec::<u32>::new());
    }

    #[test]
    fn explicit_drop_releases_guard() {
        let src = "fn f(&self) {\n\
                   let shard = map.read().unwrap_or_else(|e| e.into_inner());\n\
                   drop(shard);\n\
                   let s = handle.lock().unwrap();\n\
                   }\n";
        assert_eq!(run(src), Vec::<u32>::new());
    }

    #[test]
    fn temporary_guard_in_same_statement_is_flagged() {
        let src = "fn f(&self) {\n\
                   let v = map.read().unwrap().get(&id).unwrap().lock().unwrap();\n\
                   }\n";
        assert_eq!(run(src), vec![2]);
    }

    #[test]
    fn derived_value_does_not_hold_guard() {
        let src = "fn f(&self) {\n\
                   let ids = map.read().unwrap().keys().cloned().collect::<Vec<_>>();\n\
                   let s = handle.lock().unwrap();\n\
                   }\n";
        assert_eq!(run(src), Vec::<u32>::new());
    }

    #[test]
    fn if_let_guard_scopes_to_its_block() {
        let src = "fn f(&self) {\n\
                   if let Ok(shard) = map.read() {\n\
                   let n = shard.len();\n\
                   }\n\
                   let s = handle.lock().unwrap();\n\
                   }\n";
        assert_eq!(run(src), Vec::<u32>::new());
    }

    #[test]
    fn transitive_lock_via_callee_is_flagged() {
        let src = "fn f(&self) {\n\
                   let shard = map.read().unwrap();\n\
                   compact_session(id);\n\
                   }\n\
                   fn g(&self) {\n\
                   compact_session(id);\n\
                   }\n";
        let file = SourceFile::lex("t.rs", src);
        let ctx = FileContext::new(&file);
        let got: Vec<u32> = check_with(&file, &ctx, &|n| n == "compact_session")
            .into_iter()
            .map(|d| d.line)
            .collect();
        // Flagged under the live guard in `f`; fine with no guard in `g`.
        assert_eq!(got, vec![3]);
    }

    #[test]
    fn try_lock_is_not_flagged() {
        let src = "fn f(&self) {\n\
                   let shard = map.read().unwrap();\n\
                   let s = handle.try_lock();\n\
                   }\n";
        assert_eq!(run(src), Vec::<u32>::new());
    }
}
