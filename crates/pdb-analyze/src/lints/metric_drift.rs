//! **metric-drift**: the observability metric catalog is defined once
//! and documented once; this lint keeps the two in sync.
//!
//! Source of truth: the string literals in
//! `crates/pdb-obs/src/names.rs` (every registered series name lives
//! there as a `pub const`).  Checked against it: the README's metric
//! reference table (header row starting `| Metric`), in both
//! directions — an instrumented series an operator cannot look up is
//! invisible, and a documented series that no longer exists sends
//! dashboards chasing ghosts.

use crate::diag::Diagnostic;
use crate::lexer::{SourceFile, TokenKind};
use std::collections::BTreeSet;
use std::path::Path;

const NAMES: &str = "crates/pdb-obs/src/names.rs";
const README: &str = "README.md";

/// Run the cross-file check from the workspace root.
pub fn check(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // A workspace without the observability crate (e.g. the lint test
    // fixtures) has no catalog to drift from; the crate-layout checks
    // own missing-crate reporting, so skip rather than diagnose.
    let Ok(src) = std::fs::read_to_string(root.join(NAMES)) else { return out };
    let names = SourceFile::lex(NAMES, src);
    let readme = match std::fs::read_to_string(root.join(README)) {
        Ok(text) => text,
        Err(e) => {
            out.push(Diagnostic::new("metric-drift", README, 1, format!("unreadable: {e}")));
            return out;
        }
    };

    let declared = name_literals(&names);
    if declared.is_empty() {
        out.push(Diagnostic::new(
            "metric-drift",
            NAMES,
            1,
            "could not find any metric name literals",
        ));
        return out;
    }

    let documented = table_rows(&readme, "| Metric", "|");
    if documented.is_empty() {
        out.push(Diagnostic::new(
            "metric-drift",
            README,
            1,
            "README has no metric table (header row starting `| Metric`)",
        ));
        return out;
    }

    for name in declared.difference(&documented) {
        out.push(Diagnostic::new(
            "metric-drift",
            README,
            1,
            format!(
                "metric `{name}` is registered in pdb-obs but missing from the README metric table"
            ),
        ));
    }
    for name in documented.difference(&declared) {
        out.push(Diagnostic::new(
            "metric-drift",
            README,
            1,
            format!("the README metric table lists `{name}`, which pdb-obs does not register"),
        ));
    }
    out
}

/// Every string literal in the names module.  The module holds nothing
/// but `pub const NAME: &str = "..."` declarations (its doc comment
/// says so and points here), so collecting all literals is exact.
fn name_literals(file: &SourceFile) -> BTreeSet<String> {
    file.tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Str)
        .map(|t| file.text(t).trim_matches('"').to_string())
        .collect()
}

/// Rows of a pipe table: from the line starting with `header_prefix`,
/// collect the first backticked word of every following line that starts
/// with `row_prefix`, until the table ends.  (Same shape as the
/// protocol-drift table scanner; kept separate so the two lints stay
/// independently testable.)
fn table_rows(text: &str, header_prefix: &str, row_prefix: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_table = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if !in_table {
            if trimmed.starts_with(header_prefix) {
                in_table = true;
            }
            continue;
        }
        if !trimmed.starts_with(row_prefix) {
            break;
        }
        if let Some(name) = first_backticked(trimmed) {
            out.insert(name);
        }
    }
    out
}

fn first_backticked(line: &str) -> Option<String> {
    let open = line.find('`')?;
    let rest = &line[open + 1..];
    let close = rest.find('`')?;
    Some(rest[..close].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_literals_are_collected() {
        let src = "pub const A: &str = \"alpha_total\";\npub const B: &str = \"beta_ns\";\n";
        let file = SourceFile::lex("names.rs", src);
        assert_eq!(
            name_literals(&file),
            ["alpha_total", "beta_ns"].iter().map(|s| s.to_string()).collect()
        );
    }

    #[test]
    fn metric_table_rows_stop_at_table_end() {
        let text = "| Metric | Kind |\n|---|---|\n| `a_total` | counter |\n\n| `stray` | x |\n";
        let rows = table_rows(text, "| Metric", "|");
        assert_eq!(rows, ["a_total"].iter().map(|s| s.to_string()).collect());
    }

    #[test]
    fn live_catalog_matches_the_live_readme() {
        // The real check, run against this workspace: the repo must not
        // merge with its own catalog drifted.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = check(&root);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
