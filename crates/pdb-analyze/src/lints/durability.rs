//! **durability-pattern**: every file created in `pdb-store` must be
//! fsync'd and published atomically.
//!
//! The store's crash-safety story (PR 5) is: write to a temp path, call
//! `sync_all`/`sync_data`, then `rename` into place (and fsync the parent
//! directory).  This lint keeps new code on that path:
//!
//! - `fs::write(..)` is always flagged — it neither syncs nor renames;
//! - a function body containing `File::create` must also contain a
//!   `sync_all`/`sync_data` call *and* a `rename` call, otherwise the
//!   `File::create` is flagged.
//!
//! Append-mode opens (`OpenOptions`) are not matched by the pattern; the
//! WAL's append path carries its own fsync and is covered by the
//! recovery test suite.

use crate::diag::Diagnostic;
use crate::lexer::{SourceFile, TokenKind};
use crate::scanner::{functions, FileContext};

/// Run the lint on one file.
pub fn check(file: &SourceFile, ctx: &FileContext) -> Vec<Diagnostic> {
    let code = file.code_indices();
    let mut out = Vec::new();
    for f in functions(file) {
        if ctx.in_test(&file.tokens[f.body.start]) {
            continue;
        }
        let body: Vec<usize> =
            code.iter().copied().filter(|&ti| ti >= f.body.start && ti < f.body.end).collect();
        let mut creates: Vec<u32> = Vec::new();
        let mut has_sync = false;
        let mut has_rename = false;
        for (i, &ti) in body.iter().enumerate() {
            let t = &file.tokens[ti];
            if t.kind != TokenKind::Ident {
                continue;
            }
            match file.text(t) {
                "create" if path_call(file, &body, i, "File") => creates.push(t.line),
                "write" if path_call(file, &body, i, "fs") => {
                    out.push(Diagnostic::new(
                        "durability-pattern",
                        &file.path,
                        t.line,
                        "fs::write is not durable; use the tmp+fsync+rename helper",
                    ));
                }
                "sync_all" | "sync_data" => has_sync = true,
                "rename" => has_rename = true,
                _ => {}
            }
        }
        for line in creates {
            let missing = match (has_sync, has_rename) {
                (false, false) => "sync_all/sync_data and rename",
                (false, true) => "sync_all/sync_data",
                (true, false) => "rename",
                (true, true) => continue,
            };
            out.push(Diagnostic::new(
                "durability-pattern",
                &file.path,
                line,
                format!(
                    "File::create without {missing} in the same function; \
                     publish files via tmp+fsync+rename"
                ),
            ));
        }
    }
    out.sort_by_key(|d| d.line);
    out
}

/// `Qual::name(` — the ident at `body[i]` called through a `::` path whose
/// last segment is `qual` (`File::create`, `fs::write`,
/// `std::fs::write`).
fn path_call(file: &SourceFile, body: &[usize], i: usize, qual: &str) -> bool {
    // Followed by `(`.
    if body.get(i + 1).is_none_or(|&ti| file.text(&file.tokens[ti]) != "(") {
        return false;
    }
    // Preceded by `qual` `:` `:`.
    if i < 3 {
        return false;
    }
    let c1 = &file.tokens[body[i - 1]];
    let c2 = &file.tokens[body[i - 2]];
    let q = &file.tokens[body[i - 3]];
    c1.kind == TokenKind::Punct
        && file.text(c1) == ":"
        && c2.kind == TokenKind::Punct
        && file.text(c2) == ":"
        && q.kind == TokenKind::Ident
        && file.text(q) == qual
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileContext;

    fn run(src: &str) -> Vec<(u32, String)> {
        let file = SourceFile::lex("t.rs", src);
        let ctx = FileContext::new(&file);
        check(&file, &ctx).into_iter().map(|d| (d.line, d.message)).collect()
    }

    #[test]
    fn bare_create_is_flagged() {
        let got =
            run("fn save(p: &Path) {\n  let f = File::create(p)?;\n  f.write_all(b\"x\")?;\n}\n");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 2);
        assert!(got[0].1.contains("sync_all/sync_data and rename"), "{}", got[0].1);
    }

    #[test]
    fn tmp_fsync_rename_is_fine() {
        let got = run(
            "fn save(p: &Path) {\n  let tmp = p.with_extension(\"tmp\");\n  let f = File::create(&tmp)?;\n  f.write_all(b\"x\")?;\n  f.sync_data()?;\n  fs::rename(&tmp, p)?;\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn fs_write_always_flagged() {
        let got = run("fn save(p: &Path) {\n  fs::write(p, b\"x\")?;\n}\n");
        assert_eq!(got.len(), 1);
        assert!(got[0].1.contains("fs::write"));
    }

    #[test]
    fn create_missing_only_rename() {
        let got = run("fn save(p: &Path) {\n  let f = File::create(p)?;\n  f.sync_all()?;\n}\n");
        assert_eq!(got.len(), 1);
        assert!(got[0].1.contains("without rename"), "{}", got[0].1);
    }

    #[test]
    fn test_code_is_skipped() {
        let got = run("#[test]\nfn t() { let f = File::create(p).unwrap(); }\n");
        assert!(got.is_empty(), "{got:?}");
    }
}
