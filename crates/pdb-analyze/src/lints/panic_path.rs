//! **panic-path**: request-handling, WAL-replay and CLI command code must
//! surface failures as `Result`s, never as panics.
//!
//! Flags, outside test regions:
//!
//! - `.unwrap(` / `.expect(` method calls,
//! - the panicking macros `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`,
//! - explicit index expressions `expr[i]` (a panic on out-of-range).
//!
//! Range slicing (`&buf[a..b]`) is deliberately *not* flagged: the
//! workspace style uses checked `get()` helpers where a short slice is
//! reachable, and flagging every range would bury the real findings.
//! `assert!`/`debug_assert!` are likewise allowed — they document
//! invariants, and the repo's fail-stop paths use explicit errors.

use super::{is_keyword, is_method_call, matching_close};
use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lexer::{SourceFile, TokenKind};
use crate::scanner::FileContext;
use crate::summaries::{FnSummary, PANIC_MACROS};

/// Run the lint on one file.
pub fn check(file: &SourceFile, ctx: &FileContext) -> Vec<Diagnostic> {
    let code = file.code_indices();
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = &file.tokens[code[i]];
        if ctx.in_test(t) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let text = file.text(t);
                if (text == "unwrap" || text == "expect") && is_method_call(file, &code, i) {
                    out.push(Diagnostic::new(
                        "panic-path",
                        &file.path,
                        t.line,
                        format!(".{text}() panics on failure; return an error instead"),
                    ));
                } else if PANIC_MACROS.contains(&text) && bang_follows(file, &code, i) {
                    out.push(Diagnostic::new(
                        "panic-path",
                        &file.path,
                        t.line,
                        format!("{text}! aborts the request path; return an error instead"),
                    ));
                }
            }
            TokenKind::Punct if file.text(t) == "[" && is_index_expr(file, &code, i) => {
                out.push(Diagnostic::new(
                    "panic-path",
                    &file.path,
                    t.line,
                    "explicit indexing panics when out of range; use get()",
                ));
            }
            _ => {}
        }
    }
    out
}

/// The interprocedural extension: a panic site anywhere in the workspace
/// that a request/replay/CLI path (`applies(path)` files) can *reach*
/// through the call graph is as fatal as one written inline.  Only
/// `.unwrap()`/`.expect()` and the panicking macros travel — indexing is
/// deliberately not a transitive fact (the engine kernels index
/// everywhere, and callers cannot do anything about a callee's slice
/// arithmetic short of rewriting it).
///
/// Findings are reported **at the panic site** (so per-line suppressions
/// keep working) and carry one witness call chain from an entry function.
/// Sites inside `applies` files are skipped: the intraprocedural pass
/// above already reports those.
pub fn check_interprocedural(
    graph: &CallGraph,
    sums: &[FnSummary],
    files: &[SourceFile],
    applies: &dyn Fn(&str) -> bool,
) -> Vec<Diagnostic> {
    let roots: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.in_test && applies(&files[f.file].path))
        .map(|(id, _)| id)
        .collect();
    let (reached, parent) = graph.reachable_from(&roots);
    let mut out = Vec::new();
    let mut seen: std::collections::HashSet<(usize, u32, String)> =
        std::collections::HashSet::new();
    for (id, f) in graph.fns.iter().enumerate() {
        if !reached[id] || f.in_test || applies(&files[f.file].path) {
            continue;
        }
        for site in &sums[id].panics {
            if !seen.insert((f.file, site.line, site.what.clone())) {
                continue;
            }
            let chain = graph.chain_to(&parent, id).join(" -> ");
            out.push(Diagnostic::new(
                "panic-path",
                &files[f.file].path,
                site.line,
                format!(
                    "`{}` is reachable from the request path (via {chain}); \
                     return an error instead",
                    site.what
                ),
            ));
        }
    }
    out
}

/// `name !` with the bang directly attached (macro invocation).
fn bang_follows(file: &SourceFile, code: &[usize], i: usize) -> bool {
    code.get(i + 1).is_some_and(|&ti| {
        let t = &file.tokens[ti];
        t.kind == TokenKind::Punct && file.text(t) == "!" && t.start == file.tokens[code[i]].end
    })
}

/// A `[` is an index expression when the token before it can end an
/// expression (identifier, `]`, `)`), and the bracket group is not a
/// range slice (`[a..b]`, `[..n]`).
fn is_index_expr(file: &SourceFile, code: &[usize], open: usize) -> bool {
    if open == 0 {
        return false;
    }
    let prev = &file.tokens[code[open - 1]];
    let prev_ok = match prev.kind {
        TokenKind::Ident => !is_keyword(file.text(prev)),
        TokenKind::Punct => matches!(file.text(prev), "]" | ")"),
        _ => false,
    };
    if !prev_ok {
        // `vec![...]` / `#[...]` / `&[u8]` / `= [1, 2]` all land here: the
        // token before the bracket is `!`, `#`, `&`, `=`, ... — not an
        // expression end.
        return false;
    }
    let Some(close) = matching_close(file, code, open) else { return false };
    // Top-level `..` inside the brackets => range slice, skipped.
    let mut depth = 0isize;
    let mut j = open;
    while j < close {
        let t = &file.tokens[code[j]];
        if t.kind == TokenKind::Punct {
            match file.text(t) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "." if depth == 1 && super::adjacent_puncts(file, code, j, ".", ".") => {
                    return false;
                }
                _ => {}
            }
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileContext;

    fn run(src: &str) -> Vec<(u32, String)> {
        let file = SourceFile::lex("t.rs", src);
        let ctx = FileContext::new(&file);
        check(&file, &ctx).into_iter().map(|d| (d.line, d.message)).collect()
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let got = run("fn f() {\n  x.unwrap();\n  y.expect(\"msg\");\n  panic!(\"no\");\n}\n");
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, 2);
        assert_eq!(got[1].0, 3);
        assert_eq!(got[2].0, 4);
    }

    #[test]
    fn unwrap_or_else_and_tests_are_fine() {
        let got = run("fn f() { x.unwrap_or_else(|e| e.into_inner()); }\n\
             #[test]\nfn t() { y.unwrap(); panic!(); }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn indexing_flagged_ranges_and_macros_not() {
        let got = run(
            "fn f(v: &[u8]) {\n  let a = v[0];\n  let b = &v[1..3];\n  let c = vec![0; 4];\n  let d = m[k][j];\n}\n",
        );
        let lines: Vec<u32> = got.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![2, 5, 5], "{got:?}");
    }

    #[test]
    fn attributes_and_slice_types_not_flagged() {
        let got = run("#[derive(Debug)]\nstruct S;\nfn f(x: &[u8], y: [u8; 4]) {}\n");
        assert!(got.is_empty(), "{got:?}");
    }
}
