//! **protocol-drift**: the wire-protocol verb set is defined once and
//! echoed in four places; this lint keeps all of them in sync.
//!
//! Source of truth: the string returned per variant by
//! `Request::verb()` in `crates/pdb-server/src/protocol.rs`.  Checked
//! against it:
//!
//! 1. the match arms of `impl Deserialize for Request` in the same file
//!    (a verb you can serialize but not parse is drift),
//! 2. the `//! | `verb` |` doc table at the top of `protocol.rs`,
//! 3. the public client methods in `crates/pdb-server/src/client.rs`
//!    (every verb needs a typed method),
//! 4. the `pdb call` usage text in `crates/pdb-cli/src/args.rs`,
//! 5. the README's verb table (both directions),
//! 6. the fleet router's routing table in
//!    `crates/pdb-fleet/src/router.rs` (a verb the router cannot route
//!    dead-ends every fleet deployment).

use crate::diag::Diagnostic;
use crate::lexer::{SourceFile, TokenKind};
use crate::scanner::functions;
use std::collections::BTreeSet;
use std::path::Path;

const PROTOCOL: &str = "crates/pdb-server/src/protocol.rs";
const CLIENT: &str = "crates/pdb-server/src/client.rs";
const ARGS: &str = "crates/pdb-cli/src/args.rs";
const README: &str = "README.md";
const ROUTER: &str = "crates/pdb-fleet/src/router.rs";

/// Run the cross-file check from the workspace root.
pub fn check(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(protocol) = load(root, PROTOCOL, &mut out) else { return out };
    let Some(client) = load(root, CLIENT, &mut out) else { return out };
    let Some(args) = load(root, ARGS, &mut out) else { return out };
    let readme = match std::fs::read_to_string(root.join(README)) {
        Ok(text) => text,
        Err(e) => {
            out.push(Diagnostic::new("protocol-drift", README, 1, format!("unreadable: {e}")));
            return out;
        }
    };

    let verbs = verb_fn_strings(&protocol);
    if verbs.is_empty() {
        out.push(Diagnostic::new(
            "protocol-drift",
            PROTOCOL,
            1,
            "could not find any verb strings in fn verb()",
        ));
        return out;
    }

    // 1. Deserialize arms.
    let arms = deserialize_arms(&protocol);
    diff_sets(&verbs, &arms, PROTOCOL, "impl Deserialize for Request match arms", &mut out);

    // 2. protocol.rs doc table.
    let doc_rows = table_rows(&protocol.src, "//! | Verb", "//! |");
    diff_sets(&verbs, &doc_rows, PROTOCOL, "the //! verb doc table", &mut out);

    // 3. Client methods (superset is fine: connect/call are not verbs).
    let methods: BTreeSet<String> = functions(&client).into_iter().map(|f| f.name).collect();
    for v in &verbs {
        if !methods.contains(v) {
            out.push(Diagnostic::new(
                "protocol-drift",
                CLIENT,
                1,
                format!("no client method for verb `{v}`"),
            ));
        }
    }

    // 4. CLI usage text mentions every verb.
    for v in &verbs {
        if !args.src.contains(v.as_str()) {
            out.push(Diagnostic::new(
                "protocol-drift",
                ARGS,
                1,
                format!("usage text does not mention verb `{v}`"),
            ));
        }
    }

    // 5. README verb table, both directions.
    let readme_rows = table_rows(&readme, "| Verb", "|");
    if readme_rows.is_empty() {
        out.push(Diagnostic::new(
            "protocol-drift",
            README,
            1,
            "README has no verb table (header row starting `| Verb`)",
        ));
    } else {
        diff_sets(&verbs, &readme_rows, README, "the README verb table", &mut out);
    }

    // 6. Fleet router routing table, both directions.  The router exists
    // only when the fleet crate does; if the file is missing the whole
    // check is skipped rather than reported (the crate layout lint owns
    // that).
    if let Ok(router) = std::fs::read_to_string(root.join(ROUTER)) {
        let router_rows = table_rows(&router, "//! | Verb", "//! |");
        if router_rows.is_empty() {
            out.push(Diagnostic::new(
                "protocol-drift",
                ROUTER,
                1,
                "router has no routing doc table (header row starting `//! | Verb`)",
            ));
        } else {
            diff_sets(&verbs, &router_rows, ROUTER, "the router routing table", &mut out);
        }
    }
    out
}

fn load(root: &Path, rel: &'static str, out: &mut Vec<Diagnostic>) -> Option<SourceFile> {
    match std::fs::read_to_string(root.join(rel)) {
        Ok(src) => Some(SourceFile::lex(rel, src)),
        Err(e) => {
            out.push(Diagnostic::new("protocol-drift", rel, 1, format!("unreadable: {e}")));
            None
        }
    }
}

fn diff_sets(
    truth: &BTreeSet<String>,
    observed: &BTreeSet<String>,
    file: &'static str,
    what: &str,
    out: &mut Vec<Diagnostic>,
) {
    for v in truth.difference(observed) {
        out.push(Diagnostic::new(
            "protocol-drift",
            file,
            1,
            format!("verb `{v}` is missing from {what}"),
        ));
    }
    for v in observed.difference(truth) {
        out.push(Diagnostic::new(
            "protocol-drift",
            file,
            1,
            format!("{what} lists `{v}`, which fn verb() does not return"),
        ));
    }
}

/// The string literals inside `fn verb(..)`.
fn verb_fn_strings(file: &SourceFile) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for f in functions(file) {
        if f.name != "verb" {
            continue;
        }
        for t in &file.tokens[f.body.clone()] {
            if t.kind == TokenKind::Str {
                out.insert(unquote(file.text(t)));
            }
        }
    }
    out
}

/// String literals followed by `=>` inside `impl Deserialize for Request`.
fn deserialize_arms(file: &SourceFile) -> BTreeSet<String> {
    let code = file.code_indices();
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i + 3 < code.len() {
        let texts: Vec<&str> = (0..4).map(|k| file.text(&file.tokens[code[i + k]])).collect();
        if texts == ["impl", "Deserialize", "for", "Request"] {
            // Find the impl block's braces.
            let mut j = i + 4;
            while j < code.len() && file.text(&file.tokens[code[j]]) != "{" {
                j += 1;
            }
            let Some(close) = super::matching_close(file, &code, j) else { break };
            for k in j..close {
                let t = &file.tokens[code[k]];
                if t.kind == TokenKind::Str && super::adjacent_puncts(file, &code, k + 1, "=", ">")
                {
                    out.insert(unquote(file.text(t)));
                }
            }
            break;
        }
        i += 1;
    }
    out
}

/// Rows of a pipe table: from the line starting with `header_prefix`,
/// collect the first backticked word of every following line that starts
/// with `row_prefix`, until the table ends.
fn table_rows(text: &str, header_prefix: &str, row_prefix: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_table = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if !in_table {
            if trimmed.starts_with(header_prefix) {
                in_table = true;
            }
            continue;
        }
        if !trimmed.starts_with(row_prefix) {
            break;
        }
        if let Some(name) = first_backticked(trimmed) {
            out.insert(name);
        }
    }
    out
}

fn first_backticked(line: &str) -> Option<String> {
    let open = line.find('`')?;
    let rest = &line[open + 1..];
    let close = rest.find('`')?;
    Some(rest[..close].to_string())
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_strings_and_arms_extracted() {
        let src = r#"
impl Request {
    pub fn verb(&self) -> &'static str {
        match self {
            Request::A(_) => "alpha",
            Request::B => "beta",
        }
    }
}
impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match key {
            "alpha" => parse_a(v),
            "gamma" => parse_g(v),
            other => err(other),
        }
    }
}
"#;
        let file = SourceFile::lex("p.rs", src);
        let verbs = verb_fn_strings(&file);
        assert_eq!(verbs, ["alpha", "beta"].iter().map(|s| s.to_string()).collect());
        let arms = deserialize_arms(&file);
        assert_eq!(arms, ["alpha", "gamma"].iter().map(|s| s.to_string()).collect());
    }

    #[test]
    fn table_rows_stop_at_table_end() {
        let text = "intro\n| Verb | Payload |\n|---|---|\n| `a` | x |\n| `b` | y |\n\n| `c` | unrelated |\n";
        let rows = table_rows(text, "| Verb", "|");
        assert_eq!(rows, ["a", "b"].iter().map(|s| s.to_string()).collect());
    }
}
