//! **error-swallow**: `let _ = ...` and statement-terminated `.ok();`
//! silently discard failures on exactly the paths whose job is to
//! surface them — recovery, replay, and request serving.  A swallowed
//! `sync_all` error is a durability hole; a swallowed `set_read_timeout`
//! error breaks the shutdown drain.
//!
//! The lint flags a discard when the discarded expression contains a
//! call that is fallible as far as the analyzer can tell: either the
//! callee is a workspace function whose summary says it returns a
//! `Result`, or the callee is unknown (std / vendored — assumed fallible,
//! the safe polarity).  A discarded call to a workspace function that
//! returns no `Result` is left alone.
//!
//! Scope: `pdb-store`, `pdb-server`, and `pdb-fleet` sources — the
//! fleet supervisor and router sit on the same serving path, and a
//! swallowed respawn or forward error there strands a whole shard.  The
//! CLI is exempt — `let _ = writeln!(...)` on a closing pipe is
//! idiomatic there, and macros are invisible to the call extractor
//! anyway.

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::summaries::FnSummary;

/// Files the lint covers.
pub fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/pdb-store/src/")
        || rel.starts_with("crates/pdb-server/src/")
        || rel.starts_with("crates/pdb-fleet/src/")
}

/// Run the lint over every in-scope function in the graph.
pub fn check(graph: &CallGraph, sums: &[FnSummary], files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in graph.fns.iter().enumerate() {
        if f.in_test || !in_scope(&files[f.file].path) {
            continue;
        }
        out.extend(check_fn(&files[f.file].path, &sums[id], &|name| {
            infallible_workspace_fn(graph, sums, name)
        }));
    }
    out
}

/// Whether `name` resolves to workspace functions that are all
/// `Result`-free (the one case a discard is clearly harmless).
fn infallible_workspace_fn(graph: &CallGraph, sums: &[FnSummary], name: &str) -> bool {
    graph.defines(name) && !graph.any_named(name, |id| sums[id].returns_result)
}

/// The per-function core.  `infallible(name)` returns `true` when the
/// callee is known not to return a `Result` (fixture tests pass a
/// closure; the workspace pass consults the call graph).
pub fn check_fn(path: &str, sum: &FnSummary, infallible: &dyn Fn(&str) -> bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for d in &sum.discards {
        match &d.callee {
            None if d.form == "let _ =" => continue, // no call: a pure value discard
            Some(callee) if infallible(callee) => continue,
            _ => {}
        }
        let what = d
            .callee
            .as_ref()
            .map_or_else(|| "a fallible result".to_string(), |c| format!("`{c}(...)`'s result"));
        out.push(Diagnostic::new(
            "error-swallow",
            path,
            d.line,
            format!(
                "`{}` discards {what}; handle or propagate the error \
                 (recovery/replay/server paths must not swallow failures)",
                d.form
            ),
        ));
    }
    out
}
