//! **dead-verb**: every wire verb must have a handler the server can
//! actually reach.
//!
//! `protocol-drift` keeps the verb *spelling* consistent across its echo
//! sites; this lint checks the *plumbing*: for each `Request::Variant =>
//! "verb"` arm in `fn verb()`, some function outside `protocol.rs` must
//! mention `Request::Variant` (the dispatch arm) **and** be reachable in
//! the call graph from a server entry point (a function named `run` in
//! the protocol file's crate).  A verb whose handler exists but is never
//! called from the serving loop is as dead as one with no handler at
//! all — Rust's match exhaustiveness cannot see that.
//!
//! Soundness caveat: reachability is name-resolved and therefore
//! over-approximate, so a *finding* here is reliable only in the
//! direction this lint needs — if even the over-approximation cannot
//! reach a handler, nothing can.

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lexer::{SourceFile, TokenKind};
use crate::lints::adjacent_puncts;
use crate::scanner::functions;

/// Run the lint.  Quietly does nothing when the tree has no
/// `protocol.rs` (mini-workspace fixtures without a server;
/// `protocol-drift` reports the missing file on the real layout).
pub fn check(graph: &CallGraph, files: &[SourceFile]) -> Vec<Diagnostic> {
    let Some(proto_idx) = files.iter().position(|f| f.path.ends_with("pdb-server/src/protocol.rs"))
    else {
        return Vec::new();
    };
    let proto = &files[proto_idx];
    let verbs = verb_arms(proto);
    if verbs.is_empty() {
        return Vec::new();
    }

    // Entry points: `fn run` in the protocol file's crate.
    let crate_dir = proto.path.trim_end_matches("protocol.rs").to_string();
    let roots: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.span.name == "run" && !f.in_test && files[f.file].path.starts_with(&crate_dir)
        })
        .map(|(id, _)| id)
        .collect();
    let (reached, _) = graph.reachable_from(&roots);

    let mut out = Vec::new();
    for (variant, verb, line) in &verbs {
        let mut has_handler = false;
        let mut handler_reached = false;
        for (id, f) in graph.fns.iter().enumerate() {
            if f.in_test || f.file == proto_idx {
                continue;
            }
            if mentions_variant(&files[f.file], f.span.body.clone(), variant) {
                has_handler = true;
                if reached[id] {
                    handler_reached = true;
                    break;
                }
            }
        }
        if !has_handler {
            out.push(Diagnostic::new(
                "dead-verb",
                &proto.path,
                *line,
                format!(
                    "verb `{verb}`: no function outside protocol.rs handles Request::{variant}"
                ),
            ));
        } else if !handler_reached {
            out.push(Diagnostic::new(
                "dead-verb",
                &proto.path,
                *line,
                format!(
                    "verb `{verb}`: Request::{variant} has a handler, but no call chain from a \
                     server `run` entry point reaches it"
                ),
            ));
        }
    }
    out
}

/// `(variant, verb, line)` triples from `fn verb()`'s match arms
/// (`Request::Variant... => "verb"`).
pub(crate) fn verb_arms(file: &SourceFile) -> Vec<(String, String, u32)> {
    let mut out = Vec::new();
    for f in functions(file) {
        if f.name != "verb" {
            continue;
        }
        let code: Vec<usize> = file
            .code_indices()
            .into_iter()
            .filter(|&ti| ti >= f.body.start && ti < f.body.end)
            .collect();
        let mut last_variant: Option<String> = None;
        for i in 0..code.len() {
            let t = &file.tokens[code[i]];
            if t.kind == TokenKind::Ident && file.text(t) == "Request" {
                if let Some(v) = variant_after(file, &code, i) {
                    last_variant = Some(v);
                }
            } else if t.kind == TokenKind::Str
                && i >= 2
                && adjacent_puncts(file, &code, i - 2, "=", ">")
            {
                if let Some(variant) = last_variant.take() {
                    out.push((variant, file.text(t).trim_matches('"').to_string(), t.line));
                }
            }
        }
    }
    out
}

/// The `Ident` after `Request::` at `code[i]`, if present.
fn variant_after(file: &SourceFile, code: &[usize], i: usize) -> Option<String> {
    if !adjacent_puncts(file, code, i + 1, ":", ":") {
        return None;
    }
    let t = &file.tokens[*code.get(i + 3)?];
    (t.kind == TokenKind::Ident).then(|| file.text(t).to_string())
}

/// Whether the body range mentions `Request::<variant>`.
fn mentions_variant(file: &SourceFile, body: std::ops::Range<usize>, variant: &str) -> bool {
    let code: Vec<usize> =
        file.code_indices().into_iter().filter(|&ti| ti >= body.start && ti < body.end).collect();
    for i in 0..code.len() {
        let t = &file.tokens[code[i]];
        if t.kind == TokenKind::Ident && file.text(t) == "Request" {
            if let Some(v) = variant_after(file, &code, i) {
                if v == variant {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_arms_pair_variants_with_strings() {
        let src = r#"
impl Request {
    pub fn verb(&self) -> &'static str {
        match self {
            Request::CreateSession(_) => "create_session",
            Request::Stats => "stats",
        }
    }
}
"#;
        let file = SourceFile::lex("protocol.rs", src);
        let arms = verb_arms(&file);
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].0, "CreateSession");
        assert_eq!(arms[0].1, "create_session");
        assert_eq!(arms[1].0, "Stats");
        assert_eq!(arms[1].1, "stats");
    }
}
