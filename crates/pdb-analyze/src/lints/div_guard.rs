//! **div-guard**: the paper's numerical-stability invariant as a lint.
//!
//! The delta kernels divide a row polynomial by `(1 - q)`-style factors;
//! when the divisor approaches zero the division is ill-conditioned and
//! the engine must rebuild the row instead (`MAX_DIVISOR_Q` in
//! `psr.rs`/`delta.rs`, `DIVISION_REBUILD_THRESHOLD` in `poly.rs`,
//! `MIN_SCALE_PROB` for the rescale path).  Any division in those
//! kernels whose divisor is not a literal must therefore be dominated by
//! one of the stability gates — a bare `a / q` with a probability-derived
//! divisor is exactly the bug class the paper's Section on incremental
//! re-evaluation warns about.
//!
//! "Dominated" is approximated textually: one of the gate identifiers
//! appears earlier in the same function body (a `debug_assert!`, an
//! `if`/`else if` condition, or a windowing check all count).  Literal
//! divisors (`x / 2.0`) are never flagged.

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::summaries::FnSummary;

/// The kernels the invariant covers.
pub fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/pdb-engine/src/")
        && (rel.ends_with("/delta.rs") || rel.ends_with("/psr.rs") || rel.ends_with("/poly.rs"))
}

/// Run the lint over every in-scope function in the graph.
pub fn check(graph: &CallGraph, sums: &[FnSummary], files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in graph.fns.iter().enumerate() {
        if f.in_test || !in_scope(&files[f.file].path) {
            continue;
        }
        out.extend(check_fn(&files[f.file].path, &sums[id]));
    }
    out
}

/// The per-function core, scope-free (fixture tests call this).
pub fn check_fn(path: &str, sum: &FnSummary) -> Vec<Diagnostic> {
    sum.divisions
        .iter()
        .filter(|d| !d.guarded)
        .map(|d| {
            Diagnostic::new(
                "div-guard",
                path,
                d.line,
                "division with a non-literal divisor is not dominated by a stability gate \
                 (MAX_DIVISOR_Q / MIN_SCALE_PROB / DIVISION_REBUILD_THRESHOLD); \
                 ill-conditioned rows must be rebuilt, not divided",
            )
        })
        .collect()
}
