//! **forbid-unsafe**: every workspace crate root carries
//! `#![forbid(unsafe_code)]`.
//!
//! `deny` can be overridden further down the tree; `forbid` cannot.  The
//! lint checks crate roots (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`)
//! for the inner attribute so the guarantee is structural, not habitual.

use crate::diag::Diagnostic;
use crate::lexer::{SourceFile, TokenKind};

/// Run the lint on one crate-root file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let code = file.code_indices();
    for (i, &ti) in code.iter().enumerate() {
        let t = &file.tokens[ti];
        if t.kind == TokenKind::Ident && file.text(t) == "forbid" {
            let next_is_paren = code.get(i + 1).is_some_and(|&n| file.text(&file.tokens[n]) == "(");
            let arg_is_unsafe_code = code.get(i + 2).is_some_and(|&n| {
                file.tokens[n].kind == TokenKind::Ident
                    && file.text(&file.tokens[n]) == "unsafe_code"
            });
            if next_is_paren && arg_is_unsafe_code {
                return Vec::new();
            }
        }
    }
    vec![Diagnostic::new(
        "forbid-unsafe",
        &file.path,
        1,
        "crate root is missing #![forbid(unsafe_code)]",
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn present_attribute_passes() {
        let file = SourceFile::lex(
            "crates/x/src/lib.rs",
            "//! Docs.\n#![warn(missing_docs)]\n#![forbid(unsafe_code)]\nfn a() {}\n",
        );
        assert!(check(&file).is_empty());
    }

    #[test]
    fn missing_attribute_fails_at_line_one() {
        let file = SourceFile::lex("crates/x/src/main.rs", "fn main() {}\n");
        let got = check(&file);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 1);
        assert!(got[0].message.contains("forbid(unsafe_code)"));
    }
}
