//! The lint passes.
//!
//! Every code lint has the same shape: walk the non-comment token stream
//! of one file (via [`crate::lexer::SourceFile::code_indices`]), match a
//! token pattern, and emit [`crate::diag::Diagnostic`]s.  Test regions
//! (see [`crate::scanner`]) are skipped by the lints where test code is
//! *supposed* to do the flagged thing (`unwrap()` in a test is fine).
//!
//! [`protocol_drift`] is the odd one out: it is a cross-file consistency
//! check, not a per-file pattern.

pub mod cast_truncation;
pub mod dead_verb;
pub mod div_guard;
pub mod durability;
pub mod error_swallow;
pub mod float_eq;
pub mod forbid_unsafe;
pub mod lock_order;
pub mod metric_drift;
pub mod panic_path;
pub mod protocol_drift;

use crate::lexer::{SourceFile, TokenKind};

/// Whether the code tokens at positions `code[i]` and `code[i + 1]` are
/// the two punctuation characters `a` then `b` with no gap between them
/// (so `!` `=` matches `!=` but not `! =`, and `=` `=` matches `==`).
pub(crate) fn adjacent_puncts(
    file: &SourceFile,
    code: &[usize],
    i: usize,
    a: &str,
    b: &str,
) -> bool {
    let (Some(&t1), Some(&t2)) = (code.get(i), code.get(i + 1)) else { return false };
    let (t1, t2) = (&file.tokens[t1], &file.tokens[t2]);
    t1.kind == TokenKind::Punct
        && t2.kind == TokenKind::Punct
        && t1.end == t2.start
        && file.text(t1) == a
        && file.text(t2) == b
}

/// Whether the ident at `code[i]` is a method call: preceded by `.` and
/// followed by `(`.
pub(crate) fn is_method_call(file: &SourceFile, code: &[usize], i: usize) -> bool {
    let prev_is_dot = i > 0 && {
        let t = &file.tokens[code[i - 1]];
        t.kind == TokenKind::Punct && file.text(t) == "."
    };
    let next_is_paren = code.get(i + 1).is_some_and(|&ti| {
        let t = &file.tokens[ti];
        t.kind == TokenKind::Punct && file.text(t) == "("
    });
    prev_is_dot && next_is_paren
}

/// From the opening delimiter at `code[open]`, return the position of the
/// matching closer in `code` (tracks all three bracket kinds together).
pub(crate) fn matching_close(file: &SourceFile, code: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0isize;
    for (off, &ti) in code[open..].iter().enumerate() {
        let t = &file.tokens[ti];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match file.text(t) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// Keywords that can directly precede a `[` without the bracket being an
/// index expression (`let [a, b] = ...`, `return [x]`, `in [..]`, ...).
pub(crate) fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "as" | "async"
            | "await"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}
