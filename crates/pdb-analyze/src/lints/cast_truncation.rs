//! **cast-truncation**: narrowing `as` casts on the wire/durability
//! paths (`pdb-store`, `pdb-server`) silently wrap — a length that does
//! not fit the target type corrupts the frame it describes.  Such casts
//! must go through `try_from` (making the failure a typed error) or be
//! dominated by an explicit `::MAX` bound check in the same function.
//!
//! Domain constants (`MAX_RECORD_LEN` and friends) deliberately do
//! **not** count as guards: the analyzer cannot evaluate whether
//! `256 << 20` fits a `u32`, and a constant edited out from under the
//! cast would silently re-open the truncation.  `as usize`/`as u64` are
//! treated as widening — the workspace only targets 64-bit hosts (a
//! caveat DESIGN.md records).

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::summaries::FnSummary;

/// Files the lint covers: the store's formats and the server's wire
/// handling.
pub fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/pdb-store/src/") || rel.starts_with("crates/pdb-server/src/")
}

/// Run the lint over every in-scope function in the graph.
pub fn check(graph: &CallGraph, sums: &[FnSummary], files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in graph.fns.iter().enumerate() {
        if f.in_test || !in_scope(&files[f.file].path) {
            continue;
        }
        out.extend(check_fn(&files[f.file].path, &sums[id]));
    }
    out
}

/// The per-function core, scope-free (fixture tests call this).
pub fn check_fn(path: &str, sum: &FnSummary) -> Vec<Diagnostic> {
    sum.casts
        .iter()
        .filter(|c| !c.guarded)
        .map(|c| {
            Diagnostic::new(
                "cast-truncation",
                path,
                c.line,
                format!(
                    "`as {}` silently wraps out-of-range values; use {}::try_from \
                     (or a dominating ::MAX bound check) so the failure is typed",
                    c.target, c.target
                ),
            )
        })
        .collect()
}
