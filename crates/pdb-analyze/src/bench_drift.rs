//! `pdb-analyze bench-drift <BENCH_*.json>`: compare the bench-id set of
//! the committed baseline (`git show HEAD:<file>`) against the freshly
//! emitted file in the working tree.
//!
//! CI used to carry three copy-pasted shell snippets doing this with
//! `grep -o '"[^"]*"' | sort | diff`; this subcommand is the single
//! implementation.  Drift in either direction — an id added by a bench
//! rename, or an id that stopped being emitted — fails the check, which
//! is the point: the committed `BENCH_*.json` baselines are the
//! regression-tracking anchor, so renames must update them explicitly.

use std::collections::BTreeSet;
use std::path::Path;
use std::process::Command;

/// The result of one drift comparison.
#[derive(Debug, PartialEq, Eq)]
pub struct Drift {
    /// Ids in the fresh file but not the committed baseline.
    pub added: Vec<String>,
    /// Ids in the committed baseline but not the fresh file.
    pub removed: Vec<String>,
}

impl Drift {
    /// No drift in either direction.
    pub fn is_clean(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Compare committed vs fresh bench-id sets for `file` (a path relative
/// to the repository root, e.g. `BENCH_batch.json`).
pub fn check(root: &Path, file: &str) -> Result<Drift, String> {
    let fresh_text =
        std::fs::read_to_string(root.join(file)).map_err(|e| format!("cannot read {file}: {e}"))?;
    let fresh = top_level_keys(&fresh_text).map_err(|e| format!("{file} (working tree): {e}"))?;

    let show = Command::new("git")
        .arg("show")
        .arg(format!("HEAD:{file}"))
        .current_dir(root)
        .output()
        .map_err(|e| format!("cannot run git show: {e}"))?;
    if !show.status.success() {
        return Err(format!(
            "git show HEAD:{file} failed: {}",
            String::from_utf8_lossy(&show.stderr).trim()
        ));
    }
    let committed_text = String::from_utf8_lossy(&show.stdout).into_owned();
    let committed = top_level_keys(&committed_text).map_err(|e| format!("{file} (HEAD): {e}"))?;

    Ok(Drift {
        added: fresh.difference(&committed).cloned().collect(),
        removed: committed.difference(&fresh).cloned().collect(),
    })
}

/// The keys of a flat JSON object, extracted with a scanner that respects
/// string escapes and nesting (keys of nested objects are not bench ids).
pub fn top_level_keys(text: &str) -> Result<BTreeSet<String>, String> {
    let bytes = text.as_bytes();
    let mut keys = BTreeSet::new();
    let mut depth = 0isize;
    let mut i = 0usize;
    let mut expect_key = false;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                depth += 1;
                if depth == 1 {
                    expect_key = true;
                }
                i += 1;
            }
            b'}' => {
                depth -= 1;
                i += 1;
            }
            b'[' => {
                depth += 1;
                i += 1;
            }
            b']' => {
                depth -= 1;
                i += 1;
            }
            b',' => {
                if depth == 1 {
                    expect_key = true;
                }
                i += 1;
            }
            b'"' => {
                let (s, next) = scan_string(text, i)?;
                if depth == 1 && expect_key {
                    keys.insert(s);
                    expect_key = false;
                }
                i = next;
            }
            _ => i += 1,
        }
    }
    if depth != 0 {
        return Err("unbalanced braces — not a JSON object".to_string());
    }
    if keys.is_empty() {
        return Err("no top-level keys found — not a bench-id map".to_string());
    }
    Ok(keys)
}

/// Scan the string starting at the `"` at byte `at`; returns (content,
/// index one past the closing quote).
fn scan_string(text: &str, at: usize) -> Result<(String, usize), String> {
    let bytes = text.as_bytes();
    let mut i = at + 1;
    let mut out = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // Keep escapes verbatim: bench ids never contain them, and
                // set comparison only needs consistency.
                out.push('\\');
                if i + 1 < bytes.len() {
                    out.push(bytes[i + 1] as char);
                }
                i += 2;
            }
            b'"' => return Ok((out, i + 1)),
            _ => {
                let c = text[i..].chars().next().ok_or("invalid utf-8 boundary")?;
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_of_flat_map() {
        let keys = top_level_keys("{\n  \"a/b/1\": 4.0,\n  \"c\": 2\n}\n").unwrap();
        assert_eq!(keys, ["a/b/1", "c"].iter().map(|s| s.to_string()).collect());
    }

    #[test]
    fn nested_keys_and_string_values_ignored() {
        let keys =
            top_level_keys("{\"top\": {\"inner\": 1}, \"s\": \"val:ue\", \"t\": [\"x\"]}").unwrap();
        assert_eq!(keys, ["top", "s", "t"].iter().map(|s| s.to_string()).collect());
    }

    #[test]
    fn rejects_non_object() {
        assert!(top_level_keys("[1, 2]").is_err());
        assert!(top_level_keys("{\"a\": 1").is_err());
    }
}
