//! Workspace walking, lint dispatch, and suppression handling.
//!
//! The analyzer walks the `src/` trees of the first-party crates
//! (`crates/*` plus the root facade crate).  `vendor/` is deliberately
//! excluded: those crates are stand-ins for external dependencies and
//! follow their upstreams' idioms, not this repo's invariants.  Test
//! directories (`tests/`, `benches/`) are also excluded — integration
//! tests unwrap freely, and the fixture corpus under
//! `crates/pdb-analyze/tests/fixtures/` exists precisely to violate
//! every lint.
//!
//! ## Suppressions
//!
//! A finding on line `N` of a file is suppressed by a comment
//!
//! ```text
//! // pdb-analyze: allow(<lint>): <reason>
//! ```
//!
//! either trailing on line `N` or standing alone on the line above.  The
//! reason is mandatory: a suppression without one is itself reported
//! (lint `suppression`), as are suppressions naming unknown lints and
//! suppressions that no longer match any finding (so stale allows rot
//! away instead of accumulating).

use crate::diag::{is_known_lint, Diagnostic};
use crate::lexer::SourceFile;
use crate::lints;
use crate::scanner::{suppressions, FileContext};
use std::path::{Path, PathBuf};

/// Run every lint over the workspace rooted at `root`; returns the
/// surviving diagnostics (suppressions already applied) sorted by file
/// and line.
pub fn run(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let files = source_files(root)?;
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut sups: Vec<(String, crate::scanner::Suppression)> = Vec::new();

    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let file = SourceFile::lex(rel_str.clone(), src);
        let ctx = FileContext::new(&file);

        if panic_path_applies(&rel_str) {
            raw.extend(lints::panic_path::check(&file, &ctx));
        }
        raw.extend(lints::lock_order::check(&file, &ctx));
        if rel_str.starts_with("crates/pdb-store/src/") {
            raw.extend(lints::durability::check(&file, &ctx));
        }
        raw.extend(lints::float_eq::check(&file, &ctx));
        if is_crate_root(&rel_str) {
            raw.extend(lints::forbid_unsafe::check(&file));
        }
        for s in suppressions(&file) {
            sups.push((rel_str.clone(), s));
        }
    }

    raw.extend(lints::protocol_drift::check(root));

    Ok(apply_suppressions(raw, sups))
}

/// Which files the panic-path lint covers: the server's request path,
/// the store's WAL/replay path, and the CLI's command path.
fn panic_path_applies(rel: &str) -> bool {
    rel.starts_with("crates/pdb-server/src/")
        || rel.starts_with("crates/pdb-store/src/")
        || rel.starts_with("crates/pdb-cli/src/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || (rel.starts_with("crates/")
            && (rel.ends_with("/src/lib.rs")
                || rel.ends_with("/src/main.rs")
                || (rel.contains("/src/bin/") && rel.ends_with(".rs"))))
}

/// Enforce the suppression rules and drop suppressed findings.
fn apply_suppressions(
    raw: Vec<Diagnostic>,
    sups: Vec<(String, crate::scanner::Suppression)>,
) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    let mut used = vec![false; sups.len()];

    for d in raw {
        // One comment may suppress several findings on its line; `used`
        // only feeds the stale-suppression check.
        let matching = sups.iter().position(|(file, s)| {
            !s.reason.is_empty() && *file == d.file && s.lint == d.lint && s.covers_line == d.line
        });
        match matching {
            Some(k) => used[k] = true,
            None => out.push(d),
        }
    }

    for (k, (file, s)) in sups.iter().enumerate() {
        if !is_known_lint(&s.lint) {
            out.push(Diagnostic::new(
                "suppression",
                file,
                s.line,
                format!("unknown lint `{}` in allow(...)", s.lint),
            ));
            continue;
        }
        if s.reason.is_empty() {
            out.push(Diagnostic::new(
                "suppression",
                file,
                s.line,
                format!(
                    "allow({}) needs a reason: `// pdb-analyze: allow({}): <why>`",
                    s.lint, s.lint
                ),
            ));
            continue;
        }
        if !used[k] {
            out.push(Diagnostic::new(
                "suppression",
                file,
                s.line,
                format!("allow({}) matches no finding; remove the stale suppression", s.lint),
            ));
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    out
}

/// Workspace-relative paths of every first-party source file.
pub fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out)?;
            }
        }
    }
    let mut rels: Vec<PathBuf> =
        out.into_iter().filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from)).collect();
    rels.sort();
    Ok(rels)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
