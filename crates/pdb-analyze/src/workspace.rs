//! Workspace walking, lint dispatch, and suppression handling.
//!
//! The analyzer walks the `src/` trees of the first-party crates
//! (`crates/*` plus the root facade crate), and additionally the root
//! `examples/` and `tests/` directories as *auxiliary* roots: those get
//! the style lints (`float-eq`) and suppression hygiene, but stay out of
//! the call graph — examples unwrap freely by design, and linking their
//! `main`s into the reachability analysis would drown the request-path
//! signal.  `vendor/` is deliberately excluded: those crates are
//! stand-ins for external dependencies and follow their upstreams'
//! idioms, not this repo's invariants.  Crate-local `tests/` and
//! `benches/` are also excluded — integration tests unwrap freely, and
//! the fixture corpus under `crates/pdb-analyze/tests/fixtures/` exists
//! precisely to violate every lint.
//!
//! ## Pipeline
//!
//! [`run`] is two-phase.  Phase 1 lexes every main-root file, builds the
//! whole-workspace [`crate::callgraph::CallGraph`], computes per-function
//! [`crate::summaries`] facts, and propagates the transitive ones
//! (may-panic, takes-lock) to a fixpoint.  Phase 2 dispatches the
//! per-file lints (now parameterized by the propagated facts where it
//! matters) plus the whole-program lints that only make sense with the
//! graph in hand (`cast-truncation`, `error-swallow`, `div-guard`,
//! `dead-verb`, interprocedural `panic-path`).
//!
//! ## Suppressions
//!
//! A finding on line `N` of a file is suppressed by a comment
//!
//! ```text
//! // pdb-analyze: allow(<lint>): <reason>
//! ```
//!
//! either trailing on line `N` or standing alone on the line above.  The
//! reason is mandatory: a suppression without one is itself reported
//! (lint `suppression`), as are suppressions naming unknown lints and
//! suppressions that no longer match any finding (so stale allows rot
//! away instead of accumulating).

use crate::callgraph::CallGraph;
use crate::diag::{is_known_lint, Diagnostic};
use crate::lexer::SourceFile;
use crate::lints;
use crate::scanner::{suppressions, FileContext};
use crate::summaries;
use std::path::{Path, PathBuf};

/// Run every lint over the workspace rooted at `root`; returns the
/// surviving diagnostics (suppressions already applied) sorted by file
/// and line.
pub fn run(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mains = source_files(root)?;
    let auxes = aux_source_files(root)?;
    let n_main = mains.len();

    let mut files: Vec<SourceFile> = Vec::with_capacity(n_main + auxes.len());
    for rel in mains.iter().chain(auxes.iter()) {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        files.push(SourceFile::lex(rel_str, src));
    }
    let ctxs: Vec<FileContext> = files.iter().map(FileContext::new).collect();
    let include: Vec<bool> = (0..files.len()).map(|i| i < n_main).collect();

    // Phase 1: whole-workspace dataflow.
    let graph = CallGraph::build(&files, &ctxs, &include);
    let sums = summaries::compute(&graph, &files);
    let prop = summaries::propagate(&graph, &sums);
    let takes_lock = |name: &str| graph.any_named(name, |id| prop.takes_lock[id]);

    // Phase 2: lint dispatch.
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut sups: Vec<(String, crate::scanner::Suppression)> = Vec::new();

    for (fi, file) in files.iter().enumerate() {
        let rel_str = &file.path;
        let ctx = &ctxs[fi];
        if fi < n_main {
            if panic_path_applies(rel_str) {
                raw.extend(lints::panic_path::check(file, ctx));
            }
            raw.extend(lints::lock_order::check_with(file, ctx, &takes_lock));
            if rel_str.starts_with("crates/pdb-store/src/") {
                raw.extend(lints::durability::check(file, ctx));
            }
            raw.extend(lints::float_eq::check(file, ctx));
            if is_crate_root(rel_str) {
                raw.extend(lints::forbid_unsafe::check(file));
            }
        } else {
            raw.extend(lints::float_eq::check(file, ctx));
        }
        for s in suppressions(file) {
            sups.push((rel_str.clone(), s));
        }
    }

    raw.extend(lints::cast_truncation::check(&graph, &sums, &files));
    raw.extend(lints::error_swallow::check(&graph, &sums, &files));
    raw.extend(lints::div_guard::check(&graph, &sums, &files));
    raw.extend(lints::panic_path::check_interprocedural(&graph, &sums, &files, &|p| {
        panic_path_applies(p)
    }));
    raw.extend(lints::dead_verb::check(&graph, &files));
    raw.extend(lints::protocol_drift::check(root));
    raw.extend(lints::metric_drift::check(root));

    Ok(apply_suppressions(raw, sups))
}

/// Which files the panic-path lint covers: the server's request path,
/// the store's WAL/replay path, the CLI's command path, and the fleet
/// router's forwarding path (a router panic takes down every shard's
/// clients at once, so it is held to the same bar as the server).
fn panic_path_applies(rel: &str) -> bool {
    rel.starts_with("crates/pdb-server/src/")
        || rel.starts_with("crates/pdb-store/src/")
        || rel.starts_with("crates/pdb-cli/src/")
        || rel.starts_with("crates/pdb-fleet/src/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || (rel.starts_with("crates/")
            && (rel.ends_with("/src/lib.rs")
                || rel.ends_with("/src/main.rs")
                || (rel.contains("/src/bin/") && rel.ends_with(".rs"))))
}

/// Enforce the suppression rules and drop suppressed findings.
fn apply_suppressions(
    raw: Vec<Diagnostic>,
    sups: Vec<(String, crate::scanner::Suppression)>,
) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    let mut used = vec![false; sups.len()];

    for d in raw {
        // One comment may suppress several findings on its line; `used`
        // only feeds the stale-suppression check.
        let matching = sups.iter().position(|(file, s)| {
            !s.reason.is_empty() && *file == d.file && s.lint == d.lint && s.covers_line == d.line
        });
        match matching {
            Some(k) => used[k] = true,
            None => out.push(d),
        }
    }

    for (k, (file, s)) in sups.iter().enumerate() {
        if !is_known_lint(&s.lint) {
            out.push(Diagnostic::new(
                "suppression",
                file,
                s.line,
                format!("unknown lint `{}` in allow(...)", s.lint),
            ));
            continue;
        }
        if s.reason.is_empty() {
            out.push(Diagnostic::new(
                "suppression",
                file,
                s.line,
                format!(
                    "allow({}) needs a reason: `// pdb-analyze: allow({}): <why>`",
                    s.lint, s.lint
                ),
            ));
            continue;
        }
        if !used[k] {
            out.push(Diagnostic::new(
                "suppression",
                file,
                s.line,
                format!("allow({}) matches no finding; remove the stale suppression", s.lint),
            ));
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    out
}

/// Workspace-relative paths of every first-party source file (the main
/// roots: root `src/` plus every `crates/*/src/`).  These feed the call
/// graph.
pub fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out)?;
            }
        }
    }
    rel_sorted(root, out)
}

/// Auxiliary roots: root `examples/` and root `tests/`.  Style lints and
/// suppression hygiene only — excluded from the call graph (see the
/// module docs for why).
pub fn aux_source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for sub in ["examples", "tests"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut out)?;
        }
    }
    rel_sorted(root, out)
}

fn rel_sorted(root: &Path, abs: Vec<PathBuf>) -> std::io::Result<Vec<PathBuf>> {
    let mut rels: Vec<PathBuf> =
        abs.into_iter().filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from)).collect();
    rels.sort();
    Ok(rels)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
