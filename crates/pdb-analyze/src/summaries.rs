//! Per-function dataflow facts and their fixpoint propagation over the
//! call graph.
//!
//! [`compute`] extracts **direct** facts from each function body by
//! token-pattern matching (the same discipline as the per-file lints):
//!
//! - *may-panic*: `.unwrap()` / `.expect(` method calls and the
//!   panicking macros (`panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`).  Explicit indexing is deliberately **not** a
//!   transitive fact — the engine kernels index slices pervasively and
//!   treating every index as a panic would drown the real findings; the
//!   intraprocedural `panic-path` lint still flags indexing inside the
//!   request/replay/CLI files themselves.
//! - *takes-lock*: a `.lock()` call anywhere in the body.
//! - *returns-Result*: the signature's return type mentions `Result`.
//! - *narrowing casts*: `as u8/u16/u32/i8/i16/i32`, with a `guarded`
//!   flag when the surrounding function shows a dominating bound check
//!   (`try_from` or a `::MAX` comparison earlier in the body).
//! - *discarded Results*: `let _ = call(...)` statements and
//!   statement-terminated `.ok();`.
//! - *divisions*: `/` (and `/=`) with a non-literal divisor, with a
//!   `guarded` flag when one of the engine's numerical-stability
//!   constants (`MAX_DIVISOR_Q`, `MIN_SCALE_PROB`,
//!   `DIVISION_REBUILD_THRESHOLD`) appears earlier in the body.
//!
//! [`propagate`] then runs a worklist fixpoint pushing the boolean facts
//! (may-panic, takes-lock) from callees to callers over the resolved
//! call edges, so "this handler transitively reaches a panic" is a graph
//! query, not a textual one.

use crate::callgraph::CallGraph;
use crate::lexer::{SourceFile, TokenKind};
use crate::lints::{is_keyword, is_method_call};

/// The panicking macros shared with the intraprocedural `panic-path`.
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Integer types a cast can narrow into on every supported platform.
/// `usize`/`u64` are treated as widening (the workspace only targets
/// 64-bit hosts; DESIGN.md records the caveat).
pub const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// The engine's numerical-stability gates: a division dominated by any
/// of these identifiers counts as guarded.
pub const DIV_GUARDS: &[&str] = &["MAX_DIVISOR_Q", "MIN_SCALE_PROB", "DIVISION_REBUILD_THRESHOLD"];

/// One direct panic site inside a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// Line of the panicking call/macro.
    pub line: u32,
    /// What panics (`".unwrap()"`, `"panic!"`, ...).
    pub what: String,
}

/// One narrowing `as` cast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CastSite {
    /// Line of the `as` keyword.
    pub line: u32,
    /// The narrow target type (`"u32"`, ...).
    pub target: String,
    /// Whether a dominating bound check was found earlier in the body.
    pub guarded: bool,
}

/// One `let _ = ...` / `.ok();` discarding a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscardSite {
    /// Line of the discarding statement.
    pub line: u32,
    /// The discarded callee's name, when the statement contains a call
    /// (`None` for a bare `.ok();` whose receiver is not a direct call).
    pub callee: Option<String>,
    /// `"let _ ="` or `".ok()"` — used in the diagnostic message.
    pub form: &'static str,
}

/// One division with a non-literal divisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivSite {
    /// Line of the `/` operator.
    pub line: u32,
    /// Whether a stability gate dominates the division.
    pub guarded: bool,
}

/// Direct (intraprocedural) facts of one function.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// Direct panic sites.
    pub panics: Vec<PanicSite>,
    /// Whether the body calls `.lock()` directly.
    pub takes_lock: bool,
    /// Whether the signature returns a `Result`.
    pub returns_result: bool,
    /// Narrowing casts.
    pub casts: Vec<CastSite>,
    /// Discarded fallible values.
    pub discards: Vec<DiscardSite>,
    /// Divisions by non-literal divisors.
    pub divisions: Vec<DivSite>,
}

/// Facts after fixpoint propagation over the call graph.
#[derive(Debug)]
pub struct Propagated {
    /// Function transitively reaches a direct panic site.
    pub may_panic: Vec<bool>,
    /// Function transitively takes a session `.lock()`.
    pub takes_lock: Vec<bool>,
}

/// Compute the direct summary of every function in the graph.
pub fn compute(graph: &CallGraph, files: &[SourceFile]) -> Vec<FnSummary> {
    graph
        .fns
        .iter()
        .map(|f| summarize(&files[f.file], f.span.sig.clone(), f.span.body.clone()))
        .collect()
}

/// Run the worklist fixpoint: a caller inherits `may_panic`/`takes_lock`
/// from every resolved callee.  Monotone boolean facts over a finite
/// graph, so the loop terminates after at most `|fns|` sweeps (in
/// practice two or three).
pub fn propagate(graph: &CallGraph, sums: &[FnSummary]) -> Propagated {
    let n = graph.fns.len();
    let mut may_panic: Vec<bool> = sums.iter().map(|s| !s.panics.is_empty()).collect();
    let mut takes_lock: Vec<bool> = sums.iter().map(|s| s.takes_lock).collect();

    // Reverse edges once: callee -> callers.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, sites) in graph.calls.iter().enumerate() {
        for site in sites {
            for &t in &site.targets {
                callers[t].push(caller);
            }
        }
    }

    let mut work: std::collections::VecDeque<usize> =
        (0..n).filter(|&i| may_panic[i] || takes_lock[i]).collect();
    while let Some(f) = work.pop_front() {
        for &c in &callers[f] {
            let grew_panic = may_panic[f] && !may_panic[c];
            let grew_lock = takes_lock[f] && !takes_lock[c];
            if grew_panic {
                may_panic[c] = true;
            }
            if grew_lock {
                takes_lock[c] = true;
            }
            if grew_panic || grew_lock {
                work.push_back(c);
            }
        }
    }
    Propagated { may_panic, takes_lock }
}

/// Extract the direct facts of one function given its raw token ranges.
fn summarize(
    file: &SourceFile,
    sig: std::ops::Range<usize>,
    body: std::ops::Range<usize>,
) -> FnSummary {
    let code: Vec<usize> =
        file.code_indices().into_iter().filter(|&ti| ti >= body.start && ti < body.end).collect();
    let mut out = FnSummary { returns_result: returns_result(file, sig), ..Default::default() };

    for i in 0..code.len() {
        let t = &file.tokens[code[i]];
        match t.kind {
            TokenKind::Ident => {
                let text = file.text(t);
                if (text == "unwrap" || text == "expect") && is_method_call(file, &code, i) {
                    out.panics.push(PanicSite { line: t.line, what: format!(".{text}()") });
                } else if PANIC_MACROS.contains(&text) && bang_follows(file, &code, i) {
                    out.panics.push(PanicSite { line: t.line, what: format!("{text}!") });
                } else if text == "lock" && is_method_call(file, &code, i) {
                    out.takes_lock = true;
                } else if text == "as" {
                    if let Some(&nti) = code.get(i + 1) {
                        let nt = &file.tokens[nti];
                        let target = file.text(nt);
                        if nt.kind == TokenKind::Ident && NARROW_INTS.contains(&target) {
                            out.casts.push(CastSite {
                                line: t.line,
                                target: target.to_string(),
                                guarded: cast_guarded(file, &code, i),
                            });
                        }
                    }
                } else if text == "let" && let_discard(file, &code, i) {
                    out.discards.push(DiscardSite {
                        line: t.line,
                        callee: first_call_in_stmt(file, &code, i),
                        form: "let _ =",
                    });
                } else if text == "ok" && ok_dropped(file, &code, i) {
                    out.discards.push(DiscardSite {
                        line: t.line,
                        callee: receiver_call(file, &code, i),
                        form: ".ok()",
                    });
                }
            }
            TokenKind::Punct if file.text(t) == "/" => {
                if let Some(div) = division_site(file, &code, i) {
                    out.divisions.push(div);
                }
            }
            _ => {}
        }
    }
    out
}

/// Whether the signature's return type mentions `Result` after `->`.
fn returns_result(file: &SourceFile, sig: std::ops::Range<usize>) -> bool {
    let code: Vec<usize> =
        file.code_indices().into_iter().filter(|&ti| ti >= sig.start && ti < sig.end).collect();
    let mut seen_arrow = false;
    for i in 0..code.len() {
        let t = &file.tokens[code[i]];
        if t.kind == TokenKind::Punct
            && file.text(t) == "-"
            && crate::lints::adjacent_puncts(file, &code, i, "-", ">")
        {
            seen_arrow = true;
        }
        if seen_arrow && t.kind == TokenKind::Ident && file.text(t) == "Result" {
            return true;
        }
    }
    false
}

/// `name !` with the bang directly attached (macro invocation).
fn bang_follows(file: &SourceFile, code: &[usize], i: usize) -> bool {
    code.get(i + 1).is_some_and(|&ti| {
        let t = &file.tokens[ti];
        t.kind == TokenKind::Punct && file.text(t) == "!" && t.start == file.tokens[code[i]].end
    })
}

/// A dominating bound check for a cast at `code[i]`: `try_from` or a
/// `::MAX` token earlier in the same body.  `MAX` must be the exact
/// token — domain constants like `MAX_RECORD_LEN` deliberately do not
/// count, because the analyzer cannot evaluate whether they fit the
/// target type.
fn cast_guarded(file: &SourceFile, code: &[usize], i: usize) -> bool {
    code[..i].iter().any(|&ti| {
        let t = &file.tokens[ti];
        t.kind == TokenKind::Ident && matches!(file.text(t), "try_from" | "MAX")
    })
}

/// `let _ =` with a plain `_` pattern (not `_x`, not a tuple).
fn let_discard(file: &SourceFile, code: &[usize], i: usize) -> bool {
    let under = code.get(i + 1).map(|&ti| &file.tokens[ti]);
    let eq = code.get(i + 2).map(|&ti| &file.tokens[ti]);
    matches!(under, Some(t) if t.kind == TokenKind::Ident && file.text(t) == "_")
        && matches!(eq, Some(t) if t.kind == TokenKind::Punct && file.text(t) == "=")
}

/// The first non-macro call name inside the statement starting at
/// `code[i]` (scans to the `;` at bracket depth 0).
fn first_call_in_stmt(file: &SourceFile, code: &[usize], i: usize) -> Option<String> {
    let mut depth = 0isize;
    let mut j = i;
    while let Some(&ti) = code.get(j) {
        let t = &file.tokens[ti];
        if t.kind == TokenKind::Punct {
            match file.text(t) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        if t.kind == TokenKind::Ident && !is_keyword(file.text(t)) {
            let next = code.get(j + 1).map(|&n| &file.tokens[n]);
            if matches!(next, Some(n) if n.kind == TokenKind::Punct && file.text(n) == "(") {
                return Some(file.text(t).to_string());
            }
        }
        j += 1;
    }
    None
}

/// `.ok()` immediately followed by `;` — the Result is dropped on the
/// floor.  `.ok()?`, `.ok().map(...)` etc. are conversions, not
/// swallows, and are left alone.
fn ok_dropped(file: &SourceFile, code: &[usize], i: usize) -> bool {
    if !is_method_call(file, code, i) {
        return false;
    }
    let close = code.get(i + 2).map(|&ti| &file.tokens[ti]);
    let semi = code.get(i + 3).map(|&ti| &file.tokens[ti]);
    matches!(close, Some(t) if file.text(t) == ")")
        && matches!(semi, Some(t) if t.kind == TokenKind::Punct && file.text(t) == ";")
}

/// For `recv(...).ok();`, the name of `recv`; `None` when the receiver
/// is not a direct call.
fn receiver_call(file: &SourceFile, code: &[usize], i: usize) -> Option<String> {
    // code[i-1] is `.`; before it either `)` (call receiver) or an ident.
    if i < 2 {
        return None;
    }
    let before = &file.tokens[code[i - 2]];
    if before.kind == TokenKind::Punct && file.text(before) == ")" {
        // Walk back to the matching `(`, then the ident before it.
        let mut depth = 0isize;
        let mut j = i - 2;
        loop {
            let t = &file.tokens[code[j]];
            if t.kind == TokenKind::Punct {
                match file.text(t) {
                    ")" | "]" | "}" => depth += 1,
                    "(" | "[" | "{" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        let name = &file.tokens[*code.get(j.checked_sub(1)?)?];
        if name.kind == TokenKind::Ident && !is_keyword(file.text(name)) {
            return Some(file.text(name).to_string());
        }
    }
    None
}

/// Classify the `/` at `code[i]`: a division whose divisor is not a
/// numeric literal.  Handles `/=`; skips path separators and operators
/// that merely contain a slash-adjacent shape (`a / b` needs an
/// expression on the left).
fn division_site(file: &SourceFile, code: &[usize], i: usize) -> Option<DivSite> {
    let t = &file.tokens[code[i]];
    // Left operand must end an expression.
    let prev = &file.tokens[*code.get(i.checked_sub(1)?)?];
    let prev_ok = match prev.kind {
        TokenKind::Ident => !is_keyword(file.text(prev)),
        TokenKind::Int | TokenKind::Float => true,
        TokenKind::Punct => matches!(file.text(prev), ")" | "]"),
        _ => false,
    };
    if !prev_ok {
        return None;
    }
    // Divisor: the token after the `/` (or after the `=` of `/=`).
    let mut j = i + 1;
    let next = &file.tokens[*code.get(j)?];
    if next.kind == TokenKind::Punct && file.text(next) == "=" && next.start == t.end {
        j += 1;
    }
    let divisor = &file.tokens[*code.get(j)?];
    if matches!(divisor.kind, TokenKind::Int | TokenKind::Float) {
        return None;
    }
    let guarded = code[..i].iter().any(|&ti| {
        let g = &file.tokens[ti];
        g.kind == TokenKind::Ident && DIV_GUARDS.contains(&file.text(g))
    });
    Some(DivSite { line: t.line, guarded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::scanner::FileContext;

    fn sums_of(src: &str) -> (CallGraph, Vec<FnSummary>) {
        let files = vec![SourceFile::lex("t.rs", src)];
        let ctxs: Vec<FileContext> = files.iter().map(FileContext::new).collect();
        let graph = CallGraph::build(&files, &ctxs, &[true]);
        let sums = compute(&graph, &files);
        (graph, sums)
    }

    fn summary<'a>(graph: &CallGraph, sums: &'a [FnSummary], name: &str) -> &'a FnSummary {
        &sums[graph.by_name[name][0]]
    }

    #[test]
    fn direct_facts_are_extracted() {
        let (g, s) = sums_of(
            "fn f(x: Option<u8>) -> Result<(), E> {\n\
             x.unwrap();\n\
             panic!(\"no\");\n\
             let g = m.lock();\n\
             let n = big as u32;\n\
             let _ = fallible();\n\
             fs::remove_file(p).ok();\n\
             let r = a / b;\n\
             Ok(())\n}\n",
        );
        let f = summary(&g, &s, "f");
        assert_eq!(f.panics.len(), 2, "{f:?}");
        assert_eq!(f.panics[0].what, ".unwrap()");
        assert_eq!(f.panics[1].what, "panic!");
        assert!(f.takes_lock);
        assert!(f.returns_result);
        assert_eq!(f.casts.len(), 1);
        assert!(!f.casts[0].guarded);
        assert_eq!(f.discards.len(), 2, "{f:?}");
        assert_eq!(f.discards[0].callee.as_deref(), Some("fallible"));
        assert_eq!(f.discards[1].callee.as_deref(), Some("remove_file"));
        assert_eq!(f.divisions.len(), 1);
        assert!(!f.divisions[0].guarded);
    }

    #[test]
    fn guards_are_recognized() {
        let (g, s) = sums_of(
            "fn casts(n: usize, m: usize) -> (u32, u32) {\n\
             let early = m as u32;\n\
             if n > u32::MAX as usize { return (0, 0); }\n\
             (early, n as u32)\n}\n\
             fn div(q: f64, x: f64) -> f64 {\n\
             if q <= MAX_DIVISOR_Q { x / q } else { 0.0 }\n}\n",
        );
        // The first cast precedes any bound check; the second is
        // dominated by the `u32::MAX` comparison.
        let casts = &summary(&g, &s, "casts").casts;
        assert_eq!(casts.len(), 2);
        assert!(!casts[0].guarded);
        assert!(casts[1].guarded);
        let div = &summary(&g, &s, "div").divisions;
        assert_eq!(div.len(), 1);
        assert!(div[0].guarded);
    }

    #[test]
    fn literal_divisors_and_conversion_ok_are_skipped() {
        let (g, s) = sums_of(
            "fn f(a: f64) -> Option<f64> {\n\
             let h = a / 2.0;\n\
             let v = probe().ok()?;\n\
             let w = probe().ok().map(|x| x);\n\
             Some(h)\n}\n",
        );
        let f = summary(&g, &s, "f");
        assert!(f.divisions.is_empty(), "{f:?}");
        assert!(f.discards.is_empty(), "{f:?}");
    }

    #[test]
    fn fixpoint_propagates_transitively() {
        let (g, s) = sums_of(
            "fn root() { mid(); }\n\
             fn mid() { leaf(); locker(); }\n\
             fn leaf() { x.unwrap(); }\n\
             fn locker() { m.lock(); }\n\
             fn clean() {}\n",
        );
        let p = propagate(&g, &s);
        assert!(p.may_panic[g.by_name["root"][0]]);
        assert!(p.takes_lock[g.by_name["root"][0]]);
        assert!(p.may_panic[g.by_name["mid"][0]]);
        assert!(!p.may_panic[g.by_name["clean"][0]]);
        assert!(!p.takes_lock[g.by_name["leaf"][0]]);
    }
}
