//! Workspace invariant checker for the probabilistic-database serving
//! stack.
//!
//! The repo's hardest-won invariants — "errors become replies, not
//! panics", "shard lock drops before session lock", "every published
//! file is tmp+fsync+rename'd", "the wire verb set is consistent
//! everywhere it is written down" — are enforced here as named lints
//! over a hand-rolled lexer, so they are machine-checked on every PR
//! instead of living in prose.  See the README's *Static analysis*
//! section for the lint catalog and suppression syntax.
//!
//! The crate is deliberately dependency-free (same vendoring philosophy
//! as `vendor/`): [`lexer`] classifies tokens, [`scanner`] recovers just
//! enough structure (items, test regions, suppressions), and each
//! module in [`lints`] is a small token-pattern pass.  On top of the
//! per-file view, [`callgraph`] resolves call edges across the whole
//! workspace and [`summaries`] computes per-function facts that a
//! fixpoint propagates along those edges — which is what lets
//! `panic-path` and `lock-order` see through function calls and powers
//! the whole-program lints (`cast-truncation`, `error-swallow`,
//! `div-guard`, `dead-verb`).  See `DESIGN.md` for the pipeline and each
//! lint's soundness caveats.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench_drift;
pub mod callgraph;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod scanner;
pub mod summaries;
pub mod workspace;

pub use diag::Diagnostic;

use std::path::{Path, PathBuf};

/// Find the workspace root: the nearest ancestor of `start` containing a
/// `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
