//! Loopback durability: a store-backed server journals its sessions,
//! auto-compacts its log, serves `persist`/`restore`, and rehydrates
//! everything after a restart — all over a real TCP connection.
//!
//! (The harsher variant — SIGKILL instead of a graceful restart — lives
//! in `pdb-cli/tests/kill_and_recover.rs`, which drives the real `pdb`
//! binary.)

use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::TopKQuery;
use pdb_quality::{BatchQuality, WeightedQuery};
use pdb_server::protocol::EvalMode;
use pdb_server::{Client, DatasetSpec, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::Path;
use std::thread;

const TOL: f64 = 1e-12;

fn boot(
    store_dir: &Path,
    compact_every: u64,
) -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>, u64) {
    // The previous server's detached compaction thread may still hold
    // the store's single-writer lock for a moment after shutdown; retry
    // until it drains.
    for _ in 0..100 {
        match Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            shards: 2,
            store_dir: Some(store_dir.display().to_string()),
            compact_every,
            ..Default::default()
        }) {
            Ok(server) => {
                let addr = server.local_addr().expect("bound address");
                let recovered = server.sessions_recovered();
                let handle = thread::spawn(move || server.run());
                return (addr, handle, recovered);
            }
            Err(err) if err.to_string().contains("holds this store open") => {
                thread::sleep(std::time::Duration::from_millis(100));
            }
            Err(err) => panic!("bind store-backed server: {err}"),
        }
    }
    panic!("store lock never released");
}

#[test]
fn store_backed_server_restarts_with_its_sessions() {
    let dir = std::env::temp_dir()
        .join("pdb-server-durability-test")
        .join(format!("run-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let spec = DatasetSpec::Synthetic { tuples: 300 };
    let query = TopKQuery::PTk { k: 6, threshold: 0.1 };
    let mut mirror = BatchQuality::from_owned(
        pdb_gen::build_dataset(&spec).unwrap(),
        vec![WeightedQuery::new(query)],
    )
    .unwrap();

    // ---- first server: session + probes, aggressive auto-compaction --
    let (addr, handle, recovered) = boot(&dir, 3);
    assert_eq!(recovered, 0, "fresh store");
    let mut client = Client::connect(addr).unwrap();
    let session = client.create_session(spec, 1, 0.8).unwrap().session;
    client.register_query(session, query, 1.0).unwrap();
    for probe in 0..5usize {
        let l = probe * 3;
        let keep_pos = mirror.database().x_tuple(l).members[0];
        let mutation = XTupleMutation::CollapseToAlternative { keep_pos };
        client.apply_probe(session, l, mutation.clone(), EvalMode::Delta).unwrap();
        mirror.apply_collapse_in_place(l, &mutation).unwrap();
    }
    // Snapshot files prove auto-compaction checkpointed the session
    // (threshold 3 < the 7 records this session wrote).
    let snapshots = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("snapshot-"))
        .count();
    assert!(snapshots >= 1, "auto-compaction wrote a checkpoint snapshot");
    client.shutdown().unwrap();
    handle.join().expect("server thread").expect("clean shutdown");

    // ---- compaction bounded the log (read-only peek: the lock may
    // still be held briefly by the drained server's compaction thread) --
    let recovery = pdb_store::Store::peek(&dir, &pdb_gen::build_dataset).expect("peek store");
    assert!(
        recovery.records < 7,
        "log was truncated below the raw record count, found {}",
        recovery.records
    );

    // ---- second server: recovery + restore over the wire ------------
    let (addr, handle, recovered) = boot(&dir, 0);
    assert_eq!(recovered, 1, "the session rehydrated at bind time");
    let mut client = Client::connect(addr).unwrap();

    let report = client.quality(session).unwrap();
    assert!((report.aggregate - mirror.aggregate_quality()).abs() <= TOL);
    assert_eq!(client.evaluate(session).unwrap().answers, mirror.answers().unwrap());

    // restore: open a second session from an exported snapshot file.
    let exported = dir.join("exported.pdbs");
    pdb_store::Snapshot::write(mirror.database(), &exported).unwrap();
    let restored = client.restore(exported.display().to_string(), 1, 0.8).expect("restore verb");
    assert_eq!(restored.tuples, mirror.database().len());
    client.register_query(restored.session, query, 1.0).unwrap();
    let restored_report = client.quality(restored.session).unwrap();
    assert!((restored_report.aggregate - mirror.aggregate_quality()).abs() <= TOL);

    let stats = client.stats().unwrap();
    assert!(stats.durable);
    assert_eq!(stats.sessions_live, 2);
    assert_eq!(stats.sessions.len(), 2);
    assert!(stats.sessions[0].probes == 5 && stats.sessions[0].queries == 1);

    client.shutdown().unwrap();
    handle.join().expect("server thread").expect("clean shutdown");

    // ---- the restored session is durable too -------------------------
    std::fs::remove_file(&exported).unwrap(); // durability must not need it
    let (_, _, recovered) = boot(&dir, 0);
    assert_eq!(recovered, 2, "both sessions survive another restart");
    std::fs::remove_dir_all(&dir).ok();
}
