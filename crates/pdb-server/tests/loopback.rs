//! End-to-end loopback test: a real TCP server on an ephemeral port,
//! concurrent clients, and byte-level equivalence against direct
//! in-process `BatchQuality` calls.
//!
//! Every served answer, quality score and probe recommendation must match
//! what the same sequence of engine calls produces in process (tolerance
//! 1e-12 on floats; in practice the wire round-trip is bit-exact because
//! the vendored serde_json prints shortest-round-trip floats and the
//! server runs the identical code path on the identical database).

use pdb_clean::{best_single_probe, CleaningContext, CleaningSetup};
use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::TopKQuery;
use pdb_quality::{BatchQuality, WeightedQuery};
use pdb_server::protocol::EvalMode;
use pdb_server::{Client, DatasetSpec, Server, ServerConfig};
use std::net::SocketAddr;
use std::thread;

const TOL: f64 = 1e-12;

/// Boot a server on an ephemeral loopback port.
fn boot(threads: usize, shards: usize) -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        shards,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral loopback port");
    let addr = server.local_addr().expect("bound address");
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

/// The query set each worker registers (distinct `k`, all three
/// semantics, non-uniform weights).
fn query_specs(k_base: usize) -> Vec<(TopKQuery, f64)> {
    vec![
        (TopKQuery::PTk { k: k_base, threshold: 0.1 }, 1.0),
        (TopKQuery::UKRanks { k: k_base + 2 }, 0.5),
        (TopKQuery::GlobalTopk { k: 2 * k_base }, 2.0),
    ]
}

fn assert_close(a: f64, b: f64, what: &str) {
    assert!((a - b).abs() <= TOL, "{what}: served {a} vs direct {b}");
}

fn assert_all_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_close(*x, *y, &format!("{what}[{i}]"));
    }
}

/// One worker's full session: register → evaluate → probe → re-evaluate,
/// mirrored step for step by an in-process `BatchQuality` on the same
/// (deterministically generated) database.
fn exercise_session(addr: SocketAddr, worker: usize) {
    let tuples = 400 + 100 * worker; // distinct database per worker
    let k_base = 3 + worker;
    let spec = DatasetSpec::Synthetic { tuples };
    let mut client = Client::connect(addr).expect("connect");

    let created = client.create_session(spec.clone(), 1, 0.8).expect("create_session");
    assert_eq!(created.tuples, tuples);

    // In-process mirror of the same session.
    let db = pdb_gen::spec::build_dataset(&spec).expect("mirror dataset");
    assert_eq!(db.len(), tuples);
    let specs: Vec<WeightedQuery> =
        query_specs(k_base).into_iter().map(|(q, w)| WeightedQuery::weighted(q, w)).collect();
    let mut mirror = BatchQuality::from_owned(db, specs.clone()).expect("mirror batch");

    for (i, (query, weight)) in query_specs(k_base).into_iter().enumerate() {
        let registered =
            client.register_query(created.session, query, weight).expect("register_query");
        assert_eq!(registered.index, i);
    }

    // --- evaluate + quality, pre-probe -------------------------------
    let answers = client.evaluate(created.session).expect("evaluate");
    assert_eq!(answers.answers, mirror.answers().expect("mirror answers"));

    let report = client.quality(created.session).expect("quality");
    assert_all_close(&report.qualities, &mirror.quality_vector(), "pre-probe qualities");
    assert_close(report.aggregate, mirror.aggregate_quality(), "pre-probe aggregate");
    assert_all_close(&report.g, &mirror.aggregate_breakdown(), "pre-probe g");

    // --- probe recommendation ----------------------------------------
    let advice = client.recommend_probe(created.session).expect("recommend_probe");
    let setup = CleaningSetup::uniform(mirror.database().num_x_tuples(), 1, 0.8).unwrap();
    let direct = best_single_probe(&CleaningContext::from_batch(&mirror), &setup);
    match (advice.recommendation, direct) {
        (Some(served), Some((l, gain))) => {
            assert_eq!(served.x_tuple, l, "recommended x-tuple");
            assert_close(served.expected_gain, gain, "recommended gain");
        }
        (None, None) => {}
        (served, direct) => panic!("served {served:?} but direct says {direct:?}"),
    }

    // --- apply the recommended probe (delta path) --------------------
    let l = advice.recommendation.expect("synthetic data is uncertain").x_tuple;
    let keep_pos = mirror.database().x_tuple(l).members[0];
    let mutation = XTupleMutation::CollapseToAlternative { keep_pos };
    let applied = client
        .apply_probe(created.session, l, mutation.clone(), EvalMode::Delta)
        .expect("apply_probe");
    let direct_update = mirror.apply_collapse_in_place(l, &mutation).expect("mirror collapse");
    assert_eq!(applied.update.stats, direct_update.stats, "delta statistics");
    assert_all_close(&applied.update.qualities, &direct_update.qualities, "post-probe qualities");
    assert_close(applied.update.aggregate, direct_update.aggregate, "post-probe aggregate");
    assert_close(
        applied.update.aggregate_delta,
        direct_update.aggregate_delta,
        "post-probe aggregate delta",
    );
    assert_all_close(&applied.update.g, &direct_update.g, "post-probe g");

    // --- re-evaluate on the mutated session --------------------------
    let answers = client.evaluate(created.session).expect("re-evaluate");
    assert_eq!(answers.answers, mirror.answers().expect("mirror re-answers"));
    let report = client.quality(created.session).expect("re-quality");
    assert_all_close(&report.qualities, &mirror.quality_vector(), "post-probe qualities");

    client.drop_session(created.session).expect("drop_session");
}

#[test]
fn concurrent_sessions_match_direct_engine_calls() {
    let (addr, handle) = boot(4, 4);

    let workers: Vec<thread::JoinHandle<()>> =
        (0..4).map(|worker| thread::spawn(move || exercise_session(addr, worker))).collect();
    for worker in workers {
        worker.join().expect("worker session matched the direct engine");
    }

    // All sessions were dropped; the counters saw all of them.
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.sessions_live, 0);
    assert_eq!(stats.sessions_created, 4);
    assert_eq!(stats.probes_applied, 4);
    assert!(stats.requests_served >= 4 * 8);

    client.shutdown().unwrap();
    handle.join().expect("server thread").expect("clean shutdown");
}

#[test]
fn rebuild_mode_agrees_with_the_delta_path() {
    let (addr, handle) = boot(2, 2);
    let mut client = Client::connect(addr).unwrap();
    let spec = DatasetSpec::Udb1;

    let mk = |client: &mut Client| {
        let session = client.create_session(spec.clone(), 1, 0.8).unwrap().session;
        client.register_query(session, TopKQuery::PTk { k: 2, threshold: 0.4 }, 1.0).unwrap();
        session
    };
    let (a, b) = (mk(&mut client), mk(&mut client));
    let mutation = XTupleMutation::CollapseToAlternative { keep_pos: 2 };
    let delta = client.apply_probe(a, 2, mutation.clone(), EvalMode::Delta).unwrap();
    let rebuild = client.apply_probe(b, 2, mutation, EvalMode::Rebuild).unwrap();
    // Full rebuild is the oracle for the delta patch (1e-9: different
    // summation orders legitimately differ in round-off).
    assert!((delta.update.aggregate - rebuild.update.aggregate).abs() < 1e-9);
    assert!((delta.update.aggregate - (-1.85)).abs() < 0.005, "udb1 → udb2 quality");

    client.shutdown().unwrap();
    handle.join().expect("server thread").expect("clean shutdown");
}

#[test]
fn errors_come_back_as_error_replies_not_disconnects() {
    use std::io::{BufRead, BufReader, Write};

    let (addr, handle) = boot(1, 1);

    // Unparseable bytes on a raw socket (below the typed Client, which
    // validates requests before sending): the server must answer with an
    // error reply and keep the connection open.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let mut raw_reader = BufReader::new(raw.try_clone().unwrap());
    let mut reply = String::new();
    for bad in ["not json\n", "{\"evaluate\": {}, \"quality\": {}}\n", "{\"bogus\": {}}\n"] {
        raw.write_all(bad.as_bytes()).unwrap();
        reply.clear();
        raw_reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("{\"error\":"), "for {bad:?} got {reply:?}");
    }
    // The same raw connection still serves well-formed requests.
    raw.write_all(b"\"stats\"\n").unwrap();
    reply.clear();
    raw_reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("{\"stats\":"), "{reply:?}");
    drop((raw, raw_reader));

    let mut client = Client::connect(addr).unwrap();

    // Unknown session: a typed error, not a disconnect.
    let err = client.evaluate(999).unwrap_err();
    assert!(err.to_string().contains("unknown session"), "{err}");
    let err = client
        .call(&pdb_server::Request::Evaluate(pdb_server::protocol::SessionRef { session: 999 }))
        .unwrap();
    assert!(matches!(err, pdb_server::Response::Error(_)));

    // The same connection still works.
    let created = client.create_session(DatasetSpec::Udb1, 1, 0.8).unwrap();
    assert_eq!(created.tuples, 7);

    client.shutdown().unwrap();
    handle.join().expect("server thread").expect("clean shutdown");
}

#[test]
fn shutdown_drains_even_with_an_idle_persistent_connection() {
    let (addr, handle) = boot(2, 1);

    // A client that connects and then never sends anything: its worker is
    // parked in a blocking read when shutdown arrives.
    let idle = Client::connect(addr).unwrap();

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();

    // run() must return promptly despite the idle connection; join through
    // a channel so a regression fails the test instead of hanging it.
    let (tx, rx) = std::sync::mpsc::channel();
    thread::spawn(move || tx.send(handle.join().expect("server thread")));
    rx.recv_timeout(std::time::Duration::from_secs(10))
        .expect("server drained despite the idle connection")
        .expect("clean shutdown");
    drop(idle);
}
