//! Wire protocol of the cleaning service.
//!
//! The server speaks **newline-delimited JSON** over TCP: every request is
//! one JSON value on one line, and every request produces exactly one JSON
//! response line.  A request is a single-entry object whose key is the verb
//! (`{"evaluate": {"session": 3}}`); the verbs that carry no payload
//! (`stats`, `metrics`, `shutdown`) may also be sent as bare strings
//! (`"stats"`).
//! Responses follow the same shape with the response kind as the key, and
//! every error — parse failure, unknown session, engine error — comes back
//! as `{"error": {"message": "..."}}` instead of closing the connection.
//!
//! The payloads reuse the workspace's serde implementations, so the types
//! that cross the wire here (query answers, quality reports, probe
//! recommendations, [`BatchCollapseUpdate`],
//! [`DeltaStats`](pdb_engine::delta::DeltaStats)) are exactly
//! the ones the in-process engines return — a served session and a direct
//! [`pdb_quality::BatchQuality`] call produce byte-identical JSON.
//!
//! ## Verbs
//!
//! | Verb | Payload | Response |
//! |------|---------|----------|
//! | `create_session` | [`CreateSession`] | `session_created` ([`SessionCreated`]) |
//! | `register_query` | [`RegisterQuery`] | `query_registered` ([`QueryRegistered`]) |
//! | `evaluate` | [`SessionRef`] | `answers` ([`Answers`]) |
//! | `quality` | [`SessionRef`] | `quality_report` ([`QualityReport`]) |
//! | `recommend_probe` | [`SessionRef`] | `probe_recommendation` ([`ProbeAdvice`]) |
//! | `apply_mutation` | [`ApplyMutation`] | `probe_applied` ([`ProbeApplied`]) |
//! | `apply_probe` | [`ApplyProbe`] | `probe_applied` ([`ProbeApplied`]) |
//! | `drop_session` | [`SessionRef`] | `session_dropped` ([`SessionRef`]) |
//! | `persist` | [`SessionRef`] | `persisted` ([`Persisted`]) |
//! | `restore` | [`RestoreSession`] | `session_created` ([`SessionCreated`]) |
//! | `fetch_chunk` | [`FetchChunk`] | `chunk` ([`SnapshotChunk`]) |
//! | `stats` | — | `stats` ([`ServerStats`]) |
//! | `metrics` | — | `metrics` ([`MetricsReply`]) |
//! | `shutdown` | — | `shutting_down` |
//!
//! `apply_mutation` is the canonical mutation verb: it accepts every
//! [`XTupleMutation`] variant, including the streaming `Insert`/`Remove`
//! membership mutations.  `apply_probe` is its historical alias — same
//! payload shape ([`ApplyProbe`] is a type alias of [`ApplyMutation`]),
//! same response, same WAL record — kept so probe-driven clients read
//! naturally; a probe outcome *is* a mutation.
//!
//! See the README section *Serving & sessions* for one request/response
//! example per verb.

use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::{QueryAnswer, TopKQuery};
use pdb_quality::BatchCollapseUpdate;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

// ---------------------------------------------------------------------------
// Request payloads
// ---------------------------------------------------------------------------

/// Which database a new session evaluates.
///
/// The type lives in `pdb-store` (it doubles as a write-ahead-log
/// payload: a journalled `create_session` record must rebuild the same
/// database on recovery); every variant is deterministic, so a client
/// can rebuild the identical database locally — that is what the
/// loopback equivalence test and the `server_throughput` bench rely on.
/// Materialize a spec with [`pdb_gen::spec::build_dataset`].
pub use pdb_store::DatasetSpec;

/// Payload of `create_session`.
///
/// `session` is optional on the wire (omitted when `None`, and absent in
/// every pre-fleet request): a plain client lets the server assign the
/// next id, while the fleet router pre-assigns fleet-wide unique ids so
/// two shards never hand out the same one.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateSession {
    /// Database the session evaluates.
    pub dataset: DatasetSpec,
    /// Budget units one `pclean` probe costs (uniform across x-tuples).
    pub probe_cost: u64,
    /// Probability that one probe succeeds (uniform across x-tuples).
    pub probe_success: f64,
    /// Requested session id (`None`: the server assigns the next free
    /// one).  Creating an id that already exists is an error.
    pub session: Option<u64>,
}

impl Serialize for CreateSession {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("dataset".to_string(), self.dataset.to_value()),
            ("probe_cost".to_string(), self.probe_cost.to_value()),
            ("probe_success".to_string(), self.probe_success.to_value()),
        ];
        if let Some(session) = self.session {
            entries.push(("session".to_string(), session.to_value()));
        }
        Value::Map(entries)
    }
}

impl Deserialize for CreateSession {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let entries = object_entries(value, "create_session")?;
        Ok(CreateSession {
            dataset: required_field(entries, "dataset", "create_session")?,
            probe_cost: required_field(entries, "probe_cost", "create_session")?,
            probe_success: required_field(entries, "probe_success", "create_session")?,
            session: optional_field(entries, "session")?,
        })
    }
}

/// Payload of `register_query`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterQuery {
    /// Target session.
    pub session: u64,
    /// The query to register (semantics + `k` + parameters).
    pub query: TopKQuery,
    /// The query's weight in the session's aggregate quality.
    pub weight: f64,
}

/// Payload of the verbs that only name a session (`evaluate`, `quality`,
/// `recommend_probe`, `drop_session`) and of the `session_dropped`
/// response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionRef {
    /// Target session.
    pub session: u64,
}

/// How `apply_probe` folds the outcome into the session's evaluation.
/// The `mode` field is mandatory on the wire — there is no implicit
/// default, so callers always state which path they are measuring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// One in-place delta pass on the shared master matrix (the session
    /// path: O(k_max) per affected row, shared by every registered query).
    Delta,
    /// Naive full re-evaluation: mutate the database and re-run PSR + TP
    /// from scratch.  Kept as the correctness oracle and as the baseline
    /// the `server_throughput` bench measures the delta path against.
    Rebuild,
}

impl Serialize for EvalMode {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                EvalMode::Delta => "delta",
                EvalMode::Rebuild => "rebuild",
            }
            .to_string(),
        )
    }
}

impl Deserialize for EvalMode {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match value.as_str() {
            Some("delta") => Ok(EvalMode::Delta),
            Some("rebuild") => Ok(EvalMode::Rebuild),
            _ => Err(SerdeError::custom(format!(
                "expected \"delta\" or \"rebuild\" for an evaluation mode, found {value:?}"
            ))),
        }
    }
}

/// Payload of `apply_mutation` (and of its historical alias
/// `apply_probe`): one mutation of a single x-tuple — a probe outcome or
/// a streaming insert/remove.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplyMutation {
    /// Target session.
    pub session: u64,
    /// The mutated x-tuple (index into the session's current database).
    /// Ignored for [`XTupleMutation::Insert`], whose target is always the
    /// appended index (the server resolves it to the current x-tuple
    /// count — clients cannot know it).
    pub x_tuple: usize,
    /// The mutation to fold in.
    pub mutation: XTupleMutation,
    /// Delta patch (the session path) or naive full rebuild.
    pub mode: EvalMode,
}

/// Payload of `apply_probe`: one observed probe outcome.  A probe outcome
/// *is* a mutation, so this is an alias of [`ApplyMutation`] — the verbs
/// differ in name only.
pub type ApplyProbe = ApplyMutation;

/// Payload of `restore`: open a session directly over a snapshot file on
/// the server's filesystem (e.g. one produced by `pdb export` or a
/// previous `persist`).  On a store-backed server the snapshot is copied
/// into the store via an immediate checkpoint, so the new session
/// survives restarts without the external file.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoreSession {
    /// Path of the snapshot file to load.
    pub snapshot: String,
    /// Budget units one `pclean` probe costs (uniform across x-tuples).
    pub probe_cost: u64,
    /// Probability that one probe succeeds (uniform across x-tuples).
    pub probe_success: f64,
    /// Requested session id (`None`: the server assigns the next free
    /// one; the fleet router pre-assigns ids, and a peer rehydrate keeps
    /// the original id).  Optional on the wire, omitted when `None`.
    pub session: Option<u64>,
}

impl Serialize for RestoreSession {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("snapshot".to_string(), self.snapshot.to_value()),
            ("probe_cost".to_string(), self.probe_cost.to_value()),
            ("probe_success".to_string(), self.probe_success.to_value()),
        ];
        if let Some(session) = self.session {
            entries.push(("session".to_string(), session.to_value()));
        }
        Value::Map(entries)
    }
}

impl Deserialize for RestoreSession {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let entries = object_entries(value, "restore")?;
        Ok(RestoreSession {
            snapshot: required_field(entries, "snapshot", "restore")?,
            probe_cost: required_field(entries, "probe_cost", "restore")?,
            probe_success: required_field(entries, "probe_success", "restore")?,
            session: optional_field(entries, "session")?,
        })
    }
}

/// Payload of `fetch_chunk`: stream one byte range of a snapshot file
/// out of the server's store directory, so a peer can rehydrate a
/// session over the wire instead of over shared disk.  `snapshot` must
/// be a bare file name inside the store directory (no path separators) —
/// exactly what `persist` returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FetchChunk {
    /// File name of the snapshot inside the store directory.
    pub snapshot: String,
    /// Byte offset the chunk starts at.
    pub offset: u64,
    /// Upper bound on the chunk's length in bytes (the server may send
    /// less at end of file; it never sends more).
    pub max_len: u64,
}

/// Seed of the per-chunk XXH64 integrity check ("pdbc"), mirroring the
/// WAL's per-record checksum framing.
pub const CHUNK_SEED: u64 = 0x7064_6263;

/// Response to `fetch_chunk`: one length- and checksum-framed byte range
/// of a snapshot file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotChunk {
    /// The snapshot file the bytes come from.
    pub snapshot: String,
    /// Byte offset the chunk starts at.
    pub offset: u64,
    /// Bytes in this chunk (`data` decodes to exactly this many).
    pub len: u64,
    /// Total size of the snapshot file, so the receiver can preallocate
    /// and detect truncation.
    pub total: u64,
    /// XXH64 (seed [`CHUNK_SEED`]) of this chunk's raw bytes.
    pub xxh64: u64,
    /// The chunk's bytes, hex-encoded (JSON-safe framing of binary data).
    pub data: String,
    /// Whether this chunk ends the file (`offset + len == total`).
    pub eof: bool,
}

/// Hex-encode a chunk's raw bytes for the wire.
pub fn encode_chunk_data(bytes: &[u8]) -> String {
    bytes
        .iter()
        .flat_map(|byte| [byte >> 4, byte & 0xF])
        // Both nibbles are < 16, so `from_digit` always succeeds; the
        // fallback only keeps this expression panic-free.
        .map(|nibble| char::from_digit(u32::from(nibble), 16).unwrap_or('0'))
        .collect()
}

/// Decode a chunk's hex payload back into raw bytes.
pub fn decode_chunk_data(data: &str) -> Result<Vec<u8>, SerdeError> {
    let data = data.as_bytes();
    if !data.len().is_multiple_of(2) {
        return Err(SerdeError::custom("chunk data has an odd hex length"));
    }
    let nibble = |c: u8| -> Result<u8, SerdeError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            other => {
                Err(SerdeError::custom(format!("invalid hex byte {other:#04x} in chunk data")))
            }
        }
    };
    data.chunks_exact(2)
        .map(|pair| match pair {
            [hi, lo] => Ok((nibble(*hi)? << 4) | nibble(*lo)?),
            // `chunks_exact(2)` only ever yields two-byte windows.
            _ => Err(SerdeError::custom("chunk data framing error")),
        })
        .collect()
}

/// One request of the wire protocol.
///
/// Serializes as a single-entry JSON object keyed by the verb; `stats` and
/// `shutdown` additionally parse from bare strings.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `create_session`: load/generate a database and open a session on it.
    CreateSession(CreateSession),
    /// `register_query`: add a weighted query to a session (re-plans the
    /// shared evaluation).
    RegisterQuery(RegisterQuery),
    /// `evaluate`: answer every registered query from the shared matrix.
    Evaluate(SessionRef),
    /// `quality`: per-query and aggregate PWS-quality plus the aggregate
    /// per-x-tuple decomposition.
    Quality(SessionRef),
    /// `recommend_probe`: the single probe maximizing the expected
    /// aggregate improvement (Theorem 2 on the aggregate context).
    RecommendProbe(SessionRef),
    /// `apply_mutation`: fold one mutation — a probe outcome or a
    /// streaming insert/remove — into the session.
    ApplyMutation(ApplyMutation),
    /// `apply_probe`: fold one observed probe outcome into the session
    /// (historical alias of `apply_mutation`; same payload, response and
    /// WAL record).
    ApplyProbe(ApplyProbe),
    /// `drop_session`: discard a session.
    DropSession(SessionRef),
    /// `persist`: checkpoint a session's current state into the store
    /// (snapshot + WAL record), so recovery starts from the snapshot.
    Persist(SessionRef),
    /// `restore`: open a new session over a snapshot file.
    Restore(RestoreSession),
    /// `fetch_chunk`: stream one byte range of a store snapshot, so a
    /// peer can rehydrate over the wire.
    FetchChunk(FetchChunk),
    /// `stats`: server-wide counters.
    Stats,
    /// `metrics`: every registered observability series (counters,
    /// gauges, latency histograms) as one snapshot.
    Metrics,
    /// `shutdown`: stop accepting connections and drain in-flight requests.
    Shutdown,
}

impl Request {
    /// The protocol verb naming this request on the wire.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::CreateSession(_) => "create_session",
            Request::RegisterQuery(_) => "register_query",
            Request::Evaluate(_) => "evaluate",
            Request::Quality(_) => "quality",
            Request::RecommendProbe(_) => "recommend_probe",
            Request::ApplyMutation(_) => "apply_mutation",
            Request::ApplyProbe(_) => "apply_probe",
            Request::DropSession(_) => "drop_session",
            Request::Persist(_) => "persist",
            Request::Restore(_) => "restore",
            Request::FetchChunk(_) => "fetch_chunk",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        let payload = match self {
            Request::CreateSession(p) => p.to_value(),
            Request::RegisterQuery(p) => p.to_value(),
            Request::Evaluate(p)
            | Request::Quality(p)
            | Request::RecommendProbe(p)
            | Request::DropSession(p)
            | Request::Persist(p) => p.to_value(),
            Request::ApplyMutation(p) | Request::ApplyProbe(p) => p.to_value(),
            Request::Restore(p) => p.to_value(),
            Request::FetchChunk(p) => p.to_value(),
            Request::Stats | Request::Metrics | Request::Shutdown => Value::Map(Vec::new()),
        };
        Value::Map(vec![(self.verb().to_string(), payload)])
    }
}

impl Deserialize for Request {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if let Some(verb) = value.as_str() {
            return match verb {
                "stats" => Ok(Request::Stats),
                "metrics" => Ok(Request::Metrics),
                "shutdown" => Ok(Request::Shutdown),
                other => Err(SerdeError::custom(format!(
                    "verb {other:?} requires a payload; send {{\"{other}\": {{...}}}}"
                ))),
            };
        }
        let (verb, payload) = single_entry(value, "request")?;
        match verb {
            "create_session" => Ok(Request::CreateSession(Deserialize::from_value(payload)?)),
            "register_query" => Ok(Request::RegisterQuery(Deserialize::from_value(payload)?)),
            "evaluate" => Ok(Request::Evaluate(Deserialize::from_value(payload)?)),
            "quality" => Ok(Request::Quality(Deserialize::from_value(payload)?)),
            "recommend_probe" => Ok(Request::RecommendProbe(Deserialize::from_value(payload)?)),
            "apply_mutation" => Ok(Request::ApplyMutation(Deserialize::from_value(payload)?)),
            "apply_probe" => Ok(Request::ApplyProbe(Deserialize::from_value(payload)?)),
            "drop_session" => Ok(Request::DropSession(Deserialize::from_value(payload)?)),
            "persist" => Ok(Request::Persist(Deserialize::from_value(payload)?)),
            "restore" => Ok(Request::Restore(Deserialize::from_value(payload)?)),
            "fetch_chunk" => Ok(Request::FetchChunk(Deserialize::from_value(payload)?)),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(SerdeError::custom(format!("unknown request verb {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Response payloads
// ---------------------------------------------------------------------------

/// Response to `create_session`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionCreated {
    /// Identifier of the new session.
    pub session: u64,
    /// Tuples in the loaded/generated database.
    pub tuples: usize,
    /// X-tuples (entities) in the database.
    pub x_tuples: usize,
}

/// Response to `register_query`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryRegistered {
    /// The session the query was registered in.
    pub session: u64,
    /// Index of the query within the session (registration order).
    pub index: usize,
    /// The `k` of the session's one shared PSR run after re-planning.
    pub k_max: usize,
}

/// Response to `evaluate`: every registered query's answer, in
/// registration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Answers {
    /// Per-query answers.
    pub answers: Vec<QueryAnswer>,
}

/// Response to `quality`: the session's quality state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// `S(D, Q_q)` per registered query, in registration order.
    pub qualities: Vec<f64>,
    /// The per-query aggregate weights, in registration order.
    pub weights: Vec<f64>,
    /// The aggregate quality `Σ_q w_q·S(D, Q_q)`.
    pub aggregate: f64,
    /// The aggregate per-x-tuple decomposition `g_agg(l, D)`.
    pub g: Vec<f64>,
}

/// A recommended probe: the x-tuple whose single probe maximizes the
/// expected aggregate quality improvement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecommendation {
    /// The x-tuple to probe.
    pub x_tuple: usize,
    /// Expected aggregate improvement of that one probe (Theorem 2).
    pub expected_gain: f64,
}

/// Response to `recommend_probe`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeAdvice {
    /// The best single probe, or `None` when the database is effectively
    /// certain (no probe can improve the aggregate quality).
    pub recommendation: Option<ProbeRecommendation>,
}

/// Response to `apply_probe`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeApplied {
    /// The mutated session.
    pub session: u64,
    /// The mode that produced the update.
    pub mode: EvalMode,
    /// Refreshed qualities, aggregate decomposition and delta statistics —
    /// exactly what [`pdb_quality::BatchQuality::apply_collapse_in_place`]
    /// returns in process.
    pub update: BatchCollapseUpdate,
}

/// Response to `persist`: where a session's checkpoint landed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Persisted {
    /// The checkpointed session.
    pub session: u64,
    /// File name of the snapshot inside the store directory.
    pub snapshot: String,
    /// Tuples in the snapshotted database version.
    pub tuples: usize,
    /// Probes baked into the snapshot (recovery replays only probes
    /// applied after this point).
    pub probes: u64,
}

/// Per-session counters inside [`ServerStats`]: what an operator needs
/// to see how big each session is and how much work a recovery of it
/// would replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStat {
    /// The session id.
    pub session: u64,
    /// Milliseconds since the session was created (or recovered).
    pub age_ms: u64,
    /// Registered queries.
    pub queries: usize,
    /// Probes applied so far.
    pub probes: u64,
}

/// Response to `stats`: server-wide counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Sessions currently live.
    pub sessions_live: u64,
    /// Sessions created since the server started.
    pub sessions_created: u64,
    /// Requests served since the server started (including errors).
    pub requests_served: u64,
    /// Probes applied across all sessions.
    pub probes_applied: u64,
    /// Number of store shards.
    pub shards: usize,
    /// Number of worker threads.
    pub threads: usize,
    /// Whether sessions are journalled to a durable store
    /// (`--store-dir`).
    pub durable: bool,
    /// Transient connect/read failures retried away by this process's
    /// outbound [`Client`](crate::Client)s (always 0 on a plain shard
    /// server; the fleet router reports its shard-connection retries
    /// here, summed into the merged fleet stats).
    pub connect_retries: u64,
    /// The group-commit flusher's sticky fsync failure, if one has
    /// happened: once an fsync fails the WAL fail-stops, and every
    /// in-flight and future append errors.  Surfaced here so operators
    /// see a degraded store *before* the next write fails, not at it.
    /// `None` (omitted on the wire) on a healthy or non-durable server;
    /// a merged fleet reply carries the first degraded shard's message.
    pub flush_error: Option<String>,
    /// Per-session age / query / probe counters, ascending by id.
    pub sessions: Vec<SessionStat>,
}

impl Serialize for ServerStats {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("sessions_live".to_string(), self.sessions_live.to_value()),
            ("sessions_created".to_string(), self.sessions_created.to_value()),
            ("requests_served".to_string(), self.requests_served.to_value()),
            ("probes_applied".to_string(), self.probes_applied.to_value()),
            ("shards".to_string(), self.shards.to_value()),
            ("threads".to_string(), self.threads.to_value()),
            ("durable".to_string(), self.durable.to_value()),
            ("connect_retries".to_string(), self.connect_retries.to_value()),
        ];
        if let Some(flush_error) = &self.flush_error {
            entries.push(("flush_error".to_string(), flush_error.to_value()));
        }
        entries.push(("sessions".to_string(), self.sessions.to_value()));
        Value::Map(entries)
    }
}

impl Deserialize for ServerStats {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let entries = object_entries(value, "stats")?;
        Ok(ServerStats {
            sessions_live: required_field(entries, "sessions_live", "stats")?,
            sessions_created: required_field(entries, "sessions_created", "stats")?,
            requests_served: required_field(entries, "requests_served", "stats")?,
            probes_applied: required_field(entries, "probes_applied", "stats")?,
            shards: required_field(entries, "shards", "stats")?,
            threads: required_field(entries, "threads", "stats")?,
            durable: required_field(entries, "durable", "stats")?,
            connect_retries: required_field(entries, "connect_retries", "stats")?,
            // Absent (every pre-observability reply) and null both mean
            // "no sticky flush failure".
            flush_error: optional_field(entries, "flush_error")?,
            sessions: required_field(entries, "sessions", "stats")?,
        })
    }
}

/// One sampled observability series inside a [`MetricsReply`]: the wire
/// mirror of [`pdb_obs::snapshot::SeriesSample`].  `label_key` /
/// `label_value` are empty for unlabeled series; `buckets` is the
/// trimmed log2 bucket array (empty for scalars and never-recorded
/// histograms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSeries {
    /// Canonical metric name (see `pdb_obs::names`).
    pub name: String,
    /// `"counter"`, `"gauge"` or `"histogram"`.
    pub kind: String,
    /// Label dimension (e.g. `"verb"`), empty when unlabeled.
    pub label_key: String,
    /// Label value (e.g. `"evaluate"`), empty when unlabeled.
    pub label_value: String,
    /// Counter/gauge value; for histograms, the observation count.
    pub value: u64,
    /// Histogram observation sum (0 for scalars).
    pub sum: u64,
    /// Trimmed histogram buckets (empty for scalars).
    pub buckets: Vec<u64>,
}

/// Response to `metrics`: every registered series of the answering
/// process — or, from a fleet router, the associative merge of every
/// shard's snapshot plus the router's own series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReply {
    /// All sampled series, registry-ordered (canonically sorted after a
    /// fleet merge).
    pub series: Vec<MetricSeries>,
}

impl From<pdb_obs::snapshot::MetricsSnapshot> for MetricsReply {
    fn from(snapshot: pdb_obs::snapshot::MetricsSnapshot) -> Self {
        MetricsReply {
            series: snapshot
                .series
                .into_iter()
                .map(|s| MetricSeries {
                    name: s.name,
                    kind: s.kind.as_str().to_string(),
                    label_key: s.label_key,
                    label_value: s.label_value,
                    value: s.value,
                    sum: s.sum,
                    buckets: s.buckets,
                })
                .collect(),
        }
    }
}

impl MetricsReply {
    /// Convert back into the mergeable snapshot form.  Fails on a series
    /// kind this build does not know (a newer peer's reply).
    pub fn to_snapshot(&self) -> Result<pdb_obs::snapshot::MetricsSnapshot, SerdeError> {
        let mut series = Vec::with_capacity(self.series.len());
        for s in &self.series {
            let kind = pdb_obs::snapshot::SampleKind::parse(&s.kind).ok_or_else(|| {
                SerdeError::custom(format!("unknown metric kind {:?} in series {}", s.kind, s.name))
            })?;
            series.push(pdb_obs::snapshot::SeriesSample {
                name: s.name.clone(),
                kind,
                label_key: s.label_key.clone(),
                label_value: s.label_value.clone(),
                value: s.value,
                sum: s.sum,
                buckets: s.buckets.clone(),
            });
        }
        Ok(pdb_obs::snapshot::MetricsSnapshot { series })
    }
}

/// Error payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Human-readable description of what went wrong.
    pub message: String,
}

/// One response of the wire protocol (single-entry JSON object keyed by
/// the response kind).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `session_created`
    SessionCreated(SessionCreated),
    /// `query_registered`
    QueryRegistered(QueryRegistered),
    /// `answers`
    Answers(Answers),
    /// `quality_report`
    QualityReport(QualityReport),
    /// `probe_recommendation`
    ProbeRecommendation(ProbeAdvice),
    /// `probe_applied`
    ProbeApplied(ProbeApplied),
    /// `session_dropped`
    SessionDropped(SessionRef),
    /// `persisted`
    Persisted(Persisted),
    /// `chunk`
    Chunk(SnapshotChunk),
    /// `stats`
    Stats(ServerStats),
    /// `metrics`
    Metrics(MetricsReply),
    /// `shutting_down`
    ShuttingDown,
    /// `error`
    Error(ErrorReply),
}

impl Response {
    /// The protocol key naming this response on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::SessionCreated(_) => "session_created",
            Response::QueryRegistered(_) => "query_registered",
            Response::Answers(_) => "answers",
            Response::QualityReport(_) => "quality_report",
            Response::ProbeRecommendation(_) => "probe_recommendation",
            Response::ProbeApplied(_) => "probe_applied",
            Response::SessionDropped(_) => "session_dropped",
            Response::Persisted(_) => "persisted",
            Response::Chunk(_) => "chunk",
            Response::Stats(_) => "stats",
            Response::Metrics(_) => "metrics",
            Response::ShuttingDown => "shutting_down",
            Response::Error(_) => "error",
        }
    }

    /// Build an error response from any displayable error.
    pub fn error(err: impl std::fmt::Display) -> Self {
        Response::Error(ErrorReply { message: err.to_string() })
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        let payload = match self {
            Response::SessionCreated(p) => p.to_value(),
            Response::QueryRegistered(p) => p.to_value(),
            Response::Answers(p) => p.to_value(),
            Response::QualityReport(p) => p.to_value(),
            Response::ProbeRecommendation(p) => p.to_value(),
            Response::ProbeApplied(p) => p.to_value(),
            Response::SessionDropped(p) => p.to_value(),
            Response::Persisted(p) => p.to_value(),
            Response::Chunk(p) => p.to_value(),
            Response::Stats(p) => p.to_value(),
            Response::Metrics(p) => p.to_value(),
            Response::ShuttingDown => Value::Map(Vec::new()),
            Response::Error(p) => p.to_value(),
        };
        Value::Map(vec![(self.kind().to_string(), payload)])
    }
}

impl Deserialize for Response {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if value.as_str() == Some("shutting_down") {
            return Ok(Response::ShuttingDown);
        }
        let (kind, payload) = single_entry(value, "response")?;
        match kind {
            "session_created" => Ok(Response::SessionCreated(Deserialize::from_value(payload)?)),
            "query_registered" => Ok(Response::QueryRegistered(Deserialize::from_value(payload)?)),
            "answers" => Ok(Response::Answers(Deserialize::from_value(payload)?)),
            "quality_report" => Ok(Response::QualityReport(Deserialize::from_value(payload)?)),
            "probe_recommendation" => {
                Ok(Response::ProbeRecommendation(Deserialize::from_value(payload)?))
            }
            "probe_applied" => Ok(Response::ProbeApplied(Deserialize::from_value(payload)?)),
            "session_dropped" => Ok(Response::SessionDropped(Deserialize::from_value(payload)?)),
            "persisted" => Ok(Response::Persisted(Deserialize::from_value(payload)?)),
            "chunk" => Ok(Response::Chunk(Deserialize::from_value(payload)?)),
            "stats" => Ok(Response::Stats(Deserialize::from_value(payload)?)),
            "metrics" => Ok(Response::Metrics(Deserialize::from_value(payload)?)),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error(Deserialize::from_value(payload)?)),
            other => Err(SerdeError::custom(format!("unknown response kind {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Line framing
// ---------------------------------------------------------------------------

/// Serialize a protocol value as one compact JSON line (no trailing
/// newline).
pub fn encode<T: Serialize>(value: &T) -> Result<String, SerdeError> {
    serde_json::to_string(value)
}

/// Parse one request line.
pub fn decode_request(line: &str) -> Result<Request, SerdeError> {
    serde_json::from_str(line)
}

/// Parse one response line.
pub fn decode_response(line: &str) -> Result<Response, SerdeError> {
    serde_json::from_str(line)
}

/// The entries of a JSON object payload (manual-impl helper).
fn object_entries<'v>(value: &'v Value, what: &str) -> Result<&'v [(String, Value)], SerdeError> {
    value.as_map().ok_or_else(|| SerdeError::custom(format!("expected an object for {what}")))
}

/// A mandatory field of a manually deserialized payload.
fn required_field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    what: &str,
) -> Result<T, SerdeError> {
    let value = Value::map_get(entries, key)
        .ok_or_else(|| SerdeError::custom(format!("missing field {key:?} in {what}")))?;
    T::from_value(value)
}

/// An optional field: absent and `null` both mean `None`, so pre-fleet
/// requests (which never sent the field) keep parsing unchanged.
fn optional_field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
) -> Result<Option<T>, SerdeError> {
    match Value::map_get(entries, key) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => T::from_value(value).map(Some),
    }
}

/// The single `(key, value)` entry of a protocol envelope.
fn single_entry<'v>(value: &'v Value, what: &str) -> Result<(&'v str, &'v Value), SerdeError> {
    let entries = value.as_map().ok_or_else(|| {
        SerdeError::custom(format!("expected a single-entry object for a {what}"))
    })?;
    match entries {
        [(key, payload)] => Ok((key.as_str(), payload)),
        _ => Err(SerdeError::custom(format!(
            "expected exactly one verb key in a {what}, found {} entries",
            entries.len()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_engine::delta::DeltaStats;

    fn round_trip_request(req: &Request) {
        let json = encode(req).unwrap();
        let back = decode_request(&json).unwrap();
        assert_eq!(&back, req, "via {json}");
    }

    fn round_trip_response(resp: &Response) {
        let json = encode(resp).unwrap();
        let back = decode_response(&json).unwrap();
        assert_eq!(&back, resp, "via {json}");
    }

    #[test]
    fn every_request_verb_round_trips() {
        round_trip_request(&Request::CreateSession(CreateSession {
            dataset: DatasetSpec::Synthetic { tuples: 1000 },
            probe_cost: 2,
            probe_success: 0.8,
            session: None,
        }));
        round_trip_request(&Request::CreateSession(CreateSession {
            dataset: DatasetSpec::Udb1,
            probe_cost: 1,
            probe_success: 0.8,
            session: Some(41),
        }));
        round_trip_request(&Request::RegisterQuery(RegisterQuery {
            session: 7,
            query: TopKQuery::PTk { k: 15, threshold: 0.1 },
            weight: 1.5,
        }));
        round_trip_request(&Request::Evaluate(SessionRef { session: 7 }));
        round_trip_request(&Request::Quality(SessionRef { session: 7 }));
        round_trip_request(&Request::RecommendProbe(SessionRef { session: 7 }));
        round_trip_request(&Request::ApplyProbe(ApplyProbe {
            session: 7,
            x_tuple: 3,
            mutation: XTupleMutation::CollapseToAlternative { keep_pos: 12 },
            mode: EvalMode::Delta,
        }));
        round_trip_request(&Request::ApplyMutation(ApplyMutation {
            session: 7,
            x_tuple: 4,
            mutation: XTupleMutation::Insert {
                key: "s9".to_string(),
                alternatives: vec![(4.5, 0.5), (3.0, 0.25)],
            },
            mode: EvalMode::Delta,
        }));
        round_trip_request(&Request::ApplyMutation(ApplyMutation {
            session: 7,
            x_tuple: 2,
            mutation: XTupleMutation::Remove,
            mode: EvalMode::Rebuild,
        }));
        round_trip_request(&Request::DropSession(SessionRef { session: 7 }));
        round_trip_request(&Request::Persist(SessionRef { session: 7 }));
        round_trip_request(&Request::Restore(RestoreSession {
            snapshot: "/tmp/db.pdbs".to_string(),
            probe_cost: 1,
            probe_success: 0.8,
            session: None,
        }));
        round_trip_request(&Request::Restore(RestoreSession {
            snapshot: "snapshot-41-2.pdbs".to_string(),
            probe_cost: 1,
            probe_success: 0.8,
            session: Some(41),
        }));
        round_trip_request(&Request::FetchChunk(FetchChunk {
            snapshot: "snapshot-41-2.pdbs".to_string(),
            offset: 65536,
            max_len: 65536,
        }));
        round_trip_request(&Request::Stats);
        round_trip_request(&Request::Metrics);
        round_trip_request(&Request::Shutdown);
    }

    #[test]
    fn optional_session_ids_stay_off_the_wire_when_unset() {
        // Pre-fleet JSON (no `session` key) keeps parsing, and `None`
        // round-trips *without* emitting the key — old servers would
        // reject an always-present null.
        let req = Request::CreateSession(CreateSession {
            dataset: DatasetSpec::Udb1,
            probe_cost: 1,
            probe_success: 0.8,
            session: None,
        });
        let json = encode(&req).unwrap();
        assert!(!json.contains("\"session\""), "{json}");
        let parsed = decode_request(
            "{\"create_session\": {\"dataset\": \"Udb1\", \"probe_cost\": 1, \
             \"probe_success\": 0.8}}",
        )
        .unwrap();
        assert_eq!(parsed, req);
        // An explicit null is also `None`.
        let parsed = decode_request(
            "{\"create_session\": {\"dataset\": \"Udb1\", \"probe_cost\": 1, \
             \"probe_success\": 0.8, \"session\": null}}",
        )
        .unwrap();
        assert_eq!(parsed, req);
        // Missing mandatory fields still error with context.
        let err = decode_request("{\"create_session\": {\"dataset\": \"Udb1\"}}").unwrap_err();
        assert!(err.to_string().contains("probe_cost"), "{err}");
        let err = decode_request("{\"restore\": {\"probe_cost\": 1}}").unwrap_err();
        assert!(err.to_string().contains("snapshot"), "{err}");
    }

    #[test]
    fn chunk_data_hex_framing_round_trips() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let hex = encode_chunk_data(&bytes);
        assert_eq!(hex.len(), 512);
        assert_eq!(decode_chunk_data(&hex).unwrap(), bytes);
        assert_eq!(decode_chunk_data("00FFa5").unwrap(), vec![0, 255, 165]);
        assert!(decode_chunk_data("abc").is_err(), "odd length");
        assert!(decode_chunk_data("zz").is_err(), "non-hex byte");
        assert!(decode_chunk_data("").unwrap().is_empty());
    }

    #[test]
    fn every_response_kind_round_trips() {
        round_trip_response(&Response::SessionCreated(SessionCreated {
            session: 1,
            tuples: 7,
            x_tuples: 4,
        }));
        round_trip_response(&Response::QueryRegistered(QueryRegistered {
            session: 1,
            index: 0,
            k_max: 15,
        }));
        round_trip_response(&Response::Answers(Answers { answers: Vec::new() }));
        round_trip_response(&Response::QualityReport(QualityReport {
            qualities: vec![-2.55, -1.0],
            weights: vec![1.0, 0.5],
            aggregate: -3.05,
            g: vec![-1.0, -2.05],
        }));
        round_trip_response(&Response::ProbeRecommendation(ProbeAdvice {
            recommendation: Some(ProbeRecommendation { x_tuple: 2, expected_gain: 0.56 }),
        }));
        round_trip_response(&Response::ProbeRecommendation(ProbeAdvice { recommendation: None }));
        round_trip_response(&Response::ProbeApplied(ProbeApplied {
            session: 1,
            mode: EvalMode::Rebuild,
            update: BatchCollapseUpdate {
                qualities: vec![-1.85],
                aggregate: -1.85,
                aggregate_delta: 0.7,
                g: vec![0.0, -1.85],
                stats: DeltaStats::default(),
            },
        }));
        round_trip_response(&Response::SessionDropped(SessionRef { session: 1 }));
        round_trip_response(&Response::Persisted(Persisted {
            session: 1,
            snapshot: "snapshot-1-3.pdbs".to_string(),
            tuples: 7,
            probes: 2,
        }));
        round_trip_response(&Response::Chunk(SnapshotChunk {
            snapshot: "snapshot-41-2.pdbs".to_string(),
            offset: 0,
            len: 3,
            total: 3,
            xxh64: pdb_store::hash::xxh64(&[0xab, 0xcd, 0xef], CHUNK_SEED),
            data: "abcdef".to_string(),
            eof: true,
        }));
        round_trip_response(&Response::Stats(ServerStats {
            sessions_live: 1,
            sessions_created: 2,
            requests_served: 10,
            probes_applied: 3,
            shards: 8,
            threads: 4,
            durable: true,
            connect_retries: 5,
            flush_error: None,
            sessions: vec![SessionStat { session: 1, age_ms: 1234, queries: 2, probes: 3 }],
        }));
        round_trip_response(&Response::Stats(ServerStats {
            sessions_live: 0,
            sessions_created: 0,
            requests_served: 1,
            probes_applied: 0,
            shards: 1,
            threads: 1,
            durable: true,
            connect_retries: 0,
            flush_error: Some("syncing wal.log: disk gone".to_string()),
            sessions: Vec::new(),
        }));
        round_trip_response(&Response::Metrics(MetricsReply {
            series: vec![
                MetricSeries {
                    name: "engine_psr_runs_total".to_string(),
                    kind: "counter".to_string(),
                    label_key: String::new(),
                    label_value: String::new(),
                    value: 3,
                    sum: 0,
                    buckets: Vec::new(),
                },
                MetricSeries {
                    name: "server_request_latency_ns".to_string(),
                    kind: "histogram".to_string(),
                    label_key: "verb".to_string(),
                    label_value: "evaluate".to_string(),
                    value: 2,
                    sum: 1025,
                    buckets: vec![0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1],
                },
            ],
        }));
        round_trip_response(&Response::ShuttingDown);
        round_trip_response(&Response::error("boom"));
    }

    #[test]
    fn payloadless_verbs_parse_from_bare_strings() {
        assert_eq!(decode_request("\"stats\"").unwrap(), Request::Stats);
        assert_eq!(decode_request("\"metrics\"").unwrap(), Request::Metrics);
        assert_eq!(decode_request("\"shutdown\"").unwrap(), Request::Shutdown);
        assert_eq!(decode_request("{\"stats\": {}}").unwrap(), Request::Stats);
        assert_eq!(decode_request("{\"metrics\": {}}").unwrap(), Request::Metrics);
    }

    #[test]
    fn stats_without_flush_error_keep_parsing_and_omit_the_key() {
        // Pre-observability stats JSON (no `flush_error` key) must keep
        // parsing, and a healthy server's reply must not grow the key.
        let json = "{\"stats\": {\"sessions_live\": 0, \"sessions_created\": 0, \
                    \"requests_served\": 1, \"probes_applied\": 0, \"shards\": 1, \
                    \"threads\": 1, \"durable\": false, \"connect_retries\": 0, \
                    \"sessions\": []}}";
        let parsed = decode_response(json).unwrap();
        match &parsed {
            Response::Stats(stats) => assert_eq!(stats.flush_error, None),
            other => panic!("expected stats, got {}", other.kind()),
        }
        let encoded = encode(&parsed).unwrap();
        assert!(!encoded.contains("flush_error"), "{encoded}");
    }

    #[test]
    fn metrics_replies_convert_to_mergeable_snapshots() {
        let reply: MetricsReply = pdb_obs::metrics::snapshot().into();
        let snapshot = reply.to_snapshot().unwrap();
        assert_eq!(snapshot.series.len(), reply.series.len());
        let bad = MetricsReply {
            series: vec![MetricSeries {
                name: "x".to_string(),
                kind: "tachometer".to_string(),
                label_key: String::new(),
                label_value: String::new(),
                value: 0,
                sum: 0,
                buckets: Vec::new(),
            }],
        };
        assert!(bad.to_snapshot().is_err(), "unknown kinds must not merge silently");
    }

    #[test]
    fn every_wire_verb_has_a_metrics_label() {
        // The per-verb request counters/histograms in pdb-obs use a fixed
        // label set; a verb missing from it would silently fold into the
        // "other" catch-all cell.  Keep the two lists in lockstep.
        let requests = [
            Request::CreateSession(CreateSession {
                dataset: DatasetSpec::Synthetic { tuples: 10 },
                probe_cost: 1,
                probe_success: 0.8,
                session: None,
            }),
            Request::RegisterQuery(RegisterQuery {
                session: 0,
                query: TopKQuery::PTk { k: 5, threshold: 0.1 },
                weight: 1.0,
            }),
            Request::Evaluate(SessionRef { session: 0 }),
            Request::Quality(SessionRef { session: 0 }),
            Request::RecommendProbe(SessionRef { session: 0 }),
            Request::ApplyMutation(ApplyMutation {
                session: 0,
                x_tuple: 0,
                mutation: XTupleMutation::Remove,
                mode: EvalMode::Delta,
            }),
            Request::ApplyProbe(ApplyProbe {
                session: 0,
                x_tuple: 0,
                mutation: XTupleMutation::CollapseToNull,
                mode: EvalMode::Delta,
            }),
            Request::DropSession(SessionRef { session: 0 }),
            Request::Persist(SessionRef { session: 0 }),
            Request::Restore(RestoreSession {
                snapshot: "s.pdbs".to_string(),
                probe_cost: 1,
                probe_success: 0.8,
                session: None,
            }),
            Request::FetchChunk(FetchChunk {
                snapshot: "s.pdbs".to_string(),
                offset: 0,
                max_len: 1,
            }),
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in &requests {
            assert!(
                pdb_obs::metrics::VERB_LABELS.contains(&req.verb()),
                "verb {} is missing from pdb_obs::metrics::VERB_LABELS",
                req.verb()
            );
        }
        // Every non-catch-all label must correspond to a real verb, too.
        let verbs: Vec<&str> = requests.iter().map(|r| r.verb()).collect();
        for label in pdb_obs::metrics::VERB_LABELS {
            assert!(
                *label == "other" || verbs.contains(label),
                "VERB_LABELS entry {label} does not match any wire verb"
            );
        }
    }

    #[test]
    fn eval_mode_uses_lowercase_wire_names() {
        assert_eq!(encode(&EvalMode::Delta).unwrap(), "\"delta\"");
        assert_eq!(encode(&EvalMode::Rebuild).unwrap(), "\"rebuild\"");
        assert!(serde_json::from_str::<EvalMode>("\"Delta\"").is_err());
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        assert!(decode_request("{}").is_err());
        assert!(decode_request("{\"evaluate\": {}, \"quality\": {}}").is_err());
        assert!(decode_request("{\"bogus\": {}}").is_err());
        assert!(decode_request("\"evaluate\"").is_err());
        assert!(decode_request("not json").is_err());
    }

    #[test]
    fn dataset_specs_build_and_round_trip() {
        use pdb_gen::spec::build_dataset;
        for spec in [
            DatasetSpec::Udb1,
            DatasetSpec::Synthetic { tuples: 100 },
            DatasetSpec::Mov { x_tuples: 20 },
            DatasetSpec::Inline { x_tuples: vec![vec![(1.0, 0.5), (2.0, 0.5)], vec![(3.0, 1.0)]] },
        ] {
            let db = build_dataset(&spec).unwrap();
            assert!(!db.is_empty());
            let json = encode(&spec).unwrap();
            let back: DatasetSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
        assert_eq!(build_dataset(&DatasetSpec::Udb1).unwrap().len(), 7);
        // Generated datasets are deterministic: clients can mirror them.
        let a = build_dataset(&DatasetSpec::Synthetic { tuples: 200 }).unwrap();
        let b = build_dataset(&DatasetSpec::Synthetic { tuples: 200 }).unwrap();
        assert_eq!(a.len(), b.len());
        for pos in 0..a.len() {
            assert_eq!(a.tuple(pos).score.to_bits(), b.tuple(pos).score.to_bits());
            assert_eq!(a.tuple(pos).prob.to_bits(), b.tuple(pos).prob.to_bits());
        }
    }
}
