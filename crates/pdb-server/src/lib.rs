//! # pdb-server — a concurrent cleaning service with persistent sessions
//!
//! The paper's adaptive-cleaning loop is inherently *stateful*: probe
//! outcomes must be folded into a live evaluation, not re-derived from
//! scratch per call.  This crate turns the workspace's batch/delta engines
//! into a long-running service:
//!
//! * [`protocol`] — the newline-delimited JSON wire protocol
//!   (`create_session`, `register_query`, `evaluate`, `quality`,
//!   `recommend_probe`, `apply_probe`, `drop_session`, `persist`,
//!   `restore`, `stats`, `shutdown`);
//! * [`session`] — persistent sessions (a database + a live
//!   [`pdb_quality::BatchQuality`]) in a sharded, per-session-locked
//!   store, so concurrent callers on different sessions never contend;
//!   with a `--store-dir`, every session-mutating request is journalled
//!   to a `pdb-store` write-ahead log and sessions are rehydrated from
//!   it on startup (see the *Persistence & recovery* README section);
//! * [`server`] — the `std::net` TCP server: a listener feeding a worker
//!   thread pool, with graceful drain on `shutdown`;
//! * [`client`] — a blocking client used by `pdb call`, the loopback
//!   integration test and the `server_throughput` bench.
//!
//! A session keeps the one shared PSR run of its registered query set
//! alive across requests, so applying a probe outcome is a single O(n)
//! in-place delta patch shared by every registered query — the
//! `server_throughput` bench measures the resulting speedup over naive
//! per-request full re-evaluation.
//!
//! ```no_run
//! use pdb_server::{Client, DatasetSpec, Server, ServerConfig};
//! use pdb_server::protocol::EvalMode;
//! use pdb_engine::queries::TopKQuery;
//!
//! let server = Server::bind(&ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr).unwrap();
//! let session = client.create_session(DatasetSpec::Udb1, 1, 0.8).unwrap().session;
//! client.register_query(session, TopKQuery::PTk { k: 2, threshold: 0.4 }, 1.0).unwrap();
//! let answers = client.evaluate(session).unwrap();
//! assert_eq!(answers.answers[0].len(), 3); // {t1, t2, t5}
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{Client, ClientError, RetryPolicy};
pub use protocol::{DatasetSpec, EvalMode, Request, Response};
pub use server::{Server, ServerConfig};
pub use session::{Session, SessionManager};
