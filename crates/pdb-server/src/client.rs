//! Blocking client for the newline-delimited JSON protocol.
//!
//! One [`Client`] wraps one TCP connection; [`Client::call`] sends a
//! request line and reads the matching response line.  The typed
//! convenience methods unwrap the expected response kind and surface
//! `{"error": ...}` replies as [`ClientError::Server`].

use crate::protocol::{
    self, Answers, ApplyMutation, ApplyProbe, CreateSession, DatasetSpec, EvalMode, Persisted,
    ProbeAdvice, ProbeApplied, QualityReport, QueryRegistered, RegisterQuery, Request, Response,
    RestoreSession, ServerStats, SessionCreated, SessionRef,
};
use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::TopKQuery;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or closed mid-call.
    Io(std::io::Error),
    /// The server's bytes did not parse as a protocol response, or the
    /// response kind did not match the request.
    Protocol(String),
    /// The server answered with `{"error": ...}`.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "connection error: {err}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // pdb-analyze: allow(error-swallow): latency knob only; correctness does not depend on it
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(Self { reader: BufReader::new(read_half), writer: BufWriter::new(stream) })
    }

    /// Send one request and read its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let line = protocol::encode(request)
            .map_err(|err| ClientError::Protocol(format!("encoding request failed: {err}")))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        protocol::decode_response(reply.trim_end())
            .map_err(|err| ClientError::Protocol(format!("parsing response failed: {err}")))
    }

    /// `create_session`: open a session over `dataset` with uniform probe
    /// cost / success probability.
    pub fn create_session(
        &mut self,
        dataset: DatasetSpec,
        probe_cost: u64,
        probe_success: f64,
    ) -> Result<SessionCreated, ClientError> {
        match self.call(&Request::CreateSession(CreateSession {
            dataset,
            probe_cost,
            probe_success,
        }))? {
            Response::SessionCreated(created) => Ok(created),
            other => Err(unexpected("session_created", &other)),
        }
    }

    /// `register_query`: add a weighted query to the session.
    pub fn register_query(
        &mut self,
        session: u64,
        query: TopKQuery,
        weight: f64,
    ) -> Result<QueryRegistered, ClientError> {
        match self.call(&Request::RegisterQuery(RegisterQuery { session, query, weight }))? {
            Response::QueryRegistered(registered) => Ok(registered),
            other => Err(unexpected("query_registered", &other)),
        }
    }

    /// `evaluate`: every registered query's answer.
    pub fn evaluate(&mut self, session: u64) -> Result<Answers, ClientError> {
        match self.call(&Request::Evaluate(SessionRef { session }))? {
            Response::Answers(answers) => Ok(answers),
            other => Err(unexpected("answers", &other)),
        }
    }

    /// `quality`: the session's quality report.
    pub fn quality(&mut self, session: u64) -> Result<QualityReport, ClientError> {
        match self.call(&Request::Quality(SessionRef { session }))? {
            Response::QualityReport(report) => Ok(report),
            other => Err(unexpected("quality_report", &other)),
        }
    }

    /// `recommend_probe`: the best next probe, if any.
    pub fn recommend_probe(&mut self, session: u64) -> Result<ProbeAdvice, ClientError> {
        match self.call(&Request::RecommendProbe(SessionRef { session }))? {
            Response::ProbeRecommendation(advice) => Ok(advice),
            other => Err(unexpected("probe_recommendation", &other)),
        }
    }

    /// `apply_mutation`: fold one mutation — a probe outcome or a
    /// streaming insert/remove — into the session.  `x_tuple` is ignored
    /// for [`XTupleMutation::Insert`] (the server resolves the append-only
    /// target itself).
    pub fn apply_mutation(
        &mut self,
        session: u64,
        x_tuple: usize,
        mutation: XTupleMutation,
        mode: EvalMode,
    ) -> Result<ProbeApplied, ClientError> {
        match self.call(&Request::ApplyMutation(ApplyMutation {
            session,
            x_tuple,
            mutation,
            mode,
        }))? {
            Response::ProbeApplied(applied) => Ok(applied),
            other => Err(unexpected("probe_applied", &other)),
        }
    }

    /// `apply_mutation` with [`XTupleMutation::Insert`]: a brand-new
    /// x-tuple arrives (append-only; the server picks the new x-index and
    /// reports the grown database in the update).
    pub fn insert_x_tuple(
        &mut self,
        session: u64,
        key: impl Into<String>,
        alternatives: Vec<(f64, f64)>,
        mode: EvalMode,
    ) -> Result<ProbeApplied, ClientError> {
        let mutation = XTupleMutation::Insert { key: key.into(), alternatives };
        self.apply_mutation(session, 0, mutation, mode)
    }

    /// `apply_mutation` with [`XTupleMutation::Remove`]: x-tuple `x_tuple`
    /// departs entirely (no null mass required, unlike a null collapse).
    pub fn remove_x_tuple(
        &mut self,
        session: u64,
        x_tuple: usize,
        mode: EvalMode,
    ) -> Result<ProbeApplied, ClientError> {
        self.apply_mutation(session, x_tuple, XTupleMutation::Remove, mode)
    }

    /// `apply_probe`: fold one observed probe outcome into the session
    /// (the historical alias verb of `apply_mutation`; same payload and
    /// response).
    pub fn apply_probe(
        &mut self,
        session: u64,
        x_tuple: usize,
        mutation: XTupleMutation,
        mode: EvalMode,
    ) -> Result<ProbeApplied, ClientError> {
        match self.call(&Request::ApplyProbe(ApplyProbe { session, x_tuple, mutation, mode }))? {
            Response::ProbeApplied(applied) => Ok(applied),
            other => Err(unexpected("probe_applied", &other)),
        }
    }

    /// `drop_session`: discard the session.
    pub fn drop_session(&mut self, session: u64) -> Result<SessionRef, ClientError> {
        match self.call(&Request::DropSession(SessionRef { session }))? {
            Response::SessionDropped(dropped) => Ok(dropped),
            other => Err(unexpected("session_dropped", &other)),
        }
    }

    /// `persist`: checkpoint the session into the server's store.
    pub fn persist(&mut self, session: u64) -> Result<Persisted, ClientError> {
        match self.call(&Request::Persist(SessionRef { session }))? {
            Response::Persisted(persisted) => Ok(persisted),
            other => Err(unexpected("persisted", &other)),
        }
    }

    /// `restore`: open a new session over a snapshot file on the server.
    pub fn restore(
        &mut self,
        snapshot: impl Into<String>,
        probe_cost: u64,
        probe_success: f64,
    ) -> Result<SessionCreated, ClientError> {
        match self.call(&Request::Restore(RestoreSession {
            snapshot: snapshot.into(),
            probe_cost,
            probe_success,
        }))? {
            Response::SessionCreated(created) => Ok(created),
            other => Err(unexpected("session_created", &other)),
        }
    }

    /// `stats`: server-wide counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// `shutdown`: ask the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }
}

/// Map a mismatched (or error) response to the matching [`ClientError`].
fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error(reply) => ClientError::Server(reply.message.clone()),
        other => ClientError::Protocol(format!("expected {wanted:?}, got {:?}", other.kind())),
    }
}
