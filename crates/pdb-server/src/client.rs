//! Blocking client for the newline-delimited JSON protocol.
//!
//! One [`Client`] wraps one TCP connection; [`Client::call`] sends a
//! request line and reads the matching response line.  The typed
//! convenience methods unwrap the expected response kind and surface
//! `{"error": ...}` replies as [`ClientError::Server`].

use crate::protocol::{
    self, decode_chunk_data, Answers, ApplyMutation, ApplyProbe, CreateSession, DatasetSpec,
    EvalMode, FetchChunk, MetricsReply, Persisted, ProbeAdvice, ProbeApplied, QualityReport,
    QueryRegistered, RegisterQuery, Request, Response, RestoreSession, ServerStats, SessionCreated,
    SessionRef, SnapshotChunk, CHUNK_SEED,
};
use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::TopKQuery;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or closed mid-call.
    Io(std::io::Error),
    /// The server's bytes did not parse as a protocol response, or the
    /// response kind did not match the request.
    Protocol(String),
    /// The server answered with `{"error": ...}`.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "connection error: {err}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// How [`Client::connect_with`] treats a server that is slow to accept:
/// a per-attempt connect timeout, a bounded number of attempts, and a
/// jittered exponential backoff between them.  A dead shard then costs a
/// caller at most `attempts × connect_timeout` plus the backoffs —
/// bounded — instead of hanging in the kernel's default connect timeout
/// or erroring on the first refused SYN while the shard is mid-restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Total connect attempts (clamped to at least 1).
    pub attempts: u32,
    /// Backoff before the second attempt; later attempts double it
    /// (capped at 64×) and jitter keeps retrying clients from
    /// stampeding a restarting shard in lockstep.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            attempts: 5,
            base_backoff: Duration::from_millis(20),
        }
    }
}

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Connect attempts beyond the first that this connection needed
    /// (see [`connect_with`](Self::connect_with)); a fleet router sums
    /// these into the `connect_retries` stats counter.
    retries: u64,
}

impl Client {
    /// Connect to a running server (single attempt, OS default timeout).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connect with a per-attempt timeout and bounded, jittered retry on
    /// transient connect failures (refused while a shard restarts,
    /// unreachable, timed out).  Returns the last error once the attempt
    /// budget is spent.
    pub fn connect_with(addr: impl ToSocketAddrs, policy: &RetryPolicy) -> std::io::Result<Self> {
        let attempts = policy.attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(jittered_backoff(policy.base_backoff, attempt));
            }
            match Self::connect_once(&addr, policy.connect_timeout) {
                Ok(mut client) => {
                    client.retries = u64::from(attempt);
                    return Ok(client);
                }
                Err(err) => last_err = Some(err),
            }
        }
        // pdb-analyze: allow(panic-path): attempts >= 1, so the loop ran and set last_err
        Err(last_err.unwrap())
    }

    /// One connect attempt across every resolved address.
    fn connect_once(addr: &impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let mut last_err = None;
        for sock_addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock_addr, timeout) {
                Ok(stream) => return Self::from_stream(stream),
                Err(err) => last_err = Some(err),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        // pdb-analyze: allow(error-swallow): latency knob only; correctness does not depend on it
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(Self { reader: BufReader::new(read_half), writer: BufWriter::new(stream), retries: 0 })
    }

    /// Connect attempts beyond the first this connection needed.
    pub fn connect_retries(&self) -> u64 {
        self.retries
    }

    /// Send one request and read its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let line = protocol::encode(request)
            .map_err(|err| ClientError::Protocol(format!("encoding request failed: {err}")))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        protocol::decode_response(reply.trim_end())
            .map_err(|err| ClientError::Protocol(format!("parsing response failed: {err}")))
    }

    /// `create_session`: open a session over `dataset` with uniform probe
    /// cost / success probability.
    pub fn create_session(
        &mut self,
        dataset: DatasetSpec,
        probe_cost: u64,
        probe_success: f64,
    ) -> Result<SessionCreated, ClientError> {
        match self.call(&Request::CreateSession(CreateSession {
            dataset,
            probe_cost,
            probe_success,
            session: None,
        }))? {
            Response::SessionCreated(created) => Ok(created),
            other => Err(unexpected("session_created", &other)),
        }
    }

    /// `register_query`: add a weighted query to the session.
    pub fn register_query(
        &mut self,
        session: u64,
        query: TopKQuery,
        weight: f64,
    ) -> Result<QueryRegistered, ClientError> {
        match self.call(&Request::RegisterQuery(RegisterQuery { session, query, weight }))? {
            Response::QueryRegistered(registered) => Ok(registered),
            other => Err(unexpected("query_registered", &other)),
        }
    }

    /// `evaluate`: every registered query's answer.
    pub fn evaluate(&mut self, session: u64) -> Result<Answers, ClientError> {
        match self.call(&Request::Evaluate(SessionRef { session }))? {
            Response::Answers(answers) => Ok(answers),
            other => Err(unexpected("answers", &other)),
        }
    }

    /// `quality`: the session's quality report.
    pub fn quality(&mut self, session: u64) -> Result<QualityReport, ClientError> {
        match self.call(&Request::Quality(SessionRef { session }))? {
            Response::QualityReport(report) => Ok(report),
            other => Err(unexpected("quality_report", &other)),
        }
    }

    /// `recommend_probe`: the best next probe, if any.
    pub fn recommend_probe(&mut self, session: u64) -> Result<ProbeAdvice, ClientError> {
        match self.call(&Request::RecommendProbe(SessionRef { session }))? {
            Response::ProbeRecommendation(advice) => Ok(advice),
            other => Err(unexpected("probe_recommendation", &other)),
        }
    }

    /// `apply_mutation`: fold one mutation — a probe outcome or a
    /// streaming insert/remove — into the session.  `x_tuple` is ignored
    /// for [`XTupleMutation::Insert`] (the server resolves the append-only
    /// target itself).
    pub fn apply_mutation(
        &mut self,
        session: u64,
        x_tuple: usize,
        mutation: XTupleMutation,
        mode: EvalMode,
    ) -> Result<ProbeApplied, ClientError> {
        match self.call(&Request::ApplyMutation(ApplyMutation {
            session,
            x_tuple,
            mutation,
            mode,
        }))? {
            Response::ProbeApplied(applied) => Ok(applied),
            other => Err(unexpected("probe_applied", &other)),
        }
    }

    /// `apply_mutation` with [`XTupleMutation::Insert`]: a brand-new
    /// x-tuple arrives (append-only; the server picks the new x-index and
    /// reports the grown database in the update).
    pub fn insert_x_tuple(
        &mut self,
        session: u64,
        key: impl Into<String>,
        alternatives: Vec<(f64, f64)>,
        mode: EvalMode,
    ) -> Result<ProbeApplied, ClientError> {
        let mutation = XTupleMutation::Insert { key: key.into(), alternatives };
        self.apply_mutation(session, 0, mutation, mode)
    }

    /// `apply_mutation` with [`XTupleMutation::Remove`]: x-tuple `x_tuple`
    /// departs entirely (no null mass required, unlike a null collapse).
    pub fn remove_x_tuple(
        &mut self,
        session: u64,
        x_tuple: usize,
        mode: EvalMode,
    ) -> Result<ProbeApplied, ClientError> {
        self.apply_mutation(session, x_tuple, XTupleMutation::Remove, mode)
    }

    /// `apply_probe`: fold one observed probe outcome into the session
    /// (the historical alias verb of `apply_mutation`; same payload and
    /// response).
    pub fn apply_probe(
        &mut self,
        session: u64,
        x_tuple: usize,
        mutation: XTupleMutation,
        mode: EvalMode,
    ) -> Result<ProbeApplied, ClientError> {
        match self.call(&Request::ApplyProbe(ApplyProbe { session, x_tuple, mutation, mode }))? {
            Response::ProbeApplied(applied) => Ok(applied),
            other => Err(unexpected("probe_applied", &other)),
        }
    }

    /// `drop_session`: discard the session.
    pub fn drop_session(&mut self, session: u64) -> Result<SessionRef, ClientError> {
        match self.call(&Request::DropSession(SessionRef { session }))? {
            Response::SessionDropped(dropped) => Ok(dropped),
            other => Err(unexpected("session_dropped", &other)),
        }
    }

    /// `persist`: checkpoint the session into the server's store.
    pub fn persist(&mut self, session: u64) -> Result<Persisted, ClientError> {
        match self.call(&Request::Persist(SessionRef { session }))? {
            Response::Persisted(persisted) => Ok(persisted),
            other => Err(unexpected("persisted", &other)),
        }
    }

    /// `restore`: open a new session over a snapshot file on the server.
    pub fn restore(
        &mut self,
        snapshot: impl Into<String>,
        probe_cost: u64,
        probe_success: f64,
    ) -> Result<SessionCreated, ClientError> {
        match self.call(&Request::Restore(RestoreSession {
            snapshot: snapshot.into(),
            probe_cost,
            probe_success,
            session: None,
        }))? {
            Response::SessionCreated(created) => Ok(created),
            other => Err(unexpected("session_created", &other)),
        }
    }

    /// `fetch_chunk`: one verified chunk of a snapshot file in the
    /// server's store directory.  The chunk's XXH64 and length are
    /// checked here, so a caller that loops to
    /// [`download_snapshot`](Self::download_snapshot) semantics never
    /// assembles corrupt bytes.
    pub fn fetch_chunk(
        &mut self,
        snapshot: impl Into<String>,
        offset: u64,
        max_len: u64,
    ) -> Result<(SnapshotChunk, Vec<u8>), ClientError> {
        let snapshot = snapshot.into();
        let chunk =
            match self.call(&Request::FetchChunk(FetchChunk { snapshot, offset, max_len }))? {
                Response::Chunk(chunk) => chunk,
                other => return Err(unexpected("chunk", &other)),
            };
        let bytes = decode_chunk_data(&chunk.data)
            .map_err(|err| ClientError::Protocol(format!("chunk data: {err}")))?;
        if bytes.len() as u64 != chunk.len {
            return Err(ClientError::Protocol(format!(
                "chunk length mismatch: header says {}, payload has {}",
                chunk.len,
                bytes.len()
            )));
        }
        if pdb_store::hash::xxh64(&bytes, CHUNK_SEED) != chunk.xxh64 {
            return Err(ClientError::Protocol(format!(
                "chunk at offset {} of {} failed its checksum",
                chunk.offset, chunk.snapshot
            )));
        }
        Ok((chunk, bytes))
    }

    /// Download a whole snapshot file from the server's store directory
    /// by looping `fetch_chunk` until `eof`, verifying every chunk.
    /// This is how a fresh replica rehydrates from a live peer without
    /// shared disk: `persist` on the peer, download, write locally,
    /// `restore` against the local copy.
    pub fn download_snapshot(
        &mut self,
        snapshot: &str,
        chunk_len: u64,
    ) -> Result<Vec<u8>, ClientError> {
        let mut bytes = Vec::new();
        loop {
            let (chunk, data) = self.fetch_chunk(snapshot, bytes.len() as u64, chunk_len.max(1))?;
            if chunk.offset != bytes.len() as u64 {
                return Err(ClientError::Protocol(format!(
                    "server answered offset {} for a request at offset {}",
                    chunk.offset,
                    bytes.len()
                )));
            }
            bytes.extend_from_slice(&data);
            if chunk.eof {
                if bytes.len() as u64 != chunk.total {
                    return Err(ClientError::Protocol(format!(
                        "snapshot download ended at {} of {} bytes",
                        bytes.len(),
                        chunk.total
                    )));
                }
                return Ok(bytes);
            }
            if data.is_empty() {
                return Err(ClientError::Protocol(
                    "server sent an empty non-final chunk; download cannot progress".to_string(),
                ));
            }
        }
    }

    /// `stats`: server-wide counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// `metrics`: every registered observability series.
    pub fn metrics(&mut self) -> Result<MetricsReply, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(reply) => Ok(reply),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// `shutdown`: ask the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }
}

/// Exponential backoff with full jitter: `base × 2^attempt` (growth
/// capped at 64×), scaled by a random factor in `[0.5, 1.0]` so a fleet
/// of clients retrying a restarting shard spreads out instead of
/// stampeding in lockstep.  The jitter source is SplitMix64 over the
/// clock's sub-second nanos — cheap, dependency-free, and plenty for
/// de-synchronizing sleeps.
fn jittered_backoff(base: Duration, attempt: u32) -> Duration {
    let capped = base.saturating_mul(1u32 << attempt.min(6));
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    let mut z = nanos.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
    capped.mul_f64(0.5 + 0.5 * frac)
}

/// Map a mismatched (or error) response to the matching [`ClientError`].
fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error(reply) => ClientError::Server(reply.message.clone()),
        other => ClientError::Protocol(format!("expected {wanted:?}, got {:?}", other.kind())),
    }
}
